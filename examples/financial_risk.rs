//! Financial risk desk: Black–Scholes pricing plus Monte-Carlo
//! validation on shared reconfigurable accelerators — the Maxeler-class
//! workload the paper cites [18].
//!
//! Shows the UNILOGIC story end-to-end: adaptive software→hardware
//! migration, a remote worker borrowing the accelerator, and the
//! Virtualization block serving many trading threads at once.
//!
//! Run with: `cargo run --release --example financial_risk`

use std::error::Error;

use ecoscale::apps::{blackscholes, montecarlo};
use ecoscale::core::{SharingMode, SystemBuilder, VirtualizationBlock};
use ecoscale::fpga::Resources;
use ecoscale::noc::NodeId;
use ecoscale::sim::Duration;

fn main() -> Result<(), Box<dyn Error>> {
    let mut system = SystemBuilder::new()
        .workers_per_node(4)
        .compute_nodes(2)
        .hls_budget(Resources::new(3900, 64, 200))
        .kernel(blackscholes::KERNEL, blackscholes::kernel_hints(65_536))
        .kernel(montecarlo::KERNEL, montecarlo::kernel_hints(65_536))
        .build()?;
    println!(
        "module library: {} kernels synthesized",
        system.library().len()
    );

    // --- price a book of options, watching the device migrate ---------
    let n = 16_384usize;
    println!("\npricing a {n}-option book:");
    for round in 0..8 {
        let (spots, strikes) = blackscholes::generate(n, round);
        let mut args = blackscholes::bind_args(&spots, &strikes, 0.02, 0.3, 1.0);
        let out = system.call(NodeId(0), "blackscholes", &mut args)?;
        println!(
            "  round {round}: {:<11} {:<12}",
            out.device.to_string(),
            out.latency.to_string()
        );
        if round == 2 {
            system.daemon_tick();
        }
    }

    // --- Monte-Carlo validation of one at-the-money option ------------
    let paths = 100_000usize;
    let z = montecarlo::generate_normals(paths, 42);
    let mut args = montecarlo::bind_args(&z, 100.0, 100.0, 0.02, 0.3, 1.0);
    let out = system.call(NodeId(1), "mc_payoff", &mut args)?;
    let payoffs = args.array("payoff").expect("bound");
    let mc_price = montecarlo::price_from_payoffs(payoffs, 0.02, 1.0);
    let bs_price = blackscholes::reference(&[100.0], &[100.0], 0.02, 0.3, 1.0)[0];
    println!(
        "\nMC price ({paths} paths): {mc_price:.3} on {}",
        out.device
    );
    println!("closed-form price:        {bs_price:.3}");
    // the closed form uses a logistic CDF approximation (~1% abs error),
    // which overprices at-the-money by a few tenths; MC is unbiased
    assert!((mc_price - bs_price).abs() < 1.0);

    // --- many trading threads sharing one accelerator -----------------
    let module = system
        .library()
        .get("blackscholes")
        .expect("synthesized")
        .module
        .clone();
    let vb = VirtualizationBlock::new(module);
    println!("\n16 threads × 4096 options each on ONE accelerator:");
    let pipelined = vb.batch_completion(SharingMode::Pipelined, 16, 4096);
    let exclusive = vb.batch_completion(
        SharingMode::Exclusive {
            switch: Duration::from_us(5),
        },
        16,
        4096,
    );
    println!("  fully pipelined (virtualization block): {pipelined}");
    println!("  exclusive time-multiplexing:            {exclusive}");
    println!("  advantage: {:.2}x", exclusive / pipelined);
    assert!(pipelined < exclusive);

    println!("\ntotal system energy: {}", system.energy());
    Ok(())
}
