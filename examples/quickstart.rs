//! Quickstart: build an ECOSCALE system, register a kernel, watch the
//! runtime move it from software to hardware.
//!
//! Run with: `cargo run --release --example quickstart`

use std::collections::HashMap;
use std::error::Error;

use ecoscale::core::SystemBuilder;
use ecoscale::hls::KernelArgs;
use ecoscale::noc::NodeId;

// A compute-dense kernel: per element, a square root, an exponential and
// a logarithm — the profile where reconfigurable logic shines.
const KERNEL: &str = "kernel intensity(in float a[], out float b[], int n) {
    for (i in 0 .. n) {
        b[i] = sqrt(a[i] + 1.0) * exp(0.5 * a[i] / (a[i] + 2.0)) + log(abs(a[i]) + 1.0);
    }
}";

fn main() -> Result<(), Box<dyn Error>> {
    // 1. A Compute Node hierarchy: 4 workers per node, 4 nodes.
    let mut system = SystemBuilder::new()
        .workers_per_node(4)
        .compute_nodes(4)
        .kernel(KERNEL, HashMap::from([("n".to_string(), 8192.0)]))
        .build()?;
    println!(
        "system: {} workers, {} synthesized module(s)",
        system.num_workers(),
        system.library().len()
    );

    // 2. Call the function a few times; the runtime measures software
    //    first and fills its execution history.
    let n = 8192usize;
    for round in 0..12 {
        let mut args = KernelArgs::new();
        args.bind_array("a", (0..n).map(|i| i as f64 * 0.01).collect())
            .bind_array("b", vec![0.0; n])
            .bind_scalar("n", n as f64);
        let out = system.call(NodeId(0), "intensity", &mut args)?;
        println!(
            "round {round:>2}: device = {:<11}  latency = {:<12} energy = {}",
            out.device.to_string(),
            out.latency.to_string(),
            out.energy
        );
        // 3. Every few calls, the reconfiguration daemon checks the
        //    history and loads hot functions onto the fabric.
        if round == 5 {
            let loads = system.daemon_tick();
            println!("          daemon tick: {loads} module load(s)");
        }
    }

    // 4. Results are real: verify one element.
    let mut args = KernelArgs::new();
    args.bind_array("a", vec![4.0])
        .bind_array("b", vec![0.0])
        .bind_scalar("n", 1.0);
    system.call(NodeId(0), "intensity", &mut args)?;
    let got = args.array("b").expect("bound")[0];
    let want = (5.0f64).sqrt() * (2.0f64 / 6.0).exp() + (5.0f64).ln();
    println!("check: b[0] = {got:.6} (expected {want:.6})");
    assert!((got - want).abs() < 1e-12);

    println!("total system energy: {}", system.energy());
    println!("\n{}", ecoscale::core::SystemReport::capture(&system));
    Ok(())
}
