//! Decision-tree data mining with a hardware Gini scanner — the
//! HC-CART workload of the Convey HC-1 reference [17].
//!
//! The tree builder runs in software; its hot loop (Gini impurity over
//! all candidate thresholds) runs through the HLS kernel, and the test at
//! the end proves the hardware-scanned tree is *identical in accuracy*
//! to the software-scanned one.
//!
//! Run with: `cargo run --release --example genomics_cart`

use std::error::Error;

use ecoscale::apps::cart;
use ecoscale::hls::parse_kernel;

fn main() -> Result<(), Box<dyn Error>> {
    let train = cart::generate(2_000, 6, 1);
    let test = cart::generate(1_000, 6, 2);
    println!(
        "dataset: {} train / {} test samples, {} features",
        train.len(),
        test.len(),
        train.num_features
    );

    // software Gini scan
    let mut sw_scan = |x: &[f64], y: &[f64], t: &[f64]| cart::reference_gini(x, y, t);
    let sw_tree = cart::build_tree(&train, 5, 16, &mut sw_scan);

    // "hardware" Gini scan: the same computation through the HLS kernel
    // interpreter (what the simulated accelerator executes)
    let kernel = parse_kernel(cart::KERNEL)?;
    let mut scans = 0u64;
    let mut hw_scan = |x: &[f64], y: &[f64], t: &[f64]| {
        scans += 1;
        let mut args = cart::bind_args(x, y, t);
        args.run(&kernel).expect("kernel executes");
        args.take_array("gini").expect("bound")
    };
    let hw_tree = cart::build_tree(&train, 5, 16, &mut hw_scan);

    let sw_acc = cart::accuracy(&sw_tree, &test);
    let hw_acc = cart::accuracy(&hw_tree, &test);
    println!(
        "software-scanned tree: {} nodes, accuracy {:.3}",
        sw_tree.size(),
        sw_acc
    );
    println!(
        "hardware-scanned tree: {} nodes, accuracy {:.3}",
        hw_tree.size(),
        hw_acc
    );
    println!("gini kernel invocations: {scans}");

    assert_eq!(sw_tree.size(), hw_tree.size());
    assert!((sw_acc - hw_acc).abs() < 1e-12, "trees must agree exactly");
    assert!(hw_acc > 0.85, "separable data should classify well");
    println!("\nhardware and software trees agree exactly.");
    Ok(())
}
