//! Out-of-core distributed sorting under the hybrid MPI+PGAS model —
//! the §2 argument, after Jose et al. [5].
//!
//! Run with: `cargo run --release --example exascale_sort`

use std::error::Error;

use ecoscale::apps::sort::{distributed_sort, generate, SortMode};

fn main() -> Result<(), Box<dyn Error>> {
    let keys = 200_000usize;
    let data = generate(keys, 7);
    println!("sorting {keys} keys across compute nodes (8 workers each):\n");
    println!(
        "{:>6} {:>10} {:>14} {:>12} {:>12} {:>9}",
        "nodes", "mode", "elapsed", "intra-node", "inter-node", "speedup"
    );
    for nodes in [2usize, 4, 8, 16] {
        let mpi = distributed_sort(&data, nodes, 8, SortMode::PureMpi, 1);
        let hybrid = distributed_sort(&data, nodes, 8, SortMode::Hybrid, 1);
        assert_eq!(mpi.sorted, hybrid.sorted);
        assert!(hybrid.sorted.windows(2).all(|w| w[0] <= w[1]));
        for (name, out, speedup) in [
            ("pure-mpi", &mpi, 1.0),
            ("hybrid", &hybrid, mpi.elapsed / hybrid.elapsed),
        ] {
            println!(
                "{:>6} {:>10} {:>14} {:>12} {:>12} {:>8.2}x",
                nodes,
                name,
                out.elapsed.to_string(),
                out.intra_node_bytes,
                out.inter_node_bytes,
                speedup
            );
        }
    }
    println!("\nevery run produced the identical, fully-sorted output.");
    Ok(())
}
