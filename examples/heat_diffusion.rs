//! Heat diffusion: the hierarchical-partitioning workload of Fig. 1.
//!
//! A 2-D Jacobi stencil is block-partitioned across a PGAS domain: each
//! worker owns a block, sweeps it (in hardware once the daemon warms up),
//! and exchanges halos with neighbours — cheap within a Compute Node,
//! costlier across nodes. The example prints where the bytes went.
//!
//! Run with: `cargo run --release --example heat_diffusion`

use std::error::Error;

use ecoscale::apps::stencil;
use ecoscale::mem::{CacheConfig, DramModel, GlobalAddr, UnimemSystem};
use ecoscale::noc::{Network, NetworkConfig, NodeId, TreeTopology};
use ecoscale::sim::Time;

fn main() -> Result<(), Box<dyn Error>> {
    // 16 workers: 4 per compute node × 4 nodes; each owns a 64x64 block.
    let workers_per_node = 4usize;
    let nodes = 4usize;
    let w = workers_per_node * nodes;
    let block = 64usize;
    let steps = 10usize;

    let topo = TreeTopology::new(&[workers_per_node, nodes]);
    let mut net = Network::new(topo, NetworkConfig::default());
    let mut mem = UnimemSystem::new(w, CacheConfig::l1_default(), DramModel::default());

    // each worker's grid lives in its own partition
    let mut grids: Vec<Vec<f64>> = (0..w).map(|i| stencil::generate(block, i as u64)).collect();

    let mut now = Time::ZERO;
    let halo = stencil::halo_bytes(block);
    for step in 0..steps {
        // 1. local sweeps (functionally real)
        for g in &mut grids {
            *g = stencil::reference_step(g, block);
        }
        // 2. halo exchange with ring neighbours through UNIMEM: a remote
        //    *read* of the neighbour's boundary row
        let mut latest = now;
        for i in 0..w {
            let left = (i + w - 1) % w;
            let right = (i + 1) % w;
            for nb in [left, right] {
                let a = mem.read(
                    &mut net,
                    now,
                    NodeId(i),
                    GlobalAddr::new(NodeId(nb), 0x1000),
                    halo,
                );
                latest = latest.max(a.completion);
            }
        }
        now = latest;
        if step % 3 == 0 {
            println!(
                "step {step:>2}: t = {:<12} interconnect bytes so far = {}",
                now.to_string(),
                net.stats().payload_bytes()
            );
        }
    }

    let stats = net.stats();
    println!("\nsweeps complete at t = {now}");
    println!("messages:          {}", stats.messages());
    println!("mean hops/message: {:.2}", stats.mean_hops());
    println!("bytes at level 0 (intra-node): {}", stats.bytes_at_level(0));
    println!("bytes at level 1 (inter-node): {}", stats.bytes_at_level(1));
    println!("interconnect energy: {}", stats.energy());

    // hierarchical placement keeps most halo traffic on the cheap level
    assert!(stats.bytes_at_level(0) > stats.bytes_at_level(1));

    // heat genuinely diffused
    let spread_before = stencil::generate(block, 0)
        .iter()
        .cloned()
        .fold(0.0f64, f64::max);
    let spread_after = grids[0].iter().cloned().fold(0.0f64, f64::max);
    println!("\nmax temperature: {spread_before:.2} -> {spread_after:.2}");
    assert!(spread_after < spread_before);
    Ok(())
}
