//! # ecoscale — a reproduction of the ECOSCALE exascale stack (DATE 2016)
//!
//! This facade crate re-exports the whole workspace so examples, tests and
//! downstream users can reach every layer from one dependency:
//!
//! * [`sim`] — deterministic discrete-event simulation substrate
//! * [`noc`] — hierarchical multi-layer interconnect models
//! * [`mem`] — UNIMEM global address space, caches, dual-stage SMMU
//! * [`fpga`] — reconfigurable fabric, partial reconfiguration, bitstreams
//! * [`hls`] — OpenCL-style kernel DSL, HLS estimation and DSE
//! * [`runtime`] — distributed command queues, schedulers, prediction models
//! * [`core`] — Workers, Compute Nodes, UNILOGIC, virtualization block
//! * [`apps`] — HPC workloads (stencil, GEMM, Monte-Carlo, CART, sort, ...)
//! * [`mod@bench`] — the experiment harness behind `exp_all` (E1-E15, A1-A4)
//!
//! See `README.md` for the architecture overview, `DESIGN.md` for the
//! system inventory and `EXPERIMENTS.md` for the reproduced figures.

pub use ecoscale_apps as apps;
pub use ecoscale_bench as bench;
pub use ecoscale_core as core;
pub use ecoscale_fpga as fpga;
pub use ecoscale_hls as hls;
pub use ecoscale_mem as mem;
pub use ecoscale_noc as noc;
pub use ecoscale_runtime as runtime;
pub use ecoscale_sim as sim;
