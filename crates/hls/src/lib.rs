//! The ECOSCALE high-level synthesis tool (FASTCUDA lineage, §4.3).
//!
//! The paper's HLS flow takes non-hardware-specific OpenCL-style kernels
//! and, "providing a way to specify performance and area constraints",
//! automatically explores "pipelining, loop unrolling, as well as data
//! storage and data-path partitioning and duplication" to produce an
//! accelerator module library — with *no hardware design experience
//! required from the programmer*. This crate implements that flow:
//!
//! * [`ir`] — the kernel intermediate representation (loops, array
//!   loads/stores, scalar dataflow),
//! * [`parser`] — a compact OpenCL-like textual kernel language,
//! * [`interp`] — a functional interpreter: the *same IR* that is costed
//!   is also executed, so accelerated results are bit-identical to
//!   software results (a property the test-suite leans on),
//! * [`transform`] — constant folding and algebraic simplification,
//! * [`analysis`] — trip counts, operation censuses, loop-carried
//!   dependence detection,
//! * [`estimate`] — area (CLB/BRAM/DSP), clock, initiation interval and
//!   latency estimation for a kernel under [`HlsDirectives`],
//! * [`dse`] — automated design-space exploration: enumerate directive
//!   combinations, prune to the Pareto front, pick the best implementation
//!   under a resource budget, and emit [`ecoscale_fpga::AcceleratorModule`]s.

pub mod analysis;
pub mod dse;
pub mod estimate;
pub mod interp;
pub mod ir;
pub mod parser;
pub mod transform;

pub use analysis::{KernelAnalysis, LoopInfo, OpCensus};
pub use dse::{DesignPoint, Explorer, ModuleLibrary};
pub use estimate::{DesignEstimate, EstimateError, HlsDirectives, OpCosts};
pub use interp::{ExecKernelError, KernelArgs, Value};
pub use ir::{BinOp, Expr, Kernel, Param, ParamKind, Stmt, UnOp};
pub use parser::{parse_kernel, ParseKernelError};
pub use transform::{fold_expr, fold_kernel};
