//! A compact OpenCL-like textual kernel language.
//!
//! Programmers hand the HLS tool plain, hardware-agnostic kernels:
//!
//! ```text
//! kernel vadd(in float a[], in float b[], out float c[], int n) {
//!     for (i in 0 .. n) {
//!         c[i] = a[i] + b[i];
//!     }
//! }
//! ```
//!
//! The grammar supports counted `for` loops, `if`/`else`, scalar
//! assignment, array indexing, the arithmetic/comparison/logical
//! operators, and the intrinsics `sqrt`, `exp`, `log`, `abs`, `floor`,
//! `min`, `max`, `select`.

use std::error::Error;
use std::fmt;

use crate::ir::{BinOp, Expr, Kernel, Param, ParamKind, Stmt, UnOp};

/// A parse failure with byte position context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseKernelError {
    message: String,
    offset: usize,
}

impl ParseKernelError {
    fn new(message: impl Into<String>, offset: usize) -> ParseKernelError {
        ParseKernelError {
            message: message.into(),
            offset,
        }
    }

    /// Byte offset in the source where the error was detected.
    pub fn offset(&self) -> usize {
        self.offset
    }
}

impl fmt::Display for ParseKernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl Error for ParseKernelError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Num(f64),
    Punct(&'static str),
}

#[derive(Debug, Clone)]
struct SpannedTok {
    tok: Tok,
    offset: usize,
}

fn lex(src: &str) -> Result<Vec<SpannedTok>, ParseKernelError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // line comments
        if c == '/' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        let start = i;
        if c.is_ascii_alphabetic() || c == '_' {
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
            {
                i += 1;
            }
            out.push(SpannedTok {
                tok: Tok::Ident(src[start..i].to_owned()),
                offset: start,
            });
            continue;
        }
        if c.is_ascii_digit()
            || (c == '.' && i + 1 < bytes.len() && (bytes[i + 1] as char).is_ascii_digit())
        {
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_digit()
                    || bytes[i] == b'.'
                    || bytes[i] == b'e'
                    || bytes[i] == b'E'
                    || ((bytes[i] == b'+' || bytes[i] == b'-')
                        && (bytes[i - 1] == b'e' || bytes[i - 1] == b'E')))
            {
                // ".." range operator must not be eaten by a number
                if bytes[i] == b'.' && i + 1 < bytes.len() && bytes[i + 1] == b'.' {
                    break;
                }
                i += 1;
            }
            let text = &src[start..i];
            let v: f64 = text
                .parse()
                .map_err(|_| ParseKernelError::new(format!("bad number `{text}`"), start))?;
            out.push(SpannedTok {
                tok: Tok::Num(v),
                offset: start,
            });
            continue;
        }
        // multi-char punctuation first
        const TWO: [&str; 7] = ["..", "<=", ">=", "==", "!=", "&&", "||"];
        let rest = &src[i..];
        if let Some(p) = TWO.iter().find(|p| rest.starts_with(**p)) {
            out.push(SpannedTok {
                tok: Tok::Punct(p),
                offset: start,
            });
            i += 2;
            continue;
        }
        const ONE: [&str; 15] = [
            "(", ")", "[", "]", "{", "}", ",", ";", "=", "+", "-", "*", "/", "%", "<",
        ];
        const ONE_MORE: [&str; 2] = [">", "!"];
        let one = ONE
            .iter()
            .chain(ONE_MORE.iter())
            .find(|p| rest.starts_with(**p));
        match one {
            Some(p) => {
                out.push(SpannedTok {
                    tok: Tok::Punct(p),
                    offset: start,
                });
                i += 1;
            }
            None => {
                return Err(ParseKernelError::new(
                    format!("unexpected character `{c}`"),
                    start,
                ))
            }
        }
    }
    Ok(out)
}

struct Parser {
    toks: Vec<SpannedTok>,
    pos: usize,
    src_len: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|t| &t.tok)
    }

    fn offset(&self) -> usize {
        self.toks.get(self.pos).map_or(self.src_len, |t| t.offset)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|t| t.tok.clone());
        self.pos += 1;
        t
    }

    fn err(&self, msg: impl Into<String>) -> ParseKernelError {
        ParseKernelError::new(msg, self.offset())
    }

    fn expect_punct(&mut self, p: &'static str) -> Result<(), ParseKernelError> {
        match self.peek() {
            Some(Tok::Punct(q)) if *q == p => {
                self.pos += 1;
                Ok(())
            }
            other => Err(self.err(format!("expected `{p}`, found {other:?}"))),
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseKernelError> {
        match self.bump() {
            Some(Tok::Ident(s)) => Ok(s),
            other => {
                self.pos -= 1;
                Err(self.err(format!("expected identifier, found {other:?}")))
            }
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseKernelError> {
        match self.peek() {
            Some(Tok::Ident(s)) if s == kw => {
                self.pos += 1;
                Ok(())
            }
            other => Err(self.err(format!("expected `{kw}`, found {other:?}"))),
        }
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if let Some(Tok::Punct(q)) = self.peek() {
            if *q == p {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if let Some(Tok::Ident(s)) = self.peek() {
            if s == kw {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn parse_kernel(&mut self) -> Result<Kernel, ParseKernelError> {
        self.expect_keyword("kernel")?;
        let name = self.expect_ident()?;
        self.expect_punct("(")?;
        let mut params = Vec::new();
        if !self.eat_punct(")") {
            loop {
                params.push(self.parse_param()?);
                if self.eat_punct(")") {
                    break;
                }
                self.expect_punct(",")?;
            }
        }
        let body = self.parse_block()?;
        if self.pos != self.toks.len() {
            return Err(self.err("trailing input after kernel body"));
        }
        Ok(Kernel::new(&name, params, body))
    }

    fn parse_param(&mut self) -> Result<Param, ParseKernelError> {
        let kind = if self.eat_keyword("in") {
            Some(ParamKind::ArrayIn)
        } else if self.eat_keyword("out") {
            Some(ParamKind::ArrayOut)
        } else if self.eat_keyword("inout") {
            Some(ParamKind::ArrayInOut)
        } else {
            None
        };
        // element / scalar type keyword
        if !(self.eat_keyword("float") || self.eat_keyword("int")) {
            return Err(self.err("expected `float` or `int`"));
        }
        let name = self.expect_ident()?;
        match kind {
            Some(k) => {
                self.expect_punct("[")?;
                self.expect_punct("]")?;
                Ok(Param::new(&name, k))
            }
            None => Ok(Param::new(&name, ParamKind::Scalar)),
        }
    }

    fn parse_block(&mut self) -> Result<Vec<Stmt>, ParseKernelError> {
        self.expect_punct("{")?;
        let mut stmts = Vec::new();
        while !self.eat_punct("}") {
            stmts.push(self.parse_stmt()?);
        }
        Ok(stmts)
    }

    fn parse_stmt(&mut self) -> Result<Stmt, ParseKernelError> {
        if self.eat_keyword("for") {
            self.expect_punct("(")?;
            let var = self.expect_ident()?;
            self.expect_keyword("in")?;
            let start = self.parse_expr()?;
            self.expect_punct("..")?;
            let end = self.parse_expr()?;
            self.expect_punct(")")?;
            let body = self.parse_block()?;
            return Ok(Stmt::For {
                var,
                start,
                end,
                body,
            });
        }
        if self.eat_keyword("if") {
            self.expect_punct("(")?;
            let cond = self.parse_expr()?;
            self.expect_punct(")")?;
            let then = self.parse_block()?;
            let els = if self.eat_keyword("else") {
                self.parse_block()?
            } else {
                Vec::new()
            };
            return Ok(Stmt::If { cond, then, els });
        }
        let name = self.expect_ident()?;
        if self.eat_punct("[") {
            let index = self.parse_expr()?;
            self.expect_punct("]")?;
            self.expect_punct("=")?;
            let value = self.parse_expr()?;
            self.expect_punct(";")?;
            return Ok(Stmt::Store {
                array: name,
                index,
                value,
            });
        }
        self.expect_punct("=")?;
        let value = self.parse_expr()?;
        self.expect_punct(";")?;
        Ok(Stmt::Assign { var: name, value })
    }

    fn parse_expr(&mut self) -> Result<Expr, ParseKernelError> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr, ParseKernelError> {
        let mut lhs = self.parse_and()?;
        while self.eat_punct("||") {
            let rhs = self.parse_and()?;
            lhs = Expr::bin(BinOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Expr, ParseKernelError> {
        let mut lhs = self.parse_cmp()?;
        while self.eat_punct("&&") {
            let rhs = self.parse_cmp()?;
            lhs = Expr::bin(BinOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_cmp(&mut self) -> Result<Expr, ParseKernelError> {
        let lhs = self.parse_add()?;
        let op = match self.peek() {
            Some(Tok::Punct("<")) => Some(BinOp::Lt),
            Some(Tok::Punct("<=")) => Some(BinOp::Le),
            Some(Tok::Punct(">")) => Some(BinOp::Gt),
            Some(Tok::Punct(">=")) => Some(BinOp::Ge),
            Some(Tok::Punct("==")) => Some(BinOp::Eq),
            Some(Tok::Punct("!=")) => None, // desugared below
            _ => return Ok(lhs),
        };
        match op {
            Some(op) => {
                self.pos += 1;
                let rhs = self.parse_add()?;
                Ok(Expr::bin(op, lhs, rhs))
            }
            None => {
                self.pos += 1;
                let rhs = self.parse_add()?;
                Ok(Expr::un(UnOp::Not, Expr::bin(BinOp::Eq, lhs, rhs)))
            }
        }
    }

    fn parse_add(&mut self) -> Result<Expr, ParseKernelError> {
        let mut lhs = self.parse_mul()?;
        loop {
            if self.eat_punct("+") {
                lhs = Expr::bin(BinOp::Add, lhs, self.parse_mul()?);
            } else if self.eat_punct("-") {
                lhs = Expr::bin(BinOp::Sub, lhs, self.parse_mul()?);
            } else {
                return Ok(lhs);
            }
        }
    }

    fn parse_mul(&mut self) -> Result<Expr, ParseKernelError> {
        let mut lhs = self.parse_unary()?;
        loop {
            if self.eat_punct("*") {
                lhs = Expr::bin(BinOp::Mul, lhs, self.parse_unary()?);
            } else if self.eat_punct("/") {
                lhs = Expr::bin(BinOp::Div, lhs, self.parse_unary()?);
            } else if self.eat_punct("%") {
                lhs = Expr::bin(BinOp::Rem, lhs, self.parse_unary()?);
            } else {
                return Ok(lhs);
            }
        }
    }

    fn parse_unary(&mut self) -> Result<Expr, ParseKernelError> {
        if self.eat_punct("-") {
            return Ok(Expr::un(UnOp::Neg, self.parse_unary()?));
        }
        if self.eat_punct("!") {
            return Ok(Expr::un(UnOp::Not, self.parse_unary()?));
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Expr, ParseKernelError> {
        match self.bump() {
            Some(Tok::Num(v)) => Ok(Expr::Const(v)),
            Some(Tok::Punct("(")) => {
                let e = self.parse_expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            Some(Tok::Ident(name)) => {
                // intrinsic call?
                let unary_intrinsic = match name.as_str() {
                    "sqrt" => Some(UnOp::Sqrt),
                    "exp" => Some(UnOp::Exp),
                    "log" => Some(UnOp::Log),
                    "abs" => Some(UnOp::Abs),
                    "floor" => Some(UnOp::Floor),
                    _ => None,
                };
                if let Some(op) = unary_intrinsic {
                    self.expect_punct("(")?;
                    let e = self.parse_expr()?;
                    self.expect_punct(")")?;
                    return Ok(Expr::un(op, e));
                }
                let binary_intrinsic = match name.as_str() {
                    "min" => Some(BinOp::Min),
                    "max" => Some(BinOp::Max),
                    _ => None,
                };
                if let Some(op) = binary_intrinsic {
                    self.expect_punct("(")?;
                    let a = self.parse_expr()?;
                    self.expect_punct(",")?;
                    let b = self.parse_expr()?;
                    self.expect_punct(")")?;
                    return Ok(Expr::bin(op, a, b));
                }
                if name == "select" {
                    self.expect_punct("(")?;
                    let cond = self.parse_expr()?;
                    self.expect_punct(",")?;
                    let then = self.parse_expr()?;
                    self.expect_punct(",")?;
                    let els = self.parse_expr()?;
                    self.expect_punct(")")?;
                    return Ok(Expr::Select {
                        cond: Box::new(cond),
                        then: Box::new(then),
                        els: Box::new(els),
                    });
                }
                if self.eat_punct("[") {
                    let idx = self.parse_expr()?;
                    self.expect_punct("]")?;
                    return Ok(Expr::load(&name, idx));
                }
                Ok(Expr::var(&name))
            }
            other => {
                self.pos -= 1;
                Err(self.err(format!("expected expression, found {other:?}")))
            }
        }
    }
}

/// Parses one kernel from source text.
///
/// # Errors
///
/// Returns a [`ParseKernelError`] with the byte offset of the first
/// problem.
///
/// # Example
///
/// ```
/// let k = ecoscale_hls::parse_kernel(
///     "kernel scale(in float a[], out float b[], float k, int n) {
///          for (i in 0 .. n) { b[i] = k * a[i]; }
///      }",
/// )?;
/// assert_eq!(k.name(), "scale");
/// # Ok::<(), ecoscale_hls::ParseKernelError>(())
/// ```
pub fn parse_kernel(src: &str) -> Result<Kernel, ParseKernelError> {
    let toks = lex(src)?;
    let mut p = Parser {
        toks,
        pos: 0,
        src_len: src.len(),
    };
    p.parse_kernel()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::ParamKind;

    #[test]
    fn parses_vadd() {
        let k = parse_kernel(
            "kernel vadd(in float a[], in float b[], out float c[], int n) {
                 for (i in 0 .. n) { c[i] = a[i] + b[i]; }
             }",
        )
        .unwrap();
        assert_eq!(k.name(), "vadd");
        assert_eq!(k.params().len(), 4);
        assert_eq!(k.param("a").unwrap().kind, ParamKind::ArrayIn);
        assert_eq!(k.param("n").unwrap().kind, ParamKind::Scalar);
        assert!(matches!(k.body()[0], Stmt::For { .. }));
    }

    #[test]
    fn parses_nested_loops_and_accumulator() {
        let k = parse_kernel(
            "kernel gemm(in float a[], in float b[], out float c[], int n) {
                 for (i in 0 .. n) {
                     for (j in 0 .. n) {
                         acc = 0.0;
                         for (kk in 0 .. n) {
                             acc = acc + a[i * n + kk] * b[kk * n + j];
                         }
                         c[i * n + j] = acc;
                     }
                 }
             }",
        )
        .unwrap();
        let mut fors = 0;
        k.visit_stmts(&mut |s, _| {
            if matches!(s, Stmt::For { .. }) {
                fors += 1;
            }
        });
        assert_eq!(fors, 3);
    }

    #[test]
    fn parses_if_else_and_comparisons() {
        let k = parse_kernel(
            "kernel clamp(inout float a[], float lo, float hi, int n) {
                 for (i in 0 .. n) {
                     if (a[i] < lo) { a[i] = lo; }
                     else { if (a[i] >= hi) { a[i] = hi; } }
                 }
             }",
        )
        .unwrap();
        assert_eq!(k.param("a").unwrap().kind, ParamKind::ArrayInOut);
    }

    #[test]
    fn parses_intrinsics() {
        let k = parse_kernel(
            "kernel mix(in float a[], out float b[], int n) {
                 for (i in 0 .. n) {
                     b[i] = select(a[i] > 0.0, sqrt(a[i]), exp(min(a[i], 0.0)) + log(abs(a[i]) + 1.0));
                 }
             }",
        )
        .unwrap();
        assert_eq!(k.name(), "mix");
    }

    #[test]
    fn operator_precedence() {
        let k = parse_kernel(
            "kernel p(out float o[], float a, float b, float c) {
                 o[0] = a + b * c;
             }",
        )
        .unwrap();
        match &k.body()[0] {
            Stmt::Store { value, .. } => match value {
                Expr::Binary(BinOp::Add, lhs, rhs) => {
                    assert_eq!(**lhs, Expr::var("a"));
                    assert!(matches!(**rhs, Expr::Binary(BinOp::Mul, _, _)));
                }
                other => panic!("wrong tree: {other:?}"),
            },
            other => panic!("wrong stmt: {other:?}"),
        }
    }

    #[test]
    fn unary_and_not_equal() {
        let k = parse_kernel(
            "kernel u(out float o[], float a) {
                 o[0] = -a;
                 o[1] = select(a != 0.0, 1.0 / a, 0.0);
             }",
        )
        .unwrap();
        assert_eq!(k.body().len(), 2);
    }

    #[test]
    fn comments_and_scientific_numbers() {
        let k = parse_kernel(
            "// black-scholes style constant
             kernel c(out float o[]) {
                 o[0] = 2.5e-2 + 1.0E3; // inline comment
             }",
        )
        .unwrap();
        match &k.body()[0] {
            Stmt::Store { value, .. } => match value {
                Expr::Binary(BinOp::Add, a, b) => {
                    assert_eq!(**a, Expr::Const(2.5e-2));
                    assert_eq!(**b, Expr::Const(1.0e3));
                }
                other => panic!("{other:?}"),
            },
            _ => unreachable!(),
        }
    }

    #[test]
    fn range_dots_not_eaten_by_number() {
        let k = parse_kernel(
            "kernel r(out float o[]) {
                 for (i in 0 .. 4) { o[i] = 1.0; }
                 for (j in 0..4) { o[j] = 2.0; }
             }",
        )
        .unwrap();
        assert_eq!(k.body().len(), 2);
    }

    #[test]
    fn error_reports_offset() {
        let err = parse_kernel("kernel bad( {").unwrap_err();
        assert!(err.offset() > 0);
        assert!(err.to_string().contains("parse error"));
    }

    #[test]
    fn errors_on_garbage() {
        assert!(parse_kernel("kernel k() { x = $; }").is_err());
        assert!(parse_kernel("notakernel k() {}").is_err());
        assert!(parse_kernel("kernel k() {} extra").is_err());
        assert!(parse_kernel("kernel k(badqual float a[]) {}").is_err());
    }

    #[test]
    fn empty_body_and_no_params() {
        let k = parse_kernel("kernel nop() {}").unwrap();
        assert!(k.body().is_empty());
        assert!(k.params().is_empty());
    }
}
