//! IR transformations: constant folding and algebraic simplification.
//!
//! The first pass every HLS frontend runs: fold constant subexpressions,
//! strip arithmetic identities (`x·1`, `x+0`, `x/1`), and resolve
//! constant-condition selects. Fewer IR operators means smaller
//! estimated datapaths — the estimator charges what the folded kernel
//! actually contains — while the interpreter guarantees the meaning is
//! unchanged (tested below by running both versions).

use crate::ir::{BinOp, Expr, Kernel, Stmt, UnOp};

/// Folds constants and algebraic identities in an expression.
pub fn fold_expr(e: &Expr) -> Expr {
    match e {
        Expr::Const(_) | Expr::Var(_) => e.clone(),
        Expr::Load { array, index } => Expr::Load {
            array: array.clone(),
            index: Box::new(fold_expr(index)),
        },
        Expr::Unary(op, a) => {
            let a = fold_expr(a);
            if let Expr::Const(v) = a {
                return Expr::Const(match op {
                    UnOp::Neg => -v,
                    UnOp::Sqrt => v.sqrt(),
                    UnOp::Exp => v.exp(),
                    UnOp::Log => v.ln(),
                    UnOp::Abs => v.abs(),
                    UnOp::Floor => v.floor(),
                    UnOp::Not => {
                        if v != 0.0 {
                            0.0
                        } else {
                            1.0
                        }
                    }
                });
            }
            Expr::Unary(*op, Box::new(a))
        }
        Expr::Binary(op, a, b) => {
            let a = fold_expr(a);
            let b = fold_expr(b);
            if let (Expr::Const(x), Expr::Const(y)) = (&a, &b) {
                let (x, y) = (*x, *y);
                return Expr::Const(match op {
                    BinOp::Add => x + y,
                    BinOp::Sub => x - y,
                    BinOp::Mul => x * y,
                    BinOp::Div => x / y,
                    BinOp::Min => x.min(y),
                    BinOp::Max => x.max(y),
                    BinOp::Rem => x % y,
                    BinOp::Lt => (x < y) as u8 as f64,
                    BinOp::Le => (x <= y) as u8 as f64,
                    BinOp::Gt => (x > y) as u8 as f64,
                    BinOp::Ge => (x >= y) as u8 as f64,
                    BinOp::Eq => (x == y) as u8 as f64,
                    BinOp::And => (x != 0.0 && y != 0.0) as u8 as f64,
                    BinOp::Or => (x != 0.0 || y != 0.0) as u8 as f64,
                });
            }
            // algebraic identities (floating-point-safe subset: x·0 is
            // NOT folded because x could be NaN/inf in general; the
            // kernel language targets well-behaved numeric data, but we
            // stay conservative anyway)
            match (op, &a, &b) {
                (BinOp::Add, x, Expr::Const(c)) | (BinOp::Add, Expr::Const(c), x) if *c == 0.0 => {
                    return x.clone()
                }
                (BinOp::Sub, x, Expr::Const(c)) if *c == 0.0 => return x.clone(),
                (BinOp::Mul, x, Expr::Const(c)) | (BinOp::Mul, Expr::Const(c), x) if *c == 1.0 => {
                    return x.clone()
                }
                (BinOp::Div, x, Expr::Const(c)) if *c == 1.0 => return x.clone(),
                _ => {}
            }
            Expr::Binary(*op, Box::new(a), Box::new(b))
        }
        Expr::Select { cond, then, els } => {
            let cond = fold_expr(cond);
            if let Expr::Const(c) = cond {
                return if c != 0.0 {
                    fold_expr(then)
                } else {
                    fold_expr(els)
                };
            }
            Expr::Select {
                cond: Box::new(cond),
                then: Box::new(fold_expr(then)),
                els: Box::new(fold_expr(els)),
            }
        }
    }
}

fn fold_block(stmts: &[Stmt]) -> Vec<Stmt> {
    stmts
        .iter()
        .map(|s| match s {
            Stmt::Assign { var, value } => Stmt::Assign {
                var: var.clone(),
                value: fold_expr(value),
            },
            Stmt::Store {
                array,
                index,
                value,
            } => Stmt::Store {
                array: array.clone(),
                index: fold_expr(index),
                value: fold_expr(value),
            },
            Stmt::For {
                var,
                start,
                end,
                body,
            } => Stmt::For {
                var: var.clone(),
                start: fold_expr(start),
                end: fold_expr(end),
                body: fold_block(body),
            },
            Stmt::If { cond, then, els } => {
                let cond = fold_expr(cond);
                if let Expr::Const(c) = cond {
                    // statically-resolved branch: keep only the taken side
                    // (wrapped in an always-true If so one statement maps
                    // to one statement)
                    let taken = if c != 0.0 { then } else { els };
                    return Stmt::If {
                        cond: Expr::Const(1.0),
                        then: fold_block(taken),
                        els: Vec::new(),
                    };
                }
                Stmt::If {
                    cond,
                    then: fold_block(then),
                    els: fold_block(els),
                }
            }
        })
        .collect()
}

/// Returns a semantically identical kernel with constants folded.
///
/// # Example
///
/// ```
/// use ecoscale_hls::{fold_kernel, parse_kernel, KernelAnalysis};
/// use std::collections::HashMap;
///
/// let k = parse_kernel(
///     "kernel f(in float a[], out float b[], int n) {
///          for (i in 0 .. n) { b[i] = a[i] * (2.0 * 3.0) + 0.0; }
///      }",
/// )?;
/// let folded = fold_kernel(&k);
/// let hints = HashMap::from([("n".to_string(), 8.0)]);
/// let before = KernelAnalysis::analyze(&k, &hints);
/// let after = KernelAnalysis::analyze(&folded, &hints);
/// // 2.0*3.0 folded, +0.0 stripped: two ops gone
/// assert!(after.hot_loop().unwrap().body_census.flops()
///     < before.hot_loop().unwrap().body_census.flops());
/// # Ok::<(), ecoscale_hls::ParseKernelError>(())
/// ```
pub fn fold_kernel(kernel: &Kernel) -> Kernel {
    Kernel::new(
        kernel.name(),
        kernel.params().to_vec(),
        fold_block(kernel.body()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::KernelArgs;
    use crate::parser::parse_kernel;

    fn assert_same_behaviour(src: &str, n: usize) {
        let k = parse_kernel(src).unwrap();
        let folded = fold_kernel(&k);
        let mk_args = || {
            let mut args = KernelArgs::new();
            args.bind_array("a", (0..n).map(|i| i as f64 * 0.37 - 1.0).collect())
                .bind_array("b", vec![0.0; n])
                .bind_scalar("n", n as f64);
            args
        };
        let mut a1 = mk_args();
        a1.run(&k).unwrap();
        let mut a2 = mk_args();
        a2.run(&folded).unwrap();
        assert_eq!(a1.array("b").unwrap(), a2.array("b").unwrap());
    }

    #[test]
    fn folds_constant_subexpressions() {
        let e = fold_expr(&Expr::bin(
            BinOp::Mul,
            Expr::Const(2.0),
            Expr::bin(BinOp::Add, Expr::Const(3.0), Expr::Const(4.0)),
        ));
        assert_eq!(e, Expr::Const(14.0));
    }

    #[test]
    fn folds_unary_and_intrinsics() {
        assert_eq!(
            fold_expr(&Expr::un(UnOp::Sqrt, Expr::Const(9.0))),
            Expr::Const(3.0)
        );
        assert_eq!(
            fold_expr(&Expr::un(UnOp::Not, Expr::Const(0.0))),
            Expr::Const(1.0)
        );
        assert_eq!(
            fold_expr(&Expr::un(UnOp::Neg, Expr::Const(2.5))),
            Expr::Const(-2.5)
        );
    }

    #[test]
    fn strips_identities() {
        let x = Expr::var("x");
        assert_eq!(
            fold_expr(&Expr::bin(BinOp::Add, x.clone(), Expr::Const(0.0))),
            x
        );
        assert_eq!(
            fold_expr(&Expr::bin(BinOp::Mul, Expr::Const(1.0), x.clone())),
            x
        );
        assert_eq!(
            fold_expr(&Expr::bin(BinOp::Div, x.clone(), Expr::Const(1.0))),
            x
        );
        assert_eq!(
            fold_expr(&Expr::bin(BinOp::Sub, x.clone(), Expr::Const(0.0))),
            x
        );
        // x*0 is NOT folded (conservative)
        let x0 = Expr::bin(BinOp::Mul, x.clone(), Expr::Const(0.0));
        assert_eq!(fold_expr(&x0), x0);
    }

    #[test]
    fn resolves_constant_selects() {
        let s = Expr::Select {
            cond: Box::new(Expr::bin(BinOp::Lt, Expr::Const(1.0), Expr::Const(2.0))),
            then: Box::new(Expr::var("a")),
            els: Box::new(Expr::var("b")),
        };
        assert_eq!(fold_expr(&s), Expr::var("a"));
    }

    #[test]
    fn folded_kernel_behaves_identically() {
        assert_same_behaviour(
            "kernel f(in float a[], out float b[], int n) {
                 for (i in 0 .. n) {
                     b[i] = a[i] * (2.0 * 3.0) + (1.0 - 1.0);
                     if (1.0 < 2.0) { b[i] = b[i] + 1.0; } else { b[i] = 0.0; }
                 }
             }",
            16,
        );
    }

    #[test]
    fn folding_reduces_estimated_area() {
        use crate::estimate::{estimate, HlsDirectives, OpCosts};
        use std::collections::HashMap;
        let k = parse_kernel(
            "kernel f(in float a[], out float b[], int n) {
                 for (i in 0 .. n) {
                     b[i] = a[i] * sqrt(4.0) + exp(0.0) - 1.0 + 0.0;
                 }
             }",
        )
        .unwrap();
        let folded = fold_kernel(&k);
        let hints = HashMap::from([("n".to_owned(), 1024.0)]);
        let before = estimate(&k, &hints, HlsDirectives::default(), &OpCosts::default()).unwrap();
        let after = estimate(
            &folded,
            &hints,
            HlsDirectives::default(),
            &OpCosts::default(),
        )
        .unwrap();
        assert!(
            after.resources.total() < before.resources.total(),
            "{} !< {}",
            after.resources.total(),
            before.resources.total()
        );
    }

    #[test]
    fn loop_bounds_fold_too() {
        let k = parse_kernel(
            "kernel f(out float b[]) {
                 for (i in (1.0 - 1.0) .. (2.0 * 4.0)) { b[i] = 1.0; }
             }",
        )
        .unwrap();
        let folded = fold_kernel(&k);
        match &folded.body()[0] {
            Stmt::For { start, end, .. } => {
                assert_eq!(*start, Expr::Const(0.0));
                assert_eq!(*end, Expr::Const(8.0));
            }
            other => panic!("{other:?}"),
        }
    }
}
