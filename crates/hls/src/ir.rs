//! The kernel intermediate representation.
//!
//! A [`Kernel`] is a named function over array and scalar parameters whose
//! body is a tree of counted loops, conditional blocks, scalar
//! assignments, and array stores. This is the common representation for
//! the parser, interpreter, cost estimator and design-space explorer —
//! one definition of the computation, consumed four ways.

use core::fmt;

/// How a kernel parameter is used.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamKind {
    /// Read-only array (`in float a[]`).
    ArrayIn,
    /// Write-only array (`out float a[]`).
    ArrayOut,
    /// Read-write array (`inout float a[]`).
    ArrayInOut,
    /// Scalar argument (`float x` / `int n`).
    Scalar,
}

/// A kernel parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Usage kind.
    pub kind: ParamKind,
}

impl Param {
    /// Creates a parameter.
    pub fn new(name: &str, kind: ParamKind) -> Param {
        Param {
            name: name.to_owned(),
            kind,
        }
    }

    /// Returns `true` for the array kinds.
    pub fn is_array(&self) -> bool {
        !matches!(self.kind, ParamKind::Scalar)
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Less-than (yields 0.0 / 1.0).
    Lt,
    /// Less-or-equal.
    Le,
    /// Greater-than.
    Gt,
    /// Greater-or-equal.
    Ge,
    /// Equality.
    Eq,
    /// Logical and (non-zero = true).
    And,
    /// Logical or.
    Or,
    /// Remainder.
    Rem,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Min => "min",
            BinOp::Max => "max",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Eq => "==",
            BinOp::And => "&&",
            BinOp::Or => "||",
            BinOp::Rem => "%",
        })
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Negation.
    Neg,
    /// Square root.
    Sqrt,
    /// Natural exponential.
    Exp,
    /// Natural logarithm.
    Log,
    /// Absolute value.
    Abs,
    /// Floor.
    Floor,
    /// Logical not.
    Not,
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            UnOp::Neg => "-",
            UnOp::Sqrt => "sqrt",
            UnOp::Exp => "exp",
            UnOp::Log => "log",
            UnOp::Abs => "abs",
            UnOp::Floor => "floor",
            UnOp::Not => "!",
        })
    }
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal.
    Const(f64),
    /// A scalar parameter, local, or loop variable.
    Var(String),
    /// An array element read.
    Load {
        /// Array name.
        array: String,
        /// Element index.
        index: Box<Expr>,
    },
    /// A unary operation.
    Unary(UnOp, Box<Expr>),
    /// A binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// `select(cond, a, b)`: `a` if `cond` is non-zero else `b`.
    Select {
        /// Condition.
        cond: Box<Expr>,
        /// Taken when the condition is non-zero.
        then: Box<Expr>,
        /// Taken otherwise.
        els: Box<Expr>,
    },
}

impl Expr {
    /// Convenience constructor: variable reference.
    pub fn var(name: &str) -> Expr {
        Expr::Var(name.to_owned())
    }

    /// Convenience constructor: array load.
    pub fn load(array: &str, index: Expr) -> Expr {
        Expr::Load {
            array: array.to_owned(),
            index: Box::new(index),
        }
    }

    /// Convenience constructor: binary op.
    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary(op, Box::new(lhs), Box::new(rhs))
    }

    /// Convenience constructor: unary op.
    pub fn un(op: UnOp, e: Expr) -> Expr {
        Expr::Unary(op, Box::new(e))
    }

    /// Visits every sub-expression (including `self`), pre-order.
    pub fn visit<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        f(self);
        match self {
            Expr::Const(_) | Expr::Var(_) => {}
            Expr::Load { index, .. } => index.visit(f),
            Expr::Unary(_, e) => e.visit(f),
            Expr::Binary(_, a, b) => {
                a.visit(f);
                b.visit(f);
            }
            Expr::Select { cond, then, els } => {
                cond.visit(f);
                then.visit(f);
                els.visit(f);
            }
        }
    }
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Scalar assignment (declares the variable on first use).
    Assign {
        /// Target variable.
        var: String,
        /// Right-hand side.
        value: Expr,
    },
    /// Array element store.
    Store {
        /// Target array.
        array: String,
        /// Element index.
        index: Expr,
        /// Stored value.
        value: Expr,
    },
    /// Counted loop over `[start, end)`.
    For {
        /// Loop variable.
        var: String,
        /// Inclusive start.
        start: Expr,
        /// Exclusive end.
        end: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// Conditional block.
    If {
        /// Condition (non-zero = true).
        cond: Expr,
        /// Then-branch.
        then: Vec<Stmt>,
        /// Else-branch (possibly empty).
        els: Vec<Stmt>,
    },
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(v) => {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            Expr::Var(name) => f.write_str(name),
            Expr::Load { array, index } => write!(f, "{array}[{index}]"),
            Expr::Unary(op, a) => match op {
                UnOp::Neg => write!(f, "(-{a})"),
                UnOp::Not => write!(f, "(!{a})"),
                UnOp::Sqrt | UnOp::Exp | UnOp::Log | UnOp::Abs | UnOp::Floor => {
                    write!(f, "{op}({a})")
                }
            },
            Expr::Binary(op, a, b) => match op {
                BinOp::Min | BinOp::Max => write!(f, "{op}({a}, {b})"),
                _ => write!(f, "({a} {op} {b})"),
            },
            Expr::Select { cond, then, els } => write!(f, "select({cond}, {then}, {els})"),
        }
    }
}

fn write_block(f: &mut fmt::Formatter<'_>, stmts: &[Stmt], indent: usize) -> fmt::Result {
    let pad = "    ".repeat(indent);
    for s in stmts {
        match s {
            Stmt::Assign { var, value } => writeln!(f, "{pad}{var} = {value};")?,
            Stmt::Store {
                array,
                index,
                value,
            } => writeln!(f, "{pad}{array}[{index}] = {value};")?,
            Stmt::For {
                var,
                start,
                end,
                body,
            } => {
                writeln!(f, "{pad}for ({var} in {start} .. {end}) {{")?;
                write_block(f, body, indent + 1)?;
                writeln!(f, "{pad}}}")?;
            }
            Stmt::If { cond, then, els } => {
                writeln!(f, "{pad}if ({cond}) {{")?;
                write_block(f, then, indent + 1)?;
                if els.is_empty() {
                    writeln!(f, "{pad}}}")?;
                } else {
                    writeln!(f, "{pad}}} else {{")?;
                    write_block(f, els, indent + 1)?;
                    writeln!(f, "{pad}}}")?;
                }
            }
        }
    }
    Ok(())
}

impl fmt::Display for Kernel {
    /// Pretty-prints the kernel as parseable source: for every kernel
    /// `k`, `parse_kernel(&k.to_string())` reproduces `k` up to
    /// redundant parentheses (the round-trip property test lives in
    /// `tests/properties.rs`).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "kernel {}(", self.name)?;
        for (i, p) in self.params.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            match p.kind {
                ParamKind::ArrayIn => write!(f, "in float {}[]", p.name)?,
                ParamKind::ArrayOut => write!(f, "out float {}[]", p.name)?,
                ParamKind::ArrayInOut => write!(f, "inout float {}[]", p.name)?,
                ParamKind::Scalar => write!(f, "float {}", p.name)?,
            }
        }
        writeln!(f, ") {{")?;
        write_block(f, &self.body, 1)?;
        write!(f, "}}")
    }
}

/// A synthesizable kernel.
///
/// # Example
///
/// Building `c[i] = a[i] + b[i]` programmatically:
///
/// ```
/// use ecoscale_hls::ir::{BinOp, Expr, Kernel, Param, ParamKind, Stmt};
///
/// let body = vec![Stmt::For {
///     var: "i".into(),
///     start: Expr::Const(0.0),
///     end: Expr::var("n"),
///     body: vec![Stmt::Store {
///         array: "c".into(),
///         index: Expr::var("i"),
///         value: Expr::bin(
///             BinOp::Add,
///             Expr::load("a", Expr::var("i")),
///             Expr::load("b", Expr::var("i")),
///         ),
///     }],
/// }];
/// let k = Kernel::new(
///     "vadd",
///     vec![
///         Param::new("a", ParamKind::ArrayIn),
///         Param::new("b", ParamKind::ArrayIn),
///         Param::new("c", ParamKind::ArrayOut),
///         Param::new("n", ParamKind::Scalar),
///     ],
///     body,
/// );
/// assert_eq!(k.name(), "vadd");
/// assert_eq!(k.arrays().count(), 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Kernel {
    name: String,
    params: Vec<Param>,
    body: Vec<Stmt>,
}

impl Kernel {
    /// Creates a kernel.
    ///
    /// # Panics
    ///
    /// Panics if two parameters share a name.
    pub fn new(name: &str, params: Vec<Param>, body: Vec<Stmt>) -> Kernel {
        for (i, p) in params.iter().enumerate() {
            for q in &params[..i] {
                assert!(p.name != q.name, "duplicate parameter `{}`", p.name);
            }
        }
        Kernel {
            name: name.to_owned(),
            params,
            body,
        }
    }

    /// The kernel name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All parameters in declaration order.
    pub fn params(&self) -> &[Param] {
        &self.params
    }

    /// The body statements.
    pub fn body(&self) -> &[Stmt] {
        &self.body
    }

    /// Iterates over array parameters.
    pub fn arrays(&self) -> impl Iterator<Item = &Param> + '_ {
        self.params.iter().filter(|p| p.is_array())
    }

    /// Iterates over scalar parameters.
    pub fn scalars(&self) -> impl Iterator<Item = &Param> + '_ {
        self.params.iter().filter(|p| !p.is_array())
    }

    /// Looks up a parameter by name.
    pub fn param(&self, name: &str) -> Option<&Param> {
        self.params.iter().find(|p| p.name == name)
    }

    /// Visits every statement in the body, pre-order, with its loop depth.
    pub fn visit_stmts<'a>(&'a self, f: &mut impl FnMut(&'a Stmt, u32)) {
        fn walk<'a>(stmts: &'a [Stmt], depth: u32, f: &mut impl FnMut(&'a Stmt, u32)) {
            for s in stmts {
                f(s, depth);
                match s {
                    Stmt::For { body, .. } => walk(body, depth + 1, f),
                    Stmt::If { then, els, .. } => {
                        walk(then, depth, f);
                        walk(els, depth, f);
                    }
                    _ => {}
                }
            }
        }
        walk(&self.body, 0, f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vadd() -> Kernel {
        Kernel::new(
            "vadd",
            vec![
                Param::new("a", ParamKind::ArrayIn),
                Param::new("b", ParamKind::ArrayIn),
                Param::new("c", ParamKind::ArrayOut),
                Param::new("n", ParamKind::Scalar),
            ],
            vec![Stmt::For {
                var: "i".into(),
                start: Expr::Const(0.0),
                end: Expr::var("n"),
                body: vec![Stmt::Store {
                    array: "c".into(),
                    index: Expr::var("i"),
                    value: Expr::bin(
                        BinOp::Add,
                        Expr::load("a", Expr::var("i")),
                        Expr::load("b", Expr::var("i")),
                    ),
                }],
            }],
        )
    }

    #[test]
    fn kernel_accessors() {
        let k = vadd();
        assert_eq!(k.name(), "vadd");
        assert_eq!(k.params().len(), 4);
        assert_eq!(k.arrays().count(), 3);
        assert_eq!(k.scalars().count(), 1);
        assert_eq!(k.param("c").unwrap().kind, ParamKind::ArrayOut);
        assert!(k.param("zzz").is_none());
        assert!(k.param("a").unwrap().is_array());
        assert!(!k.param("n").unwrap().is_array());
    }

    #[test]
    #[should_panic(expected = "duplicate parameter")]
    fn duplicate_params_rejected() {
        Kernel::new(
            "k",
            vec![
                Param::new("x", ParamKind::Scalar),
                Param::new("x", ParamKind::Scalar),
            ],
            vec![],
        );
    }

    #[test]
    fn visit_stmts_reports_depth() {
        let k = vadd();
        let mut depths = Vec::new();
        k.visit_stmts(&mut |s, d| {
            depths.push((matches!(s, Stmt::For { .. }), d));
        });
        assert_eq!(depths, vec![(true, 0), (false, 1)]);
    }

    #[test]
    fn expr_visit_counts_nodes() {
        let e = Expr::bin(
            BinOp::Mul,
            Expr::un(UnOp::Sqrt, Expr::var("x")),
            Expr::Select {
                cond: Box::new(Expr::Const(1.0)),
                then: Box::new(Expr::Const(2.0)),
                els: Box::new(Expr::load("a", Expr::Const(0.0))),
            },
        );
        let mut n = 0;
        e.visit(&mut |_| n += 1);
        assert_eq!(n, 8);
    }

    #[test]
    fn display_round_trips_through_parser() {
        let src = "kernel f(in float a[], out float b[], float x, float n) {
            acc = 0.0;
            for (i in 0.0 .. n) {
                if ((a[i] > x)) {
                    acc = (acc + sqrt(a[i]));
                } else {
                    b[i] = select((a[i] == 0.0), 1.0, (a[i] / x));
                }
                b[i] = max(acc, min(a[i], x));
            }
        }";
        let k = crate::parser::parse_kernel(src).unwrap();
        let printed = k.to_string();
        let reparsed = crate::parser::parse_kernel(&printed)
            .unwrap_or_else(|e| panic!("printed source did not parse: {e}\n{printed}"));
        assert_eq!(k, reparsed);
    }

    #[test]
    fn display_formats_structure() {
        let k = vadd();
        let s = k.to_string();
        assert!(s.starts_with("kernel vadd(in float a[], in float b[], out float c[], float n)"));
        assert!(s.contains("for (i in 0.0 .. n) {"));
        assert!(s.contains("c[i] = (a[i] + b[i]);"));
        assert!(s.ends_with('}'));
    }

    #[test]
    fn op_display() {
        assert_eq!(BinOp::Add.to_string(), "+");
        assert_eq!(BinOp::Le.to_string(), "<=");
        assert_eq!(UnOp::Sqrt.to_string(), "sqrt");
    }
}
