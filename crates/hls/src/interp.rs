//! The functional kernel interpreter.
//!
//! The same IR the estimator costs is executed here, so a kernel run "in
//! hardware" by the simulation produces exactly the bytes the software
//! path produces. Array arguments are `Vec<f64>` buffers bound by name;
//! scalars are `f64`.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::ir::{BinOp, Expr, Kernel, ParamKind, Stmt, UnOp};

/// A runtime value (everything is numeric in the kernel language).
pub type Value = f64;

/// Errors raised during kernel execution.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecKernelError {
    /// An argument required by the signature was not bound.
    MissingArg {
        /// Parameter name.
        name: String,
    },
    /// A name was used but never defined.
    UnknownName {
        /// The offending name.
        name: String,
    },
    /// An array index fell outside the bound buffer.
    IndexOutOfBounds {
        /// Array name.
        array: String,
        /// The evaluated index.
        index: i64,
        /// The buffer length.
        len: usize,
    },
    /// A write targeted a read-only (`in`) array.
    WriteToInput {
        /// Array name.
        array: String,
    },
}

impl fmt::Display for ExecKernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecKernelError::MissingArg { name } => write!(f, "argument `{name}` not bound"),
            ExecKernelError::UnknownName { name } => write!(f, "unknown name `{name}`"),
            ExecKernelError::IndexOutOfBounds { array, index, len } => {
                write!(f, "index {index} out of bounds for `{array}` (len {len})")
            }
            ExecKernelError::WriteToInput { array } => {
                write!(f, "kernel writes read-only input `{array}`")
            }
        }
    }
}

impl Error for ExecKernelError {}

/// Argument bindings for one kernel invocation.
///
/// # Example
///
/// ```
/// use ecoscale_hls::{parse_kernel, KernelArgs};
///
/// let k = parse_kernel(
///     "kernel scale(in float a[], out float b[], float f, int n) {
///          for (i in 0 .. n) { b[i] = f * a[i]; }
///      }",
/// )?;
/// let mut args = KernelArgs::new();
/// args.bind_array("a", vec![1.0, 2.0, 3.0]);
/// args.bind_array("b", vec![0.0; 3]);
/// args.bind_scalar("f", 10.0);
/// args.bind_scalar("n", 3.0);
/// args.run(&k)?;
/// assert_eq!(args.array("b").unwrap(), &[10.0, 20.0, 30.0]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct KernelArgs {
    arrays: HashMap<String, Vec<Value>>,
    scalars: HashMap<String, Value>,
}

impl KernelArgs {
    /// Creates an empty binding set.
    pub fn new() -> KernelArgs {
        KernelArgs::default()
    }

    /// Binds an array buffer, replacing any previous binding.
    pub fn bind_array(&mut self, name: &str, data: Vec<Value>) -> &mut Self {
        self.arrays.insert(name.to_owned(), data);
        self
    }

    /// Binds a scalar.
    pub fn bind_scalar(&mut self, name: &str, v: Value) -> &mut Self {
        self.scalars.insert(name.to_owned(), v);
        self
    }

    /// Reads back an array.
    pub fn array(&self, name: &str) -> Option<&[Value]> {
        self.arrays.get(name).map(|v| v.as_slice())
    }

    /// Reads back a scalar binding.
    pub fn scalar(&self, name: &str) -> Option<Value> {
        self.scalars.get(name).copied()
    }

    /// Takes ownership of an array buffer.
    pub fn take_array(&mut self, name: &str) -> Option<Vec<Value>> {
        self.arrays.remove(name)
    }

    /// Runs `kernel` against these bindings, mutating the bound output
    /// arrays in place.
    ///
    /// # Errors
    ///
    /// Any [`ExecKernelError`].
    pub fn run(&mut self, kernel: &Kernel) -> Result<(), ExecKernelError> {
        // check bindings
        for p in kernel.params() {
            let bound = if p.is_array() {
                self.arrays.contains_key(&p.name)
            } else {
                self.scalars.contains_key(&p.name)
            };
            if !bound {
                return Err(ExecKernelError::MissingArg {
                    name: p.name.clone(),
                });
            }
        }
        let read_only: Vec<String> = kernel
            .params()
            .iter()
            .filter(|p| p.kind == ParamKind::ArrayIn)
            .map(|p| p.name.clone())
            .collect();
        let mut env = Env {
            arrays: &mut self.arrays,
            locals: self.scalars.clone(),
            read_only,
        };
        exec_block(kernel.body(), &mut env)
    }
}

struct Env<'a> {
    arrays: &'a mut HashMap<String, Vec<Value>>,
    locals: HashMap<String, Value>,
    read_only: Vec<String>,
}

fn truthy(v: Value) -> bool {
    v != 0.0
}

fn eval(e: &Expr, env: &Env<'_>) -> Result<Value, ExecKernelError> {
    match e {
        Expr::Const(v) => Ok(*v),
        Expr::Var(name) => env
            .locals
            .get(name)
            .copied()
            .ok_or_else(|| ExecKernelError::UnknownName { name: name.clone() }),
        Expr::Load { array, index } => {
            let idx = eval(index, env)? as i64;
            let buf = env
                .arrays
                .get(array)
                .ok_or_else(|| ExecKernelError::UnknownName {
                    name: array.clone(),
                })?;
            if idx < 0 || idx as usize >= buf.len() {
                return Err(ExecKernelError::IndexOutOfBounds {
                    array: array.clone(),
                    index: idx,
                    len: buf.len(),
                });
            }
            Ok(buf[idx as usize])
        }
        Expr::Unary(op, a) => {
            let v = eval(a, env)?;
            Ok(match op {
                UnOp::Neg => -v,
                UnOp::Sqrt => v.sqrt(),
                UnOp::Exp => v.exp(),
                UnOp::Log => v.ln(),
                UnOp::Abs => v.abs(),
                UnOp::Floor => v.floor(),
                UnOp::Not => {
                    if truthy(v) {
                        0.0
                    } else {
                        1.0
                    }
                }
            })
        }
        Expr::Binary(op, a, b) => {
            let x = eval(a, env)?;
            let y = eval(b, env)?;
            Ok(match op {
                BinOp::Add => x + y,
                BinOp::Sub => x - y,
                BinOp::Mul => x * y,
                BinOp::Div => x / y,
                BinOp::Min => x.min(y),
                BinOp::Max => x.max(y),
                BinOp::Rem => x % y,
                BinOp::Lt => (x < y) as u8 as f64,
                BinOp::Le => (x <= y) as u8 as f64,
                BinOp::Gt => (x > y) as u8 as f64,
                BinOp::Ge => (x >= y) as u8 as f64,
                BinOp::Eq => (x == y) as u8 as f64,
                BinOp::And => (truthy(x) && truthy(y)) as u8 as f64,
                BinOp::Or => (truthy(x) || truthy(y)) as u8 as f64,
            })
        }
        Expr::Select { cond, then, els } => {
            if truthy(eval(cond, env)?) {
                eval(then, env)
            } else {
                eval(els, env)
            }
        }
    }
}

fn exec_block(stmts: &[Stmt], env: &mut Env<'_>) -> Result<(), ExecKernelError> {
    for s in stmts {
        match s {
            Stmt::Assign { var, value } => {
                let v = eval(value, env)?;
                env.locals.insert(var.clone(), v);
            }
            Stmt::Store {
                array,
                index,
                value,
            } => {
                if env.read_only.iter().any(|a| a == array) {
                    return Err(ExecKernelError::WriteToInput {
                        array: array.clone(),
                    });
                }
                let idx = eval(index, env)? as i64;
                let v = eval(value, env)?;
                let buf =
                    env.arrays
                        .get_mut(array)
                        .ok_or_else(|| ExecKernelError::UnknownName {
                            name: array.clone(),
                        })?;
                if idx < 0 || idx as usize >= buf.len() {
                    return Err(ExecKernelError::IndexOutOfBounds {
                        array: array.clone(),
                        index: idx,
                        len: buf.len(),
                    });
                }
                buf[idx as usize] = v;
            }
            Stmt::For {
                var,
                start,
                end,
                body,
            } => {
                let s0 = eval(start, env)? as i64;
                let e0 = eval(end, env)? as i64;
                for i in s0..e0 {
                    env.locals.insert(var.clone(), i as f64);
                    exec_block(body, env)?;
                }
            }
            Stmt::If { cond, then, els } => {
                if truthy(eval(cond, env)?) {
                    exec_block(then, env)?;
                } else {
                    exec_block(els, env)?;
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_kernel;

    #[test]
    fn vadd_executes() {
        let k = parse_kernel(
            "kernel vadd(in float a[], in float b[], out float c[], int n) {
                 for (i in 0 .. n) { c[i] = a[i] + b[i]; }
             }",
        )
        .unwrap();
        let mut args = KernelArgs::new();
        args.bind_array("a", vec![1.0, 2.0, 3.0])
            .bind_array("b", vec![10.0, 20.0, 30.0])
            .bind_array("c", vec![0.0; 3])
            .bind_scalar("n", 3.0);
        args.run(&k).unwrap();
        assert_eq!(args.array("c").unwrap(), &[11.0, 22.0, 33.0]);
    }

    #[test]
    fn gemm_matches_reference() {
        let k = parse_kernel(
            "kernel gemm(in float a[], in float b[], out float c[], int n) {
                 for (i in 0 .. n) {
                     for (j in 0 .. n) {
                         acc = 0.0;
                         for (kk in 0 .. n) {
                             acc = acc + a[i * n + kk] * b[kk * n + j];
                         }
                         c[i * n + j] = acc;
                     }
                 }
             }",
        )
        .unwrap();
        let n = 4usize;
        let a: Vec<f64> = (0..n * n).map(|i| i as f64 * 0.5).collect();
        let b: Vec<f64> = (0..n * n).map(|i| (i as f64).sin()).collect();
        let mut reference = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                for kk in 0..n {
                    reference[i * n + j] += a[i * n + kk] * b[kk * n + j];
                }
            }
        }
        let mut args = KernelArgs::new();
        args.bind_array("a", a)
            .bind_array("b", b)
            .bind_array("c", vec![0.0; n * n])
            .bind_scalar("n", n as f64);
        args.run(&k).unwrap();
        for (got, want) in args.array("c").unwrap().iter().zip(&reference) {
            assert!((got - want).abs() < 1e-12);
        }
    }

    #[test]
    fn conditionals_and_intrinsics() {
        let k = parse_kernel(
            "kernel relu_sqrt(inout float a[], int n) {
                 for (i in 0 .. n) {
                     if (a[i] < 0.0) { a[i] = 0.0; } else { a[i] = sqrt(a[i]); }
                 }
             }",
        )
        .unwrap();
        let mut args = KernelArgs::new();
        args.bind_array("a", vec![-4.0, 9.0, 16.0])
            .bind_scalar("n", 3.0);
        args.run(&k).unwrap();
        assert_eq!(args.array("a").unwrap(), &[0.0, 3.0, 4.0]);
    }

    #[test]
    fn select_and_logic() {
        let k = parse_kernel(
            "kernel s(out float o[], float x) {
                 o[0] = select(x > 1.0 && x < 3.0, 1.0, 0.0);
                 o[1] = select(x == 2.0 || x == 5.0, 7.0, 8.0);
                 o[2] = !(x > 0.0);
             }",
        )
        .unwrap();
        let mut args = KernelArgs::new();
        args.bind_array("o", vec![0.0; 3]).bind_scalar("x", 2.0);
        args.run(&k).unwrap();
        assert_eq!(args.array("o").unwrap(), &[1.0, 7.0, 0.0]);
    }

    #[test]
    fn missing_argument_detected() {
        let k = parse_kernel("kernel m(in float a[], int n) { x = a[0]; }").unwrap();
        let mut args = KernelArgs::new();
        args.bind_array("a", vec![1.0]);
        let err = args.run(&k).unwrap_err();
        assert_eq!(err, ExecKernelError::MissingArg { name: "n".into() });
    }

    #[test]
    fn bounds_checked() {
        let k = parse_kernel("kernel b(out float o[], int n) { o[n] = 1.0; }").unwrap();
        let mut args = KernelArgs::new();
        args.bind_array("o", vec![0.0; 2]).bind_scalar("n", 5.0);
        let err = args.run(&k).unwrap_err();
        assert!(matches!(
            err,
            ExecKernelError::IndexOutOfBounds {
                index: 5,
                len: 2,
                ..
            }
        ));
        assert!(err.to_string().contains("out of bounds"));
    }

    #[test]
    fn negative_index_rejected() {
        let k = parse_kernel("kernel b(out float o[]) { o[0 - 1] = 1.0; }").unwrap();
        let mut args = KernelArgs::new();
        args.bind_array("o", vec![0.0; 2]);
        assert!(matches!(
            args.run(&k).unwrap_err(),
            ExecKernelError::IndexOutOfBounds { index: -1, .. }
        ));
    }

    #[test]
    fn write_to_input_rejected() {
        let k = parse_kernel("kernel w(in float a[]) { a[0] = 1.0; }").unwrap();
        let mut args = KernelArgs::new();
        args.bind_array("a", vec![1.0]);
        assert_eq!(
            args.run(&k).unwrap_err(),
            ExecKernelError::WriteToInput { array: "a".into() }
        );
    }

    #[test]
    fn unknown_name_detected() {
        let k = parse_kernel("kernel u(out float o[]) { o[0] = ghost; }").unwrap();
        let mut args = KernelArgs::new();
        args.bind_array("o", vec![0.0]);
        assert_eq!(
            args.run(&k).unwrap_err(),
            ExecKernelError::UnknownName {
                name: "ghost".into()
            }
        );
    }

    #[test]
    fn empty_loop_runs_zero_times() {
        let k = parse_kernel(
            "kernel e(out float o[], int n) {
                 o[0] = 0.0;
                 for (i in 0 .. n) { o[0] = o[0] + 1.0; }
             }",
        )
        .unwrap();
        let mut args = KernelArgs::new();
        args.bind_array("o", vec![9.0]).bind_scalar("n", 0.0);
        args.run(&k).unwrap();
        assert_eq!(args.array("o").unwrap(), &[0.0]);
    }

    #[test]
    fn take_array_transfers_ownership() {
        let mut args = KernelArgs::new();
        args.bind_array("x", vec![1.0, 2.0]);
        let v = args.take_array("x").unwrap();
        assert_eq!(v, vec![1.0, 2.0]);
        assert!(args.array("x").is_none());
    }
}
