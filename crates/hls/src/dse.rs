//! Automated design-space exploration and module-library generation.
//!
//! The paper: current HLS tools "require an experienced designer to take
//! architectural decisions, such as the DRAM port parallelism, the local
//! data memory partitioning, and so on. These will be automated as much
//! as possible." [`Explorer`] enumerates the directive space (unroll ×
//! pipeline × partitioning), prunes to the area/throughput Pareto front,
//! and picks the best implementation under a resource budget.
//! [`ModuleLibrary::synthesize`] then packages winners as placeable
//! [`AcceleratorModule`]s — "a library with the hardware implementations
//! of those functions that will be implemented on reconfigurable
//! resources" (§4.3).

use std::collections::HashMap;

use ecoscale_fpga::{AcceleratorModule, Bitstream, ModuleId, Resources};

use crate::estimate::{estimate, DesignEstimate, EstimateError, HlsDirectives, OpCosts};
use crate::ir::Kernel;

/// One explored implementation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesignPoint {
    /// The directives that produced it.
    pub directives: HlsDirectives,
    /// Its predicted shape.
    pub estimate: DesignEstimate,
}

/// The design-space explorer.
///
/// # Example
///
/// ```
/// use ecoscale_fpga::Resources;
/// use ecoscale_hls::{parse_kernel, Explorer};
/// use std::collections::HashMap;
///
/// let k = parse_kernel(
///     "kernel scale(in float a[], out float b[], int n) {
///          for (i in 0 .. n) { b[i] = 2.0 * a[i]; }
///      }",
/// )?;
/// let hints = HashMap::from([("n".to_string(), 8192.0)]);
/// let ex = Explorer::new(Resources::new(20_000, 128, 256));
/// let best = ex.best(&k, &hints)?.expect("budget admits at least u1");
/// assert!(best.estimate.resources.fits_in(&Resources::new(20_000, 128, 256)));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Explorer {
    budget: Resources,
    costs: OpCosts,
    unrolls: Vec<u32>,
    partitions: Vec<u32>,
}

impl Explorer {
    /// Creates an explorer with the default directive grid
    /// (unroll ∈ {1, 2, 4, 8, 16}, partition ∈ {1, 2, 4, 8}, pipeline on
    /// and off).
    pub fn new(budget: Resources) -> Explorer {
        Explorer {
            budget,
            costs: OpCosts::default(),
            unrolls: vec![1, 2, 4, 8, 16],
            partitions: vec![1, 2, 4, 8],
        }
    }

    /// Overrides the directive grid.
    pub fn with_grid(mut self, unrolls: Vec<u32>, partitions: Vec<u32>) -> Explorer {
        self.unrolls = unrolls;
        self.partitions = partitions;
        self
    }

    /// The resource budget.
    pub fn budget(&self) -> Resources {
        self.budget
    }

    /// Enumerates every feasible design point (within budget).
    ///
    /// # Errors
    ///
    /// Propagates estimation failures other than per-point infeasibility.
    pub fn explore(
        &self,
        kernel: &Kernel,
        hints: &HashMap<String, f64>,
    ) -> Result<Vec<DesignPoint>, EstimateError> {
        let mut out = Vec::new();
        for &unroll in &self.unrolls {
            for &partition in &self.partitions {
                for pipeline in [false, true] {
                    let d = HlsDirectives {
                        unroll,
                        pipeline,
                        partition,
                    };
                    let e = estimate(kernel, hints, d, &self.costs)?;
                    if e.resources.fits_in(&self.budget) {
                        out.push(DesignPoint {
                            directives: d,
                            estimate: e,
                        });
                    }
                }
            }
        }
        Ok(out)
    }

    /// Reduces points to the area/latency Pareto front (no point both
    /// smaller and faster exists), sorted by area.
    pub fn pareto(mut points: Vec<DesignPoint>) -> Vec<DesignPoint> {
        points.sort_by_key(|p| (p.estimate.resources.total(), p.estimate.cycles));
        let mut front: Vec<DesignPoint> = Vec::new();
        for p in points {
            if front.iter().all(|q| p.estimate.cycles < q.estimate.cycles) {
                front.push(p);
            }
        }
        front
    }

    /// The fastest feasible point (fewest cycles), area as tie-break.
    ///
    /// # Errors
    ///
    /// Propagates estimation failures; `Ok(None)` when nothing fits.
    pub fn best(
        &self,
        kernel: &Kernel,
        hints: &HashMap<String, f64>,
    ) -> Result<Option<DesignPoint>, EstimateError> {
        let points = self.explore(kernel, hints)?;
        Ok(points
            .into_iter()
            .min_by_key(|p| (p.estimate.cycles, p.estimate.resources.total())))
    }
}

/// One synthesized library entry: the placeable module plus the kernel it
/// executes (kept so simulated "hardware" runs compute real results).
#[derive(Debug, Clone)]
pub struct LibraryEntry {
    /// The placeable module.
    pub module: AcceleratorModule,
    /// The source kernel.
    pub kernel: Kernel,
    /// The directives chosen by DSE.
    pub directives: HlsDirectives,
}

/// The accelerator module library shipped to the middleware.
#[derive(Debug, Clone, Default)]
pub struct ModuleLibrary {
    entries: Vec<LibraryEntry>,
}

impl ModuleLibrary {
    /// Creates an empty library.
    pub fn new() -> ModuleLibrary {
        ModuleLibrary::default()
    }

    /// Synthesizes the best implementation of each kernel under `budget`
    /// and adds it to a fresh library. Kernels for which nothing fits —
    /// or whose trip counts are irregular (data-dependent bounds, like
    /// CSR SpMV) — are skipped: they stay software-only.
    ///
    /// # Errors
    ///
    /// Propagates estimation failures other than unresolved trip counts.
    pub fn synthesize(
        kernels: &[(Kernel, HashMap<String, f64>)],
        budget: Resources,
    ) -> Result<ModuleLibrary, EstimateError> {
        let explorer = Explorer::new(budget);
        let mut lib = ModuleLibrary::new();
        for (kernel, hints) in kernels {
            match explorer.best(kernel, hints) {
                Ok(Some(best)) => {
                    lib.add(kernel.clone(), best);
                }
                Ok(None) | Err(EstimateError::UnresolvedTripCount) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(lib)
    }

    /// Adds a kernel implementation to the library.
    pub fn add(&mut self, kernel: Kernel, point: DesignPoint) -> ModuleId {
        let id = ModuleId(self.entries.len() as u32);
        let seed = fnv(kernel.name());
        let module = AcceleratorModule::new(
            id,
            kernel.name(),
            point.estimate.resources,
            point.estimate.clock_hz,
            point.estimate.ii,
            point.estimate.depth,
            Bitstream::synthesize(point.estimate.resources, seed),
        );
        self.entries.push(LibraryEntry {
            module,
            kernel,
            directives: point.directives,
        });
        id
    }

    /// Looks up an entry by kernel name.
    pub fn get(&self, name: &str) -> Option<&LibraryEntry> {
        self.entries.iter().find(|e| e.kernel.name() == name)
    }

    /// Looks up an entry by module id.
    pub fn by_id(&self, id: ModuleId) -> Option<&LibraryEntry> {
        self.entries.get(id.0 as usize)
    }

    /// Iterates all entries.
    pub fn iter(&self) -> impl Iterator<Item = &LibraryEntry> + '_ {
        self.entries.iter()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when the library is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

fn fnv(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_kernel;

    fn kernel() -> Kernel {
        parse_kernel(
            "kernel saxpy(in float x[], inout float y[], float a, int n) {
                 for (i in 0 .. n) { y[i] = a * x[i] + y[i]; }
             }",
        )
        .unwrap()
    }

    fn hints() -> HashMap<String, f64> {
        HashMap::from([("n".to_owned(), 16_384.0)])
    }

    #[test]
    fn explore_respects_budget() {
        let tight = Explorer::new(Resources::new(1200, 16, 16));
        let loose = Explorer::new(Resources::new(100_000, 1024, 1024));
        let a = tight.explore(&kernel(), &hints()).unwrap();
        let b = loose.explore(&kernel(), &hints()).unwrap();
        assert!(!a.is_empty());
        assert!(b.len() > a.len());
        for p in &a {
            assert!(p.estimate.resources.fits_in(&tight.budget()));
        }
    }

    #[test]
    fn pareto_front_is_monotone() {
        let ex = Explorer::new(Resources::new(100_000, 1024, 1024));
        let pts = ex.explore(&kernel(), &hints()).unwrap();
        let front = Explorer::pareto(pts.clone());
        assert!(!front.is_empty());
        assert!(front.len() <= pts.len());
        for w in front.windows(2) {
            assert!(w[0].estimate.resources.total() <= w[1].estimate.resources.total());
            assert!(w[0].estimate.cycles > w[1].estimate.cycles);
        }
    }

    #[test]
    fn best_is_fastest_feasible() {
        let ex = Explorer::new(Resources::new(100_000, 1024, 1024));
        let pts = ex.explore(&kernel(), &hints()).unwrap();
        let best = ex.best(&kernel(), &hints()).unwrap().unwrap();
        assert!(pts
            .iter()
            .all(|p| p.estimate.cycles >= best.estimate.cycles));
    }

    #[test]
    fn nothing_fits_tiny_budget() {
        let ex = Explorer::new(Resources::new(10, 0, 0));
        assert!(ex.best(&kernel(), &hints()).unwrap().is_none());
    }

    #[test]
    fn bigger_budget_never_slower() {
        let small = Explorer::new(Resources::new(3000, 32, 32));
        let big = Explorer::new(Resources::new(60_000, 512, 512));
        let bs = small.best(&kernel(), &hints()).unwrap().unwrap();
        let bb = big.best(&kernel(), &hints()).unwrap().unwrap();
        assert!(bb.estimate.cycles <= bs.estimate.cycles);
    }

    #[test]
    fn library_synthesis_and_lookup() {
        let kernels = vec![(kernel(), hints())];
        let lib = ModuleLibrary::synthesize(&kernels, Resources::new(60_000, 512, 512)).unwrap();
        assert_eq!(lib.len(), 1);
        assert!(!lib.is_empty());
        let e = lib.get("saxpy").unwrap();
        assert_eq!(e.module.name(), "saxpy");
        assert!(!e.module.bitstream().is_empty());
        assert_eq!(lib.by_id(e.module.id()).unwrap().kernel.name(), "saxpy");
        assert!(lib.get("missing").is_none());
    }

    #[test]
    fn library_skips_unsynthesizable() {
        let kernels = vec![(kernel(), hints())];
        let lib = ModuleLibrary::synthesize(&kernels, Resources::new(10, 0, 0)).unwrap();
        assert!(lib.is_empty());
    }

    #[test]
    fn library_bitstreams_deterministic() {
        let kernels = vec![(kernel(), hints())];
        let a = ModuleLibrary::synthesize(&kernels, Resources::new(60_000, 512, 512)).unwrap();
        let b = ModuleLibrary::synthesize(&kernels, Resources::new(60_000, 512, 512)).unwrap();
        assert_eq!(
            a.get("saxpy").unwrap().module.bitstream().as_bytes(),
            b.get("saxpy").unwrap().module.bitstream().as_bytes()
        );
    }

    #[test]
    fn with_grid_restricts_space() {
        let ex = Explorer::new(Resources::new(100_000, 1024, 1024)).with_grid(vec![1], vec![1]);
        let pts = ex.explore(&kernel(), &hints()).unwrap();
        assert_eq!(pts.len(), 2); // pipeline on/off only
    }
}
