//! Area, clock, initiation-interval and latency estimation.
//!
//! Given a kernel, scalar argument hints and a set of [`HlsDirectives`]
//! (the paper's "pipelining, loop unrolling, data storage and data-path
//! partitioning and duplication"), [`estimate`] produces a
//! [`DesignEstimate`]: the resource footprint the floorplanner must host
//! and the performance contract the runtime schedules against.
//!
//! The cost tables are first-order figures for double-precision operators
//! on Zynq-class fabric; only their *relative* magnitudes matter for the
//! experiments.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use ecoscale_fpga::Resources;
use ecoscale_sim::Duration;

use crate::analysis::KernelAnalysis;
use crate::ir::Kernel;

/// Per-operator implementation costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpCosts {
    /// FP add/sub: CLB-heavy.
    pub add_sub: (Resources, u32),
    /// FP multiply: DSP-heavy.
    pub mul: (Resources, u32),
    /// FP divide: large and long.
    pub div: (Resources, u32),
    /// sqrt/exp/log cores.
    pub special: (Resources, u32),
    /// Comparisons, muxes, abs, logic.
    pub simple: (Resources, u32),
}

impl Default for OpCosts {
    fn default() -> Self {
        OpCosts {
            add_sub: (Resources::new(60, 0, 2), 8),
            mul: (Resources::new(30, 0, 6), 6),
            div: (Resources::new(300, 0, 0), 28),
            special: (Resources::new(250, 2, 8), 22),
            simple: (Resources::new(12, 0, 0), 1),
        }
    }
}

/// Synthesis directives: the explored design-space axes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HlsDirectives {
    /// Datapath replication factor for the hot loop.
    pub unroll: u32,
    /// Pipeline the hot loop (target II = 1 modulo hazards).
    pub pipeline: bool,
    /// Banks per array (memory partitioning: 2 ports per bank).
    pub partition: u32,
}

impl Default for HlsDirectives {
    fn default() -> Self {
        HlsDirectives {
            unroll: 1,
            pipeline: true,
            partition: 1,
        }
    }
}

impl fmt::Display for HlsDirectives {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "u{}{}p{}",
            self.unroll,
            if self.pipeline { "P" } else { "s" },
            self.partition
        )
    }
}

/// Estimation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EstimateError {
    /// A loop bound could not be resolved from the scalar hints.
    UnresolvedTripCount,
    /// Directives are degenerate (zero unroll/partition).
    BadDirectives,
}

impl fmt::Display for EstimateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EstimateError::UnresolvedTripCount => {
                f.write_str("loop trip count unresolved; provide scalar hints")
            }
            EstimateError::BadDirectives => f.write_str("unroll and partition must be positive"),
        }
    }
}

impl Error for EstimateError {}

/// The synthesized design's predicted shape.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesignEstimate {
    /// Fabric footprint.
    pub resources: Resources,
    /// Achievable clock.
    pub clock_hz: u64,
    /// Initiation interval of the hot loop (cycles).
    pub ii: u32,
    /// Pipeline depth (cycles).
    pub depth: u32,
    /// Total cycles for the hinted problem size.
    pub cycles: u64,
    /// Wall-clock latency for the hinted problem size.
    pub latency: Duration,
}

impl DesignEstimate {
    /// Hot-loop iterations retired per second in steady state.
    pub fn throughput(&self) -> f64 {
        self.clock_hz as f64 * self.unrolled_rate()
    }

    fn unrolled_rate(&self) -> f64 {
        // iterations per cycle = unroll / ii, which we fold into cycles;
        // recover from cycles? store directly instead: we keep ii already
        // divided by unroll via effective_ii, so rate = 1/ii.
        1.0 / self.ii as f64
    }
}

/// Estimates the design for `kernel` under `directives`.
///
/// # Errors
///
/// [`EstimateError::UnresolvedTripCount`] if loop bounds cannot be
/// resolved from `scalar_hints`; [`EstimateError::BadDirectives`] for
/// zero unroll/partition.
///
/// # Example
///
/// ```
/// use ecoscale_hls::{estimate::estimate, parse_kernel, HlsDirectives, OpCosts};
/// use std::collections::HashMap;
///
/// let k = parse_kernel(
///     "kernel scale(in float a[], out float b[], int n) {
///          for (i in 0 .. n) { b[i] = 2.0 * a[i]; }
///      }",
/// )?;
/// let hints = HashMap::from([("n".to_string(), 4096.0)]);
/// let base = estimate(&k, &hints, HlsDirectives::default(), &OpCosts::default())?;
/// let wide = estimate(
///     &k,
///     &hints,
///     HlsDirectives { unroll: 8, pipeline: true, partition: 8 },
///     &OpCosts::default(),
/// )?;
/// assert!(wide.resources.total() > base.resources.total());
/// assert!(wide.latency < base.latency);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn estimate(
    kernel: &Kernel,
    scalar_hints: &HashMap<String, f64>,
    directives: HlsDirectives,
    costs: &OpCosts,
) -> Result<DesignEstimate, EstimateError> {
    if directives.unroll == 0 || directives.partition == 0 {
        return Err(EstimateError::BadDirectives);
    }
    let analysis = KernelAnalysis::analyze(kernel, scalar_hints);
    let total = analysis
        .total()
        .copied()
        .ok_or(EstimateError::UnresolvedTripCount)?;

    // ----- area ---------------------------------------------------------
    // Control + interface skeleton:
    let mut res = Resources::new(220, 2, 0);
    // Local buffering: each array gets `partition` BRAM banks (double
    // buffered: 2 cells per bank).
    let arrays = kernel.arrays().count() as u32;
    res += Resources::new(0, arrays * directives.partition * 2, 0);
    // Datapath: the hot loop body replicated `unroll` times, everything
    // else once.
    let hot = analysis.hot_loop();
    let hot_census = hot.map(|l| l.body_census).unwrap_or_default();
    let mut datapath = Resources::ZERO;
    let charge = |n: u32, (r, _lat): (Resources, u32)| r.scale(n);
    datapath += charge(hot_census.add_sub, costs.add_sub);
    datapath += charge(hot_census.mul, costs.mul);
    datapath += charge(hot_census.div, costs.div);
    datapath += charge(hot_census.special, costs.special);
    datapath += charge(hot_census.simple, costs.simple);
    res += datapath.scale(directives.unroll);
    // non-hot work (straight-line + outer loop bodies) once
    let mut rest = *analysis.straight_line();
    for l in analysis.loops() {
        if hot.map(|h| !std::ptr::eq(h, l)).unwrap_or(true) {
            rest.add_sub += l.body_census.add_sub;
            rest.mul += l.body_census.mul;
            rest.div += l.body_census.div;
            rest.special += l.body_census.special;
            rest.simple += l.body_census.simple;
        }
    }
    res += charge(rest.add_sub, costs.add_sub)
        + charge(rest.mul, costs.mul)
        + charge(rest.div, costs.div)
        + charge(rest.special, costs.special)
        + charge(rest.simple, costs.simple);

    // ----- timing -------------------------------------------------------
    // Clock derates gently with area (routing pressure).
    let clock_hz = (250_000_000.0 / (1.0 + res.total() as f64 / 60_000.0)) as u64;

    // Pipeline depth: a serial chain of the body's operator latencies,
    // assuming the scheduler extracts 2-way ILP.
    let body_latency = hot_census.add_sub * costs.add_sub.1
        + hot_census.mul * costs.mul.1
        + hot_census.div * costs.div.1
        + hot_census.special * costs.special.1
        + hot_census.simple * costs.simple.1;
    let depth = 4 + (body_latency / 2).max(1);

    // Initiation interval of the hot loop, per *unrolled group* of
    // iterations; effective per-iteration II divides by unroll.
    let ii_group = if directives.pipeline {
        // memory-port bound: mem ops per group / available ports
        let ports = 2 * directives.partition * arrays.max(1);
        let mem_bound = (hot_census.mem_ops() * directives.unroll).div_ceil(ports.max(1));
        // reduction bound: a carried scalar chains through its operator
        let dep_bound = if hot.map(|l| l.carried_dependence).unwrap_or(false) {
            costs.add_sub.1
        } else {
            1
        };
        mem_bound.max(dep_bound).max(1)
    } else {
        // unpipelined: each group occupies the whole datapath
        depth
    };
    // Effective per-iteration II in fixed-point-ish integer cycles:
    // iterations advance `unroll` per `ii_group` cycles.
    let hot_iters = hot.and_then(|l| l.total_iterations).unwrap_or(0);
    let groups = hot_iters.div_ceil(directives.unroll as u64);
    let hot_cycles = groups * ii_group as u64 + depth as u64;
    // remaining (non-hot) work at 1 op/cycle
    let rest_cycles = (total.flops + total.mem_ops).saturating_sub(
        hot_census.flops() as u64 * hot_iters + hot_census.mem_ops() as u64 * hot_iters,
    );
    let cycles = hot_cycles + rest_cycles;

    let latency = Duration::from_cycles(cycles.max(1), clock_hz);
    // report per-iteration II (scaled by unroll, at least 1)
    let ii_effective = (ii_group as f64 / directives.unroll as f64).ceil().max(1.0) as u32;

    Ok(DesignEstimate {
        resources: res,
        clock_hz,
        ii: ii_effective,
        depth,
        cycles,
        latency,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_kernel;

    fn hints(n: f64) -> HashMap<String, f64> {
        HashMap::from([("n".to_owned(), n)])
    }

    fn streaming_kernel() -> Kernel {
        parse_kernel(
            "kernel s(in float a[], out float b[], int n) {
                 for (i in 0 .. n) { b[i] = a[i] * 3.0 + 1.0; }
             }",
        )
        .unwrap()
    }

    fn reduction_kernel() -> Kernel {
        parse_kernel(
            "kernel dot(in float a[], in float b[], out float o[], int n) {
                 acc = 0.0;
                 for (i in 0 .. n) { acc = acc + a[i] * b[i]; }
                 o[0] = acc;
             }",
        )
        .unwrap()
    }

    #[test]
    fn baseline_estimate_is_sane() {
        let e = estimate(
            &streaming_kernel(),
            &hints(4096.0),
            HlsDirectives::default(),
            &OpCosts::default(),
        )
        .unwrap();
        assert!(e.resources.total() > 200);
        assert!(e.clock_hz > 100_000_000);
        assert_eq!(e.ii, 1); // 2 mem ops over 4 ports (2 arrays × 2)
        assert!(e.cycles > 4096);
        assert!(e.latency.as_us_f64() > 10.0);
    }

    #[test]
    fn unroll_trades_area_for_latency() {
        let k = streaming_kernel();
        let h = hints(65_536.0);
        let costs = OpCosts::default();
        let base = estimate(
            &k,
            &h,
            HlsDirectives {
                unroll: 1,
                pipeline: true,
                partition: 4,
            },
            &costs,
        )
        .unwrap();
        let wide = estimate(
            &k,
            &h,
            HlsDirectives {
                unroll: 8,
                pipeline: true,
                partition: 4,
            },
            &costs,
        )
        .unwrap();
        assert!(wide.resources.total() > base.resources.total() * 3);
        assert!(wide.latency < base.latency);
    }

    #[test]
    fn pipelining_helps_throughput() {
        let k = streaming_kernel();
        let h = hints(65_536.0);
        let costs = OpCosts::default();
        let pipe = estimate(
            &k,
            &h,
            HlsDirectives {
                unroll: 1,
                pipeline: true,
                partition: 2,
            },
            &costs,
        )
        .unwrap();
        let seq = estimate(
            &k,
            &h,
            HlsDirectives {
                unroll: 1,
                pipeline: false,
                partition: 2,
            },
            &costs,
        )
        .unwrap();
        assert!(seq.ii > pipe.ii);
        assert!(seq.latency > pipe.latency * 2);
    }

    #[test]
    fn reduction_bounds_ii() {
        let e = estimate(
            &reduction_kernel(),
            &hints(4096.0),
            HlsDirectives {
                unroll: 1,
                pipeline: true,
                partition: 8,
            },
            &OpCosts::default(),
        )
        .unwrap();
        // carried add: II ≥ adder latency even with abundant ports
        assert!(e.ii >= 8);
    }

    #[test]
    fn partitioning_relieves_memory_bound() {
        let k = streaming_kernel();
        let h = hints(65_536.0);
        let costs = OpCosts::default();
        let p1 = estimate(
            &k,
            &h,
            HlsDirectives {
                unroll: 8,
                pipeline: true,
                partition: 1,
            },
            &costs,
        )
        .unwrap();
        let p8 = estimate(
            &k,
            &h,
            HlsDirectives {
                unroll: 8,
                pipeline: true,
                partition: 8,
            },
            &costs,
        )
        .unwrap();
        assert!(p8.cycles < p1.cycles);
        assert!(p8.resources.bram > p1.resources.bram);
    }

    #[test]
    fn unresolved_trips_error() {
        let err = estimate(
            &streaming_kernel(),
            &HashMap::new(),
            HlsDirectives::default(),
            &OpCosts::default(),
        )
        .unwrap_err();
        assert_eq!(err, EstimateError::UnresolvedTripCount);
    }

    #[test]
    fn bad_directives_error() {
        let err = estimate(
            &streaming_kernel(),
            &hints(16.0),
            HlsDirectives {
                unroll: 0,
                pipeline: true,
                partition: 1,
            },
            &OpCosts::default(),
        )
        .unwrap_err();
        assert_eq!(err, EstimateError::BadDirectives);
    }

    #[test]
    fn directives_display() {
        let d = HlsDirectives {
            unroll: 4,
            pipeline: true,
            partition: 2,
        };
        assert_eq!(d.to_string(), "u4Pp2");
        let s = HlsDirectives {
            unroll: 1,
            pipeline: false,
            partition: 1,
        };
        assert_eq!(s.to_string(), "u1sp1");
    }

    #[test]
    fn clock_derates_with_area() {
        let k = streaming_kernel();
        let h = hints(1024.0);
        let costs = OpCosts::default();
        let small = estimate(
            &k,
            &h,
            HlsDirectives {
                unroll: 1,
                pipeline: true,
                partition: 1,
            },
            &costs,
        )
        .unwrap();
        let big = estimate(
            &k,
            &h,
            HlsDirectives {
                unroll: 16,
                pipeline: true,
                partition: 8,
            },
            &costs,
        )
        .unwrap();
        assert!(big.clock_hz < small.clock_hz);
    }

    #[test]
    fn throughput_metric() {
        let e = estimate(
            &streaming_kernel(),
            &hints(4096.0),
            HlsDirectives {
                unroll: 4,
                pipeline: true,
                partition: 8,
            },
            &OpCosts::default(),
        )
        .unwrap();
        assert!(e.throughput() > 1e8);
    }
}
