//! Static kernel analysis: operation censuses, trip counts, loop-carried
//! dependences.
//!
//! The estimator needs three facts about a kernel: how much arithmetic
//! and memory traffic one iteration of its hot loop performs
//! ([`OpCensus`]), how many iterations run in total (trip counts resolved
//! against scalar argument hints), and whether the hot loop carries a
//! scalar dependence (a reduction like `acc = acc + ...`), which bounds
//! the initiation interval from below.

use std::collections::HashMap;

use crate::ir::{BinOp, Expr, Kernel, Stmt, UnOp};

/// Counts of operations in a block (exclusive of nested loops).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCensus {
    /// Additions and subtractions.
    pub add_sub: u32,
    /// Multiplications.
    pub mul: u32,
    /// Divisions and remainders.
    pub div: u32,
    /// Transcendental / special ops (sqrt, exp, log).
    pub special: u32,
    /// Comparisons, logic, min/max, abs, floor, neg, select muxes.
    pub simple: u32,
    /// Array element reads.
    pub loads: u32,
    /// Array element writes.
    pub stores: u32,
}

impl OpCensus {
    /// Total arithmetic operations (excluding loads/stores).
    pub fn flops(&self) -> u32 {
        self.add_sub + self.mul + self.div + self.special + self.simple
    }

    /// Total memory operations.
    pub fn mem_ops(&self) -> u32 {
        self.loads + self.stores
    }

    fn add_expr(&mut self, e: &Expr) {
        e.visit(&mut |node| match node {
            Expr::Const(_) | Expr::Var(_) => {}
            Expr::Load { .. } => self.loads += 1,
            Expr::Unary(op, _) => match op {
                UnOp::Sqrt | UnOp::Exp | UnOp::Log => self.special += 1,
                UnOp::Neg | UnOp::Abs | UnOp::Floor | UnOp::Not => self.simple += 1,
            },
            Expr::Binary(op, _, _) => match op {
                BinOp::Add | BinOp::Sub => self.add_sub += 1,
                BinOp::Mul => self.mul += 1,
                BinOp::Div | BinOp::Rem => self.div += 1,
                _ => self.simple += 1,
            },
            Expr::Select { .. } => self.simple += 1,
        });
    }

    fn merge(&mut self, o: &OpCensus) {
        self.add_sub += o.add_sub;
        self.mul += o.mul;
        self.div += o.div;
        self.special += o.special;
        self.simple += o.simple;
        self.loads += o.loads;
        self.stores += o.stores;
    }
}

/// Facts about one loop in the kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopInfo {
    /// The loop variable.
    pub var: String,
    /// Nesting depth (0 = outermost).
    pub depth: u32,
    /// Iterations of this loop (resolved against scalar hints), if
    /// statically resolvable.
    pub trip_count: Option<u64>,
    /// Iterations of this loop times all enclosing loops.
    pub total_iterations: Option<u64>,
    /// Work per iteration, excluding nested loops.
    pub body_census: OpCensus,
    /// `true` if the body carries a scalar reduction dependence.
    pub carried_dependence: bool,
    /// `true` if no loop nests inside this one.
    pub innermost: bool,
}

/// The complete analysis of one kernel.
///
/// # Example
///
/// ```
/// use ecoscale_hls::{parse_kernel, KernelAnalysis};
/// use std::collections::HashMap;
///
/// let k = parse_kernel(
///     "kernel dot(in float a[], in float b[], out float o[], int n) {
///          acc = 0.0;
///          for (i in 0 .. n) { acc = acc + a[i] * b[i]; }
///          o[0] = acc;
///      }",
/// )?;
/// let hints = HashMap::from([("n".to_string(), 1024.0)]);
/// let an = KernelAnalysis::analyze(&k, &hints);
/// let hot = an.hot_loop().expect("has a loop");
/// assert_eq!(hot.trip_count, Some(1024));
/// assert!(hot.carried_dependence); // acc = acc + ...
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct KernelAnalysis {
    loops: Vec<LoopInfo>,
    straight_line: OpCensus,
    total: Option<OpCensus64>,
}

/// Whole-kernel operation totals (u64 to survive big trip counts).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCensus64 {
    /// Total arithmetic ops.
    pub flops: u64,
    /// Total transcendental ops (subset of `flops`; a software core pays
    /// tens of cycles each where a pipelined datapath pays one slot).
    pub special: u64,
    /// Total memory ops.
    pub mem_ops: u64,
    /// Total loads.
    pub loads: u64,
    /// Total stores.
    pub stores: u64,
}

fn eval_const(e: &Expr, hints: &HashMap<String, f64>) -> Option<f64> {
    match e {
        Expr::Const(v) => Some(*v),
        Expr::Var(name) => hints.get(name).copied(),
        Expr::Binary(op, a, b) => {
            let x = eval_const(a, hints)?;
            let y = eval_const(b, hints)?;
            Some(match op {
                BinOp::Add => x + y,
                BinOp::Sub => x - y,
                BinOp::Mul => x * y,
                BinOp::Div => x / y,
                _ => return None,
            })
        }
        Expr::Unary(UnOp::Neg, a) => Some(-eval_const(a, hints)?),
        _ => None,
    }
}

fn body_carries_dependence(stmts: &[Stmt]) -> bool {
    fn expr_mentions(e: &Expr, var: &str) -> bool {
        let mut found = false;
        e.visit(&mut |n| {
            if let Expr::Var(v) = n {
                if v == var {
                    found = true;
                }
            }
        });
        found
    }
    fn walk(stmts: &[Stmt]) -> bool {
        stmts.iter().any(|s| match s {
            Stmt::Assign { var, value } => expr_mentions(value, var),
            Stmt::If { then, els, .. } => walk(then) || walk(els),
            // nested loops are analyzed separately
            _ => false,
        })
    }
    walk(stmts)
}

fn census_of_block(stmts: &[Stmt]) -> OpCensus {
    let mut c = OpCensus::default();
    for s in stmts {
        match s {
            Stmt::Assign { value, .. } => c.add_expr(value),
            Stmt::Store { index, value, .. } => {
                c.stores += 1;
                c.add_expr(index);
                c.add_expr(value);
            }
            Stmt::If { cond, then, els } => {
                c.add_expr(cond);
                // branch bodies execute predicated in hardware: charge both
                c.merge(&census_of_block(then));
                c.merge(&census_of_block(els));
            }
            Stmt::For { .. } => {} // handled by the loop walker
        }
    }
    c
}

impl KernelAnalysis {
    /// Analyzes `kernel`, resolving loop bounds against `scalar_hints`
    /// (typical argument values, e.g. the problem size the runtime is
    /// about to launch).
    pub fn analyze(kernel: &Kernel, scalar_hints: &HashMap<String, f64>) -> KernelAnalysis {
        let mut loops = Vec::new();
        fn walk(
            stmts: &[Stmt],
            depth: u32,
            enclosing: Option<u64>,
            hints: &HashMap<String, f64>,
            out: &mut Vec<LoopInfo>,
        ) {
            for s in stmts {
                match s {
                    Stmt::For {
                        var,
                        start,
                        end,
                        body,
                    } => {
                        let trip = match (eval_const(start, hints), eval_const(end, hints)) {
                            (Some(a), Some(b)) if b >= a => Some((b - a) as u64),
                            (Some(_), Some(_)) => Some(0),
                            _ => None,
                        };
                        let total = match (trip, enclosing) {
                            (Some(t), Some(e)) => Some(t * e),
                            (Some(t), None) => Some(t),
                            _ => None,
                        };
                        let has_inner = body.iter().any(|s| matches!(s, Stmt::For { .. }))
                            || body.iter().any(|s| match s {
                                Stmt::If { then, els, .. } => then
                                    .iter()
                                    .chain(els.iter())
                                    .any(|x| matches!(x, Stmt::For { .. })),
                                _ => false,
                            });
                        out.push(LoopInfo {
                            var: var.clone(),
                            depth,
                            trip_count: trip,
                            total_iterations: total,
                            body_census: census_of_block(body),
                            carried_dependence: body_carries_dependence(body),
                            innermost: !has_inner,
                        });
                        walk(body, depth + 1, total, hints, out);
                    }
                    Stmt::If { then, els, .. } => {
                        walk(then, depth, enclosing, hints, out);
                        walk(els, depth, enclosing, hints, out);
                    }
                    _ => {}
                }
            }
        }
        walk(kernel.body(), 0, None, scalar_hints, &mut loops);

        let straight_line = census_of_block(kernel.body());

        // whole-kernel totals (straight-line + every loop body × its total
        // iterations), None if any loop is unresolved
        let mut total = Some(OpCensus64 {
            flops: straight_line.flops() as u64,
            special: straight_line.special as u64,
            mem_ops: straight_line.mem_ops() as u64,
            loads: straight_line.loads as u64,
            stores: straight_line.stores as u64,
        });
        for l in &loops {
            match (l.total_iterations, &mut total) {
                (Some(iters), Some(t)) => {
                    t.flops += l.body_census.flops() as u64 * iters;
                    t.special += l.body_census.special as u64 * iters;
                    t.mem_ops += l.body_census.mem_ops() as u64 * iters;
                    t.loads += l.body_census.loads as u64 * iters;
                    t.stores += l.body_census.stores as u64 * iters;
                }
                _ => total = None,
            }
        }

        KernelAnalysis {
            loops,
            straight_line,
            total,
        }
    }

    /// Every loop, outermost first.
    pub fn loops(&self) -> &[LoopInfo] {
        &self.loops
    }

    /// Operations outside any loop.
    pub fn straight_line(&self) -> &OpCensus {
        &self.straight_line
    }

    /// Whole-kernel totals, if all trip counts resolved.
    pub fn total(&self) -> Option<&OpCensus64> {
        self.total.as_ref()
    }

    /// The innermost loop doing the most total work — the pipelining
    /// target. `None` for loop-free kernels.
    pub fn hot_loop(&self) -> Option<&LoopInfo> {
        self.loops.iter().filter(|l| l.innermost).max_by_key(|l| {
            l.total_iterations
                .map(|t| t * l.body_census.flops().max(1) as u64)
                .unwrap_or(u64::MAX) // unresolved: assume hottest
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_kernel;

    fn hints(pairs: &[(&str, f64)]) -> HashMap<String, f64> {
        pairs.iter().map(|(k, v)| ((*k).to_owned(), *v)).collect()
    }

    #[test]
    fn census_counts_ops() {
        let k = parse_kernel(
            "kernel c(in float a[], out float o[], int n) {
                 for (i in 0 .. n) {
                     o[i] = sqrt(a[i]) * 2.0 + a[i] / 3.0;
                 }
             }",
        )
        .unwrap();
        let an = KernelAnalysis::analyze(&k, &hints(&[("n", 100.0)]));
        let hot = an.hot_loop().unwrap();
        assert_eq!(hot.body_census.loads, 2);
        assert_eq!(hot.body_census.stores, 1);
        assert_eq!(hot.body_census.special, 1);
        assert_eq!(hot.body_census.mul, 1);
        assert_eq!(hot.body_census.div, 1);
        assert_eq!(hot.body_census.add_sub, 1);
    }

    #[test]
    fn trip_counts_resolve_from_hints() {
        let k = parse_kernel(
            "kernel t(out float o[], int n, int m) {
                 for (i in 0 .. n) {
                     for (j in 0 .. m) { o[i * m + j] = 1.0; }
                 }
             }",
        )
        .unwrap();
        let an = KernelAnalysis::analyze(&k, &hints(&[("n", 8.0), ("m", 16.0)]));
        assert_eq!(an.loops().len(), 2);
        assert_eq!(an.loops()[0].trip_count, Some(8));
        assert_eq!(an.loops()[1].trip_count, Some(16));
        assert_eq!(an.loops()[1].total_iterations, Some(128));
        assert!(an.loops()[1].innermost);
        assert!(!an.loops()[0].innermost);
        assert_eq!(an.total().unwrap().stores, 128);
    }

    #[test]
    fn unresolved_trip_counts_are_none() {
        let k =
            parse_kernel("kernel u(out float o[], int n) { for (i in 0 .. n) { o[i] = 0.0; } }")
                .unwrap();
        let an = KernelAnalysis::analyze(&k, &HashMap::new());
        assert_eq!(an.loops()[0].trip_count, None);
        assert!(an.total().is_none());
    }

    #[test]
    fn detects_reduction_dependence() {
        let k = parse_kernel(
            "kernel dot(in float a[], in float b[], out float o[], int n) {
                 acc = 0.0;
                 for (i in 0 .. n) { acc = acc + a[i] * b[i]; }
                 o[0] = acc;
             }",
        )
        .unwrap();
        let an = KernelAnalysis::analyze(&k, &hints(&[("n", 64.0)]));
        assert!(an.hot_loop().unwrap().carried_dependence);
        // straight-line part: the init and the final store
        assert_eq!(an.straight_line().stores, 1);
    }

    #[test]
    fn streaming_loop_has_no_dependence() {
        let k = parse_kernel(
            "kernel s(in float a[], out float b[], int n) {
                 for (i in 0 .. n) { b[i] = a[i] * 2.0; }
             }",
        )
        .unwrap();
        let an = KernelAnalysis::analyze(&k, &hints(&[("n", 64.0)]));
        assert!(!an.hot_loop().unwrap().carried_dependence);
    }

    #[test]
    fn dependence_inside_if_detected() {
        let k = parse_kernel(
            "kernel c(in float a[], out float o[], int n) {
                 cnt = 0.0;
                 for (i in 0 .. n) {
                     if (a[i] > 0.0) { cnt = cnt + 1.0; }
                 }
                 o[0] = cnt;
             }",
        )
        .unwrap();
        let an = KernelAnalysis::analyze(&k, &hints(&[("n", 64.0)]));
        assert!(an.hot_loop().unwrap().carried_dependence);
    }

    #[test]
    fn hot_loop_picks_biggest_innermost() {
        let k = parse_kernel(
            "kernel h(out float o[], int n) {
                 for (i in 0 .. 4) { o[i] = 0.0; }
                 for (j in 0 .. n) { o[j] = o[j] + 1.0; }
             }",
        )
        .unwrap();
        let an = KernelAnalysis::analyze(&k, &hints(&[("n", 10_000.0)]));
        assert_eq!(an.hot_loop().unwrap().var, "j");
    }

    #[test]
    fn derived_bounds_resolve() {
        let k = parse_kernel(
            "kernel d(out float o[], int n) {
                 for (i in 0 .. n / 2) { o[i] = 1.0; }
             }",
        )
        .unwrap();
        let an = KernelAnalysis::analyze(&k, &hints(&[("n", 10.0)]));
        assert_eq!(an.loops()[0].trip_count, Some(5));
    }

    #[test]
    fn loop_free_kernel() {
        let k = parse_kernel("kernel f(out float o[]) { o[0] = 1.0 + 2.0; }").unwrap();
        let an = KernelAnalysis::analyze(&k, &HashMap::new());
        assert!(an.hot_loop().is_none());
        assert_eq!(an.straight_line().add_sub, 1);
        assert_eq!(an.total().unwrap().stores, 1);
    }

    #[test]
    fn flops_and_mem_ops_helpers() {
        let c = OpCensus {
            add_sub: 2,
            mul: 3,
            loads: 4,
            stores: 1,
            ..OpCensus::default()
        };
        assert_eq!(c.flops(), 5);
        assert_eq!(c.mem_ops(), 5);
    }
}
