//! End-to-end tests for the `bench_regress` binary: the three exit
//! codes the ISSUE pins — 0 on the committed baseline vs itself, 1 on a
//! synthetically slowed run, 2 when the documents cannot be compared.

use std::path::PathBuf;
use std::process::Command;

fn bench_regress() -> Command {
    Command::new(env!("CARGO_BIN_EXE_bench_regress"))
}

fn committed_baseline() -> PathBuf {
    // crates/bench -> workspace root
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_parallel_des.json")
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("ecoscale-regress-{}-{name}", std::process::id()));
    p
}

/// A small but schema-complete parallel_des document.
const BASE: &str = r#"{"bench":"parallel_des","host_cores":1,"clusters":4,
    "tasks_per_cluster":64,"reps":1,"events":1000,"rounds":40,"lookahead_ns":90,
    "identical_exports":true,"points":[
    {"shards":2,"wall_s":0.1,"events_per_sec":10000,"speedup":1.0,
     "critical_path_speedup":1.5}]}"#;

#[test]
fn committed_baseline_vs_itself_exits_0() {
    let baseline = committed_baseline();
    assert!(baseline.exists(), "committed baseline missing");
    let out = bench_regress()
        .arg(&baseline)
        .arg(&baseline)
        .output()
        .expect("binary runs");
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("bench_regress: ok"), "stderr: {err}");
}

#[test]
fn synthetically_slowed_run_exits_1() {
    let base_path = tmp("slow-base.json");
    let slow_path = tmp("slow-fresh.json");
    std::fs::write(&base_path, BASE).unwrap();
    // 100x slower wall clock and throughput: far past any tolerance
    let slowed = BASE
        .replace("\"wall_s\":0.1", "\"wall_s\":10.0")
        .replace("\"events_per_sec\":10000", "\"events_per_sec\":100");
    std::fs::write(&slow_path, slowed).unwrap();
    let out = bench_regress()
        .arg(&base_path)
        .arg(&slow_path)
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("regression:"), "stdout: {stdout}");
    assert!(stdout.contains("wall_s"), "stdout: {stdout}");
    assert!(stdout.contains("events_per_sec"), "stdout: {stdout}");
    std::fs::remove_file(&base_path).ok();
    std::fs::remove_file(&slow_path).ok();
}

#[test]
fn changed_deterministic_field_exits_1() {
    let base_path = tmp("det-base.json");
    let fresh_path = tmp("det-fresh.json");
    std::fs::write(&base_path, BASE).unwrap();
    std::fs::write(
        &fresh_path,
        BASE.replace("\"events\":1000", "\"events\":1002"),
    )
    .unwrap();
    let out = bench_regress()
        .arg(&base_path)
        .arg(&fresh_path)
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains("deterministic field changed"),
        "stdout: {stdout}"
    );
    std::fs::remove_file(&base_path).ok();
    std::fs::remove_file(&fresh_path).ok();
}

#[test]
fn unreadable_file_and_kind_mismatch_exit_2() {
    let out = bench_regress()
        .args(["/nonexistent/a.json", "/nonexistent/b.json"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("cannot read"), "stderr: {err}");

    let base_path = tmp("kind-base.json");
    let other_path = tmp("kind-other.json");
    std::fs::write(&base_path, BASE).unwrap();
    std::fs::write(&other_path, BASE.replace("parallel_des", "profile")).unwrap();
    let out = bench_regress()
        .arg(&base_path)
        .arg(&other_path)
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("kind mismatch"), "stderr: {err}");
    std::fs::remove_file(&base_path).ok();
    std::fs::remove_file(&other_path).ok();
}

#[test]
fn bad_usage_exits_2() {
    // missing operands
    let out = bench_regress().output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    // bad tolerance
    let out = bench_regress()
        .args(["--tolerance", "0.5", "a.json", "b.json"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("--tolerance needs a ratio"), "stderr: {err}");
}
