//! End-to-end tests for the `fuzz_configs` binary: a clean smoke sweep,
//! the deliberate-violation catch → shrink → repro pipeline, and argument
//! validation.

use std::process::Command;

fn fuzz_configs() -> Command {
    Command::new(env!("CARGO_BIN_EXE_fuzz_configs"))
}

#[test]
fn clean_sweep_exits_0_with_summary() {
    let out = fuzz_configs()
        .args(["--count", "4"])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains("fuzz_configs: 4 configs clean"),
        "stdout: {stdout}"
    );
    assert!(stdout.contains("0 violations"), "stdout: {stdout}");
}

#[test]
fn injected_violation_is_caught_shrunk_and_reproducible() {
    let out = fuzz_configs()
        .args(["--count", "8", "--inject-violation"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("check.sabotage"), "stdout: {stdout}");
    assert!(stdout.contains("shrunk to"), "stdout: {stdout}");

    // extract the printed repro spec and round-trip it: the single-line
    // command must reproduce the failure on its own
    let repro_line = stdout
        .lines()
        .find(|l| l.starts_with("repro: fuzz_configs --repro '"))
        .unwrap_or_else(|| panic!("no repro line in: {stdout}"));
    let spec = repro_line
        .split('\'')
        .nth(1)
        .expect("spec is single-quoted");
    assert!(
        repro_line.ends_with("--inject-violation"),
        "repro keeps the flag: {repro_line}"
    );
    // the shrinker converges on the sabotage threshold
    assert!(spec.contains("tasks=24"), "spec: {spec}");

    let rerun = fuzz_configs()
        .args(["--repro", spec, "--inject-violation"])
        .output()
        .expect("binary runs");
    assert_eq!(rerun.status.code(), Some(1), "repro still fails");
    let rerun_out = String::from_utf8(rerun.stdout).unwrap();
    assert!(rerun_out.contains("check.sabotage"), "stdout: {rerun_out}");

    // without the flag the same config is clean
    let clean = fuzz_configs()
        .args(["--repro", spec])
        .output()
        .expect("binary runs");
    assert!(clean.status.success());
}

#[test]
fn malformed_arguments_exit_2() {
    // unknown argument
    let out = fuzz_configs().arg("--bogus").output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("unknown argument `--bogus`"), "stderr: {err}");
    assert!(err.contains("usage: fuzz_configs"), "stderr: {err}");

    // flags that need values
    for flag in ["--count", "--start", "--repro"] {
        let out = fuzz_configs().arg(flag).output().expect("binary runs");
        assert_eq!(out.status.code(), Some(2), "{flag} without value");
    }

    // non-numeric count
    let out = fuzz_configs()
        .args(["--count", "many"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));

    // malformed repro spec names the offending pair
    let out = fuzz_configs()
        .args(["--repro", "topo=ring"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(
        err.contains("bad fuzz config pair `topo=ring`"),
        "stderr: {err}"
    );
}
