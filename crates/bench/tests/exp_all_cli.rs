//! End-to-end tests for the `exp_all` binary: argument validation and
//! the `--trace`/`--metrics` observability outputs (the ISSUE acceptance
//! command, verbatim).

use std::path::PathBuf;
use std::process::Command;

use ecoscale_sim::json::{self, Value};

fn exp_all() -> Command {
    Command::new(env!("CARGO_BIN_EXE_exp_all"))
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("ecoscale-exp-all-{}-{name}", std::process::id()));
    p
}

#[test]
fn unknown_key_exits_2_with_key_list() {
    let out = exp_all().arg("e99").output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("unknown experiment `e99`"), "stderr: {err}");
    // usage lists every valid key
    for (key, _) in ecoscale_bench::EXPERIMENTS {
        assert!(err.contains(key), "stderr missing key {key}: {err}");
    }
}

#[test]
fn missing_flag_value_exits_2() {
    let out = exp_all().arg("--trace").output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let out = exp_all().arg("--scale").output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let out = exp_all().arg("--faults").output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(
        err.contains("--faults needs a campaign spec"),
        "stderr: {err}"
    );
    let out = exp_all().arg("--serve").output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(
        err.contains("--serve needs a serving spec"),
        "stderr: {err}"
    );
    let out = exp_all().arg("--serve-out").output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn malformed_serve_spec_exits_2_with_offending_pair() {
    let out = exp_all()
        .args(["--serve", "rate"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("error: bad --serve spec:"), "stderr: {err}");
    assert!(err.contains("`rate`"), "offending pair quoted: {err}");

    let out = exp_all()
        .args(["--serve", "seed=3,frobnicate=4"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("`frobnicate=4`"), "stderr: {err}");
    assert!(err.contains("usage: exp_all"), "stderr: {err}");
}

#[test]
fn serve_out_without_serve_exits_2() {
    let out = exp_all()
        .args(["--serve-out", "never-written.json"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(
        err.contains("--serve-out needs a --serve SPEC"),
        "stderr: {err}"
    );
    assert!(!std::path::Path::new("never-written.json").exists());
}

#[test]
fn serve_run_prints_slo_table_and_exports_conserved_json() {
    let serve_path = tmp("serve.json");
    let out = exp_all()
        .args([
            "--scale",
            "quick",
            "--serve",
            "seed=7,tenants=2,rate=120000,horizon=300us,batch=4",
            "--serve-out",
        ])
        .arg(&serve_path)
        .arg("e01")
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("== serving =="), "stdout: {stdout}");
    assert!(stdout.contains("goodput"), "stdout: {stdout}");

    let text = std::fs::read_to_string(&serve_path).unwrap();
    let doc = json::parse(&text).expect("serving JSON parses");
    let spec = doc.get("spec").and_then(Value::as_str).expect("spec field");
    assert!(spec.contains("tenants=2"), "spec echoed: {spec}");
    let serving = doc.get("serving").expect("serving section");
    assert_eq!(serving.get("conserved"), Some(&Value::Bool(true)));
    assert!(serving.get("submitted").and_then(Value::as_f64).unwrap() > 0.0);
    assert_eq!(
        serving
            .get("tenants")
            .and_then(Value::as_arr)
            .expect("tenants array")
            .len(),
        2
    );

    std::fs::remove_file(&serve_path).ok();
}

#[test]
fn missing_profile_value_exits_2_with_message() {
    let out = exp_all().arg("--profile").output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(
        err.contains("error: --profile needs a file path"),
        "stderr: {err}"
    );
    assert!(err.contains("usage: exp_all"), "stderr: {err}");
}

#[test]
fn profile_output_blames_sum_to_100_percent() {
    let profile_path = tmp("p.json");
    let out = exp_all()
        .args(["--scale", "quick", "--profile"])
        .arg(&profile_path)
        .arg("e01")
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("critical-path blame"), "stdout: {stdout}");
    assert!(stdout.contains("shard occupancy"), "stdout: {stdout}");
    // wall timers are host-dependent and must only reach stderr
    assert!(!stdout.contains("engine wall phases"), "stdout: {stdout}");
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("engine wall phases"), "stderr: {err}");

    let text = std::fs::read_to_string(&profile_path).unwrap();
    let doc = json::parse(&text).expect("profile JSON parses");
    let profile = doc.get("profile").expect("profile section");
    assert!(profile.get("total_ps").and_then(Value::as_f64).unwrap() > 0.0);
    let blame = profile
        .get("blame")
        .and_then(Value::as_arr)
        .expect("blame array");
    assert_eq!(blame.len(), 5, "one entry per layer");
    let total: f64 = blame
        .iter()
        .map(|b| b.get("percent").and_then(Value::as_f64).expect("percent"))
        .sum();
    assert!(
        (total - 100.0).abs() < 1e-9,
        "blame percentages sum to {total}"
    );
    let occ = doc.get("occupancy").expect("occupancy section");
    assert!(occ.get("events").and_then(Value::as_f64).unwrap() > 0.0);
    assert!(!occ
        .get("bands")
        .and_then(Value::as_arr)
        .expect("bands")
        .is_empty());
    // the wall section never leaks into the deterministic file
    assert!(doc.get("wall").is_none());

    std::fs::remove_file(&profile_path).ok();
}

#[test]
fn malformed_faults_spec_exits_2_with_offending_pair() {
    // a pair without `=` is rejected with the pair quoted back
    let out = exp_all()
        .args(["--faults", "crash", "e03"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("error: bad --faults spec:"), "stderr: {err}");
    assert!(err.contains("`crash`"), "offending pair quoted: {err}");

    // an unknown key is rejected the same way
    let out = exp_all()
        .args(["--faults", "seed=3,frobnicate=1ms"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("`frobnicate=1ms`"), "stderr: {err}");
    // usage follows so the operator sees the expected shape
    assert!(err.contains("usage: exp_all"), "stderr: {err}");
}

#[test]
fn trace_and_metrics_outputs_are_valid_and_populated() {
    let trace_path = tmp("t.json");
    let metrics_path = tmp("m.json");
    let out = exp_all()
        .args(["--scale", "quick", "--trace"])
        .arg(&trace_path)
        .arg("--metrics")
        .arg(&metrics_path)
        .arg("e03")
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("E3"), "e03 table printed: {stdout}");

    // --- trace: well-formed Chrome Trace Event JSON, monotonic per track
    let trace_text = std::fs::read_to_string(&trace_path).unwrap();
    let trace = json::parse(&trace_text).expect("trace JSON parses");
    let events = trace
        .get("traceEvents")
        .and_then(Value::as_arr)
        .expect("traceEvents array");
    assert!(!events.is_empty());
    let mut named_tracks = 0usize;
    let mut last_ts: std::collections::HashMap<u64, f64> = std::collections::HashMap::new();
    for ev in events {
        let ph = ev.get("ph").and_then(Value::as_str).expect("ph field");
        if ph == "M" {
            named_tracks += 1;
            continue;
        }
        let tid = ev.get("tid").and_then(Value::as_f64).expect("tid") as u64;
        let ts = ev.get("ts").and_then(Value::as_f64).expect("ts");
        let prev = last_ts.insert(tid, ts).unwrap_or(f64::NEG_INFINITY);
        assert!(ts >= prev, "track {tid} went back in time: {prev} -> {ts}");
    }
    assert!(named_tracks >= 3, "expected several named tracks");

    // --- metrics: non-zero SMMU, NoC, and scheduler instruments
    let metrics_text = std::fs::read_to_string(&metrics_path).unwrap();
    let metrics = json::parse(&metrics_text).expect("metrics JSON parses");
    for key in ["smmu.tlb_hits", "noc.messages", "sched.tasks"] {
        let v = metrics
            .get(key)
            .and_then(|m| m.get("value"))
            .and_then(Value::as_f64)
            .unwrap_or_else(|| panic!("metric {key} missing"));
        assert!(v > 0.0, "metric {key} is zero");
    }

    std::fs::remove_file(&trace_path).ok();
    std::fs::remove_file(&metrics_path).ok();
}

#[test]
fn telemetry_flags_are_validated_with_exit_2() {
    // both flags need a path operand
    let out = exp_all().arg("--telemetry").output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(
        err.contains("error: --telemetry needs a file path"),
        "stderr: {err}"
    );
    let out = exp_all()
        .arg("--flight-dump")
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(
        err.contains("error: --flight-dump needs a file path"),
        "stderr: {err}"
    );

    // a dump directory is meaningless without a telemetry capture
    let out = exp_all()
        .args(["--flight-dump", "never-created", "e01"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(
        err.contains("error: --flight-dump needs a --telemetry FILE"),
        "stderr: {err}"
    );
    assert!(err.contains("usage: exp_all"), "stderr: {err}");
    assert!(!std::path::Path::new("never-created").exists());
}

#[test]
fn telemetry_capture_is_written_and_well_formed() {
    let telem_path = tmp("telem.json");
    let out = exp_all()
        .args(["--scale", "quick", "--telemetry"])
        .arg(&telem_path)
        .arg("e01")
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("wrote telemetry to"), "stderr: {err}");

    let text = std::fs::read_to_string(&telem_path).unwrap();
    let doc = json::parse(&text).expect("telemetry JSON parses");
    let serve = doc.get("serve").expect("serve section");
    let series = serve.get("series").expect("series section");
    assert!(
        series
            .get("windows")
            .and_then(Value::as_arr)
            .map(|w| !w.is_empty())
            .unwrap_or(false),
        "serving series has windows: {text}"
    );
    assert!(
        !serve
            .get("flights")
            .and_then(Value::as_arr)
            .expect("flights array")
            .is_empty(),
        "one flight recorder per cell"
    );
    let shard = doc.get("shard").expect("shard section");
    assert!(
        shard.get("lifetime").is_some(),
        "shard series has lifetime totals: {text}"
    );

    std::fs::remove_file(&telem_path).ok();
}

#[test]
fn forced_slo_breach_writes_the_flight_dump_bundle() {
    let telem_path = tmp("breach-telem.json");
    let dump_dir = tmp("breach-dump");
    // A 1µs deadline at this arrival rate cannot be met: the windowed
    // p99 breaches immediately and the flight recorder must fire.
    let out = exp_all()
        .args([
            "--scale",
            "quick",
            "--serve",
            "seed=21,tenants=4,rate=100000,horizon=500us,batch=4,deadline=1us",
            "--telemetry",
        ])
        .arg(&telem_path)
        .arg("--flight-dump")
        .arg(&dump_dir)
        .arg("e01")
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("wrote flight dump"), "stderr: {err}");

    let flight_text = std::fs::read_to_string(dump_dir.join("flight.json"))
        .expect("flight.json written on trigger");
    let flight = json::parse(&flight_text).expect("flight dump parses");
    let serve = flight.get("serve").expect("serve section");
    assert!(
        serve
            .get("triggers_fired")
            .and_then(Value::as_f64)
            .expect("triggers_fired")
            > 0.0,
        "dump records the trigger: {flight_text}"
    );
    assert!(
        flight_text.contains("slo_breach"),
        "breach trigger named: {flight_text}"
    );
    assert!(
        flight.get("shard_tail").and_then(Value::as_arr).is_some(),
        "shard series tail included"
    );
    // the serving run's pre-trigger snapshot joins the bundle
    let snap = std::fs::read(dump_dir.join("snapshot.bin")).expect("snapshot.bin written");
    assert!(!snap.is_empty());

    std::fs::remove_file(&telem_path).ok();
    std::fs::remove_dir_all(&dump_dir).ok();
}

#[test]
fn clean_run_with_flight_dump_writes_no_bundle() {
    let telem_path = tmp("clean-telem.json");
    let dump_dir = tmp("clean-dump");
    let out = exp_all()
        .args(["--scale", "quick", "--telemetry"])
        .arg(&telem_path)
        .arg("--flight-dump")
        .arg(&dump_dir)
        .arg("e01")
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(
        err.contains("no flight-recorder trigger fired; no dump written"),
        "stderr: {err}"
    );
    assert!(!dump_dir.exists(), "no dump directory for a clean run");

    std::fs::remove_file(&telem_path).ok();
}

#[test]
fn snapshot_flags_must_come_as_a_pair_with_serve() {
    // --snapshot-at without --snapshot-out (and vice versa) is refused
    let out = exp_all()
        .args(["--serve", "seed=7,tenants=2", "--snapshot-at", "100us"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(
        err.contains("--snapshot-at and --snapshot-out must be given together"),
        "stderr: {err}"
    );

    let out = exp_all()
        .args(["--serve", "seed=7,tenants=2", "--snapshot-out", "x.snap"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));

    // snapshotting or resuming is meaningless without a serving run
    let out = exp_all()
        .args(["--snapshot-at", "100us", "--snapshot-out", "x.snap"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(
        err.contains("--snapshot-at/--resume need a --serve SPEC"),
        "stderr: {err}"
    );

    let out = exp_all()
        .args(["--resume", "x.snap"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));

    // a malformed checkpoint time is quoted back
    let out = exp_all()
        .args([
            "--serve",
            "seed=7,tenants=2",
            "--snapshot-at",
            "nonsense",
            "--snapshot-out",
            "x.snap",
        ])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(
        err.contains("bad --snapshot-at time `nonsense`"),
        "stderr: {err}"
    );

    // checkpointing and resuming in the same invocation is contradictory
    let out = exp_all()
        .args([
            "--serve",
            "seed=7,tenants=2",
            "--snapshot-at",
            "100us",
            "--snapshot-out",
            "x.snap",
            "--resume",
            "x.snap",
        ])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(
        err.contains("--snapshot-at and --resume are mutually exclusive"),
        "stderr: {err}"
    );
}

#[test]
fn resume_refuses_missing_and_corrupt_snapshots_with_exit_2() {
    let missing = tmp("never-written.snap");
    let out = exp_all()
        .args([
            "--serve",
            "seed=7,tenants=2,rate=120000,horizon=300us,batch=4",
        ])
        .arg("--resume")
        .arg(&missing)
        .arg("e01")
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("cannot read snapshot"), "stderr: {err}");

    // write a real checkpoint, corrupt one payload byte, and resume: the
    // checksum refusal must name the snapshot and exit 2, and no serving
    // table may be printed (nothing was partially applied).
    let snap_path = tmp("corrupt.snap");
    let spec = "seed=7,tenants=2,rate=120000,horizon=300us,batch=4";
    let out = exp_all()
        .args([
            "--scale",
            "quick",
            "--serve",
            spec,
            "--snapshot-at",
            "150us",
        ])
        .arg("--snapshot-out")
        .arg(&snap_path)
        .arg("e01")
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("wrote serving checkpoint"), "stderr: {err}");

    let mut bytes = std::fs::read(&snap_path).expect("snapshot written");
    let last = bytes.len() - 1;
    bytes[last] ^= 0x40;
    std::fs::write(&snap_path, &bytes).unwrap();

    let out = exp_all()
        .args(["--scale", "quick", "--serve", spec])
        .arg("--resume")
        .arg(&snap_path)
        .arg("e01")
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("refusing snapshot"), "stderr: {err}");
    assert!(err.contains("checksum"), "typed checksum error: {err}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        !stdout.contains("== serving =="),
        "no serving table after a refusal: {stdout}"
    );

    std::fs::remove_file(&snap_path).ok();
}

#[test]
fn snapshot_then_resume_round_trips_byte_identical_serving_json() {
    let snap_path = tmp("roundtrip.snap");
    let full_json = tmp("full.json");
    let resumed_json = tmp("resumed.json");
    let spec = "seed=11,tenants=3,rate=150000,horizon=300us,batch=4";

    let out = exp_all()
        .args(["--scale", "quick", "--serve", spec, "--serve-out"])
        .arg(&full_json)
        .arg("e01")
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let full_stdout = String::from_utf8(out.stdout).unwrap();

    let out = exp_all()
        .args([
            "--scale",
            "quick",
            "--serve",
            spec,
            "--snapshot-at",
            "120us",
        ])
        .arg("--snapshot-out")
        .arg(&snap_path)
        .arg("e01")
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = exp_all()
        .args(["--scale", "quick", "--serve", spec, "--serve-out"])
        .arg(&resumed_json)
        .arg("--resume")
        .arg(&snap_path)
        .arg("e01")
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let resumed_stdout = String::from_utf8(out.stdout).unwrap();

    assert_eq!(
        full_stdout, resumed_stdout,
        "resumed stdout must be byte-identical to the uninterrupted run"
    );
    assert_eq!(
        std::fs::read_to_string(&full_json).unwrap(),
        std::fs::read_to_string(&resumed_json).unwrap(),
        "resumed --serve-out must be byte-identical to the uninterrupted run"
    );

    std::fs::remove_file(&snap_path).ok();
    std::fs::remove_file(&full_json).ok();
    std::fs::remove_file(&resumed_json).ok();
}
