//! End-to-end tests for the `exp_all` binary: argument validation and
//! the `--trace`/`--metrics` observability outputs (the ISSUE acceptance
//! command, verbatim).

use std::path::PathBuf;
use std::process::Command;

use ecoscale_sim::json::{self, Value};

fn exp_all() -> Command {
    Command::new(env!("CARGO_BIN_EXE_exp_all"))
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("ecoscale-exp-all-{}-{name}", std::process::id()));
    p
}

#[test]
fn unknown_key_exits_2_with_key_list() {
    let out = exp_all().arg("e99").output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("unknown experiment `e99`"), "stderr: {err}");
    // usage lists every valid key
    for (key, _) in ecoscale_bench::EXPERIMENTS {
        assert!(err.contains(key), "stderr missing key {key}: {err}");
    }
}

#[test]
fn missing_flag_value_exits_2() {
    let out = exp_all().arg("--trace").output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let out = exp_all().arg("--scale").output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let out = exp_all().arg("--faults").output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(
        err.contains("--faults needs a campaign spec"),
        "stderr: {err}"
    );
    let out = exp_all().arg("--serve").output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(
        err.contains("--serve needs a serving spec"),
        "stderr: {err}"
    );
    let out = exp_all().arg("--serve-out").output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn malformed_serve_spec_exits_2_with_offending_pair() {
    let out = exp_all()
        .args(["--serve", "rate"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("error: bad --serve spec:"), "stderr: {err}");
    assert!(err.contains("`rate`"), "offending pair quoted: {err}");

    let out = exp_all()
        .args(["--serve", "seed=3,frobnicate=4"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("`frobnicate=4`"), "stderr: {err}");
    assert!(err.contains("usage: exp_all"), "stderr: {err}");
}

#[test]
fn serve_out_without_serve_exits_2() {
    let out = exp_all()
        .args(["--serve-out", "never-written.json"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(
        err.contains("--serve-out needs a --serve SPEC"),
        "stderr: {err}"
    );
    assert!(!std::path::Path::new("never-written.json").exists());
}

#[test]
fn serve_run_prints_slo_table_and_exports_conserved_json() {
    let serve_path = tmp("serve.json");
    let out = exp_all()
        .args([
            "--scale",
            "quick",
            "--serve",
            "seed=7,tenants=2,rate=120000,horizon=300us,batch=4",
            "--serve-out",
        ])
        .arg(&serve_path)
        .arg("e01")
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("== serving =="), "stdout: {stdout}");
    assert!(stdout.contains("goodput"), "stdout: {stdout}");

    let text = std::fs::read_to_string(&serve_path).unwrap();
    let doc = json::parse(&text).expect("serving JSON parses");
    let spec = doc.get("spec").and_then(Value::as_str).expect("spec field");
    assert!(spec.contains("tenants=2"), "spec echoed: {spec}");
    let serving = doc.get("serving").expect("serving section");
    assert_eq!(serving.get("conserved"), Some(&Value::Bool(true)));
    assert!(serving.get("submitted").and_then(Value::as_f64).unwrap() > 0.0);
    assert_eq!(
        serving
            .get("tenants")
            .and_then(Value::as_arr)
            .expect("tenants array")
            .len(),
        2
    );

    std::fs::remove_file(&serve_path).ok();
}

#[test]
fn missing_profile_value_exits_2_with_message() {
    let out = exp_all().arg("--profile").output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(
        err.contains("error: --profile needs a file path"),
        "stderr: {err}"
    );
    assert!(err.contains("usage: exp_all"), "stderr: {err}");
}

#[test]
fn profile_output_blames_sum_to_100_percent() {
    let profile_path = tmp("p.json");
    let out = exp_all()
        .args(["--scale", "quick", "--profile"])
        .arg(&profile_path)
        .arg("e01")
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("critical-path blame"), "stdout: {stdout}");
    assert!(stdout.contains("shard occupancy"), "stdout: {stdout}");
    // wall timers are host-dependent and must only reach stderr
    assert!(!stdout.contains("engine wall phases"), "stdout: {stdout}");
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("engine wall phases"), "stderr: {err}");

    let text = std::fs::read_to_string(&profile_path).unwrap();
    let doc = json::parse(&text).expect("profile JSON parses");
    let profile = doc.get("profile").expect("profile section");
    assert!(profile.get("total_ps").and_then(Value::as_f64).unwrap() > 0.0);
    let blame = profile
        .get("blame")
        .and_then(Value::as_arr)
        .expect("blame array");
    assert_eq!(blame.len(), 5, "one entry per layer");
    let total: f64 = blame
        .iter()
        .map(|b| b.get("percent").and_then(Value::as_f64).expect("percent"))
        .sum();
    assert!(
        (total - 100.0).abs() < 1e-9,
        "blame percentages sum to {total}"
    );
    let occ = doc.get("occupancy").expect("occupancy section");
    assert!(occ.get("events").and_then(Value::as_f64).unwrap() > 0.0);
    assert!(!occ
        .get("bands")
        .and_then(Value::as_arr)
        .expect("bands")
        .is_empty());
    // the wall section never leaks into the deterministic file
    assert!(doc.get("wall").is_none());

    std::fs::remove_file(&profile_path).ok();
}

#[test]
fn malformed_faults_spec_exits_2_with_offending_pair() {
    // a pair without `=` is rejected with the pair quoted back
    let out = exp_all()
        .args(["--faults", "crash", "e03"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("error: bad --faults spec:"), "stderr: {err}");
    assert!(err.contains("`crash`"), "offending pair quoted: {err}");

    // an unknown key is rejected the same way
    let out = exp_all()
        .args(["--faults", "seed=3,frobnicate=1ms"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("`frobnicate=1ms`"), "stderr: {err}");
    // usage follows so the operator sees the expected shape
    assert!(err.contains("usage: exp_all"), "stderr: {err}");
}

#[test]
fn trace_and_metrics_outputs_are_valid_and_populated() {
    let trace_path = tmp("t.json");
    let metrics_path = tmp("m.json");
    let out = exp_all()
        .args(["--scale", "quick", "--trace"])
        .arg(&trace_path)
        .arg("--metrics")
        .arg(&metrics_path)
        .arg("e03")
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("E3"), "e03 table printed: {stdout}");

    // --- trace: well-formed Chrome Trace Event JSON, monotonic per track
    let trace_text = std::fs::read_to_string(&trace_path).unwrap();
    let trace = json::parse(&trace_text).expect("trace JSON parses");
    let events = trace
        .get("traceEvents")
        .and_then(Value::as_arr)
        .expect("traceEvents array");
    assert!(!events.is_empty());
    let mut named_tracks = 0usize;
    let mut last_ts: std::collections::HashMap<u64, f64> = std::collections::HashMap::new();
    for ev in events {
        let ph = ev.get("ph").and_then(Value::as_str).expect("ph field");
        if ph == "M" {
            named_tracks += 1;
            continue;
        }
        let tid = ev.get("tid").and_then(Value::as_f64).expect("tid") as u64;
        let ts = ev.get("ts").and_then(Value::as_f64).expect("ts");
        let prev = last_ts.insert(tid, ts).unwrap_or(f64::NEG_INFINITY);
        assert!(ts >= prev, "track {tid} went back in time: {prev} -> {ts}");
    }
    assert!(named_tracks >= 3, "expected several named tracks");

    // --- metrics: non-zero SMMU, NoC, and scheduler instruments
    let metrics_text = std::fs::read_to_string(&metrics_path).unwrap();
    let metrics = json::parse(&metrics_text).expect("metrics JSON parses");
    for key in ["smmu.tlb_hits", "noc.messages", "sched.tasks"] {
        let v = metrics
            .get(key)
            .and_then(|m| m.get("value"))
            .and_then(Value::as_f64)
            .unwrap_or_else(|| panic!("metric {key} missing"));
        assert!(v > 0.0, "metric {key} is zero");
    }

    std::fs::remove_file(&trace_path).ok();
    std::fs::remove_file(&metrics_path).ok();
}
