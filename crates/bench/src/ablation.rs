//! Ablations of the design decisions flagged ⚗ in `DESIGN.md` §6:
//! forwarding discipline (A1), SMMU TLB sizing (A2), and the
//! reconfiguration daemon's benefit margin (A3).

use ecoscale_fpga::{Fabric, Floorplanner, Resources};
use ecoscale_hls::ModuleLibrary;
use ecoscale_mem::{PagePerms, Smmu, SmmuConfig, VirtAddr};
use ecoscale_noc::{CostModel, Network, NetworkConfig, NodeId, TreeTopology};
use ecoscale_runtime::{DaemonConfig, DeviceClass, ExecutionHistory, ReconfigDaemon};
use ecoscale_sim::pool;
use ecoscale_sim::report::{fnum, fratio, Table};
use ecoscale_sim::{Duration, Energy, SimRng, Time};

use crate::Scale;

/// A4 — uplink multiplicity: an all-to-all burst through a plain tree
/// trunk vs a fat tree with 2/4/8 parallel trunk links.
pub fn a4_fat_tree(scale: Scale) -> Table {
    use ecoscale_noc::{FatTreeTopology, Topology};
    let msgs = scale.pick(64, 512);
    let bytes = 16_384u64;
    let mut t = Table::new(
        "A4 (ablation): trunk uplink multiplicity under an all-to-all burst",
        &["uplinks", "last arrival", "mean queueing", "speedup vs 1"],
    );
    let sweeps = pool::parallel_map(vec![1u64, 2, 4, 8], |uplinks| {
        let topo = FatTreeTopology::new(&[8, 8], uplinks);
        let n = topo.num_nodes();
        let mut net = Network::new(topo, NetworkConfig::default());
        let mut rng = SimRng::seed_from(3);
        let mut last = Time::ZERO;
        let mut queueing = Duration::ZERO;
        for _ in 0..msgs {
            let s = rng.gen_range_usize(0, n);
            let mut d = rng.gen_range_usize(0, n);
            if d == s {
                d = (d + 1) % n;
            }
            let del = net.transfer(Time::ZERO, NodeId(s), NodeId(d), bytes);
            last = last.max(del.arrival);
            queueing += del.queueing;
        }
        (uplinks, last.saturating_since(Time::ZERO), queueing)
    });
    let base = sweeps.first().expect("uplink sweep non-empty").1;
    for (uplinks, span, queueing) in sweeps {
        t.row_owned(vec![
            uplinks.to_string(),
            format!("{span}"),
            format!("{}", queueing / msgs as u64),
            fratio(base / span),
        ]);
    }
    t
}

/// A1 — forwarding discipline: virtual cut-through vs store-and-forward
/// across message sizes and hop counts.
pub fn a1_cut_through(scale: Scale) -> Table {
    let sizes: &[u64] = scale.pick(&[64, 65_536][..], &[64, 4_096, 65_536, 1 << 20][..]);
    let mut t = Table::new(
        "A1 (ablation): virtual cut-through vs store-and-forward",
        &[
            "bytes",
            "hops",
            "store-and-forward",
            "cut-through",
            "speedup",
        ],
    );
    let combos: Vec<(u64, usize, u32)> = sizes
        .iter()
        .flat_map(|&bytes| [(bytes, 1usize, 2u32), (bytes, 63, 6)])
        .collect();
    let rows = pool::parallel_map(combos, |(bytes, dst, hops)| {
        let mk = |cut_through| {
            Network::new(
                TreeTopology::new(&[4, 4, 4]),
                NetworkConfig {
                    cost: CostModel::ecoscale_defaults(),
                    cut_through,
                },
            )
        };
        let sf = mk(false).transfer(Time::ZERO, NodeId(0), NodeId(dst), bytes);
        let ct = mk(true).transfer(Time::ZERO, NodeId(0), NodeId(dst), bytes);
        let sf_l = sf.arrival.saturating_since(Time::ZERO);
        let ct_l = ct.arrival.saturating_since(Time::ZERO);
        vec![
            bytes.to_string(),
            hops.to_string(),
            format!("{sf_l}"),
            format!("{ct_l}"),
            fratio(sf_l / ct_l),
        ]
    });
    for row in rows {
        t.row_owned(row);
    }
    t
}

/// A2 — SMMU TLB capacity: hit rate and mean translation latency on an
/// accelerator streaming over a working set with 80/20 locality.
pub fn a2_tlb_size(scale: Scale) -> Table {
    let capacities: &[usize] = scale.pick(&[8, 64][..], &[8, 16, 32, 64, 128, 256][..]);
    let accesses = scale.pick(5_000, 50_000);
    let working_set_pages = 128u64;
    let mut t = Table::new(
        "A2 (ablation): SMMU TLB capacity vs hit rate (128-page set, 80/20 locality)",
        &["tlb entries", "hit rate", "mean translation", "walks"],
    );
    let rows = pool::parallel_map(capacities.to_vec(), |cap| {
        let cfg = SmmuConfig {
            tlb_entries: cap,
            ..SmmuConfig::default()
        };
        let mut smmu = Smmu::new(cfg);
        for p in 0..working_set_pages {
            smmu.map(
                VirtAddr::from_page(p, 0),
                0x1000 + p,
                0x8000 + p,
                PagePerms::RW,
            )
            .expect("fresh mapping");
        }
        let mut rng = SimRng::seed_from(5);
        let mut total = Duration::ZERO;
        for _ in 0..accesses {
            // 80% of accesses hit the hottest 20% of pages
            let page = if rng.gen_bool(0.8) {
                rng.gen_range_u64(0, working_set_pages / 5)
            } else {
                rng.gen_range_u64(0, working_set_pages)
            };
            let (_, lat) = smmu
                .translate(VirtAddr::from_page(page, 8), PagePerms::READ)
                .expect("mapped");
            total += lat;
        }
        let hits = smmu.tlb_hits() as f64;
        let misses = smmu.tlb_misses() as f64;
        vec![
            cap.to_string(),
            fnum(hits / (hits + misses)),
            format!("{}", total / accesses as u64),
            fnum(misses),
        ]
    });
    for row in rows {
        t.row_owned(row);
    }
    t
}

/// A3 — daemon benefit margin: a low margin reconfigures eagerly (and
/// thrashes on bursty call patterns); a high margin leaves speedups on
/// the table. Sweeps the margin over a two-phase trace that alternates
/// between two functions that do not fit the fabric together.
pub fn a3_benefit_margin(scale: Scale) -> Table {
    let phases = scale.pick(6, 12);
    let calls_per_phase = scale.pick(4, 6);
    let mut t = Table::new(
        "A3 (ablation): daemon benefit margin on an alternating two-kernel trace",
        &[
            "margin",
            "reconfigs",
            "reconfig time",
            "estimated total time",
        ],
    );
    // two kernels, each ~full fabric: loading one evicts the other
    let k1 = ecoscale_hls::parse_kernel(ecoscale_apps::blackscholes::KERNEL).expect("parses");
    let k2 = ecoscale_hls::parse_kernel(ecoscale_apps::montecarlo::KERNEL).expect("parses");
    let lib = ModuleLibrary::synthesize(
        &[
            (k1, ecoscale_apps::blackscholes::kernel_hints(65_536)),
            (k2, ecoscale_apps::montecarlo::kernel_hints(65_536)),
        ],
        Resources::new(3900, 64, 200),
    )
    .expect("synthesizable");
    let names = ["blackscholes", "mc_payoff"];
    // small per-call gaps and short phases so the reconfiguration cost
    // (~0.75 ms) is commensurate with the phase benefit and the margin
    // actually gates the decision
    let sw_time = [Duration::from_us(480), Duration::from_us(420)];
    let hw_time = Duration::from_us(280);

    let rows = pool::parallel_map(vec![0.2f64, 1.5, 8.0, 1000.0], |margin| {
        let mut daemon = ReconfigDaemon::new(
            DaemonConfig {
                period: Duration::from_us(1),
                benefit_margin: margin,
                ..DaemonConfig::default()
            },
            // fabric fits exactly one of the two modules
            Floorplanner::new(Fabric::zynq_like(72, 80)),
        );
        let mut history = ExecutionHistory::new(256);
        let mut now = Time::ZERO;
        let mut total = Duration::ZERO;
        for phase in 0..phases {
            let f = phase % 2;
            for _ in 0..calls_per_phase {
                let id = lib.get(names[f]).expect("in library").module.id();
                let on_hw = daemon.is_loaded(id);
                let dt = if on_hw { hw_time } else { sw_time[f] };
                history.record(
                    names[f],
                    if on_hw {
                        DeviceClass::FpgaLocal
                    } else {
                        DeviceClass::Cpu
                    },
                    vec![65_536.0],
                    dt,
                    Energy::ZERO,
                );
                now += dt;
                total += dt;
                // the daemon itself evicts lower-benefit residents when
                // the fabric cannot host both modules
                daemon.evaluate(now, &history, &lib);
            }
        }
        let stats = daemon.stats();
        vec![
            fnum(margin),
            stats.loads.to_string(),
            format!("{}", stats.busy),
            format!("{}", total + stats.busy),
        ]
    });
    for row in rows {
        t.row_owned(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ratio(cell: &str) -> f64 {
        cell.trim_end_matches('x').parse().unwrap()
    }

    #[test]
    fn a4_more_uplinks_cut_queueing() {
        let t = a4_fat_tree(Scale::Quick);
        let first = parse_ratio(&t.cells(0).unwrap()[3]);
        let last = parse_ratio(&t.cells(t.len() - 1).unwrap()[3]);
        assert!((first - 1.0).abs() < 1e-9);
        assert!(last > 1.3, "8 uplinks should beat 1: {last}");
    }

    #[test]
    fn a1_cut_through_wins_more_on_long_paths() {
        let t = a1_cut_through(Scale::Quick);
        // big message, 6 hops is the last row: biggest win
        let last = parse_ratio(&t.cells(t.len() - 1).unwrap()[4]);
        let first = parse_ratio(&t.cells(0).unwrap()[4]);
        assert!(last > first);
        assert!(last > 1.5);
    }

    #[test]
    fn a2_bigger_tlb_helps_until_working_set_fits() {
        let t = a2_tlb_size(Scale::Full);
        let rates: Vec<f64> = (0..t.len())
            .map(|i| t.cells(i).unwrap()[1].parse().unwrap())
            .collect();
        assert!(rates.windows(2).all(|w| w[1] >= w[0] - 1e-9));
        // 256 entries hold the whole 128-page set: near-perfect
        assert!(rates.last().unwrap() > &0.99);
        // 8 entries thrash
        assert!(rates[0] < 0.8);
    }

    #[test]
    fn a3_margin_gates_reconfiguration_rate() {
        let t = a3_benefit_margin(Scale::Quick);
        let parse_reconfigs = |i: usize| -> u64 { t.cells(i).unwrap()[1].parse().unwrap() };
        let eager = parse_reconfigs(0); // margin 0.2
        let mid = parse_reconfigs(2); // margin 8
        let huge = parse_reconfigs(3); // margin 1000
        assert!(
            eager >= parse_reconfigs(1),
            "lower margin loads at least as often"
        );
        assert!(
            eager > mid,
            "eager ({eager}) must thrash more than mid ({mid})"
        );
        assert_eq!(huge, 0, "a huge margin never reconfigures");
    }
}
