//! Regenerates experiment E16 (+E16b) from EXPERIMENTS.md at full scale.

fn main() {
    println!(
        "{}",
        ecoscale_bench::resilience_exp::e16_resilience(ecoscale_bench::Scale::Full)
    );
    println!(
        "{}",
        ecoscale_bench::resilience_exp::e16b_fabric(ecoscale_bench::Scale::Full)
    );
}
