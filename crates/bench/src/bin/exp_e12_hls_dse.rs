//! Regenerates experiment E12 from EXPERIMENTS.md at full scale.

fn main() {
    println!(
        "{}",
        ecoscale_bench::fpga_exp::e12_hls_dse(ecoscale_bench::Scale::Full)
    );
}
