//! Regenerates experiment E4 from EXPERIMENTS.md at full scale.

fn main() {
    println!(
        "{}",
        ecoscale_bench::accel::e04_smmu(ecoscale_bench::Scale::Full)
    );
}
