//! ServePlane bench artifact: batching win, SLO tails, and graceful
//! degradation under faults.
//!
//! ```text
//! bench_serve [--quick] [--out PATH]        # default PATH: BENCH_serve.json
//! ```
//!
//! Runs the S1 serving workload ([`ecoscale_bench::serve_exp::serving_config`]: 4
//! tenants over the fir+blackscholes mix at a saturating offered rate)
//! three ways — batching dispatcher on, batching off at the identical
//! offered load, and batching on under an E16-style SEU/SMMU fault
//! campaign — and writes:
//!
//! ```text
//! {"bench":"serve","scale":...,"spec":...,"spec_off":...,"faults":...,
//!  "items":...,                            // workload
//!  "batching_on":{...},"batching_off":{...},"faulted":{...},
//!  "goodput_gain":...,"p99_degradation":...,"snapshot_bytes":...}
//! ```
//!
//! Every field is a pure function of the seeded simulation —
//! byte-identical at any `ECOSCALE_THREADS` or `ECOSCALE_SHARDS` — so
//! `bench_regress` compares the whole document exactly. The binary
//! itself enforces the serving acceptance bar: requests conserved on
//! all three runs, zero requests lost under faults, a strict batching
//! goodput win, bounded p99 growth under the campaign, and a mid-horizon
//! SnapPlane checkpoint whose resumed continuation reproduces the
//! uninterrupted serving export byte for byte (its size is the pinned
//! `snapshot_bytes` row).

use std::process::ExitCode;

use ecoscale_bench::serve_exp::serving_config;
use ecoscale_bench::Scale;
use ecoscale_core::{run_serve_sim, serve_checkpoint, serve_resume, ServeOutcome};
use ecoscale_sim::json::{self, escape, fmt_f64};
use ecoscale_sim::{CampaignSpec, Duration, Time};

/// The E16-style campaign the faulted lane runs under.
const FAULTS: &str = "seed=5,seu=200us,smmu=0.002,scrub=400us";

/// Factor the faulted p99 may grow over the clean batched p99 before
/// the run counts as a stall rather than graceful degradation.
const P99_BOUND: f64 = 10.0;

fn usage() {
    eprintln!("usage: bench_serve [--quick] [--out PATH]");
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Full;
    let mut out = "BENCH_serve.json".to_owned();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => scale = Scale::Quick,
            "--out" => match it.next() {
                Some(p) => out = p.clone(),
                None => {
                    usage();
                    return ExitCode::from(2);
                }
            },
            _ => {
                usage();
                return ExitCode::from(2);
            }
        }
    }

    let cfg = serving_config(350_000, scale.pick(500, 1000));
    let mut cfg_off = cfg.clone();
    cfg_off.spec = cfg.spec.batching_off();
    let mut cfg_faulted = cfg.clone();
    cfg_faulted.faults = CampaignSpec::parse(FAULTS).expect("campaign is well-formed");

    let on = run_serve_sim(&cfg);
    let off = run_serve_sim(&cfg_off);
    let faulted = run_serve_sim(&cfg_faulted);

    for (name, run) in [("on", &on), ("off", &off), ("faulted", &faulted)] {
        if !run.serving.conserved() || run.lost > 0 || run.violations > 0 {
            eprintln!(
                "bench_serve: `{name}` run broke conservation (lost={}, violations={})",
                run.lost, run.violations
            );
            return ExitCode::FAILURE;
        }
    }
    let goodput_gain = on.serving.goodput() as f64 / off.serving.goodput().max(1) as f64;
    if goodput_gain <= 1.0 {
        eprintln!(
            "bench_serve: batching did not beat no-batching: {} vs {}",
            on.serving.goodput(),
            off.serving.goodput()
        );
        return ExitCode::FAILURE;
    }
    let p99_degradation = faulted.serving.latency.percentile(99.0) as f64
        / on.serving.latency.percentile(99.0).max(1) as f64;
    if p99_degradation > P99_BOUND {
        eprintln!("bench_serve: faulted p99 grew {p99_degradation:.2}x (bound {P99_BOUND}x)");
        return ExitCode::FAILURE;
    }

    // SnapPlane row: checkpoint the batched lane mid-horizon. The byte
    // size is a pure function of the seeded simulation, so bench_regress
    // pins it exactly, and the resumed continuation must reproduce the
    // uninterrupted serving export byte for byte.
    let at = Time::ZERO + Duration::from_us(scale.pick(250, 500));
    let snap = serve_checkpoint(&cfg, at);
    match serve_resume(&cfg, &snap) {
        Ok(resumed) if resumed.serving.to_json() == on.serving.to_json() => {}
        Ok(_) => {
            eprintln!("bench_serve: resume at {at} diverged from the uninterrupted run");
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("bench_serve: checkpoint refused on resume: {e}");
            return ExitCode::FAILURE;
        }
    }

    let mut s = String::with_capacity(4096);
    s.push_str("{\"bench\":\"serve\",\"scale\":\"");
    s.push_str(scale.pick("quick", "full"));
    s.push_str("\",\"spec\":");
    escape(&mut s, &cfg.spec.to_string());
    s.push_str(",\"spec_off\":");
    escape(&mut s, &cfg_off.spec.to_string());
    s.push_str(",\"faults\":");
    escape(&mut s, FAULTS);
    s.push_str(",\"items\":");
    s.push_str(&cfg.items.to_string());
    for (key, run) in [
        ("batching_on", &on),
        ("batching_off", &off),
        ("faulted", &faulted),
    ] {
        s.push_str(",\"");
        s.push_str(key);
        s.push_str("\":");
        s.push_str(&run.serving.to_json());
    }
    s.push_str(",\"goodput_gain\":");
    fmt_f64(&mut s, goodput_gain);
    s.push_str(",\"p99_degradation\":");
    fmt_f64(&mut s, p99_degradation);
    s.push_str(",\"snapshot_bytes\":");
    s.push_str(&snap.len().to_string());
    s.push('}');

    if let Err(e) = std::fs::write(&out, &s) {
        eprintln!("bench_serve: write {out}: {e}");
        return ExitCode::FAILURE;
    }
    if json::parse(&s).is_err() {
        eprintln!("bench_serve: emitted invalid JSON");
        return ExitCode::FAILURE;
    }
    for (name, run) in [
        ("batching on", &on as &ServeOutcome),
        ("batching off", &off),
        ("faulted", &faulted),
    ] {
        eprintln!("-- {name} --");
        eprintln!("{}", run.serving.to_table());
    }
    eprintln!(
        "goodput gain {goodput_gain:.2}x, faulted p99 {p99_degradation:.2}x, \
         shed rate {:.1}% -> {:.1}%",
        100.0 * on.serving.shed_rate(),
        100.0 * faulted.serving.shed_rate()
    );
    eprintln!("wrote {out}");
    ExitCode::SUCCESS
}
