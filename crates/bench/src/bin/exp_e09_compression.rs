//! Regenerates experiment E9 from EXPERIMENTS.md at full scale.

fn main() {
    println!(
        "{}",
        ecoscale_bench::fpga_exp::e09_compression(ecoscale_bench::Scale::Full)
    );
}
