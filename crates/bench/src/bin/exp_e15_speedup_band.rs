//! Regenerates experiment E15 from EXPERIMENTS.md at full scale.

fn main() {
    println!(
        "{}",
        ecoscale_bench::accel::e15_speedup_band(ecoscale_bench::Scale::Full)
    );
}
