//! Regenerates experiment E6 from EXPERIMENTS.md at full scale.

fn main() {
    println!(
        "{}",
        ecoscale_bench::accel::e06_unilogic(ecoscale_bench::Scale::Full)
    );
}
