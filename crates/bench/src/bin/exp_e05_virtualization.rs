//! Regenerates experiment E5 from EXPERIMENTS.md at full scale.

fn main() {
    println!(
        "{}",
        ecoscale_bench::accel::e05_virtualization(ecoscale_bench::Scale::Full)
    );
}
