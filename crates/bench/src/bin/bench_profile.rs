//! ProfPlane bench artifact: critical-path blame plus shard occupancy.
//!
//! ```text
//! bench_profile [--quick] [--out PATH]      # default PATH: BENCH_profile.json
//! ```
//!
//! Runs the five-phase observability capture
//! ([`ecoscale_bench::obs::capture_profile`]), extracts the
//! critical-path blame split from the merged trace, and writes:
//!
//! ```text
//! {"bench":"profile","scale":...,       // workload
//!  "profile":{...},                     // blame per layer (deterministic)
//!  "occupancy":{...},                   // shard bands (deterministic)
//!  "imbalance_index":...,               // widest band's imbalance
//!  "wall":{...}}                        // engine phase timers (host wall clock)
//! ```
//!
//! Everything except the `wall` section is a pure function of the
//! seeded simulation — byte-identical at any `ECOSCALE_THREADS` or
//! `ECOSCALE_SHARDS` — so `bench_regress` compares it exactly and
//! skips the `wall` subtree. The blame and occupancy tables are
//! printed to stderr for operators.

use std::process::ExitCode;

use ecoscale_bench::obs::capture_profile;
use ecoscale_bench::Scale;
use ecoscale_sim::json::{self, fmt_f64};
use ecoscale_sim::prof;

fn usage() {
    eprintln!("usage: bench_profile [--quick] [--out PATH]");
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Full;
    let mut out = "BENCH_profile.json".to_owned();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => scale = Scale::Quick,
            "--out" => match it.next() {
                Some(p) => out = p.clone(),
                None => {
                    usage();
                    return ExitCode::from(2);
                }
            },
            _ => {
                usage();
                return ExitCode::from(2);
            }
        }
    }

    let pc = capture_profile(scale);
    let report = prof::critical_path(&pc.capture.trace);

    let mut s = String::with_capacity(1024);
    s.push_str("{\"bench\":\"profile\",\"scale\":\"");
    s.push_str(scale.pick("quick", "full"));
    s.push_str("\",\"profile\":");
    s.push_str(&report.to_json());
    s.push_str(",\"occupancy\":");
    s.push_str(&pc.occupancy.to_json());
    s.push_str(",\"imbalance_index\":");
    fmt_f64(&mut s, pc.occupancy.imbalance_index());
    s.push_str(",\"wall\":");
    s.push_str(&pc.wall.to_json());
    s.push('}');

    if let Err(e) = std::fs::write(&out, &s) {
        eprintln!("bench_profile: write {out}: {e}");
        return ExitCode::FAILURE;
    }
    if json::parse(&s).is_err() {
        eprintln!("bench_profile: emitted invalid JSON");
        return ExitCode::FAILURE;
    }
    eprintln!("{}", report.to_table());
    eprintln!("{}", pc.occupancy.to_table());
    eprintln!("{}", pc.wall.to_table());
    eprintln!("wrote {out}");
    ExitCode::SUCCESS
}
