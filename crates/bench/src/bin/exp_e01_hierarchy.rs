//! Regenerates experiment E1 from EXPERIMENTS.md at full scale.

fn main() {
    println!(
        "{}",
        ecoscale_bench::arch::e01_hierarchy(ecoscale_bench::Scale::Full)
    );
}
