//! Regenerates experiment E8 from EXPERIMENTS.md at full scale.

fn main() {
    println!(
        "{}",
        ecoscale_bench::runtime_exp::e08_lazy(ecoscale_bench::Scale::Full)
    );
}
