//! Seeded configuration fuzzer for the whole stack.
//!
//! ```text
//! fuzz_configs [--count N] [--start N] [--inject-violation]
//! fuzz_configs --repro 'seed=..,topo=..,sched=..,faults=..,tasks=..,workers=..,threads=..'
//! ```
//!
//! Sweeps `--count` deterministic configurations (default 64, starting at
//! index `--start`) over topology × scheduler policy × fault campaign ×
//! scale × `ECOSCALE_THREADS`. Every configuration runs with all
//! invariants armed and its metrics export compared byte-for-byte between
//! `ECOSCALE_THREADS=1` and the configuration's thread count.
//!
//! On failure the configuration is shrunk to a minimal still-failing one
//! and a single-line `--repro` command is printed; exit code 1. Clean
//! sweeps print a one-line summary; exit code 0. Usage errors exit 2.
//!
//! `--inject-violation` arms a test-only deliberate violation
//! (`check.sabotage`, fires at `tasks >= 24`) to prove the
//! catch → shrink → repro pipeline end to end.

use std::process::ExitCode;

use ecoscale_bench::fuzz::{run_config, shrink_config, FuzzConfig};

fn usage() {
    eprintln!("usage: fuzz_configs [--count N] [--start N] [--inject-violation] [--repro SPEC]");
    eprintln!("  --count N            configurations to sweep (default 64)");
    eprintln!("  --start N            first sweep index (default 0)");
    eprintln!("  --inject-violation   arm the test-only check.sabotage invariant");
    eprintln!("  --repro SPEC         re-run one configuration from its spec string");
}

fn report_failure(cfg: &FuzzConfig, detail: &str, inject: bool) {
    println!("FAIL config `{cfg}`: {detail}");
    let min = shrink_config(cfg, |c| run_config(c, inject).is_err());
    if min != *cfg {
        match run_config(&min, inject) {
            Err(e) => println!("shrunk to `{min}`: {}", e.detail),
            Ok(_) => println!("shrunk to `{min}` (no longer fails; reporting original)"),
        }
    }
    let flag = if inject { " --inject-violation" } else { "" };
    println!("repro: fuzz_configs --repro '{min}'{flag}");
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut count = 64u64;
    let mut start = 0u64;
    let mut inject = false;
    let mut repro: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-h" | "--help" => {
                usage();
                return ExitCode::SUCCESS;
            }
            "--inject-violation" => inject = true,
            "--count" | "--start" | "--repro" => {
                let Some(v) = it.next() else {
                    eprintln!("error: {arg} needs a value");
                    usage();
                    return ExitCode::from(2);
                };
                match arg.as_str() {
                    "--count" => match v.parse() {
                        Ok(n) => count = n,
                        Err(e) => {
                            eprintln!("error: bad --count `{v}`: {e}");
                            usage();
                            return ExitCode::from(2);
                        }
                    },
                    "--start" => match v.parse() {
                        Ok(n) => start = n,
                        Err(e) => {
                            eprintln!("error: bad --start `{v}`: {e}");
                            usage();
                            return ExitCode::from(2);
                        }
                    },
                    _ => repro = Some(v.clone()),
                }
            }
            other => {
                eprintln!("error: unknown argument `{other}`");
                usage();
                return ExitCode::from(2);
            }
        }
    }

    if let Some(spec) = repro {
        let cfg = match FuzzConfig::parse(&spec) {
            Ok(cfg) => cfg,
            Err(e) => {
                eprintln!("error: bad --repro spec: {e}");
                usage();
                return ExitCode::from(2);
            }
        };
        return match run_config(&cfg, inject) {
            Ok(r) => {
                println!(
                    "repro `{cfg}`: clean ({} invariant checks, 0 violations)",
                    r.checks_run
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                report_failure(&cfg, &e.detail, inject);
                ExitCode::FAILURE
            }
        };
    }

    let mut total_checks = 0u64;
    for i in start..start.saturating_add(count) {
        let cfg = FuzzConfig::from_index(i);
        match run_config(&cfg, inject) {
            Ok(r) => total_checks += r.checks_run,
            Err(e) => {
                println!("FAIL at sweep index {i}");
                report_failure(&cfg, &e.detail, inject);
                return ExitCode::FAILURE;
            }
        }
    }
    println!(
        "fuzz_configs: {count} configs clean (indices {start}..{}, {total_checks} invariant checks, 0 violations)",
        start.saturating_add(count)
    );
    ExitCode::SUCCESS
}
