//! Regenerates the design-decision ablations A1-A3 at full scale.

use ecoscale_bench::Scale;

fn main() {
    let s = Scale::Full;
    println!("{}", ecoscale_bench::ablation::a1_cut_through(s));
    println!("{}", ecoscale_bench::ablation::a2_tlb_size(s));
    println!("{}", ecoscale_bench::ablation::a3_benefit_margin(s));
    println!("{}", ecoscale_bench::ablation::a4_fat_tree(s));
}
