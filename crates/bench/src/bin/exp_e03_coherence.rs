//! Regenerates experiment E3 from EXPERIMENTS.md at full scale.

fn main() {
    println!(
        "{}",
        ecoscale_bench::arch::e03_coherence(ecoscale_bench::Scale::Full)
    );
}
