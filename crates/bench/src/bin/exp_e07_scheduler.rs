//! Regenerates experiment E7 from EXPERIMENTS.md at full scale.

fn main() {
    println!(
        "{}",
        ecoscale_bench::runtime_exp::e07_scheduler(ecoscale_bench::Scale::Full)
    );
}
