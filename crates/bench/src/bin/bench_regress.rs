//! Perf-regression gate: compares a fresh `BENCH_*.json` against a
//! committed baseline.
//!
//! ```text
//! bench_regress [--tolerance RATIO] BASELINE.json FRESH.json
//! ```
//!
//! Field classes and the default 3.0× wall-clock ratio tolerance are
//! documented in [`ecoscale_bench::regress`]: deterministic fields
//! (event counts, rounds, critical-path speedups) must reproduce the
//! baseline exactly, wall-clock fields may drift within the tolerance,
//! and workload parameters must match or the comparison is refused.
//!
//! Exit codes: `0` — no regression; `1` — at least one field regressed
//! (each printed on stdout); `2` — the documents cannot be compared
//! (bad usage, unreadable file, invalid JSON, different bench kind or
//! workload, shape mismatch).

use std::process::ExitCode;

use ecoscale_bench::regress::{compare, DEFAULT_WALL_TOLERANCE};
use ecoscale_sim::json;

fn usage() {
    eprintln!("usage: bench_regress [--tolerance RATIO] BASELINE.json FRESH.json");
    eprintln!("  --tolerance RATIO   wall-clock ratio tolerance, >= 1.0 (default {DEFAULT_WALL_TOLERANCE})");
}

fn load(path: &str) -> Result<json::Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    json::parse(&text).map_err(|e| format!("`{path}` is not valid JSON: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut tolerance = DEFAULT_WALL_TOLERANCE;
    let mut paths: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-h" | "--help" => {
                usage();
                return ExitCode::SUCCESS;
            }
            "--tolerance" => {
                let parsed = it.next().and_then(|v| v.parse::<f64>().ok());
                match parsed {
                    Some(t) if t >= 1.0 => tolerance = t,
                    _ => {
                        eprintln!("error: --tolerance needs a ratio >= 1.0");
                        usage();
                        return ExitCode::from(2);
                    }
                }
            }
            p if p.starts_with('-') => {
                eprintln!("error: unknown flag `{p}`");
                usage();
                return ExitCode::from(2);
            }
            p => paths.push(p.to_owned()),
        }
    }
    let [baseline_path, fresh_path] = paths.as_slice() else {
        eprintln!("error: need exactly two files (baseline, fresh)");
        usage();
        return ExitCode::from(2);
    };
    let (baseline, fresh) = match (load(baseline_path), load(fresh_path)) {
        (Ok(b), Ok(f)) => (b, f),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    match compare(&baseline, &fresh, tolerance) {
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
        Ok(cmp) if cmp.regressions.is_empty() => {
            eprintln!(
                "bench_regress: ok — {} fields within tolerance ({tolerance}x wall) vs {baseline_path}",
                cmp.checked
            );
            ExitCode::SUCCESS
        }
        Ok(cmp) => {
            for r in &cmp.regressions {
                println!("regression: {r}");
            }
            eprintln!(
                "bench_regress: {} regression(s) vs {baseline_path} ({} fields checked)",
                cmp.regressions.len(),
                cmp.checked
            );
            ExitCode::FAILURE
        }
    }
}
