//! Regenerates experiment E14 from EXPERIMENTS.md at full scale.

fn main() {
    println!(
        "{}",
        ecoscale_bench::scale_exp::e14_hybrid(ecoscale_bench::Scale::Full)
    );
}
