//! Regenerates experiment E2 from EXPERIMENTS.md at full scale.

fn main() {
    println!(
        "{}",
        ecoscale_bench::arch::e02_task_vs_data(ecoscale_bench::Scale::Full)
    );
}
