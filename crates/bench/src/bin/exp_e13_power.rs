//! Regenerates experiment E13 from EXPERIMENTS.md at full scale.

fn main() {
    println!(
        "{}",
        ecoscale_bench::scale_exp::e13_power(ecoscale_bench::Scale::Full)
    );
}
