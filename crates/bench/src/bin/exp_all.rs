//! Regenerates every experiment table (E1-E15, A1-A4).
//!
//! `cargo run --release -p ecoscale-bench --bin exp_all` produces the
//! outputs quoted in EXPERIMENTS.md. Tables are computed concurrently on
//! the `ecoscale_sim::pool` work pool (width: `ECOSCALE_THREADS`, default
//! all cores) and printed in the fixed E1→A4 order, so the output is
//! byte-identical at any thread count.
//!
//! ```text
//! exp_all [--scale quick|full] [KEY...]
//! exp_all --scale quick e03 e09    # just E3 and E9, reduced sweeps
//! ```

use std::process::ExitCode;

use ecoscale_bench::{Scale, EXPERIMENTS};
use ecoscale_sim::pool;

fn usage() {
    eprintln!("usage: exp_all [--scale quick|full] [KEY...]");
    eprintln!("  --scale quick|full   sweep sizes (default: full)");
    eprintln!("  KEY                  experiment filter, e.g. `exp_all e03 e09`");
    eprint!("keys:");
    for (key, _) in EXPERIMENTS {
        eprint!(" {key}");
    }
    eprintln!();
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Full;
    let mut filters: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-h" | "--help" => {
                usage();
                return ExitCode::SUCCESS;
            }
            "--scale" => {
                let Some(v) = it.next() else {
                    eprintln!("error: --scale needs a value (quick|full)");
                    usage();
                    return ExitCode::from(2);
                };
                scale = match v.as_str() {
                    "quick" => Scale::Quick,
                    "full" => Scale::Full,
                    other => {
                        eprintln!("error: unknown scale `{other}` (want quick|full)");
                        usage();
                        return ExitCode::from(2);
                    }
                };
            }
            key => filters.push(key.to_ascii_lowercase()),
        }
    }
    for f in &filters {
        if !EXPERIMENTS.iter().any(|&(key, _)| key == f) {
            eprintln!("error: unknown experiment `{f}`");
            usage();
            return ExitCode::from(2);
        }
    }
    let selected: Vec<_> = EXPERIMENTS
        .iter()
        .filter(|&&(key, _)| filters.is_empty() || filters.iter().any(|f| f == key))
        .copied()
        .collect();
    // Whole tables run concurrently; printing happens afterwards in
    // registry (E1→A4) order.
    let tables = pool::parallel_map(selected, |(_, run)| run(scale));
    for table in tables {
        println!("{table}");
    }
    ExitCode::SUCCESS
}
