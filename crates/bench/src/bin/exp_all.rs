//! Regenerates every experiment table (E1-E16, A1-A4, P1, S1).
//!
//! `cargo run --release -p ecoscale-bench --bin exp_all` produces the
//! outputs quoted in EXPERIMENTS.md. Tables are computed concurrently on
//! the `ecoscale_sim::pool` work pool (width: `ECOSCALE_THREADS`, default
//! all cores) and printed in the fixed E1→A4 order, so the output is
//! byte-identical at any thread count.
//!
//! ```text
//! exp_all [--scale quick|full] [--trace FILE] [--metrics FILE] [--profile FILE]
//!         [--telemetry FILE] [--flight-dump DIR]
//!         [--faults SPEC] [--serve SPEC] [--serve-out FILE] [KEY...]
//! exp_all --scale quick e03 e09    # just E3 and E9, reduced sweeps
//! exp_all --scale quick --trace t.json --metrics m.json e03
//! exp_all --scale quick --profile p.json e03
//! exp_all --faults seed=3,crash=1ms,seu=400us,scrub=800us e16 e16b
//! exp_all --serve seed=7,rate=200000,horizon=1ms --serve-out s.json s1
//! exp_all --serve seed=7,rate=200000,horizon=1ms --telemetry t.json --flight-dump dump
//! ```
//!
//! `--trace` writes a Chrome Trace Event JSON file (open in Perfetto or
//! `chrome://tracing`); `--metrics` writes the instrument registry as
//! JSON. Any of the three capture flags triggers one full-stack
//! observability capture (`ecoscale_bench::obs`) alongside the selected
//! experiments, so the files always cover SMMU, UNIMEM/NoC, scheduler,
//! reconfiguration, and sharded-engine activity regardless of which
//! experiment keys ran.
//!
//! `--profile` writes the ProfPlane report over that capture: the
//! critical-path blame split plus the shard-occupancy bands, as one
//! JSON object (`{"profile":...,"occupancy":...}`). Both sections are
//! deterministic — the file is byte-identical at any `ECOSCALE_THREADS`
//! or `ECOSCALE_SHARDS` — and the rendered tables go to stdout. The
//! engine's host-dependent wall-clock phase timers go to stderr only.
//!
//! `--telemetry` writes the TelePlane capture (DESIGN.md §15): the
//! merged serving window series, one flight recorder per serving cell,
//! and the sharded engine's per-safe-window series, as one
//! deterministic JSON object (`{"serve":...,"shard":...}`). When a
//! `--serve` run is present its cells are armed and provide the serving
//! half; otherwise the canonical `bench::obs` serving campaign runs.
//! `--flight-dump DIR` (requires `--telemetry`) writes the anomaly
//! evidence bundle when a flight-recorder trigger fired: `flight.json`
//! (trigger + event rings and series tails) plus, for a `--serve` run,
//! `snapshot.bin` — a SnapPlane checkpoint at the first trigger's
//! instant, restorable with `--resume`.
//!
//! `--faults` takes a seeded [`CampaignSpec`] (`key=value,...`); it
//! replaces the base campaign the E16/E16b sweeps scale from and, when
//! combined with `--trace`/`--metrics`, also folds a faulted capture
//! (`capture_fault_campaign`) into the exported files.
//!
//! `--serve` takes a seeded [`ServeSpec`] (`key=value,...`, e.g.
//! `seed=7,tenants=4,rate=200000,horizon=1ms,batch=8`) and runs one
//! ServePlane simulation over the `apps` serving mix after the selected
//! tables, printing the per-tenant SLO table. A `--faults` campaign, when
//! given, is injected into the serving backend too. `--serve-out FILE`
//! writes the run's serving report as deterministic JSON
//! (`{"spec":...,"serving":...}` — byte-identical at any
//! `ECOSCALE_THREADS`/`ECOSCALE_SHARDS`).

use std::process::ExitCode;

use ecoscale_apps::mix::serve_mix;
use ecoscale_bench::obs::{
    capture_fault_campaign, capture_observability, capture_profile, capture_telemetry,
    telemetry_shard_series, TelemetryCapture,
};
use ecoscale_bench::{resilience_exp, Scale, EXPERIMENTS};
use ecoscale_core::{
    run_serve_sim, serve_checkpoint, serve_resume, ServeSimConfig, ServeTelemetry,
};
use ecoscale_runtime::ServeSpec;
use ecoscale_sim::fault::parse_duration;
use ecoscale_sim::{pool, prof, CampaignSpec, Duration, TelemetryConfig, Time};

fn usage() {
    eprintln!(
        "usage: exp_all [--scale quick|full] [--trace FILE] [--metrics FILE] [--profile FILE] [--telemetry FILE] [--flight-dump DIR] [--faults SPEC] [--serve SPEC] [--serve-out FILE] [--snapshot-at T --snapshot-out FILE | --resume FILE] [KEY...]"
    );
    eprintln!("  --scale quick|full   sweep sizes (default: full)");
    eprintln!("  --trace FILE         write a Chrome/Perfetto trace of an instrumented run");
    eprintln!("  --metrics FILE       write the metrics registry of an instrumented run as JSON");
    eprintln!("  --profile FILE       write the ProfPlane critical-path blame + shard occupancy");
    eprintln!("                       report of an instrumented run as JSON");
    eprintln!("  --telemetry FILE     write the TelePlane capture (windowed serving series +");
    eprintln!("                       flight recorders + shard window series) as JSON; with");
    eprintln!("                       --serve, the serving half comes from that run");
    eprintln!("  --flight-dump DIR    with --telemetry: when a flight-recorder trigger fired,");
    eprintln!("                       write the evidence bundle (flight.json, and snapshot.bin");
    eprintln!("                       for a --serve run) into DIR");
    eprintln!("  --faults SPEC        seeded fault campaign, e.g. `seed=3,crash=1ms,seu=400us`;");
    eprintln!("                       overrides the E16/E16b base campaign and adds a faulted");
    eprintln!("                       capture to --trace/--metrics output");
    eprintln!("  --serve SPEC         run one ServePlane simulation over the apps mix, e.g.");
    eprintln!("                       `seed=7,tenants=4,rate=200000,horizon=1ms,batch=8`;");
    eprintln!("                       a --faults campaign is injected into its backend");
    eprintln!("  --serve-out FILE     write the --serve run's serving report as JSON");
    eprintln!("  --snapshot-at T      with --serve: run every serving cell to T (e.g. `300us`),");
    eprintln!("                       pause at a safe boundary, and write a versioned,");
    eprintln!("                       checksummed snapshot instead of finishing the run");
    eprintln!("  --snapshot-out FILE  where --snapshot-at writes the snapshot");
    eprintln!("  --resume FILE        with --serve: restore a --snapshot-out file (same spec)");
    eprintln!("                       and run to drain; exports are byte-identical to the");
    eprintln!("                       uninterrupted run. Corrupt/mismatched files are refused.");
    eprintln!("  KEY                  experiment filter, e.g. `exp_all e03 e09`");
    eprint!("keys:");
    for (key, _) in EXPERIMENTS {
        eprint!(" {key}");
    }
    eprintln!();
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Full;
    let mut trace_path: Option<String> = None;
    let mut metrics_path: Option<String> = None;
    let mut profile_path: Option<String> = None;
    let mut faults: Option<CampaignSpec> = None;
    let mut serve: Option<ServeSpec> = None;
    let mut serve_out: Option<String> = None;
    let mut snapshot_at: Option<Time> = None;
    let mut snapshot_out: Option<String> = None;
    let mut resume: Option<String> = None;
    let mut telemetry_path: Option<String> = None;
    let mut flight_dump: Option<String> = None;
    let mut filters: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-h" | "--help" => {
                usage();
                return ExitCode::SUCCESS;
            }
            "--trace" | "--metrics" | "--profile" | "--serve-out" | "--snapshot-out"
            | "--resume" | "--telemetry" | "--flight-dump" => {
                let Some(v) = it.next() else {
                    eprintln!("error: {arg} needs a file path");
                    usage();
                    return ExitCode::from(2);
                };
                match arg.as_str() {
                    "--trace" => trace_path = Some(v.clone()),
                    "--metrics" => metrics_path = Some(v.clone()),
                    "--serve-out" => serve_out = Some(v.clone()),
                    "--snapshot-out" => snapshot_out = Some(v.clone()),
                    "--resume" => resume = Some(v.clone()),
                    "--telemetry" => telemetry_path = Some(v.clone()),
                    "--flight-dump" => flight_dump = Some(v.clone()),
                    _ => profile_path = Some(v.clone()),
                }
            }
            "--snapshot-at" => {
                let Some(v) = it.next() else {
                    eprintln!("error: --snapshot-at needs a time like `300us`");
                    usage();
                    return ExitCode::from(2);
                };
                match parse_duration(v) {
                    Some(d) => snapshot_at = Some(Time::ZERO + d),
                    None => {
                        eprintln!("error: bad --snapshot-at time `{v}` (want e.g. `300us`, `2ms`)");
                        usage();
                        return ExitCode::from(2);
                    }
                }
            }
            "--faults" => {
                let Some(v) = it.next() else {
                    eprintln!("error: --faults needs a campaign spec (key=value,...)");
                    usage();
                    return ExitCode::from(2);
                };
                match CampaignSpec::parse(v) {
                    Ok(spec) => faults = Some(spec),
                    Err(e) => {
                        eprintln!("error: bad --faults spec: {e}");
                        usage();
                        return ExitCode::from(2);
                    }
                }
            }
            "--serve" => {
                let Some(v) = it.next() else {
                    eprintln!("error: --serve needs a serving spec (key=value,...)");
                    usage();
                    return ExitCode::from(2);
                };
                match ServeSpec::parse(v) {
                    Ok(spec) => serve = Some(spec),
                    Err(e) => {
                        eprintln!("error: bad --serve spec: {e}");
                        usage();
                        return ExitCode::from(2);
                    }
                }
            }
            "--scale" => {
                let Some(v) = it.next() else {
                    eprintln!("error: --scale needs a value (quick|full)");
                    usage();
                    return ExitCode::from(2);
                };
                scale = match v.as_str() {
                    "quick" => Scale::Quick,
                    "full" => Scale::Full,
                    other => {
                        eprintln!("error: unknown scale `{other}` (want quick|full)");
                        usage();
                        return ExitCode::from(2);
                    }
                };
            }
            key => filters.push(key.to_ascii_lowercase()),
        }
    }
    for f in &filters {
        if !EXPERIMENTS.iter().any(|&(key, _)| key == f) {
            eprintln!("error: unknown experiment `{f}`");
            usage();
            return ExitCode::from(2);
        }
    }
    if serve_out.is_some() && serve.is_none() {
        eprintln!("error: --serve-out needs a --serve SPEC to export");
        usage();
        return ExitCode::from(2);
    }
    if snapshot_at.is_some() != snapshot_out.is_some() {
        eprintln!("error: --snapshot-at and --snapshot-out must be given together");
        usage();
        return ExitCode::from(2);
    }
    if (snapshot_at.is_some() || resume.is_some()) && serve.is_none() {
        eprintln!("error: --snapshot-at/--resume need a --serve SPEC");
        usage();
        return ExitCode::from(2);
    }
    if snapshot_at.is_some() && resume.is_some() {
        eprintln!("error: --snapshot-at and --resume are mutually exclusive");
        usage();
        return ExitCode::from(2);
    }
    if flight_dump.is_some() && telemetry_path.is_none() {
        eprintln!("error: --flight-dump needs a --telemetry FILE");
        usage();
        return ExitCode::from(2);
    }
    if let Some(spec) = &faults {
        // E16/E16b scale their sweeps from this campaign instead of the
        // built-in default.
        resilience_exp::set_campaign_override(Some(spec.clone()));
    }
    let selected: Vec<_> = EXPERIMENTS
        .iter()
        .filter(|&&(key, _)| filters.is_empty() || filters.iter().any(|f| f == key))
        .copied()
        .collect();
    // Whole tables run concurrently; printing happens afterwards in
    // registry (E1→A4) order.
    let tables = pool::parallel_map(selected, |(_, run)| run(scale));
    for table in tables {
        println!("{table}");
    }
    let mut serve_telem: Option<ServeTelemetry> = None;
    let mut dump_snapshot: Option<Vec<u8>> = None;
    if let Some(spec) = serve {
        let mut cfg = ServeSimConfig::new(spec, serve_mix());
        if let Some(campaign) = faults.as_ref().filter(|s| !s.is_off()) {
            cfg.faults = campaign.clone();
        }
        if telemetry_path.is_some() {
            cfg.telemetry = Some(TelemetryConfig::new(Duration::from_us(50)));
        }
        if let Some(at) = snapshot_at {
            let path = snapshot_out.as_ref().expect("validated above");
            let bytes = serve_checkpoint(&cfg, at);
            if let Err(e) = std::fs::write(path, &bytes) {
                eprintln!("error: cannot write snapshot to `{path}`: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!(
                "wrote serving checkpoint ({} bytes) to {path}; resume with --resume",
                bytes.len()
            );
            return ExitCode::SUCCESS;
        }
        let out = if let Some(path) = &resume {
            let bytes = match std::fs::read(path) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("error: cannot read snapshot `{path}`: {e}");
                    return ExitCode::from(2);
                }
            };
            match serve_resume(&cfg, &bytes) {
                Ok(out) => out,
                Err(e) => {
                    eprintln!("error: refusing snapshot `{path}`: {e}");
                    return ExitCode::from(2);
                }
            }
        } else {
            run_serve_sim(&cfg)
        };
        if telemetry_path.is_some() {
            // The serving half of the TelePlane capture comes from this
            // run; a pre-trigger snapshot joins the evidence bundle when
            // a flight recorder fired.
            serve_telem = out.telemetry.clone();
            if flight_dump.is_some() {
                if let Some(t) = serve_telem.as_ref().and_then(|t| t.first_trigger()) {
                    dump_snapshot = Some(serve_checkpoint(&cfg, t.time));
                }
            }
        }
        println!("{}", out.serving.to_table());
        if out.violations > 0 {
            eprintln!(
                "error: serving run violated {} invariant check(s)",
                out.violations
            );
            return ExitCode::FAILURE;
        }
        if let Some(path) = &serve_out {
            let mut s = String::with_capacity(1024);
            s.push_str("{\"spec\":");
            ecoscale_sim::json::escape(&mut s, &cfg.spec.to_string());
            s.push_str(",\"serving\":");
            s.push_str(&out.serving.to_json());
            s.push('}');
            if let Err(e) = std::fs::write(path, &s) {
                eprintln!("error: cannot write serving report to `{path}`: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote serving report to {path}");
        }
    }
    if trace_path.is_some() || metrics_path.is_some() || profile_path.is_some() {
        // One capture serves all three outputs; --profile additionally
        // keeps the sharded phase's occupancy bands and wall timers.
        let (mut cap, prof_extras) = if profile_path.is_some() {
            let pc = capture_profile(scale);
            (pc.capture, Some((pc.occupancy, pc.wall)))
        } else {
            (capture_observability(scale), None)
        };
        if let Some(spec) = faults.as_ref().filter(|s| !s.is_off()) {
            let fc = capture_fault_campaign(scale, spec);
            cap.trace.merge(fc.trace);
            cap.metrics.merge(&fc.metrics);
        }
        if let Some(path) = &trace_path {
            if let Err(e) = std::fs::write(path, cap.trace.to_chrome_json()) {
                eprintln!("error: cannot write trace to `{path}`: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote trace to {path} (load in https://ui.perfetto.dev)");
        }
        if let Some(path) = &metrics_path {
            if let Err(e) = std::fs::write(path, cap.metrics.to_json()) {
                eprintln!("error: cannot write metrics to `{path}`: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote metrics to {path}");
        }
        if let Some(path) = &profile_path {
            let (occupancy, wall) = prof_extras.expect("profile capture ran");
            let report = prof::critical_path(&cap.trace);
            let mut s = String::with_capacity(1024);
            s.push_str("{\"profile\":");
            s.push_str(&report.to_json());
            s.push_str(",\"occupancy\":");
            s.push_str(&occupancy.to_json());
            s.push('}');
            if let Err(e) = std::fs::write(path, &s) {
                eprintln!("error: cannot write profile to `{path}`: {e}");
                return ExitCode::FAILURE;
            }
            println!("{}", report.to_table());
            println!("{}", occupancy.to_table());
            // wall timers are host-dependent: stderr only, never in the file
            eprintln!("{}", wall.to_table());
            eprintln!("wrote profile to {path}");
        }
    }
    if let Some(path) = &telemetry_path {
        // Serving half: the --serve run when one ran with telemetry armed,
        // otherwise the canonical obs serving campaign. The shard half is
        // always the scaling run's per-safe-window series.
        let cap = match serve_telem {
            Some(serve) => TelemetryCapture {
                serve,
                shard: telemetry_shard_series(scale),
            },
            None => {
                let campaign = faults.clone().unwrap_or_else(CampaignSpec::off);
                capture_telemetry(scale, &campaign)
            }
        };
        if let Err(e) = std::fs::write(path, cap.to_json()) {
            eprintln!("error: cannot write telemetry to `{path}`: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote telemetry to {path}");
        if let Some(dir) = &flight_dump {
            if cap.fired() {
                let dir_path = std::path::Path::new(dir);
                if let Err(e) = std::fs::create_dir_all(dir_path) {
                    eprintln!("error: cannot create flight-dump dir `{dir}`: {e}");
                    return ExitCode::FAILURE;
                }
                let flight = dir_path.join("flight.json");
                if let Err(e) = std::fs::write(&flight, cap.flight_dump_json()) {
                    eprintln!("error: cannot write `{}`: {e}", flight.display());
                    return ExitCode::FAILURE;
                }
                let mut wrote = String::from("flight.json");
                if let Some(bytes) = &dump_snapshot {
                    let snap = dir_path.join("snapshot.bin");
                    if let Err(e) = std::fs::write(&snap, bytes) {
                        eprintln!("error: cannot write `{}`: {e}", snap.display());
                        return ExitCode::FAILURE;
                    }
                    wrote.push_str(" + snapshot.bin");
                }
                eprintln!("wrote flight dump ({wrote}) to {dir}");
            } else {
                eprintln!("no flight-recorder trigger fired; no dump written");
            }
        }
    }
    ExitCode::SUCCESS
}
