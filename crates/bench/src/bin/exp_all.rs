//! Regenerates every experiment table (E1-E15) at full scale.
//!
//! `cargo run --release -p ecoscale-bench --bin exp_all` produces the
//! outputs quoted in EXPERIMENTS.md.

use ecoscale_bench::Scale;

fn main() {
    let s = Scale::Full;
    println!("{}", ecoscale_bench::arch::e01_hierarchy(s));
    println!("{}", ecoscale_bench::arch::e02_task_vs_data(s));
    println!("{}", ecoscale_bench::arch::e03_coherence(s));
    println!("{}", ecoscale_bench::accel::e04_smmu(s));
    println!("{}", ecoscale_bench::accel::e04_invocation_rate(s));
    println!("{}", ecoscale_bench::accel::e05_virtualization(s));
    println!("{}", ecoscale_bench::accel::e06_unilogic(s));
    println!("{}", ecoscale_bench::runtime_exp::e07_scheduler(s));
    println!("{}", ecoscale_bench::runtime_exp::e08_lazy(s));
    println!("{}", ecoscale_bench::fpga_exp::e09_compression(s));
    println!("{}", ecoscale_bench::fpga_exp::e10_defrag(s));
    println!("{}", ecoscale_bench::fpga_exp::e11_chaining(s));
    println!("{}", ecoscale_bench::fpga_exp::e12_hls_dse(s));
    println!("{}", ecoscale_bench::scale_exp::e13_power(s));
    println!("{}", ecoscale_bench::scale_exp::e14_hybrid(s));
    println!("{}", ecoscale_bench::accel::e15_speedup_band(s));
    println!("{}", ecoscale_bench::ablation::a1_cut_through(s));
    println!("{}", ecoscale_bench::ablation::a2_tlb_size(s));
    println!("{}", ecoscale_bench::ablation::a3_benefit_margin(s));
    println!("{}", ecoscale_bench::ablation::a4_fat_tree(s));
}
