//! Wall-clock scaling of the sharded conservative-parallel DES engine.
//!
//! Runs the P1 cluster-partitioned model (`shard_exp::scaling_config`)
//! at `ECOSCALE_SHARDS` = 1, 2, 4, 8, times each run, asserts the merged
//! exports stay byte-identical to the 1-shard baseline, and writes the
//! measurements to `BENCH_parallel_des.json`:
//!
//! ```text
//! bench_parallel_des [--smoke] [--out PATH] [--clusters N] [--tasks N] [--reps N]
//! ```
//!
//! Two speedups are recorded per point. `speedup` is measured wall-clock
//! vs the 1-shard run — bounded by `host_cores`, which the JSON also
//! records (a 1-core container cannot exhibit wall-clock parallel
//! speedup; the engine caps its workers at the host's parallelism, so
//! oversubscribed runs degrade gracefully instead of spinning).
//! `critical_path_speedup` is the standard conservative-PDES bound read
//! from the run's own [`ShardOccupancy`] accounting: per safe window,
//! total events over the busiest shard's slice — what the window
//! protocol yields with one core per shard. Event counts are
//! deterministic simulation state, so this bound is byte-identical at
//! any shard layout (unlike the wall-clock columns).
//!
//! [`ShardOccupancy`]: ecoscale_sim::ShardOccupancy
//!
//! `--smoke` shrinks the workload for CI, re-parses the emitted JSON and
//! validates the schema instead of chasing a speedup target. Timings are
//! host-dependent; everything else in the file is deterministic.

use std::process::ExitCode;
use std::time::Instant;

use ecoscale_bench::shard_exp::scaling_config;
use ecoscale_core::{run_shard_sim_with, ShardOutcome};
use ecoscale_sim::check::CheckPlane;
use ecoscale_sim::json::{self, fmt_f64};

const SHARD_COUNTS: &[usize] = &[1, 2, 4, 8];

fn usage() {
    eprintln!(
        "usage: bench_parallel_des [--smoke] [--out PATH] [--clusters N] [--tasks N] [--reps N]"
    );
}

struct Point {
    shards: usize,
    best_s: f64,
    events_per_sec: f64,
    speedup: f64,
    critical_path_speedup: f64,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut out = "BENCH_parallel_des.json".to_owned();
    let mut clusters = 16usize;
    let mut tasks = 4096usize;
    let mut reps = 3usize;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => {
                smoke = true;
                clusters = 8;
                tasks = 64;
                reps = 1;
            }
            "--out" => match it.next() {
                Some(p) => out = p.clone(),
                None => {
                    usage();
                    return ExitCode::FAILURE;
                }
            },
            "--clusters" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => clusters = n,
                None => {
                    usage();
                    return ExitCode::FAILURE;
                }
            },
            "--tasks" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => tasks = n,
                None => {
                    usage();
                    return ExitCode::FAILURE;
                }
            },
            "--reps" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) => reps = n.max(1),
                None => {
                    usage();
                    return ExitCode::FAILURE;
                }
            },
            _ => {
                usage();
                return ExitCode::FAILURE;
            }
        }
    }

    let cfg = scaling_config(clusters, tasks);
    let host_cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut points: Vec<Point> = Vec::new();
    let mut baseline: Option<(f64, ShardOutcome)> = None;
    for &shards in SHARD_COUNTS {
        let mut best_s = f64::INFINITY;
        let mut last: Option<ShardOutcome> = None;
        for _ in 0..reps {
            let mut cp = CheckPlane::enabled(1);
            let t0 = Instant::now();
            let outcome = run_shard_sim_with(&cfg, Some(shards), &mut cp);
            let dt = t0.elapsed().as_secs_f64();
            if let Some(v) = cp.first() {
                eprintln!("bench_parallel_des: invariant violated at shards={shards}: {v:?}");
                return ExitCode::FAILURE;
            }
            best_s = best_s.min(dt);
            last = Some(outcome);
        }
        let outcome = last.expect("reps >= 1");
        let events = outcome.events;
        // Critical-path bound for this shard count, read from the run's
        // occupancy bands (shards=1 trivially has bound 1.0; occupancy
        // bands only cover widths >= 2 and `speedup` returns 1.0 for
        // anything unbanded).
        let crit = outcome.occupancy.speedup(shards);
        match &baseline {
            None => baseline = Some((best_s, outcome)),
            Some((base_s, base)) => {
                let identical = base.metrics.to_json() == outcome.metrics.to_json()
                    && base.trace.to_chrome_json() == outcome.trace.to_chrome_json()
                    && base.report() == outcome.report();
                if !identical {
                    eprintln!("bench_parallel_des: shards={shards} diverged from shards=1");
                    return ExitCode::FAILURE;
                }
                points.push(Point {
                    shards,
                    best_s,
                    events_per_sec: events as f64 / best_s,
                    speedup: base_s / best_s,
                    critical_path_speedup: crit,
                });
            }
        }
        let (base_s, _) = baseline.as_ref().expect("baseline set");
        if shards == 1 {
            points.push(Point {
                shards: 1,
                best_s: *base_s,
                events_per_sec: events as f64 / base_s,
                speedup: 1.0,
                critical_path_speedup: 1.0,
            });
        }
        eprintln!(
            "shards={shards}: {best_s:.3}s  ({:.0} events/s, wall speedup {:.2}x, critical-path {:.2}x)",
            events as f64 / best_s,
            points.last().map(|p| p.speedup).unwrap_or(1.0),
            crit,
        );
    }

    let (_, base) = baseline.expect("at least one shard count ran");
    let mut s = String::new();
    s.push_str("{\"bench\":\"parallel_des\",");
    s.push_str(&format!(
        "\"host_cores\":{host_cores},\"clusters\":{clusters},\"tasks_per_cluster\":{tasks},\"reps\":{reps},"
    ));
    s.push_str(&format!(
        "\"events\":{},\"rounds\":{},\"lookahead_ns\":{},",
        base.events,
        base.rounds,
        base.lookahead.as_ns()
    ));
    s.push_str("\"identical_exports\":true,\"points\":[");
    for (i, p) in points.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!("{{\"shards\":{},\"wall_s\":", p.shards));
        fmt_f64(&mut s, p.best_s);
        s.push_str(",\"events_per_sec\":");
        fmt_f64(&mut s, p.events_per_sec);
        s.push_str(",\"speedup\":");
        fmt_f64(&mut s, p.speedup);
        s.push_str(",\"critical_path_speedup\":");
        fmt_f64(&mut s, p.critical_path_speedup);
        s.push('}');
    }
    s.push_str("]}");

    if let Err(e) = std::fs::write(&out, &s) {
        eprintln!("bench_parallel_des: write {out}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {out}");

    if smoke {
        // Validate the artifact's schema by re-parsing what we wrote.
        let doc = match json::parse(&s) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("bench_parallel_des: emitted invalid JSON: {e}");
                return ExitCode::FAILURE;
            }
        };
        let ok = doc.get("bench").and_then(|v| v.as_str()) == Some("parallel_des")
            && doc.get("events").and_then(|v| v.as_f64()).unwrap_or(0.0) > 0.0
            && doc
                .get("host_cores")
                .and_then(|v| v.as_f64())
                .unwrap_or(0.0)
                >= 1.0
            && doc
                .get("points")
                .and_then(|v| v.as_arr())
                .is_some_and(|pts| {
                    pts.len() == SHARD_COUNTS.len()
                        && pts.iter().all(|p| {
                            p.get("shards").and_then(|v| v.as_f64()).is_some()
                                && p.get("wall_s").and_then(|v| v.as_f64()).is_some()
                                && p.get("events_per_sec").and_then(|v| v.as_f64()).is_some()
                                && p.get("speedup").and_then(|v| v.as_f64()).is_some()
                                && p.get("critical_path_speedup")
                                    .and_then(|v| v.as_f64())
                                    .is_some()
                        })
                });
        if !ok {
            eprintln!("bench_parallel_des: schema check failed on {out}");
            return ExitCode::FAILURE;
        }
        eprintln!("smoke: schema ok");
    }
    ExitCode::SUCCESS
}
