//! Regenerates experiment E11 from EXPERIMENTS.md at full scale.

fn main() {
    println!(
        "{}",
        ecoscale_bench::fpga_exp::e11_chaining(ecoscale_bench::Scale::Full)
    );
}
