//! Regenerates experiment E10 from EXPERIMENTS.md at full scale.

fn main() {
    println!(
        "{}",
        ecoscale_bench::fpga_exp::e10_defrag(ecoscale_bench::Scale::Full)
    );
}
