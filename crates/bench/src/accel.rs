//! Accelerator experiments: E4 (user-level SMMU invocation), E5
//! (virtualization block), E6 (UNILOGIC access paths), E15 (speedup
//! band sanity).

use std::collections::HashMap;

use ecoscale_core::{AccessPath, SharingMode, UnilogicModel, VirtualizationBlock};
use ecoscale_fpga::Resources;
use ecoscale_hls::ModuleLibrary;
use ecoscale_mem::{InvocationModel, SmmuConfig};
use ecoscale_noc::{NodeId, TreeTopology};
use ecoscale_runtime::CpuModel;
use ecoscale_sim::pool;
use ecoscale_sim::report::{fnum, fratio, Table};
use ecoscale_sim::Duration;

use crate::Scale;

/// E4 — Fig. 4/§4.1: OS-mediated vs user-level (dual-stage SMMU)
/// accelerator invocation, sweeping the argument-buffer size.
pub fn e04_smmu(scale: Scale) -> Table {
    let pages: &[u64] = scale.pick(&[1, 64][..], &[1, 4, 16, 64, 256, 1024][..]);
    let inv = InvocationModel::default();
    let smmu = SmmuConfig::default();
    let mut t = Table::new(
        "E4 (Fig.4): accelerator invocation overhead, OS-mediated vs user-level SMMU",
        &["buffer pages", "os-mediated", "user-level", "speedup"],
    );
    let rows = pool::parallel_map(pages.to_vec(), |p| {
        let os = inv.os_mediated(p);
        let user = inv.user_level(p, &smmu);
        vec![
            p.to_string(),
            format!("{os}"),
            format!("{user}"),
            fratio(os / user),
        ]
    });
    for row in rows {
        t.row_owned(row);
    }
    t
}

/// The invocation-rate view of E4: how many kernel launches per second
/// each path sustains for a given per-launch compute time.
pub fn e04_invocation_rate(scale: Scale) -> Table {
    let works: &[u64] = scale.pick(&[1, 100][..], &[1, 10, 100, 1_000, 10_000][..]);
    let inv = InvocationModel::default();
    let smmu = SmmuConfig::default();
    let mut t = Table::new(
        "E4b: sustained launch rate vs kernel granularity (1-page args)",
        &[
            "kernel work (us)",
            "os launches/s",
            "user launches/s",
            "ratio",
        ],
    );
    let rows = pool::parallel_map(works.to_vec(), |us| {
        let work = Duration::from_us(us);
        let os = 1.0 / (inv.os_mediated(1) + work).as_secs_f64();
        let user = 1.0 / (inv.user_level(1, &smmu) + work).as_secs_f64();
        vec![us.to_string(), fnum(os), fnum(user), fratio(user / os)]
    });
    for row in rows {
        t.row_owned(row);
    }
    t
}

fn demo_library() -> ModuleLibrary {
    let kernel = ecoscale_hls::parse_kernel(ecoscale_apps::blackscholes::KERNEL)
        .expect("blackscholes kernel parses");
    let hints = ecoscale_apps::blackscholes::kernel_hints(65_536);
    ModuleLibrary::synthesize(&[(kernel, hints)], Resources::new(3900, 64, 200))
        .expect("synthesizable")
}

/// E5 — §4.1: the Virtualization block's fully-pipelined multi-caller
/// sharing vs exclusive time multiplexing.
pub fn e05_virtualization(scale: Scale) -> Table {
    let callers: &[u64] = scale.pick(&[1, 8][..], &[1, 2, 4, 8, 16, 32, 64][..]);
    let lib = demo_library();
    let module = lib.get("blackscholes").expect("in library").module.clone();
    let vb = VirtualizationBlock::new(module);
    let items = 4_096u64;
    let switch = SharingMode::Exclusive {
        switch: Duration::from_us(5),
    };
    let mut t = Table::new(
        "E5 (Fig.4): shared accelerator, pipelined vs exclusive time-multiplexing",
        &[
            "callers",
            "pipelined total",
            "exclusive total",
            "pipelined Mitems/s",
            "exclusive Mitems/s",
            "advantage",
        ],
    );
    let rows = pool::parallel_map(callers.to_vec(), |c| {
        let p = vb.batch_completion(SharingMode::Pipelined, c, items);
        let e = vb.batch_completion(switch, c, items);
        let tp = vb.aggregate_throughput(SharingMode::Pipelined, c, items) / 1e6;
        let te = vb.aggregate_throughput(switch, c, items) / 1e6;
        vec![
            c.to_string(),
            format!("{p}"),
            format!("{e}"),
            fnum(tp),
            fnum(te),
            fratio(e / p),
        ]
    });
    for row in rows {
        t.row_owned(row);
    }
    t
}

/// E6 — §4.1: the four UNILOGIC access paths across data sizes: local
/// cached accelerator, remote uncached accelerator, DMA offload, and
/// software.
pub fn e06_unilogic(scale: Scale) -> Table {
    let sizes: &[u64] = scale.pick(
        &[1 << 10, 1 << 20][..],
        &[1 << 10, 16 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20][..],
    );
    let lib = demo_library();
    let module = &lib.get("blackscholes").expect("in library").module;
    let model = UnilogicModel::default();
    let topo = TreeTopology::new(&[8, 8]);
    let mut t = Table::new(
        "E6 (Fig.4): UNILOGIC access paths vs data size (blackscholes, remote = 4 hops)",
        &["data", "path", "latency", "energy", "net bytes"],
    );
    // the paper's "small data transfers such as messages to synchronize
    // remote threads": a 64-byte flag update (2 accesses) — the case
    // where plain loads/stores beat a DMA descriptor
    for path in [AccessPath::RemoteUncached, AccessPath::Dma] {
        let c = model.cost(&topo, path, module, NodeId(0), NodeId(63), 2, 2, 1, 64);
        t.row_owned(vec![
            "64B sync".to_owned(),
            path.to_string(),
            format!("{}", c.latency),
            format!("{}", c.energy),
            ecoscale_sim::report::fbytes(c.network_bytes),
        ]);
    }
    let blocks = pool::parallel_map(sizes.to_vec(), |bytes| {
        let items = bytes / 16; // two f64 inputs per option
        AccessPath::ALL
            .into_iter()
            .map(|path| {
                let c = model.cost(
                    &topo,
                    path,
                    module,
                    NodeId(0),
                    NodeId(63),
                    items.max(1),
                    25,
                    3,
                    bytes,
                );
                vec![
                    ecoscale_sim::report::fbytes(bytes),
                    path.to_string(),
                    format!("{}", c.latency),
                    format!("{}", c.energy),
                    ecoscale_sim::report::fbytes(c.network_bytes),
                ]
            })
            .collect::<Vec<_>>()
    });
    for row in blocks.into_iter().flatten() {
        t.row_owned(row);
    }
    t
}

/// E15 — §3 sanity band: our modelled accelerator speedups over one CPU
/// core should land in the 10–50× band the paper cites (Catapult 40×,
/// Xeon+FPGA 20×) for transcendental-dense kernels, and lower for
/// lean ones.
pub fn e15_speedup_band(_scale: Scale) -> Table {
    // (name, source, hints, items, ops/item, specials/item)
    type SpeedupCase = (
        &'static str,
        &'static str,
        HashMap<String, f64>,
        u64,
        u64,
        u64,
    );
    let cases: &[SpeedupCase] = &[
        (
            "blackscholes",
            ecoscale_apps::blackscholes::KERNEL,
            ecoscale_apps::blackscholes::kernel_hints(65_536),
            65_536,
            25,
            4, // specials per item
        ),
        (
            "mc_payoff",
            ecoscale_apps::montecarlo::KERNEL,
            ecoscale_apps::montecarlo::kernel_hints(65_536),
            65_536,
            12,
            2,
        ),
        (
            "jacobi2d",
            ecoscale_apps::stencil::KERNEL,
            ecoscale_apps::stencil::kernel_hints(256),
            256 * 256,
            8,
            0,
        ),
    ];
    let cpu = CpuModel::a53_default();
    let fpga = ecoscale_runtime::FpgaExecModel::default();
    let mut t = Table::new(
        "E15 (§3): modelled accelerator speedup over one A53 core",
        &[
            "kernel",
            "items",
            "cpu time",
            "fpga time",
            "speedup",
            "energy ratio",
        ],
    );
    let rows = pool::parallel_map(
        cases.to_vec(),
        |(name, src, hints, items, ops, specials)| {
            let kernel = ecoscale_hls::parse_kernel(src).expect("kernel parses");
            let lib = ModuleLibrary::synthesize(
                &[(kernel, hints.clone())],
                Resources::new(6000, 256, 256),
            )
            .expect("synthesizable");
            let module = &lib.get(name).expect("in library").module;
            // CPU pays ~25 cycles per transcendental
            let cpu_ops = items * (ops + specials * 24);
            let (t_cpu, e_cpu) = cpu.exec(cpu_ops, items * 3);
            let (t_fpga, e_fpga) = fpga.exec(module, items, ops);
            vec![
                name.to_owned(),
                items.to_string(),
                format!("{t_cpu}"),
                format!("{t_fpga}"),
                fratio(t_cpu / t_fpga),
                fratio(e_cpu / e_fpga),
            ]
        },
    );
    for row in rows {
        t.row_owned(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ratio(cell: &str) -> f64 {
        cell.trim_end_matches('x').parse().unwrap()
    }

    #[test]
    fn e04_user_level_wins_everywhere() {
        let t = e04_smmu(Scale::Quick);
        for i in 0..t.len() {
            let r = parse_ratio(&t.cells(i).unwrap()[3]);
            assert!(r > 1.0, "row {i}: {r}");
        }
    }

    #[test]
    fn e04_rate_gap_shrinks_with_granularity() {
        let t = e04_invocation_rate(Scale::Full);
        let first = parse_ratio(&t.cells(0).unwrap()[3]);
        let last = parse_ratio(&t.cells(t.len() - 1).unwrap()[3]);
        assert!(
            first > last,
            "fine-grain gap {first} should exceed coarse {last}"
        );
        assert!(last >= 1.0);
    }

    #[test]
    fn e05_pipelined_always_wins_multi_caller() {
        let t = e05_virtualization(Scale::Quick);
        let last = t.cells(t.len() - 1).unwrap();
        assert!(parse_ratio(&last[5]) > 1.0);
    }

    #[test]
    fn e06_orders_paths_correctly_at_large_size() {
        let t = e06_unilogic(Scale::Quick);
        // for the last size block: local-cached < remote-uncached latency
        let rows: Vec<_> = (0..t.len()).map(|i| t.cells(i).unwrap().to_vec()).collect();
        let large: Vec<_> = rows.iter().rev().take(4).collect();
        let find = |p: &str| {
            large
                .iter()
                .find(|r| r[1] == p)
                .map(|r| r[2].clone())
                .expect("path present")
        };
        // just presence checks here; ordering asserted in unilogic tests
        assert!(!find("local-cached").is_empty());
        assert!(!find("dma").is_empty());
    }

    #[test]
    fn e15_dense_kernels_hit_the_band() {
        let t = e15_speedup_band(Scale::Quick);
        let bs = parse_ratio(&t.cells(0).unwrap()[4]);
        assert!(bs > 10.0 && bs < 80.0, "blackscholes speedup {bs}");
        // energy advantage everywhere
        for i in 0..t.len() {
            assert!(parse_ratio(&t.cells(i).unwrap()[5]) > 1.0);
        }
    }
}
