//! Seeded configuration fuzzing behind the `fuzz_configs` binary.
//!
//! A [`FuzzConfig`] is one point in the (topology × scheduler policy ×
//! fault campaign × scale × thread count × shard count × tenant count)
//! space. [`FuzzConfig::from_index`] enumerates the space
//! deterministically, so `fuzz_configs --count 500` sweeps the same 500
//! configurations on every machine, and any failure is reproducible from
//! its spec string alone.
//!
//! Each configuration drives eight seeded phases — scheduler lanes on the
//! work pool, a NoC transfer storm on the configured topology, a mixed-
//! permission SMMU translation stream, UNIMEM traffic over a tree NoC,
//! a multi-tenant ServePlane run (admission, batching, SLO conservation),
//! a SnapPlane checkpoint/restore of that serving run (mid-horizon
//! snapshot, resume, byte-identity against the uninterrupted run, typed
//! refusal of a corrupted copy), a TelePlane run of the same serving
//! configuration with windowed telemetry and a fully-armed flight
//! recorder (the capture export must be byte-identical across thread
//! counts and `telem.window_conserved` must hold), and the
//! cluster-partitioned sharded simulation — with a fully-armed
//! [`CheckPlane`], then repeats the run at the configuration's thread
//! count and asserts the metrics export is **byte-identical** to the
//! single-threaded run (the snap phase runs once per config; resume's
//! own thread/shard independence is pinned by `tests/determinism.rs`).
//! The shard phase additionally re-runs on the
//! sharded engine at the configuration's shard count and asserts its
//! metrics, trace, and report exports match the 1-shard run byte for
//! byte. Any invariant violation or export divergence fails the config;
//! the binary then shrinks the configuration ([`shrink_config`]) and
//! prints a one-line `fuzz_configs --repro '<spec>'` command.
//!
//! `--inject-violation` arms a deliberate [`invariant::SABOTAGE`] failure
//! for every configuration with `tasks >= 24`, proving the
//! catch → shrink → repro pipeline end to end (the shrinker converges on
//! `tasks=24`).

use ecoscale_core::{
    linear_test_mix, run_serve_sim_with, run_shard_sim_with, serve_checkpoint, serve_resume_with,
    ServeSimConfig, ShardSimConfig,
};
use ecoscale_mem::{
    CacheConfig, DramModel, GlobalAddr, PagePerms, Smmu, SmmuConfig, UnimemSystem, VirtAddr,
};
use ecoscale_noc::{
    CrossbarTopology, Dragonfly, FatTreeTopology, Mesh2d, Network, NetworkConfig, NodeId, Topology,
    TreeTopology,
};
use ecoscale_runtime::{skewed_trace, ClusterSim, ResilienceConfig, SchedPolicy, ServeSpec};
use ecoscale_sim::check::{invariant, CheckPlane};
use ecoscale_sim::{pool, CampaignSpec, Duration, MetricsRegistry, SimRng, TelemetryConfig, Time};

use core::fmt;

/// Topology axis of the fuzz space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopoKind {
    /// Two-level tree (`TreeTopology`).
    Tree,
    /// Single-stage crossbar.
    Crossbar,
    /// 2-D mesh.
    Mesh,
    /// Dragonfly groups.
    Dragonfly,
    /// Folded-Clos fat tree.
    FatTree,
}

impl TopoKind {
    const ALL: [TopoKind; 5] = [
        TopoKind::Tree,
        TopoKind::Crossbar,
        TopoKind::Mesh,
        TopoKind::Dragonfly,
        TopoKind::FatTree,
    ];

    fn as_str(self) -> &'static str {
        match self {
            TopoKind::Tree => "tree",
            TopoKind::Crossbar => "xbar",
            TopoKind::Mesh => "mesh",
            TopoKind::Dragonfly => "dfly",
            TopoKind::FatTree => "fat",
        }
    }

    fn parse(s: &str) -> Option<TopoKind> {
        TopoKind::ALL.iter().copied().find(|t| t.as_str() == s)
    }
}

/// Scheduler-policy axis of the fuzz space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedKind {
    /// `SchedPolicy::LazyLocal` with this probe count.
    Lazy(u32),
    /// `SchedPolicy::Centralized`.
    Central,
    /// `SchedPolicy::RandomPush`.
    Random,
}

impl SchedKind {
    fn policy(self) -> SchedPolicy {
        match self {
            SchedKind::Lazy(probes) => SchedPolicy::LazyLocal { probes },
            SchedKind::Central => SchedPolicy::Centralized,
            SchedKind::Random => SchedPolicy::RandomPush,
        }
    }

    fn parse(s: &str) -> Option<SchedKind> {
        match s {
            "central" => Some(SchedKind::Central),
            "random" => Some(SchedKind::Random),
            _ => {
                let p = s.strip_prefix("lazy")?;
                if p.is_empty() {
                    Some(SchedKind::Lazy(2))
                } else {
                    p.parse().ok().map(SchedKind::Lazy)
                }
            }
        }
    }
}

impl fmt::Display for SchedKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedKind::Lazy(p) => write!(f, "lazy{p}"),
            SchedKind::Central => write!(f, "central"),
            SchedKind::Random => write!(f, "random"),
        }
    }
}

/// Fault-campaign axis of the fuzz space. Each kind expands to a seeded
/// [`CampaignSpec`] via [`FuzzConfig::campaign`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// No injection (`CampaignSpec::off`).
    None,
    /// Worker crashes.
    Crash,
    /// Worker stalls.
    Stall,
    /// Link degradation.
    Link,
    /// SEU upsets with scrubbing.
    Seu,
    /// Everything at once.
    Mixed,
}

impl FaultKind {
    const ALL: [FaultKind; 6] = [
        FaultKind::None,
        FaultKind::Crash,
        FaultKind::Stall,
        FaultKind::Link,
        FaultKind::Seu,
        FaultKind::Mixed,
    ];

    fn as_str(self) -> &'static str {
        match self {
            FaultKind::None => "none",
            FaultKind::Crash => "crash",
            FaultKind::Stall => "stall",
            FaultKind::Link => "link",
            FaultKind::Seu => "seu",
            FaultKind::Mixed => "mixed",
        }
    }

    fn parse(s: &str) -> Option<FaultKind> {
        FaultKind::ALL.iter().copied().find(|k| k.as_str() == s)
    }
}

/// One point in the fuzzed configuration space. The `Display` form is the
/// canonical spec string accepted by [`FuzzConfig::parse`] and the
/// binary's `--repro` flag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzConfig {
    /// Root seed for every phase RNG and fault campaign.
    pub seed: u64,
    /// NoC topology driven by the transfer phase.
    pub topo: TopoKind,
    /// Scheduler policy for the cluster lanes.
    pub sched: SchedKind,
    /// Fault campaign kind.
    pub faults: FaultKind,
    /// Workload scale (tasks per scheduler lane; message/translation
    /// counts derive from it).
    pub tasks: usize,
    /// Cluster width (workers, UNIMEM nodes, topology sizing).
    pub workers: usize,
    /// `ECOSCALE_THREADS` value the run is repeated under and compared
    /// byte-for-byte against the single-threaded export.
    pub threads: usize,
    /// Shard count the cluster-partitioned phase is repeated under and
    /// compared byte-for-byte against its 1-shard export.
    pub shards: usize,
    /// Tenant count for the ServePlane phase (traffic sources over the
    /// shared accelerators; serving cells derive from it).
    pub tenants: usize,
}

impl fmt::Display for FuzzConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "seed={},topo={},sched={},faults={},tasks={},workers={},threads={},shards={},tenants={}",
            self.seed,
            self.topo.as_str(),
            self.sched,
            self.faults.as_str(),
            self.tasks,
            self.workers,
            self.threads,
            self.shards,
            self.tenants
        )
    }
}

/// A spec-string parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzSpecError {
    pair: String,
    reason: String,
}

impl fmt::Display for FuzzSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad fuzz config pair `{}`: {}", self.pair, self.reason)
    }
}

fn spec_err(pair: &str, reason: impl Into<String>) -> FuzzSpecError {
    FuzzSpecError {
        pair: pair.to_string(),
        reason: reason.into(),
    }
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seed: 0,
            topo: TopoKind::Tree,
            sched: SchedKind::Lazy(2),
            faults: FaultKind::None,
            tasks: 32,
            workers: 8,
            threads: 1,
            shards: 1,
            tenants: 2,
        }
    }
}

impl FuzzConfig {
    /// The `index`-th configuration of the deterministic sweep. Pure
    /// function of `index`; every field is drawn from a salted [`SimRng`].
    pub fn from_index(index: u64) -> FuzzConfig {
        let mut rng = SimRng::seed_from(0xF022_C0DE ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let seed = rng.gen_range_u64(0, 1 << 32);
        let topo = TopoKind::ALL[rng.gen_range_usize(0, TopoKind::ALL.len())];
        let sched = match rng.gen_range_usize(0, 3) {
            0 => SchedKind::Lazy(1 + rng.gen_range_u64(0, 3) as u32),
            1 => SchedKind::Central,
            _ => SchedKind::Random,
        };
        let faults = FaultKind::ALL[rng.gen_range_usize(0, FaultKind::ALL.len())];
        let tasks = 16 + rng.gen_range_usize(0, 145);
        let workers = 4 + rng.gen_range_usize(0, 13);
        let threads = 1 + rng.gen_range_usize(0, 8);
        let shards = 1 + rng.gen_range_usize(0, 8);
        let tenants = 1 + rng.gen_range_usize(0, 4);
        FuzzConfig {
            seed,
            topo,
            sched,
            faults,
            tasks,
            workers,
            threads,
            shards,
            tenants,
        }
    }

    /// Parses a spec string (`key=value,...` over the `Display` keys).
    /// Missing keys keep their [`Default`] values, so partial specs are
    /// valid; unknown keys and malformed values are errors.
    pub fn parse(s: &str) -> Result<FuzzConfig, FuzzSpecError> {
        let mut cfg = FuzzConfig::default();
        for pair in s.split(',') {
            let pair = pair.trim();
            if pair.is_empty() {
                continue;
            }
            let Some((k, v)) = pair.split_once('=') else {
                return Err(spec_err(pair, "expected key=value"));
            };
            match k {
                "seed" => {
                    cfg.seed = v
                        .parse()
                        .map_err(|e| spec_err(pair, format!("bad seed: {e}")))?;
                }
                "topo" => {
                    cfg.topo = TopoKind::parse(v)
                        .ok_or_else(|| spec_err(pair, "want tree|xbar|mesh|dfly|fat"))?;
                }
                "sched" => {
                    cfg.sched = SchedKind::parse(v)
                        .ok_or_else(|| spec_err(pair, "want lazy<N>|central|random"))?;
                }
                "faults" => {
                    cfg.faults = FaultKind::parse(v)
                        .ok_or_else(|| spec_err(pair, "want none|crash|stall|link|seu|mixed"))?;
                }
                "tasks" => {
                    cfg.tasks = v
                        .parse()
                        .map_err(|e| spec_err(pair, format!("bad tasks: {e}")))?;
                    if cfg.tasks == 0 {
                        return Err(spec_err(pair, "tasks must be >= 1"));
                    }
                }
                "workers" => {
                    cfg.workers = v
                        .parse()
                        .map_err(|e| spec_err(pair, format!("bad workers: {e}")))?;
                    if cfg.workers < 2 {
                        return Err(spec_err(pair, "workers must be >= 2"));
                    }
                }
                "threads" => {
                    cfg.threads = v
                        .parse()
                        .map_err(|e| spec_err(pair, format!("bad threads: {e}")))?;
                    if cfg.threads == 0 {
                        return Err(spec_err(pair, "threads must be >= 1"));
                    }
                }
                "shards" => {
                    cfg.shards = v
                        .parse()
                        .map_err(|e| spec_err(pair, format!("bad shards: {e}")))?;
                    if cfg.shards == 0 {
                        return Err(spec_err(pair, "shards must be >= 1"));
                    }
                }
                "tenants" => {
                    cfg.tenants = v
                        .parse()
                        .map_err(|e| spec_err(pair, format!("bad tenants: {e}")))?;
                    if cfg.tenants == 0 {
                        return Err(spec_err(pair, "tenants must be >= 1"));
                    }
                }
                _ => return Err(spec_err(pair, "unknown key")),
            }
        }
        Ok(cfg)
    }

    /// The seeded fault campaign this configuration runs under.
    pub fn campaign(&self) -> CampaignSpec {
        let s = self.seed;
        let text = match self.faults {
            FaultKind::None => return CampaignSpec::off(),
            FaultKind::Crash => format!("seed={s},crash=2ms"),
            FaultKind::Stall => format!("seed={s},stall=900us,stall_for=120us"),
            FaultKind::Link => format!("seed={s},link=700us,link_for=90us,link_slowdown=3"),
            FaultKind::Seu => format!("seed={s},seu=400us,scrub=800us"),
            FaultKind::Mixed => format!(
                "seed={s},crash=2ms,stall=900us,stall_for=120us,\
                 link=700us,link_for=90us,seu=400us,scrub=800us"
            ),
        };
        CampaignSpec::parse(&text).expect("fuzz campaign specs are well-formed")
    }
}

/// Statistics from one clean configuration run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunReport {
    /// Individual invariant checks evaluated across both thread settings.
    pub checks_run: u64,
}

/// Why a configuration failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzFailure {
    /// The failing configuration (pre-shrink).
    pub config: FuzzConfig,
    /// Violation or divergence detail.
    pub detail: String,
}

impl fmt::Display for FuzzFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "config `{}`: {}", self.config, self.detail)
    }
}

/// Runs `cfg` with every invariant armed, then re-runs it at
/// `cfg.threads` and asserts the metrics export is byte-identical to the
/// single-threaded run. `inject` arms the test-only [`invariant::SABOTAGE`]
/// hook (fires when `cfg.tasks >= 24`).
///
/// Sets `ECOSCALE_THREADS` for the duration of each inner run (restoring
/// the previous value), so callers in threaded test binaries must
/// serialise calls that also read that variable.
pub fn run_config(cfg: &FuzzConfig, inject: bool) -> Result<RunReport, FuzzFailure> {
    let fail = |detail: String| FuzzFailure {
        config: cfg.clone(),
        detail,
    };
    let (base, cp) = with_threads(1, || run_once(cfg, inject));
    if let Some(v) = cp.first() {
        return Err(fail(v.to_string()));
    }
    let mut checks = cp.checks_run();
    if cfg.threads != 1 {
        let (alt, cp_alt) = with_threads(cfg.threads, || run_once(cfg, inject));
        if let Some(v) = cp_alt.first() {
            return Err(fail(format!("at ECOSCALE_THREADS={}: {v}", cfg.threads)));
        }
        checks += cp_alt.checks_run();
        if base != alt {
            return Err(fail(format!(
                "metrics export diverged between ECOSCALE_THREADS=1 and {} \
                 ({} vs {} bytes)",
                cfg.threads,
                base.len(),
                alt.len()
            )));
        }
    }
    // SnapPlane phase: checkpoint/resume the serving run once per
    // config (the thread-count equivalence of resume itself is pinned
    // by tests/determinism.rs, so re-running it per thread setting
    // would only duplicate work).
    let mut cp_snap = CheckPlane::enabled(1);
    snap_fuzz(cfg, &mut cp_snap);
    if let Some(v) = cp_snap.first() {
        return Err(fail(format!("snap phase: {v}")));
    }
    checks += cp_snap.checks_run();
    // TelePlane phase: the serving configuration re-runs with windowed
    // telemetry and a fully-armed flight recorder; the capture export
    // (series + per-cell flight rings) must be byte-identical at 1
    // thread and at the configured thread count, and the series'
    // `telem.window_conserved` invariant must hold in both.
    let (tbase, cp_telem) = with_threads(1, || telem_once(cfg));
    if let Some(v) = cp_telem.first() {
        return Err(fail(format!("telem phase: {v}")));
    }
    checks += cp_telem.checks_run();
    if cfg.threads != 1 {
        let (talt, cp_telem_alt) = with_threads(cfg.threads, || telem_once(cfg));
        if let Some(v) = cp_telem_alt.first() {
            return Err(fail(format!(
                "telem phase at ECOSCALE_THREADS={}: {v}",
                cfg.threads
            )));
        }
        checks += cp_telem_alt.checks_run();
        if tbase != talt {
            return Err(fail(format!(
                "telemetry capture diverged between ECOSCALE_THREADS=1 and {} \
                 ({} vs {} bytes)",
                cfg.threads,
                tbase.len(),
                talt.len()
            )));
        }
    }
    // Sharded-engine phase: the cluster-partitioned simulation must
    // export byte-identically at 1 shard and at the configured count.
    let scfg = shard_sim_config(cfg);
    let mut cp_seq = CheckPlane::enabled(1);
    let seq = run_shard_sim_with(&scfg, Some(1), &mut cp_seq);
    if let Some(v) = cp_seq.first() {
        return Err(fail(format!("shard sim at shards=1: {v}")));
    }
    checks += cp_seq.checks_run();
    if cfg.shards != 1 {
        let mut cp_par = CheckPlane::enabled(1);
        let par = run_shard_sim_with(&scfg, Some(cfg.shards), &mut cp_par);
        if let Some(v) = cp_par.first() {
            return Err(fail(format!("shard sim at shards={}: {v}", cfg.shards)));
        }
        checks += cp_par.checks_run();
        if seq.metrics.to_json() != par.metrics.to_json() {
            return Err(fail(format!(
                "shard-sim metrics diverged between shards=1 and {}",
                cfg.shards
            )));
        }
        if seq.trace.to_chrome_json() != par.trace.to_chrome_json() {
            return Err(fail(format!(
                "shard-sim trace diverged between shards=1 and {}",
                cfg.shards
            )));
        }
        if seq.report() != par.report() {
            return Err(fail(format!(
                "shard-sim report diverged between shards=1 and {}: {} vs {}",
                cfg.shards,
                seq.report(),
                par.report()
            )));
        }
    }
    Ok(RunReport { checks_run: checks })
}

/// The cluster-partitioned simulation a configuration's shard phase runs:
/// small enough to stay cheap across a 500-config sweep, varied enough
/// (clusters, workload, seed all derive from the config) to exercise
/// uneven cluster-to-shard packings.
fn shard_sim_config(cfg: &FuzzConfig) -> ShardSimConfig {
    let mut scfg = ShardSimConfig::new(2 + cfg.workers % 5, 2 + cfg.workers % 3);
    scfg.tasks_per_cluster = cfg.tasks.clamp(8, 48);
    scfg.flops = 400;
    scfg.spacing_ns = 60;
    scfg.seed = cfg.seed ^ 0x5da2_c0de;
    scfg
}

/// Shrinks a failing configuration to a smaller one that still fails,
/// trying scale reductions and axis simplifications to a fixed point.
/// `still_fails` must be deterministic (it re-runs the candidate).
pub fn shrink_config(
    cfg: &FuzzConfig,
    mut still_fails: impl FnMut(&FuzzConfig) -> bool,
) -> FuzzConfig {
    let mut cur = cfg.clone();
    loop {
        let Some(next) = shrink_candidates(&cur).into_iter().find(|c| still_fails(c)) else {
            return cur;
        };
        cur = next;
    }
}

/// Strictly-simpler neighbours of `c`, most aggressive first.
fn shrink_candidates(c: &FuzzConfig) -> Vec<FuzzConfig> {
    let mut out = Vec::new();
    if c.tasks > 1 {
        out.push(FuzzConfig {
            tasks: (c.tasks / 2).max(1),
            ..c.clone()
        });
        out.push(FuzzConfig {
            tasks: c.tasks - 1,
            ..c.clone()
        });
    }
    if c.workers > 2 {
        out.push(FuzzConfig {
            workers: (c.workers / 2).max(2),
            ..c.clone()
        });
        out.push(FuzzConfig {
            workers: c.workers - 1,
            ..c.clone()
        });
    }
    if c.threads > 1 {
        out.push(FuzzConfig {
            threads: 1,
            ..c.clone()
        });
    }
    if c.shards > 1 {
        out.push(FuzzConfig {
            shards: 1,
            ..c.clone()
        });
    }
    if c.tenants > 1 {
        out.push(FuzzConfig {
            tenants: 1,
            ..c.clone()
        });
    }
    if c.faults != FaultKind::None {
        out.push(FuzzConfig {
            faults: FaultKind::None,
            ..c.clone()
        });
    }
    if c.topo != TopoKind::Tree {
        out.push(FuzzConfig {
            topo: TopoKind::Tree,
            ..c.clone()
        });
    }
    if c.sched != SchedKind::Lazy(2) {
        out.push(FuzzConfig {
            sched: SchedKind::Lazy(2),
            ..c.clone()
        });
    }
    if c.seed != 0 {
        out.push(FuzzConfig {
            seed: 0,
            ..c.clone()
        });
    }
    out.dedup();
    out
}

/// One full pass over the four phases at the current thread setting.
/// Returns the metrics export and the aggregated plane.
fn run_once(cfg: &FuzzConfig, inject: bool) -> (String, CheckPlane) {
    let mut cp = CheckPlane::enabled(1);
    let mut m = MetricsRegistry::new();
    sched_fuzz(cfg, &mut cp, &mut m);
    noc_fuzz(cfg, &mut cp, &mut m);
    smmu_fuzz(cfg, &mut cp, &mut m);
    unimem_fuzz(cfg, &mut cp, &mut m);
    serve_fuzz(cfg, &mut cp, &mut m);
    if inject {
        cp.check(invariant::SABOTAGE, cfg.tasks < 24, || {
            format!(
                "deliberate violation armed at tasks >= 24 (tasks = {})",
                cfg.tasks
            )
        });
    }
    (m.to_json(), cp)
}

/// Runs `f` with `ECOSCALE_THREADS` set to `n`, restoring the previous
/// value afterwards.
fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    let prev = std::env::var(pool::THREADS_ENV).ok();
    std::env::set_var(pool::THREADS_ENV, n.to_string());
    let out = f();
    match prev {
        Some(p) => std::env::set_var(pool::THREADS_ENV, p),
        None => std::env::remove_var(pool::THREADS_ENV),
    }
    out
}

/// Two scheduler lanes on the work pool, each a seeded [`ClusterSim`]
/// under the configured policy (and fault campaign) with an armed
/// per-lane plane, folded back in input order.
fn sched_fuzz(cfg: &FuzzConfig, cp: &mut CheckPlane, m: &mut MetricsRegistry) {
    let spec = cfg.campaign();
    let (tasks, workers, seed) = (cfg.tasks, cfg.workers, cfg.seed);
    let policy = cfg.sched.policy();
    let lanes: Vec<u64> = vec![0, 1];
    let results = pool::parallel_map(lanes, move |lane| {
        let trace = skewed_trace(tasks, workers, 100_000, 1.1, seed ^ lane);
        let mut sim = ClusterSim::new(workers, policy, seed.wrapping_add(lane))
            .with_checks(CheckPlane::enabled(4));
        if !spec.is_off() {
            sim = sim.with_faults(&spec, ResilienceConfig::full());
        }
        sim.run(&trace);
        let mut lm = MetricsRegistry::new();
        sim.export_metrics(&mut lm, &format!("sched{lane}"));
        (lm, sim.checks().clone())
    });
    for (lm, lane_cp) in results {
        m.merge(&lm);
        cp.absorb(&lane_cp);
    }
}

/// Seeded transfer storm on the configured topology, link faults armed
/// when the campaign degrades links.
fn noc_fuzz(cfg: &FuzzConfig, cp: &mut CheckPlane, m: &mut MetricsRegistry) {
    let w = cfg.workers;
    let tier = w.div_ceil(4).max(2);
    match cfg.topo {
        TopoKind::Tree => drive_net(
            cfg,
            4 * tier,
            Network::new(TreeTopology::new(&[4, tier]), NetworkConfig::default()),
            cp,
            m,
        ),
        TopoKind::Crossbar => drive_net(
            cfg,
            w,
            Network::new(CrossbarTopology::new(w), NetworkConfig::default()),
            cp,
            m,
        ),
        TopoKind::Mesh => drive_net(
            cfg,
            4 * tier,
            Network::new(Mesh2d::new(4, tier), NetworkConfig::default()),
            cp,
            m,
        ),
        TopoKind::Dragonfly => drive_net(
            cfg,
            4 * tier,
            Network::new(Dragonfly::new(2, 2, tier), NetworkConfig::default()),
            cp,
            m,
        ),
        TopoKind::FatTree => drive_net(
            cfg,
            4 * tier,
            Network::new(
                FatTreeTopology::new(&[4, tier], 2),
                NetworkConfig::default(),
            ),
            cp,
            m,
        ),
    }
}

fn drive_net<T: Topology>(
    cfg: &FuzzConfig,
    nodes: usize,
    mut net: Network<T>,
    cp: &mut CheckPlane,
    m: &mut MetricsRegistry,
) {
    let spec = cfg.campaign();
    if !spec.is_off() {
        net.set_faults(&spec);
    }
    let mut rng = SimRng::seed_from(cfg.seed ^ 0x0c0c_0c0c);
    let mut now = Time::ZERO;
    for _ in 0..cfg.tasks * 2 {
        let src = NodeId(rng.gen_range_usize(0, nodes));
        let dst = NodeId(rng.gen_range_usize(0, nodes));
        let bytes = 64 * (1 + rng.gen_range_u64(0, 16));
        net.transfer(now, src, dst, bytes);
        now += Duration::from_ns(25);
    }
    net.check_invariants(cp);
    net.export_metrics(m, "fnoc");
}

/// Mixed-permission translation stream, including out-of-range and
/// permission-denied touches, through one dual-stage SMMU.
fn smmu_fuzz(cfg: &FuzzConfig, cp: &mut CheckPlane, m: &mut MetricsRegistry) {
    const PERMS: [PagePerms; 3] = [PagePerms::READ, PagePerms::RW, PagePerms::WRITE];
    let mut smmu = Smmu::new(SmmuConfig::default());
    let pages = 48u64;
    for p in 0..pages {
        smmu.map(
            VirtAddr::from_page(p, 0),
            0x1_0000 + p,
            0x2_0000 + p,
            PERMS[(p % 3) as usize],
        )
        .expect("fresh mapping");
    }
    let mut rng = SimRng::seed_from(cfg.seed ^ 0x5a5a_5a5a);
    for _ in 0..cfg.tasks * 4 {
        let page = rng.gen_range_u64(0, pages + 2);
        let need = if rng.gen_bool(0.3) {
            PagePerms::WRITE
        } else {
            PagePerms::READ
        };
        let _ = smmu.translate(VirtAddr::from_page(page, rng.gen_range_u64(0, 4096)), need);
    }
    smmu.check_invariants(cp);
    smmu.export_metrics(m, "smmu");
}

/// A short multi-tenant ServePlane run over the linear test mix: the
/// configured tenant count partitioned across up to two serving cells,
/// with the configuration's fault campaign injected. The serve plane's
/// conservation and queue-bound invariants are absorbed into `cp`, and
/// the `serve.*` metrics join the byte-identity comparison.
fn serve_fuzz(cfg: &FuzzConfig, cp: &mut CheckPlane, m: &mut MetricsRegistry) {
    let scfg = serve_sim_config(cfg);
    let out = run_serve_sim_with(&scfg, cp);
    m.merge(&out.metrics);
}

/// The serving configuration a fuzz point drives, shared by the serve
/// phase and the SnapPlane checkpoint phase.
fn serve_sim_config(cfg: &FuzzConfig) -> ServeSimConfig {
    let spec = ServeSpec::parse(&format!(
        "seed={},tenants={},rate=60000,horizon=150us,batch=4,deadline=120us,queue=16",
        cfg.seed, cfg.tenants
    ))
    .expect("fuzz serve specs are well-formed");
    let mut scfg = ServeSimConfig::new(spec, linear_test_mix());
    scfg.items = 24;
    scfg.workers_per_node = 2;
    scfg.compute_nodes = 2;
    scfg.cells = cfg.tenants.min(2);
    scfg.cadence = Duration::from_us(25);
    if cfg.faults != FaultKind::None {
        scfg.faults = cfg.campaign();
    }
    scfg
}

/// SnapPlane phase: checkpoint the configuration's serving run at
/// mid-horizon, restore the snapshot into freshly built cells, and
/// require the resumed serving + metrics exports to be byte-identical
/// to the uninterrupted run (`snap.resume_equivalent`). The resume path
/// itself re-arms `snap.roundtrip_identical` and `snap.version_refused`
/// per cell, and a deliberately corrupted copy of the stream must be
/// refused with a typed error rather than partially applied.
fn snap_fuzz(cfg: &FuzzConfig, cp: &mut CheckPlane) {
    let scfg = serve_sim_config(cfg);
    let at = Time::ZERO + Duration::from_us(75);
    let mut full_cp = CheckPlane::enabled(1);
    let full = run_serve_sim_with(&scfg, &mut full_cp);
    let bytes = serve_checkpoint(&scfg, at);
    match serve_resume_with(&scfg, &bytes, cp) {
        Ok(resumed) => {
            cp.check(
                invariant::SNAP_RESUME_EQUIVALENT,
                resumed.serving.to_json() == full.serving.to_json()
                    && resumed.metrics.to_json() == full.metrics.to_json(),
                || format!("resume at {at} diverged from the uninterrupted run"),
            );
        }
        Err(e) => {
            cp.check(invariant::SNAP_RESUME_EQUIVALENT, false, || {
                format!("checkpoint at {at} refused on resume: {e}")
            });
        }
    }
    let mut bad = bytes.clone();
    let tail = bad.len() - 1;
    bad[tail] ^= 0x01;
    cp.check(
        invariant::SNAP_VERSION_REFUSED,
        serve_resume_with(&scfg, &bad, &mut CheckPlane::enabled(1)).is_err(),
        || "corrupted snapshot was not refused".to_string(),
    );
}

/// TelePlane phase body: one serving run with 25µs telemetry windows and
/// every trigger armed, returning the capture export and the plane that
/// absorbed the run's invariants (including `telem.window_conserved`).
fn telem_once(cfg: &FuzzConfig) -> (String, CheckPlane) {
    let mut scfg = serve_sim_config(cfg);
    scfg.telemetry = Some(TelemetryConfig::new(Duration::from_us(25)));
    let mut cp = CheckPlane::enabled(1);
    let out = run_serve_sim_with(&scfg, &mut cp);
    let telem = out.telemetry.expect("telemetry armed in the fuzz config");
    (telem.to_json(), cp)
}

/// Zipf-skewed UNIMEM traffic from `workers` nodes over a tree NoC.
fn unimem_fuzz(cfg: &FuzzConfig, cp: &mut CheckPlane, m: &mut MetricsRegistry) {
    let nodes = cfg.workers;
    let mut net = Network::new(TreeTopology::new(&[nodes]), NetworkConfig::default());
    let mut mem = UnimemSystem::new(nodes, CacheConfig::l1_default(), DramModel::default());
    let mut rng = SimRng::seed_from(cfg.seed ^ 0x0b5e_0b5e);
    let mut now = Time::ZERO;
    for _ in 0..cfg.tasks * 3 {
        let node = NodeId(rng.gen_range_usize(0, nodes));
        let owner = NodeId(rng.gen_zipf(nodes, 1.1));
        let addr = GlobalAddr::new(owner, rng.gen_range_u64(0, 64) * 4096);
        let bytes = 64 * (1 + rng.gen_range_u64(0, 4));
        let access = if rng.gen_bool(0.35) {
            mem.write(&mut net, now, node, addr, bytes)
        } else {
            mem.read(&mut net, now, node, addr, bytes)
        };
        now = now.max(access.completion - access.latency) + Duration::from_ns(40);
    }
    mem.check_invariants(cp);
    net.check_invariants(cp);
    mem.export_metrics(m, "unimem");
    net.export_metrics(m, "unoc");
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// `run_config` mutates `ECOSCALE_THREADS`; serialise tests that call it.
    static ENV_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn spec_string_round_trips() {
        for i in 0..32 {
            let cfg = FuzzConfig::from_index(i);
            let parsed = FuzzConfig::parse(&cfg.to_string()).expect("round trip parses");
            assert_eq!(parsed, cfg, "index {i}");
        }
    }

    #[test]
    fn from_index_is_deterministic_and_varied() {
        assert_eq!(FuzzConfig::from_index(7), FuzzConfig::from_index(7));
        let topos: std::collections::BTreeSet<&str> = (0..64)
            .map(|i| FuzzConfig::from_index(i).topo.as_str())
            .collect();
        assert!(topos.len() >= 4, "sweep covers topologies: {topos:?}");
        let faults: std::collections::BTreeSet<&str> = (0..64)
            .map(|i| FuzzConfig::from_index(i).faults.as_str())
            .collect();
        assert!(faults.len() >= 4, "sweep covers fault kinds: {faults:?}");
    }

    #[test]
    fn malformed_specs_are_rejected_with_context() {
        let e = FuzzConfig::parse("topo=ring").unwrap_err();
        assert_eq!(
            e.to_string(),
            "bad fuzz config pair `topo=ring`: want tree|xbar|mesh|dfly|fat"
        );
        assert!(FuzzConfig::parse("tasks=0").is_err());
        assert!(FuzzConfig::parse("threads=0").is_err());
        assert!(FuzzConfig::parse("shards=0").is_err());
        assert!(FuzzConfig::parse("workers=1").is_err());
        assert!(FuzzConfig::parse("bogus=1").is_err());
        assert!(FuzzConfig::parse("noequals").is_err());
        // partial specs keep defaults
        let cfg = FuzzConfig::parse("tasks=5,threads=3").unwrap();
        assert_eq!(cfg.tasks, 5);
        assert_eq!(cfg.threads, 3);
        assert_eq!(cfg.topo, TopoKind::Tree);
    }

    #[test]
    fn clean_config_runs_green_across_threads() {
        let _g = ENV_LOCK.lock().unwrap();
        let cfg = FuzzConfig {
            seed: 11,
            topo: TopoKind::Mesh,
            sched: SchedKind::Central,
            faults: FaultKind::Mixed,
            tasks: 40,
            workers: 6,
            threads: 4,
            shards: 4,
            tenants: 3,
        };
        let report = run_config(&cfg, false).expect("clean config passes");
        assert!(report.checks_run > 0);
    }

    #[test]
    fn shard_axis_sweeps_and_shrinks() {
        let shards: std::collections::BTreeSet<usize> =
            (0..64).map(|i| FuzzConfig::from_index(i).shards).collect();
        assert!(shards.len() >= 4, "sweep covers shard counts: {shards:?}");
        let tenants: std::collections::BTreeSet<usize> =
            (0..64).map(|i| FuzzConfig::from_index(i).tenants).collect();
        assert!(
            tenants.len() >= 3,
            "sweep covers tenant counts: {tenants:?}"
        );
        let wide = FuzzConfig {
            shards: 6,
            ..FuzzConfig::default()
        };
        assert!(shrink_candidates(&wide)
            .iter()
            .any(|c| c.shards == 1 && c.tasks == wide.tasks));
    }

    #[test]
    fn injected_violation_is_caught_and_shrinks_to_threshold() {
        let _g = ENV_LOCK.lock().unwrap();
        let cfg = FuzzConfig {
            tasks: 97,
            threads: 1,
            ..FuzzConfig::default()
        };
        let err = run_config(&cfg, true).expect_err("sabotage fires");
        assert!(
            err.detail.contains("check.sabotage"),
            "detail: {}",
            err.detail
        );
        let min = shrink_config(&cfg, |c| run_config(c, true).is_err());
        assert_eq!(
            min.tasks, 24,
            "shrinker converges on the sabotage threshold"
        );
        assert_eq!(min.workers, 2);
        assert_eq!(min.faults, FaultKind::None);
        assert_eq!(min.tenants, 1, "the serve axis shrinks away too");
    }
}
