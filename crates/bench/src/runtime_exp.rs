//! Runtime experiments: E7 (dynamic HW/SW partitioning quality), E8
//! (lazy scheduling vs centralized/random).

use std::collections::HashMap;

use ecoscale_core::{AccessPath, SystemBuilder, UnilogicModel};
use ecoscale_hls::KernelAnalysis;
use ecoscale_noc::{NodeId, TreeTopology};
use ecoscale_runtime::{skewed_trace, ClusterSim, SchedPolicy};
use ecoscale_sim::pool;
use ecoscale_sim::report::{fnum, fratio, Table};
use ecoscale_sim::{Duration, Energy, SimRng};

use crate::Scale;

/// E7 — §4.2: the history-model scheduler against static baselines and
/// the oracle, on a trace of Black–Scholes calls with varying input
/// sizes.
pub fn e07_scheduler(scale: Scale) -> Table {
    let calls = scale.pick(40, 200);
    let src = ecoscale_apps::blackscholes::KERNEL;
    let kernel = ecoscale_hls::parse_kernel(src).expect("parses");
    let sizes_pool = [1_024u64, 4_096, 16_384, 65_536];
    let mut rng = SimRng::seed_from(3);
    let trace: Vec<u64> = (0..calls)
        .map(|_| sizes_pool[rng.gen_zipf(sizes_pool.len(), 0.8)])
        .collect();

    // adaptive: the real system
    let mut sys = SystemBuilder::new()
        .workers_per_node(4)
        .compute_nodes(2)
        .hls_budget(ecoscale_fpga::Resources::new(3900, 64, 200))
        .kernel(src, ecoscale_apps::blackscholes::kernel_hints(65_536))
        .build()
        .expect("builds");
    let mut adaptive_time = Duration::ZERO;
    let mut adaptive_energy = Energy::ZERO;
    for (i, &n) in trace.iter().enumerate() {
        let (spots, strikes) = ecoscale_apps::blackscholes::generate(n as usize, i as u64);
        let mut args = ecoscale_apps::blackscholes::bind_args(&spots, &strikes, 0.02, 0.3, 1.0);
        let out = sys
            .call(NodeId(0), "blackscholes", &mut args)
            .expect("runs");
        adaptive_time += out.latency;
        adaptive_energy += out.energy;
        if i % 10 == 9 {
            sys.daemon_tick();
        }
    }

    // static baselines, costed with the same models
    let unilogic = UnilogicModel::default();
    let topo = TreeTopology::new(&[4, 2]);
    let module = sys
        .library()
        .get("blackscholes")
        .expect("in library")
        .module
        .clone();
    let per_call = |n: u64, path: AccessPath| {
        let hints = HashMap::from([
            ("n".to_owned(), n as f64),
            ("r".to_owned(), 0.02),
            ("sigma".to_owned(), 0.3),
            ("t".to_owned(), 1.0),
        ]);
        let an = KernelAnalysis::analyze(&kernel, &hints);
        let hot = an.hot_loop().expect("has loop");
        let items = hot.total_iterations.expect("resolved");
        let (hw_ops, cpu_ops, mem) = (
            hot.body_census.flops() as u64,
            hot.body_census.flops() as u64 + hot.body_census.special as u64 * 24,
            hot.body_census.mem_ops() as u64,
        );
        let ops = if path == AccessPath::Software {
            cpu_ops
        } else {
            hw_ops
        };
        unilogic.cost(
            &topo,
            path,
            &module,
            NodeId(0),
            NodeId(0),
            items,
            ops,
            mem,
            n * 16,
        )
    };
    let mut sw_time = Duration::ZERO;
    let mut sw_energy = Energy::ZERO;
    let mut hw_time = Duration::ZERO;
    let mut hw_energy = Energy::ZERO;
    let mut oracle_time = Duration::ZERO;
    let costs = pool::parallel_map(trace.clone(), |n| {
        (
            per_call(n, AccessPath::Software),
            per_call(n, AccessPath::LocalCached),
        )
    });
    for (sw, hw) in costs {
        sw_time += sw.latency;
        sw_energy += sw.energy;
        hw_time += hw.latency;
        hw_energy += hw.energy;
        oracle_time += sw.latency.min(hw.latency);
    }
    // all-HW pays one reconfiguration upfront
    let port = ecoscale_fpga::ReconfigPort::default();
    let (reconf, reconf_e) = port.load_cost(module.bitstream(), ecoscale_fpga::CompressionAlgo::Lz);
    hw_time += reconf;
    hw_energy += reconf_e;

    let mut t = Table::new(
        "E7 (§4.2): dynamic HW/SW partitioning vs static policies (blackscholes trace)",
        &["policy", "total time", "total energy", "vs oracle"],
    );
    for (name, time, energy) in [
        ("all-software", sw_time, sw_energy),
        ("all-hardware", hw_time, hw_energy),
        ("adaptive (history)", adaptive_time, adaptive_energy),
        ("oracle", oracle_time, Energy::ZERO),
    ] {
        t.row_owned(vec![
            name.to_owned(),
            format!("{time}"),
            if name == "oracle" {
                "-".into()
            } else {
                format!("{energy}")
            },
            fratio(time / oracle_time),
        ]);
    }
    t
}

/// E8 — §4.2 \[9\]: lazy local-queue scheduling vs a centralized queue and
/// random push, sweeping worker count on a skewed task trace.
pub fn e08_lazy(scale: Scale) -> Table {
    let sizes: &[usize] = scale.pick(&[8, 32][..], &[4, 16, 64, 256, 512][..]);
    let mut t = Table::new(
        "E8 (§4.2,[9]): scheduling policies on a zipf-skewed trace",
        &[
            "grain",
            "workers",
            "policy",
            "makespan",
            "sched overhead",
            "messages",
            "imbalance",
            "mean util",
        ],
    );
    // coarse tasks (~130 us) and fine tasks (~7 us): the centralized
    // dispatcher keeps up with the former and becomes the bottleneck for
    // the latter — the scalability cliff the paper's per-worker queues
    // avoid.
    let grains: &[(&str, u64, usize)] = &[
        ("coarse", 150_000, scale.pick(400, 3000)),
        ("fine", 8_000, scale.pick(1600, 12_000)),
    ];
    let combos: Vec<(&str, u64, usize, usize)> = grains
        .iter()
        .flat_map(|&(grain, flops, tasks)| sizes.iter().map(move |&w| (grain, flops, tasks, w)))
        .collect();
    let blocks = pool::parallel_map(combos, |(grain, flops, tasks, w)| {
        let trace = skewed_trace(tasks, w, flops, 1.1, 13);
        [
            ("lazy-local", SchedPolicy::LazyLocal { probes: 2 }),
            ("centralized", SchedPolicy::Centralized),
            ("random-push", SchedPolicy::RandomPush),
        ]
        .into_iter()
        .map(|(name, policy)| {
            let r = ClusterSim::new(w, policy, 1).run(&trace);
            vec![
                grain.to_owned(),
                w.to_string(),
                name.to_owned(),
                format!("{}", r.makespan),
                format!("{}", r.sched_overhead),
                r.messages.to_string(),
                fnum(r.imbalance),
                fnum(r.mean_utilization),
            ]
        })
        .collect::<Vec<_>>()
    });
    for row in blocks.into_iter().flatten() {
        t.row_owned(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ratio(cell: &str) -> f64 {
        cell.trim_end_matches('x').parse().unwrap()
    }

    #[test]
    fn e07_adaptive_between_static_and_oracle() {
        let t = e07_scheduler(Scale::Quick);
        let rows: HashMap<String, f64> = (0..t.len())
            .map(|i| {
                let c = t.cells(i).unwrap();
                (c[0].clone(), parse_ratio(&c[3]))
            })
            .collect();
        let adaptive = rows["adaptive (history)"];
        let sw = rows["all-software"];
        assert!((rows["oracle"] - 1.0).abs() < 1e-9);
        assert!(adaptive < sw, "adaptive {adaptive} should beat all-SW {sw}");
        // At Quick scale (40 calls) the measurement-first CPU runs weigh
        // ~25% of the trace, so adaptive sits a few x above the oracle;
        // the Full run amortizes this to ~1.5x.
        assert!(adaptive < 6.0, "adaptive {adaptive}");
    }

    #[test]
    fn e08_lazy_cheapest_overhead_at_scale() {
        let t = e08_lazy(Scale::Quick);
        // for the largest worker count, centralized overhead exceeds lazy
        let rows: Vec<_> = (0..t.len()).map(|i| t.cells(i).unwrap().to_vec()).collect();
        let biggest = &rows[rows.len() - 3..];
        let find = |p: &str| {
            biggest
                .iter()
                .find(|r| r[2] == p)
                .expect("policy present")
                .clone()
        };
        let lazy = find("lazy-local");
        let central = find("centralized");
        let lazy_msgs: u64 = lazy[5].parse().unwrap();
        let central_msgs: u64 = central[5].parse().unwrap();
        assert!(central_msgs > 0 && lazy_msgs > 0);
    }
}
