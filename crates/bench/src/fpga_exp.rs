//! Reconfiguration experiments: E9 (bitstream compression), E10
//! (defragmentation), E11 (accelerator chaining), E12 (HLS DSE).

use ecoscale_core::Chain;
use ecoscale_fpga::{CompressionAlgo, Fabric, Floorplanner, ModuleId, ReconfigPort, Resources};
use ecoscale_hls::{Explorer, ModuleLibrary};
use ecoscale_sim::pool;
use ecoscale_sim::report::{fnum, fratio, Table};
use ecoscale_sim::SimRng;

use crate::Scale;

fn workload_library() -> ModuleLibrary {
    let kernels = vec![
        (
            ecoscale_hls::parse_kernel(ecoscale_apps::blackscholes::KERNEL).expect("parses"),
            ecoscale_apps::blackscholes::kernel_hints(65_536),
        ),
        (
            ecoscale_hls::parse_kernel(ecoscale_apps::gemm::KERNEL).expect("parses"),
            ecoscale_apps::gemm::kernel_hints(256),
        ),
        (
            ecoscale_hls::parse_kernel(ecoscale_apps::stencil::KERNEL).expect("parses"),
            ecoscale_apps::stencil::kernel_hints(256),
        ),
        (
            ecoscale_hls::parse_kernel(ecoscale_apps::montecarlo::KERNEL).expect("parses"),
            ecoscale_apps::montecarlo::kernel_hints(65_536),
        ),
        (
            ecoscale_hls::parse_kernel(ecoscale_apps::nbody::KERNEL).expect("parses"),
            ecoscale_apps::nbody::kernel_hints(2_048),
        ),
    ];
    ModuleLibrary::synthesize(&kernels, Resources::new(3900, 64, 200)).expect("synthesizable")
}

/// E9 — §4.3 \[11\]: configuration-data compression across the module
/// library: ratio, reconfiguration latency, energy.
pub fn e09_compression(_scale: Scale) -> Table {
    let lib = workload_library();
    let port = ReconfigPort::default();
    let mut t = Table::new(
        "E9 (§4.3,[11]): bitstream compression vs reconfiguration cost (module library)",
        &[
            "algorithm",
            "stored KiB",
            "ratio",
            "total reconfig time",
            "total energy",
            "time vs none",
        ],
    );
    let sweeps = pool::parallel_map(CompressionAlgo::ALL.to_vec(), |algo| {
        let mut stored = 0usize;
        let mut original = 0usize;
        let mut time = ecoscale_sim::Duration::ZERO;
        let mut energy = ecoscale_sim::Energy::ZERO;
        for e in lib.iter() {
            let s = algo.stats(e.module.bitstream());
            stored += s.compressed;
            original += s.original;
            let (lat, en) = port.load_cost(e.module.bitstream(), algo);
            time += lat;
            energy += en;
        }
        (algo, stored, original, time, energy)
    });
    let base = sweeps
        .iter()
        .find(|&&(algo, ..)| algo == CompressionAlgo::None)
        .map(|&(_, _, _, time, _)| time)
        .expect("uncompressed baseline present");
    for (algo, stored, original, time, energy) in sweeps {
        t.row_owned(vec![
            algo.name().to_owned(),
            fnum(stored as f64 / 1024.0),
            fratio(original as f64 / stored as f64),
            format!("{time}"),
            format!("{energy}"),
            fratio(base / time),
        ]);
    }
    t
}

/// E10 — §4.3: module churn with and without defragmentation + migration.
///
/// Poisson-ish load/unload churn of random-width modules; without the
/// middleware's defragmentation, allocation failures mount as the free
/// space shatters.
pub fn e10_defrag(scale: Scale) -> Table {
    let events = scale.pick(400, 4000);
    let mut t = Table::new(
        "E10 (§4.3): fragmentation under churn, with/without defragmentation",
        &[
            "policy",
            "placements",
            "failures",
            "failure rate",
            "migrations",
            "final fragmentation",
        ],
    );
    let rows = pool::parallel_map(vec![false, true], |defrag| {
        let mut fp = Floorplanner::new(Fabric::zynq_like(60, 60));
        let mut rng = SimRng::seed_from(11);
        let mut live: Vec<ecoscale_fpga::SlotId> = Vec::new();
        let mut placements = 0u64;
        let mut failures = 0u64;
        let mut migrations = 0u64;
        for i in 0..events {
            let load = live.is_empty() || rng.gen_bool(0.52);
            if load {
                let clb = rng.gen_range_u64(150, 800) as u32;
                let need = Resources::new(clb, clb / 50, clb / 40);
                match fp.place(ModuleId(i as u32), need) {
                    Ok(slot) => {
                        placements += 1;
                        live.push(slot);
                    }
                    Err(ecoscale_fpga::PlaceError::Fragmented { .. }) if defrag => {
                        migrations += fp.defragment().len() as u64;
                        match fp.place(ModuleId(i as u32), need) {
                            Ok(slot) => {
                                placements += 1;
                                live.push(slot);
                            }
                            Err(_) => failures += 1,
                        }
                    }
                    Err(_) => failures += 1,
                }
            } else {
                let idx = rng.gen_range_usize(0, live.len());
                let slot = live.swap_remove(idx);
                fp.remove(slot);
            }
        }
        vec![
            if defrag {
                "defrag+migrate"
            } else {
                "first-fit only"
            }
            .to_owned(),
            placements.to_string(),
            failures.to_string(),
            fnum(failures as f64 / (failures + placements).max(1) as f64),
            migrations.to_string(),
            fnum(fp.fragmentation()),
        ]
    });
    for row in rows {
        t.row_owned(row);
    }
    t
}

/// E11 — §4.3: accelerator chaining vs store-and-reload, sweeping chain
/// length.
pub fn e11_chaining(scale: Scale) -> Table {
    let lengths: &[u32] = scale.pick(&[1, 4][..], &[1, 2, 3, 4, 5, 6][..]);
    let items = 500_000u64;
    let mut t = Table::new(
        "E11 (§4.3): accelerator chaining vs store-and-reload",
        &[
            "chain len",
            "fused DRAM",
            "split DRAM",
            "fused energy",
            "split energy",
            "energy win",
            "ops/DRAM-byte fused",
        ],
    );
    let lib = workload_library();
    let proto = lib.get("blackscholes").expect("in library").module.clone();
    let rows = pool::parallel_map(lengths.to_vec(), |len| {
        let stages = (0..len)
            .map(|i| {
                ecoscale_fpga::AcceleratorModule::new(
                    ModuleId(i),
                    "stage",
                    proto.resources(),
                    proto.clock_hz(),
                    proto.initiation_interval(),
                    proto.pipeline_depth(),
                    proto.bitstream().clone(),
                )
            })
            .collect();
        let chain = Chain::new(stages);
        let fused = chain.chained(items, 8, 25);
        let split = chain.store_and_reload(items, 8, 25);
        vec![
            len.to_string(),
            ecoscale_sim::report::fbytes(fused.dram_bytes),
            ecoscale_sim::report::fbytes(split.dram_bytes),
            format!("{}", fused.energy),
            format!("{}", split.energy),
            fratio(split.energy / fused.energy),
            fnum(chain.ops_per_dram_byte(&fused, items, 25)),
        ]
    });
    for row in rows {
        t.row_owned(row);
    }
    t
}

/// E12 — §4.3: automated design-space exploration: the area/latency
/// Pareto front of GEMM, and the auto-picked point vs the naive
/// (no-directive) implementation.
pub fn e12_hls_dse(_scale: Scale) -> Table {
    let kernel = ecoscale_hls::parse_kernel(ecoscale_apps::gemm::KERNEL).expect("parses");
    let hints = ecoscale_apps::gemm::kernel_hints(256);
    let budget = Resources::new(8000, 256, 256);
    let explorer = Explorer::new(budget);
    let points = explorer.explore(&kernel, &hints).expect("resolvable");
    let front = Explorer::pareto(points.clone());
    let naive = points
        .iter()
        .find(|p| p.directives.unroll == 1 && !p.directives.pipeline && p.directives.partition == 1)
        .expect("naive point feasible");
    let best = explorer.best(&kernel, &hints).expect("ok").expect("fits");
    let mut t = Table::new(
        "E12 (§4.3): HLS DSE Pareto front, gemm 256x256 (last row: naive baseline)",
        &[
            "directives",
            "area",
            "clock MHz",
            "II",
            "cycles",
            "speedup vs naive",
        ],
    );
    for p in &front {
        t.row_owned(vec![
            p.directives.to_string(),
            p.estimate.resources.total().to_string(),
            fnum(p.estimate.clock_hz as f64 / 1e6),
            p.estimate.ii.to_string(),
            p.estimate.cycles.to_string(),
            fratio(naive.estimate.latency / p.estimate.latency),
        ]);
    }
    t.row_owned(vec![
        format!("naive {}", naive.directives),
        naive.estimate.resources.total().to_string(),
        fnum(naive.estimate.clock_hz as f64 / 1e6),
        naive.estimate.ii.to_string(),
        naive.estimate.cycles.to_string(),
        fratio(1.0),
    ]);
    t.row_owned(vec![
        format!("auto  {}", best.directives),
        best.estimate.resources.total().to_string(),
        fnum(best.estimate.clock_hz as f64 / 1e6),
        best.estimate.ii.to_string(),
        best.estimate.cycles.to_string(),
        fratio(naive.estimate.latency / best.estimate.latency),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ratio(cell: &str) -> f64 {
        cell.trim_end_matches('x').parse().unwrap()
    }

    #[test]
    fn e09_every_compressor_beats_none() {
        let t = e09_compression(Scale::Quick);
        assert_eq!(t.len(), 4);
        for i in 1..t.len() {
            let r = parse_ratio(&t.cells(i).unwrap()[5]);
            assert!(r > 1.0, "algo {i} ratio {r}");
        }
    }

    #[test]
    fn e10_defrag_reduces_failures() {
        let t = e10_defrag(Scale::Quick);
        let without: f64 = t.cells(0).unwrap()[3].parse().unwrap();
        let with: f64 = t.cells(1).unwrap()[3].parse().unwrap();
        assert!(with <= without, "defrag {with} !<= first-fit {without}");
        let migrations: u64 = t.cells(1).unwrap()[4].parse().unwrap();
        assert!(migrations > 0);
    }

    #[test]
    fn e11_energy_win_grows_with_length() {
        let t = e11_chaining(Scale::Quick);
        let first = parse_ratio(&t.cells(0).unwrap()[5]);
        let last = parse_ratio(&t.cells(t.len() - 1).unwrap()[5]);
        assert!(last > first);
    }

    #[test]
    fn e12_auto_beats_naive() {
        let t = e12_hls_dse(Scale::Quick);
        let auto = t.cells(t.len() - 1).unwrap();
        assert!(auto[0].starts_with("auto"));
        assert!(parse_ratio(&auto[5]) > 1.5, "auto speedup {}", auto[5]);
    }
}
