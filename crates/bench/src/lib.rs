//! The ECOSCALE experiment harness.
//!
//! One function per experiment in `DESIGN.md` §4 (E1–E16), the §6
//! ablations (A1–A4), the §11 parallel-engine study (P1), and the §13
//! serving study (S1); each returns
//! the [`Table`]s that the corresponding `exp_*` binary prints and that
//! `EXPERIMENTS.md` quotes. Wall-clock benches in `benches/` (built on
//! the dependency-free [`timing`] harness) exercise the same code paths
//! at reduced scale for regression tracking.
//!
//! Every experiment takes a [`Scale`] so benches can run small while the
//! binaries run the full sweeps.

pub mod ablation;
pub mod accel;
pub mod arch;
pub mod fpga_exp;
pub mod fuzz;
pub mod obs;
pub mod regress;
pub mod resilience_exp;
pub mod runtime_exp;
pub mod scale_exp;
pub mod serve_exp;
pub mod shard_exp;
pub mod timing;

pub use ecoscale_sim::report::Table;

/// How big to run an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced problem sizes for benches and CI.
    Quick,
    /// The full sweeps reported in `EXPERIMENTS.md`.
    Full,
}

impl Scale {
    /// Picks `q` under [`Scale::Quick`], else `f`.
    pub fn pick<T>(self, q: T, f: T) -> T {
        match self {
            Scale::Quick => q,
            Scale::Full => f,
        }
    }
}

/// The signature every experiment shares.
pub type ExperimentFn = fn(Scale) -> Table;

/// Every experiment, keyed by the short name `exp_all` accepts as a
/// filter, in the canonical E1→A4 reporting order.
pub const EXPERIMENTS: &[(&str, ExperimentFn)] = &[
    ("e01", arch::e01_hierarchy),
    ("e02", arch::e02_task_vs_data),
    ("e03", arch::e03_coherence),
    ("e04", accel::e04_smmu),
    ("e04b", accel::e04_invocation_rate),
    ("e05", accel::e05_virtualization),
    ("e06", accel::e06_unilogic),
    ("e07", runtime_exp::e07_scheduler),
    ("e08", runtime_exp::e08_lazy),
    ("e09", fpga_exp::e09_compression),
    ("e10", fpga_exp::e10_defrag),
    ("e11", fpga_exp::e11_chaining),
    ("e12", fpga_exp::e12_hls_dse),
    ("e13", scale_exp::e13_power),
    ("e14", scale_exp::e14_hybrid),
    ("e15", accel::e15_speedup_band),
    ("e16", resilience_exp::e16_resilience),
    ("e16b", resilience_exp::e16b_fabric),
    ("a1", ablation::a1_cut_through),
    ("a2", ablation::a2_tlb_size),
    ("a3", ablation::a3_benefit_margin),
    ("a4", ablation::a4_fat_tree),
    ("p1", shard_exp::p1_parallel_des),
    ("s1", serve_exp::s1_serving),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_pick() {
        assert_eq!(Scale::Quick.pick(1, 2), 1);
        assert_eq!(Scale::Full.pick(1, 2), 2);
    }

    #[test]
    fn experiment_registry_keys_are_unique_and_ordered() {
        assert_eq!(EXPERIMENTS.len(), 24);
        let keys: Vec<&str> = EXPERIMENTS.iter().map(|&(k, _)| k).collect();
        let mut dedup = keys.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), keys.len(), "duplicate registry key");
        assert_eq!(keys.first(), Some(&"e01"));
        assert_eq!(keys.last(), Some(&"s1"));
    }
}
