//! The ECOSCALE experiment harness.
//!
//! One function per experiment in `DESIGN.md` §4 (E1–E15) plus the §6
//! ablations (A1–A3); each returns
//! the [`Table`]s that the corresponding `exp_*` binary prints and that
//! `EXPERIMENTS.md` quotes. Criterion benches in `benches/` exercise the
//! same code paths at reduced scale for wall-clock regression tracking.
//!
//! Every experiment takes a [`Scale`] so benches can run small while the
//! binaries run the full sweeps.

pub mod ablation;
pub mod accel;
pub mod arch;
pub mod fpga_exp;
pub mod runtime_exp;
pub mod scale_exp;

pub use ecoscale_sim::report::Table;

/// How big to run an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced problem sizes for benches and CI.
    Quick,
    /// The full sweeps reported in `EXPERIMENTS.md`.
    Full,
}

impl Scale {
    /// Picks `q` under [`Scale::Quick`], else `f`.
    pub fn pick<T>(self, q: T, f: T) -> T {
        match self {
            Scale::Quick => q,
            Scale::Full => f,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_pick() {
        assert_eq!(Scale::Quick.pick(1, 2), 1);
        assert_eq!(Scale::Full.pick(1, 2), 2);
    }
}
