//! P1 — the sharded conservative-parallel engine: determinism at every
//! shard count, and the scaling shape of the cluster-partitioned model.
//!
//! The *simulation results* in this table are produced by the exact same
//! event stream at any `ECOSCALE_SHARDS` setting — the experiment runs
//! each point at 1 shard and again at 4 and asserts the merged exports
//! match byte for byte. Wall-clock speedups are measured separately by
//! `bench_parallel_des` (they depend on the host and do not belong in a
//! deterministic table).

use ecoscale_core::{run_shard_sim_with, ShardSimConfig};
use ecoscale_sim::check::CheckPlane;
use ecoscale_sim::report::{fnum, Table};

use crate::Scale;

/// The scaling sweep `bench_parallel_des` times: many small clusters with
/// task service ≈ workers × arrival spacing, so the per-cluster queues
/// stay near saturation and every safe window carries events for every
/// shard (short tasks against a long backlog would leave most 90 ns
/// windows nearly empty).
pub fn scaling_config(clusters: usize, tasks_per_cluster: usize) -> ShardSimConfig {
    let mut cfg = ShardSimConfig::new(clusters, 4);
    cfg.tasks_per_cluster = tasks_per_cluster;
    cfg.spacing_ns = 40;
    cfg.flops = 150;
    cfg.remote_frac = 0.10;
    cfg.seed = 0x9A7_0001;
    cfg
}

/// P1 — cluster-partitioned DES over NoC-lookahead safe windows.
pub fn p1_parallel_des(scale: Scale) -> Table {
    let cluster_counts: &[usize] = scale.pick(&[4, 8][..], &[4, 8, 16, 32][..]);
    let tasks = scale.pick(64, 256);
    let mut t = Table::new(
        "P1: sharded conservative-parallel DES (cluster queues, NoC lookahead)",
        &[
            "clusters",
            "tasks",
            "events",
            "rounds",
            "events/round",
            "messages",
            "makespan",
            "identical@4",
        ],
    );
    for &clusters in cluster_counts {
        let cfg = scaling_config(clusters, tasks);
        let mut cp = CheckPlane::enabled(1);
        let base = run_shard_sim_with(&cfg, Some(1), &mut cp);
        assert!(cp.ok(), "invariants: {:?}", cp.first());
        let par = run_shard_sim_with(&cfg, Some(4), &mut cp);
        assert!(cp.ok(), "invariants: {:?}", cp.first());
        let identical = base.metrics.to_json() == par.metrics.to_json()
            && base.trace.to_chrome_json() == par.trace.to_chrome_json()
            && base.report() == par.report();
        assert!(identical, "{clusters} clusters: shards=4 diverged");
        t.row_owned(vec![
            clusters.to_string(),
            (clusters * tasks).to_string(),
            base.events.to_string(),
            base.rounds.to_string(),
            fnum(base.events as f64 / base.rounds.max(1) as f64),
            base.messages.to_string(),
            format!("{}", base.makespan),
            "yes".to_owned(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p1_runs_quick_and_is_deterministic() {
        let a = p1_parallel_des(Scale::Quick).to_string();
        let b = p1_parallel_des(Scale::Quick).to_string();
        assert_eq!(a, b);
        assert!(a.contains("P1:"));
        assert!(a.contains("yes"));
    }
}
