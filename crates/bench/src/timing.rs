//! A minimal wall-clock bench harness.
//!
//! The workspace carries no external dependencies, so the `benches/`
//! binaries (built with `harness = false`) time their subjects with this
//! module instead of criterion: one warm-up call, then repeated calls
//! until a time budget or iteration cap is reached, reporting mean and
//! best-case wall-clock per iteration.
//!
//! `cargo bench -p ecoscale-bench` runs every bench; passing extra
//! arguments filters subjects by substring, e.g.
//! `cargo bench -p ecoscale-bench --bench experiments -- e09`.

use std::time::{Duration, Instant};

/// Per-subject time budget.
const BUDGET: Duration = Duration::from_millis(300);
/// Iteration cap per subject.
const MAX_ITERS: u32 = 1000;

/// Returns `true` when `name` matches the command-line filter (any
/// non-flag argument as a substring; no arguments means run everything).
pub fn selected(name: &str) -> bool {
    let filters: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| !a.starts_with('-'))
        .collect();
    filters.is_empty() || filters.iter().any(|f| name.contains(f.as_str()))
}

/// Times `f` and prints one aligned result line.
///
/// Returns the mean per-iteration wall-clock so callers can derive
/// ratios (e.g. sequential vs parallel).
pub fn bench<R>(name: &str, mut f: impl FnMut() -> R) -> Option<Duration> {
    if !selected(name) {
        return None;
    }
    std::hint::black_box(f()); // warm-up
    let started = Instant::now();
    let mut iters = 0u32;
    let mut best = Duration::MAX;
    while iters < MAX_ITERS && started.elapsed() < BUDGET {
        let t0 = Instant::now();
        std::hint::black_box(f());
        best = best.min(t0.elapsed());
        iters += 1;
    }
    let mean = started.elapsed() / iters;
    println!(
        "{name:<44} {iters:>5} iters   mean {:>12}   min {:>12}",
        fmt(mean),
        fmt(best)
    );
    Some(mean)
}

fn fmt(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns}ns")
    } else if ns < 10_000_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_returns_a_positive_mean() {
        let mean = bench("smoke", || std::hint::black_box(1u64 + 1)).expect("no filter set");
        assert!(mean > Duration::ZERO);
    }

    #[test]
    fn fmt_picks_sane_units() {
        assert_eq!(fmt(Duration::from_nanos(12)), "12ns");
        assert!(fmt(Duration::from_micros(150)).ends_with("us"));
        assert!(fmt(Duration::from_millis(150)).ends_with("ms"));
        assert!(fmt(Duration::from_secs(15)).ends_with('s'));
    }
}
