//! S1 — ServePlane: multi-tenant serving under increasing offered load,
//! batching on vs off.
//!
//! Each point runs the same open-loop workload twice over identical
//! backends — once with the batching dispatcher (coalescing compatible
//! requests into one amortized `EcoscaleSystem::call`) and once with
//! batching disabled (`batch=1`, no coalescing wait) — and reports
//! goodput, shed rate, and tail latency side by side. Past the
//! unbatched capacity knee the batched lane keeps completing what the
//! unbatched lane sheds; the table asserts request conservation on
//! every run and a strict batching goodput win at the saturated top
//! rate.

use ecoscale_apps::mix::serve_mix;
use ecoscale_core::{run_serve_sim_with, ServeSimConfig};
use ecoscale_runtime::ServeSpec;
use ecoscale_sim::check::CheckPlane;
use ecoscale_sim::report::{fnum, Table};
use ecoscale_sim::Duration;

use crate::Scale;

/// The serving config the S1 sweep and `bench_serve` share: 4 tenants
/// over the `apps` serving mix at `rate` requests/sec/tenant, 32-item
/// requests, batching up to 8.
pub fn serving_config(rate: u64, horizon_us: u64) -> ServeSimConfig {
    let spec = ServeSpec::parse(&format!(
        "seed=42,tenants=4,rate={rate},horizon={horizon_us}us,batch=8,deadline=300us,queue=32"
    ))
    .expect("S1 spec is well-formed");
    let mut cfg = ServeSimConfig::new(spec, serve_mix());
    cfg.items = 32;
    cfg
}

/// S1 — goodput/shed/p99 vs offered load, batching on vs off.
pub fn s1_serving(scale: Scale) -> Table {
    let rates: &[u64] = scale.pick(
        &[150_000, 350_000][..],
        &[150_000, 250_000, 350_000, 450_000][..],
    );
    let horizon_us = scale.pick(500, 1000);
    let mut t = Table::new(
        "S1: multi-tenant serving (4 tenants, fir+blackscholes mix, batch<=8 vs none)",
        &[
            "rate/tenant",
            "submitted",
            "goodput",
            "goodput[nobatch]",
            "shed%",
            "shed%[nobatch]",
            "p99",
            "p99[nobatch]",
            "mean batch",
        ],
    );
    let mut last_pair = (0u64, 0u64);
    for &rate in rates {
        let cfg = serving_config(rate, horizon_us);
        let mut off = cfg.clone();
        off.spec = cfg.spec.batching_off();
        let mut cp = CheckPlane::enabled(1);
        let on = run_serve_sim_with(&cfg, &mut cp);
        assert!(cp.ok(), "invariants: {:?}", cp.first());
        let off = run_serve_sim_with(&off, &mut cp);
        assert!(cp.ok(), "invariants: {:?}", cp.first());
        for out in [&on, &off] {
            assert!(out.serving.conserved(), "rate {rate}: requests lost");
            assert_eq!(out.lost, 0, "rate {rate}: resilience dropped work");
        }
        assert!(
            on.serving.goodput() >= off.serving.goodput(),
            "rate {rate}: batching lost goodput"
        );
        last_pair = (on.serving.goodput(), off.serving.goodput());
        t.row_owned(vec![
            rate.to_string(),
            on.serving.submitted().to_string(),
            on.serving.goodput().to_string(),
            off.serving.goodput().to_string(),
            fnum(100.0 * on.serving.shed_rate()),
            fnum(100.0 * off.serving.shed_rate()),
            Duration::from_ns(on.serving.latency.percentile(99.0)).to_string(),
            Duration::from_ns(off.serving.latency.percentile(99.0)).to_string(),
            fnum(on.serving.mean_batch()),
        ]);
    }
    // at the top (saturated) rate the batched dispatcher must win outright
    assert!(
        last_pair.0 > last_pair.1,
        "batching did not beat no-batching at saturation: {} vs {}",
        last_pair.0,
        last_pair.1
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn s1_runs_quick_and_is_deterministic() {
        let a = s1_serving(Scale::Quick).to_string();
        let b = s1_serving(Scale::Quick).to_string();
        assert_eq!(a, b);
        assert!(a.contains("S1:"));
    }
}
