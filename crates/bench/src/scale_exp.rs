//! System-scale experiments: E13 (exaflop power extrapolation) and E14
//! (hybrid MPI+PGAS sorting).

use ecoscale_apps::sort::{distributed_sort, generate, SortMode};
use ecoscale_core::{machine_power_for_exaflop, MachineClass};
use ecoscale_sim::pool;
use ecoscale_sim::report::{fnum, fratio, Table};

use crate::Scale;

/// E13 — §1: "sustaining exaflop performance requires an enormous 1 GW".
pub fn e13_power(_scale: Scale) -> Table {
    let mut t = Table::new(
        "E13 (§1): power to sustain 1 EFLOPS, by scaling strategy",
        &[
            "strategy",
            "GFLOPS/W",
            "IT power",
            "facility power (PUE)",
            "PUE",
        ],
    );
    for (class, pue) in [
        (MachineClass::Tianhe2, 1.9),
        (MachineClass::Green500Best, 1.9),
        (MachineClass::EcoscaleWorker, 1.4),
    ] {
        let bill = machine_power_for_exaflop(class, 1.0, pue);
        t.row_owned(vec![
            class.to_string(),
            fnum(class.flops_per_watt() / 1e9),
            format!("{}", bill.it_power),
            format!("{}", bill.facility_power),
            fnum(pue),
        ]);
    }
    t
}

/// E14 — §2 \[5\]: hybrid MPI+PGAS vs pure MPI on the out-of-core sample
/// sort, sweeping node count.
pub fn e14_hybrid(scale: Scale) -> Table {
    let node_counts: &[usize] = scale.pick(&[2, 4][..], &[2, 4, 8, 16][..]);
    let keys = scale.pick(20_000, 200_000);
    let wpn = 8;
    let mut t = Table::new(
        "E14 (§2,[5]): hybrid MPI+PGAS vs pure MPI, distributed sample sort",
        &[
            "nodes",
            "workers",
            "mode",
            "elapsed",
            "exchange",
            "intra-node",
            "inter-node",
            "speedup",
            "exchange speedup",
        ],
    );
    let blocks = pool::parallel_map(node_counts.to_vec(), |nodes| {
        let data = generate(keys, 5);
        let mpi = distributed_sort(&data, nodes, wpn, SortMode::PureMpi, 1);
        let hybrid = distributed_sort(&data, nodes, wpn, SortMode::Hybrid, 1);
        assert_eq!(mpi.sorted, hybrid.sorted, "both modes sort identically");
        [
            ("pure-mpi", &mpi, 1.0, 1.0),
            (
                "hybrid",
                &hybrid,
                mpi.elapsed / hybrid.elapsed,
                mpi.exchange / hybrid.exchange,
            ),
        ]
        .into_iter()
        .map(|(name, out, speedup, xspeedup)| {
            vec![
                nodes.to_string(),
                (nodes * wpn).to_string(),
                name.to_owned(),
                format!("{}", out.elapsed),
                format!("{}", out.exchange),
                ecoscale_sim::report::fbytes(out.intra_node_bytes),
                ecoscale_sim::report::fbytes(out.inter_node_bytes),
                fratio(speedup),
                fratio(xspeedup),
            ]
        })
        .collect::<Vec<_>>()
    });
    for row in blocks.into_iter().flatten() {
        t.row_owned(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e13_tianhe_hits_a_gigawatt() {
        let t = e13_power(Scale::Quick);
        let row = t.cells(0).unwrap();
        assert!(row[3].contains("MW"));
        // ~1000 MW
        let mw: f64 = row[3].trim_end_matches("MW").parse().unwrap();
        assert!(mw > 900.0 && mw < 1100.0, "{mw} MW");
        // ECOSCALE row far below
        let eco: f64 = t.cells(2).unwrap()[3]
            .trim_end_matches("MW")
            .parse()
            .unwrap();
        assert!(eco < 100.0);
    }

    #[test]
    fn e14_hybrid_wins_every_scale() {
        let t = e14_hybrid(Scale::Quick);
        for i in (1..t.len()).step_by(2) {
            let row = t.cells(i).unwrap();
            assert_eq!(row[2], "hybrid");
            let s: f64 = row[7].trim_end_matches('x').parse().unwrap();
            assert!(s > 1.0, "row {i}: speedup {s}");
        }
    }
}
