//! E16 — FaultPlane resilience experiments.
//!
//! E16 sweeps fault-campaign intensity × recovery policy over the
//! per-worker scheduler ([`ClusterSim`] with worker crashes and stalls)
//! and reports availability and throughput degradation. E16b runs the
//! fabric half: SEU upsets on an assembled
//! [`EcoscaleSystem`](ecoscale_core::EcoscaleSystem) with
//! scrub/repair, software fallback and quarantine.
//!
//! `exp_all --faults <spec>` overrides the base campaign both
//! experiments scale from, so the same sweep can be replayed under any
//! seeded fault mix.

use std::collections::HashMap;
use std::sync::Mutex;

use ecoscale_core::SystemBuilder;
use ecoscale_hls::KernelArgs;
use ecoscale_noc::NodeId;
use ecoscale_runtime::{skewed_trace, ClusterSim, ResilienceConfig, SchedPolicy};
use ecoscale_sim::report::{fnum, Table};
use ecoscale_sim::{pool, CampaignSpec, Duration};

use crate::Scale;

/// The `--faults` override installed by `exp_all` (None = built-in base
/// campaign). Read once per experiment run.
static CAMPAIGN_OVERRIDE: Mutex<Option<CampaignSpec>> = Mutex::new(None);

/// Installs (or clears) the campaign both E16 experiments scale from.
pub fn set_campaign_override(spec: Option<CampaignSpec>) {
    *CAMPAIGN_OVERRIDE.lock().expect("override lock") = spec;
}

/// The built-in base campaign: crashes and stalls for the scheduler
/// half, SEUs for the fabric half.
pub fn default_campaign() -> CampaignSpec {
    let mut spec = CampaignSpec::off();
    spec.seed = 0xfa_17;
    spec.worker_crash_mtbf = Duration::from_ms(6);
    spec.worker_stall_mtbf = Duration::from_ms(3);
    spec.worker_stall_for = Duration::from_us(300);
    spec.seu_mtbf = Duration::from_us(400);
    spec.scrub_period = Duration::from_us(800);
    spec
}

/// The campaign the sweeps multiply up or down: the `--faults` override
/// when installed, else [`default_campaign`].
pub fn base_campaign() -> CampaignSpec {
    CAMPAIGN_OVERRIDE
        .lock()
        .expect("override lock")
        .clone()
        .unwrap_or_else(default_campaign)
}

fn policies() -> [(&'static str, ResilienceConfig); 3] {
    [
        ("none", ResilienceConfig::none()),
        ("retry", ResilienceConfig::retry_only()),
        ("full", ResilienceConfig::full()),
    ]
}

/// E16 — availability and throughput degradation of the per-worker
/// scheduler under worker crashes/stalls, sweeping fault intensity ×
/// recovery policy.
pub fn e16_resilience(scale: Scale) -> Table {
    e16_with(&base_campaign(), scale)
}

fn e16_with(base: &CampaignSpec, scale: Scale) -> Table {
    let tasks = scale.pick(300, 1_500);
    let workers = 8;
    let base = base.clone();
    let intensities: &[(&str, f64)] = &[("off", 0.0), ("1x", 1.0), ("4x", 4.0)];
    let mut t = Table::new(
        "E16 (FaultPlane): scheduler resilience under worker crashes/stalls",
        &[
            "faults",
            "policy",
            "completed",
            "lost",
            "availability",
            "makespan",
            "retries",
            "quarantines",
        ],
    );
    let combos: Vec<(&str, f64, &str, ResilienceConfig)> = intensities
        .iter()
        .flat_map(|&(label, k)| {
            policies()
                .into_iter()
                .map(move |(p, cfg)| (label, k, p, cfg))
        })
        .collect();
    let rows = pool::parallel_map(combos, move |(label, k, policy, cfg)| {
        let trace = skewed_trace(tasks, workers, 120_000, 1.2, 17);
        let mut sim = ClusterSim::new(workers, SchedPolicy::LazyLocal { probes: 2 }, 5);
        if k > 0.0 {
            sim = sim.with_faults(&base.scaled(k), cfg);
        }
        let r = sim.run(&trace);
        let (retries, quarantines) = match sim.resilience() {
            Some(m) => (m.retries(), m.quarantines()),
            None => (0, 0),
        };
        vec![
            label.to_owned(),
            policy.to_owned(),
            r.completed.to_string(),
            r.lost.to_string(),
            fnum(r.availability),
            format!("{}", r.makespan),
            retries.to_string(),
            quarantines.to_string(),
        ]
    });
    for row in rows {
        t.row_owned(row);
    }
    t
}

/// E16b — fabric resilience: SEU upsets on an assembled system, with
/// scrub-and-repair, software fallback and quarantine, vs no recovery.
pub fn e16b_fabric(scale: Scale) -> Table {
    e16b_with(&base_campaign(), scale)
}

fn e16b_with(base: &CampaignSpec, scale: Scale) -> Table {
    const KERNEL: &str = "kernel scale(in float a[], out float b[], int n) {
        for (i in 0 .. n) { b[i] = sqrt(a[i] + 1.0) * 2.0; }
    }";
    let calls = scale.pick(150, 600);
    let n = 4_096usize;
    let base = base.clone();
    let mut t = Table::new(
        "E16b (FaultPlane): SEU upsets on the reconfigurable fabric",
        &[
            "faults",
            "policy",
            "upsets",
            "repairs",
            "fallbacks",
            "quarantines",
            "hw calls",
            "sw calls",
        ],
    );
    let combos: Vec<(&str, f64, &str, ResilienceConfig)> = [("off", 0.0), ("1x", 1.0), ("4x", 4.0)]
        .into_iter()
        .flat_map(|(label, k)| {
            policies()
                .into_iter()
                .map(move |(p, cfg)| (label, k, p, cfg))
        })
        .collect();
    let rows = pool::parallel_map(combos, move |(label, k, policy, cfg)| {
        let mut sys = SystemBuilder::new()
            .workers_per_node(4)
            .compute_nodes(2)
            .kernel(KERNEL, HashMap::from([("n".to_owned(), n as f64)]))
            .build()
            .expect("kernel synthesizes");
        if k > 0.0 {
            sys.enable_faults(&base.scaled(k), cfg);
        }
        // warm the history, then pin the module so the FPGA path is live
        let args = || {
            let mut a = KernelArgs::new();
            a.bind_array("a", (0..n).map(|i| i as f64).collect())
                .bind_array("b", vec![0.0; n])
                .bind_scalar("n", n as f64);
            a
        };
        for _ in 0..10 {
            sys.call(NodeId(0), "scale", &mut args()).expect("runs");
        }
        sys.load_module(NodeId(0), "scale").expect("places");
        for _ in 0..calls {
            sys.call(NodeId(0), "scale", &mut args()).expect("runs");
            sys.fault_tick();
            // the daemon re-loads a quarantine-evicted module if it is
            // still worth accelerating
            sys.daemon_tick();
        }
        let m = sys.export_metrics();
        let g = |k: &str| m.counter(k).unwrap_or(0).to_string();
        vec![
            label.to_owned(),
            policy.to_owned(),
            g("seu.upsets"),
            g("resilience.repairs"),
            g("resilience.fallbacks"),
            g("resilience.quarantines"),
            g("system.calls_fpga_local"),
            g("system.calls_cpu"),
        ]
    });
    for row in rows {
        t.row_owned(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(t: &Table) -> Vec<Vec<String>> {
        (0..t.len()).map(|i| t.cells(i).unwrap().to_vec()).collect()
    }

    #[test]
    fn e16_zero_campaign_is_lossless_and_policies_differ() {
        let t = e16_with(&default_campaign(), Scale::Quick);
        let rows = rows(&t);
        assert_eq!(rows.len(), 9);
        // fault-free rows: everything completes, availability 1, and the
        // policy makes no difference at all
        let off: Vec<_> = rows.iter().filter(|r| r[0] == "off").collect();
        assert_eq!(off.len(), 3);
        for r in &off {
            assert_eq!(r[3], "0", "no tasks lost without faults");
            assert_eq!(r[6], "0", "no retries without faults");
        }
        assert_eq!(off[0][2..], off[1][2..]);
        assert_eq!(off[0][2..], off[2][2..]);
        // under heavy faults, bounded-backoff retry recovers completions
        // the no-recovery policy loses
        let find = |f: &str, p: &str| {
            rows.iter()
                .find(|r| r[0] == f && r[1] == p)
                .expect("row present")
                .clone()
        };
        let none = find("4x", "none");
        let retry = find("4x", "retry");
        let completed = |r: &[String]| r[2].parse::<u64>().unwrap();
        assert!(completed(&retry) >= completed(&none));
        assert!(retry[6].parse::<u64>().unwrap() > 0, "retry policy retries");
    }

    #[test]
    fn e16b_recovery_keeps_hardware_alive() {
        let t = e16b_with(&default_campaign(), Scale::Quick);
        let rows = rows(&t);
        assert_eq!(rows.len(), 9);
        let find = |f: &str, p: &str| {
            rows.iter()
                .find(|r| r[0] == f && r[1] == p)
                .expect("row present")
                .clone()
        };
        for r in rows.iter().filter(|r| r[0] == "off") {
            assert_eq!(r[2], "0", "no upsets without faults");
        }
        let full = find("1x", "full");
        assert!(full[2].parse::<u64>().unwrap() > 0, "upsets struck");
        assert!(full[3].parse::<u64>().unwrap() > 0, "repairs happened");
    }

    #[test]
    fn campaign_override_is_honoured() {
        let mut spec = CampaignSpec::off();
        spec.seed = 99;
        spec.worker_crash_mtbf = Duration::from_ms(7);
        set_campaign_override(Some(spec.clone()));
        assert_eq!(base_campaign(), spec);
        set_campaign_override(None);
        assert_ne!(base_campaign(), spec);
    }
}
