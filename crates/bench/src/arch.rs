//! Architecture experiments: E1 (hierarchical partitioning), E2 (task vs
//! data movement), E3 (global coherence vs UNIMEM).

use ecoscale_mem::GlobalCoherence;
use ecoscale_noc::{
    CostModel, CrossbarTopology, LinkParams, Network, NetworkConfig, NodeId, Topology,
    TrafficStats, TreeTopology,
};
use ecoscale_runtime::CpuModel;
use ecoscale_sim::pool;
use ecoscale_sim::report::{fnum, fratio, Table};
use ecoscale_sim::{SimRng, Time};

use crate::Scale;

/// Tree shape for `w` workers: 8 per node, then 8 per level.
fn tree_for(w: usize) -> TreeTopology {
    let mut fanouts = Vec::new();
    let mut rest = w;
    while rest > 1 {
        let f = rest.min(8);
        fanouts.push(f);
        rest /= f;
    }
    TreeTopology::new(&fanouts)
}

/// E1 — Fig. 1: hierarchical vs flat partitioning of a halo-exchange
/// application.
///
/// Every worker exchanges one 4 KiB halo with each 1-D ring neighbour,
/// plus 5 % of messages go to uniform-random workers (the irregular
/// tail). Hierarchical placement keeps neighbours in the same subtree;
/// the flat baseline treats the machine as one crossbar whose every link
/// is a long-reach cable.
pub fn e01_hierarchy(scale: Scale) -> Table {
    let sizes: &[usize] = scale.pick(&[64, 512][..], &[64, 512, 4096, 32768][..]);
    let mut t = Table::new(
        "E1 (Fig.1): hierarchical tree vs flat interconnect, halo exchange",
        &[
            "workers",
            "topology",
            "diameter",
            "mean hops",
            "mean lat",
            "energy/sweep",
            "lat ratio",
        ],
    );
    let rows = pool::parallel_map(sizes.to_vec(), |w| {
        let halo = 4096u64;
        let mut rng = SimRng::seed_from(7);
        let pairs: Vec<(usize, usize)> = (0..w)
            .flat_map(|i| {
                let mut v = vec![(i, (i + 1) % w), (i, (i + w - 1) % w)];
                if rng.gen_bool(0.05) {
                    v.push((i, rng.gen_range_usize(0, w)));
                }
                v
            })
            .collect();

        let tree = tree_for(w);
        let tree_cost = CostModel::ecoscale_defaults();
        let mut tree_stats = TrafficStats::new();
        let mut tree_lat = 0.0;
        for &(s, d) in &pairs {
            let r = tree.route(NodeId(s), NodeId(d));
            tree_lat += tree_cost.latency(&r, halo).as_ns_f64();
            tree_stats.record(&r, halo, &tree_cost);
        }

        let flat = CrossbarTopology::new(w);
        // a flat machine's crossbar links are all long-reach
        let flat_cost = CostModel::uniform(LinkParams::between_chassis());
        let mut flat_stats = TrafficStats::new();
        let mut flat_lat = 0.0;
        for &(s, d) in &pairs {
            let r = flat.route(NodeId(s), NodeId(d));
            flat_lat += flat_cost.latency(&r, halo).as_ns_f64();
            flat_stats.record(&r, halo, &flat_cost);
        }

        let n = pairs.len() as f64;
        let ratio = flat_lat / tree_lat;
        (
            vec![
                w.to_string(),
                "tree".into(),
                tree.diameter().to_string(),
                fnum(tree_stats.mean_hops()),
                format!("{}ns", fnum(tree_lat / n)),
                format!("{}", tree_stats.energy()),
                String::new(),
            ],
            vec![
                w.to_string(),
                "flat".into(),
                flat.diameter().to_string(),
                fnum(flat_stats.mean_hops()),
                format!("{}ns", fnum(flat_lat / n)),
                format!("{}", flat_stats.energy()),
                fratio(ratio),
            ],
        )
    });
    for (tree_row, flat_row) in rows {
        t.row_owned(tree_row);
        t.row_owned(flat_row);
    }
    t
}

/// E2 — §4.1: "move tasks and processes close to data instead of moving
/// data around … reduces significantly the data traffic and the
/// associated energy consumption and communication latency."
///
/// A task on worker 15 must process a working set living on worker 0
/// (4 levels away). Data-pull ships the set; task-migration ships a
/// 256-byte task descriptor, computes at the data, and returns a
/// 64-byte result.
pub fn e02_task_vs_data(scale: Scale) -> Table {
    let sizes: &[u64] = scale.pick(
        &[4 << 10, 1 << 20][..],
        &[4 << 10, 64 << 10, 1 << 20, 16 << 20, 64 << 20][..],
    );
    let mut t = Table::new(
        "E2: task-to-data (UNIMEM) vs data-to-task",
        &[
            "working set",
            "strategy",
            "net bytes",
            "latency",
            "energy",
            "win",
        ],
    );
    let cpu = CpuModel::a53_default();
    let rows = pool::parallel_map(sizes.to_vec(), |ws| {
        let flops = ws / 4; // one op per word
        let (compute, _) = cpu.exec(flops, ws / 8);
        // data pull
        let mut net = Network::new(tree_for(64), NetworkConfig::default());
        let d = net.transfer(Time::ZERO, NodeId(0), NodeId(63), ws);
        let pull_lat = d.arrival.saturating_since(Time::ZERO) + compute;
        let pull_energy = d.energy;
        // task migration
        let mut net2 = Network::new(tree_for(64), NetworkConfig::default());
        let go = net2.transfer(Time::ZERO, NodeId(63), NodeId(0), 256);
        let back = net2.transfer(go.arrival + compute, NodeId(0), NodeId(63), 64);
        let mig_lat = back.arrival.saturating_since(Time::ZERO);
        let mig_energy = go.energy + back.energy;
        (
            vec![
                ecoscale_sim::report::fbytes(ws),
                "data-pull".into(),
                ecoscale_sim::report::fbytes(ws),
                format!("{pull_lat}"),
                format!("{pull_energy}"),
                String::new(),
            ],
            vec![
                ecoscale_sim::report::fbytes(ws),
                "task-migrate".into(),
                "320B".into(),
                format!("{mig_lat}"),
                format!("{mig_energy}"),
                fratio(pull_lat / mig_lat),
            ],
        )
    });
    for (pull_row, mig_row) in rows {
        t.row_owned(pull_row);
        t.row_owned(mig_row);
    }
    t
}

/// E3 — §4.1: "a global cache coherent mechanism … simply cannot scale."
///
/// N workers cache a hot page set; every epoch each reader touches the
/// page, then one worker writes it. Under a full-map directory the write
/// triggers an invalidation storm proportional to the sharer count; under
/// UNIMEM a write is at most one uncached request/response pair,
/// independent of N. (UNIMEM pays per-read instead — which is exactly why
/// the runtime migrates the cache home to the hottest reader; both sides
/// of the trade are shown.)
pub fn e03_coherence(scale: Scale) -> Table {
    let sizes: &[usize] = scale.pick(&[4, 32][..], &[4, 16, 64, 256, 1024][..]);
    let epochs = 100u64;
    let mut t = Table::new(
        "E3: directory coherence vs UNIMEM, shared page, 1 write + N-1 reads per epoch",
        &[
            "workers",
            "coh msgs/write",
            "unimem msgs/write",
            "write storm",
            "coh total",
            "unimem total",
        ],
    );
    let rows = pool::parallel_map(sizes.to_vec(), |n| {
        let mut coh = GlobalCoherence::new(n);
        let mut write_msgs = 0u64;
        for _ in 0..epochs {
            for r in 1..n {
                coh.read(NodeId(r), 0x40);
            }
            let before = coh.stats().total_messages();
            coh.write(NodeId(0), 0x40);
            write_msgs += coh.stats().total_messages() - before;
        }
        let coh_total = coh.stats().total_messages();
        let coh_per_write = write_msgs as f64 / epochs as f64;
        // UNIMEM: page cacheable only at worker 0 (the writer): writes are
        // local cache hits (0 messages: report the worst case of a remote
        // writer, 2); reads are uncached request/response pairs.
        let unimem_per_write = 2.0;
        let unimem_total = epochs * (n as u64 - 1) * 2 + epochs * 2;
        vec![
            n.to_string(),
            fnum(coh_per_write),
            fnum(unimem_per_write),
            fratio(coh_per_write / unimem_per_write),
            coh_total.to_string(),
            unimem_total.to_string(),
        ]
    });
    for row in rows {
        t.row_owned(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e01_flat_loses_at_scale() {
        let t = e01_hierarchy(Scale::Quick);
        assert!(t.len() >= 4);
        // last flat row carries a ratio > 1
        let last = t.cells(t.len() - 1).unwrap();
        let ratio: f64 = last[6].trim_end_matches('x').parse().unwrap();
        assert!(ratio > 1.0, "flat should be slower, got {ratio}x");
    }

    #[test]
    fn e02_task_migration_wins_large_sets() {
        let t = e02_task_vs_data(Scale::Quick);
        let last = t.cells(t.len() - 1).unwrap();
        let win: f64 = last[5].trim_end_matches('x').parse().unwrap();
        assert!(win > 2.0, "migration should win big sets, got {win}x");
    }

    #[test]
    fn e03_coherence_storm_grows() {
        let t = e03_coherence(Scale::Quick);
        let first: f64 = t.cells(0).unwrap()[3]
            .trim_end_matches('x')
            .parse()
            .unwrap();
        let last: f64 = t.cells(t.len() - 1).unwrap()[3]
            .trim_end_matches('x')
            .parse()
            .unwrap();
        assert!(last > first, "ratio should grow with workers");
    }

    #[test]
    fn tree_for_builds_valid_trees() {
        for w in [8, 64, 512, 4096] {
            let t = tree_for(w);
            assert_eq!(t.num_nodes(), w);
        }
    }
}
