//! Full-stack observability capture behind `exp_all
//! --trace/--metrics/--profile`.
//!
//! Experiments return only their result tables, so this module drives a
//! representative instrumented workload through every layer the
//! tentpole instruments — SMMU translation, UNIMEM over the NoC, the
//! per-worker scheduler, the assembled system's call/reconfigure path,
//! and the sharded conservative-parallel engine — and collects one
//! merged [`TraceBuffer`] plus one [`MetricsRegistry`].
//! [`capture_profile`] additionally returns the shard run's occupancy
//! accounting and the engine's wall-clock phase timers for the ProfPlane
//! report.
//!
//! Determinism: every phase is seeded, and the scheduler phase runs its
//! lanes on [`ecoscale_sim::pool`] with one tracer and one registry per
//! lane, folded back **in input order**. The exported trace JSON and
//! metrics JSON are therefore byte-identical at any `ECOSCALE_THREADS`
//! setting — `tests/determinism.rs` pins this.

use std::collections::HashMap;

use ecoscale_core::{
    linear_test_mix, run_serve_sim, run_shard_sim_observed, run_shard_sim_with, ServeSimConfig,
    ServeTelemetry, SystemBuilder,
};
use ecoscale_hls::KernelArgs;
use ecoscale_mem::{
    CacheConfig, DramModel, GlobalAddr, PagePerms, Smmu, SmmuConfig, UnimemSystem, VirtAddr,
};
use ecoscale_noc::{Network, NetworkConfig, NodeId, TreeTopology};
use ecoscale_runtime::{skewed_trace, ClusterSim, ResilienceConfig, SchedPolicy, ServeSpec};
use ecoscale_sim::check::CheckPlane;
use ecoscale_sim::{
    pool, CampaignSpec, Duration, MetricsRegistry, Profiler, ShardOccupancy, SimRng,
    TelemetryConfig, Time, TimeSeries, TraceBuffer, Tracer,
};

use crate::shard_exp::scaling_config;
use crate::Scale;

/// The combined output of one observability capture.
#[derive(Debug, Clone, Default)]
pub struct Capture {
    /// Merged trace across every phase; export with
    /// [`TraceBuffer::to_chrome_json`].
    pub trace: TraceBuffer,
    /// Merged instruments across every phase.
    pub metrics: MetricsRegistry,
}

/// A [`Capture`] plus the ProfPlane extras from the sharded-engine
/// phase: the run's deterministic occupancy accounting and the engine's
/// host-dependent wall-clock phase timers.
#[derive(Debug, Clone)]
pub struct ProfileCapture {
    /// The merged five-phase capture.
    pub capture: Capture,
    /// Shard occupancy bands from the cluster-partitioned run
    /// (deterministic: byte-identical at any `ECOSCALE_SHARDS`).
    pub occupancy: ShardOccupancy,
    /// Engine wall-clock phase timers (host-dependent — keep out of
    /// byte-compared exports).
    pub wall: Profiler,
}

/// Runs the five instrumented phases at `scale` and returns the merged
/// capture. Pure function of `scale`: byte-identical output at any
/// thread count (and at any `ECOSCALE_SHARDS` — the sharded phase's
/// exports are layout-independent by the engine's contract).
pub fn capture_observability(scale: Scale) -> Capture {
    capture_profile(scale).capture
}

/// [`capture_observability`] keeping the sharded phase's ProfPlane
/// extras — the occupancy bands and the engine's wall-clock profile —
/// next to the merged capture. Backs `exp_all --profile`.
pub fn capture_profile(scale: Scale) -> ProfileCapture {
    let mut cap = Capture::default();
    smmu_phase(scale, &mut cap);
    unimem_phase(scale, &mut cap);
    sched_phase(scale, &mut cap);
    system_phase(scale, &mut cap);
    let (occupancy, wall) = shard_phase(scale, &mut cap);
    ProfileCapture {
        capture: cap,
        occupancy,
        wall,
    }
}

/// The TelePlane capture behind `exp_all --telemetry`: windowed serving
/// telemetry (series + per-cell flight recorders) from a ServePlane run
/// plus the sharded engine's per-safe-window series. Every field is
/// deterministic — byte-identical at any `ECOSCALE_THREADS` /
/// `ECOSCALE_SHARDS` setting.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryCapture {
    /// Serving-cell telemetry: merged series + per-cell flight recorders.
    pub serve: ServeTelemetry,
    /// The sharded engine's per-safe-window series.
    pub shard: TimeSeries,
}

impl TelemetryCapture {
    /// Whether any serving cell's flight recorder latched a trigger.
    pub fn fired(&self) -> bool {
        self.serve.fired()
    }

    /// Canonical telemetry export:
    /// `{"serve":{...},"shard":{...}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"serve\":");
        out.push_str(&self.serve.to_json());
        out.push_str(",\"shard\":");
        out.push_str(&self.shard.to_json());
        out.push('}');
        out
    }

    /// The flight-recorder evidence bundle written on an anomaly dump:
    /// the serving bundle (trigger rings + series tail) plus the shard
    /// series tail for cross-layer context.
    pub fn flight_dump_json(&self) -> String {
        let mut out = String::from("{\"serve\":");
        out.push_str(&self.serve.flight_dump_json(8));
        out.push_str(",\"shard_tail\":");
        out.push_str(&self.shard.tail_json(8));
        out.push('}');
        out
    }
}

/// The serving config [`capture_telemetry`] drives: the linear test mix
/// under a steady in-SLO load, telemetry armed with 50 us windows, and
/// `faults` injected into the backend when the campaign is live.
pub fn telemetry_serve_config(scale: Scale, faults: &CampaignSpec) -> ServeSimConfig {
    let spec = ServeSpec::parse(scale.pick(
        "seed=19,tenants=4,rate=200000,horizon=400us,batch=6,deadline=250us,queue=24",
        "seed=19,tenants=6,rate=250000,horizon=1ms,batch=8,deadline=250us,queue=32",
    ))
    .expect("built-in serve spec parses");
    let mut cfg = ServeSimConfig::new(spec, linear_test_mix());
    cfg.items = 32;
    cfg.telemetry = Some(TelemetryConfig::new(Duration::from_us(50)));
    if !faults.is_off() {
        cfg.faults = faults.clone();
    }
    cfg
}

/// One sharded run with the per-safe-window series feed armed; returns
/// the series (byte-identical at any `ECOSCALE_SHARDS`).
pub fn telemetry_shard_series(scale: Scale) -> TimeSeries {
    let mut cfg = scaling_config(scale.pick(4, 8), scale.pick(48, 256));
    cfg.telemetry = Some((Duration::from_ns(500), 64));
    let mut cp = CheckPlane::from_env();
    let out = run_shard_sim_with(&cfg, None, &mut cp);
    out.series.expect("series armed")
}

/// Runs the TelePlane capture: a telemetry-armed ServePlane simulation
/// (honoring `faults`) plus a series-armed sharded run. Pure function
/// of `(scale, faults)`.
pub fn capture_telemetry(scale: Scale, faults: &CampaignSpec) -> TelemetryCapture {
    let cfg = telemetry_serve_config(scale, faults);
    let out = run_serve_sim(&cfg);
    TelemetryCapture {
        serve: out.telemetry.expect("telemetry armed in config"),
        shard: telemetry_shard_series(scale),
    }
}

/// Runs a seeded fault campaign through the FaultPlane's two live
/// halves — a faulted scheduler run (worker crashes/stalls, full
/// recovery) and a faulted system run (SEU scrub/repair plus SMMU/NoC
/// injection) — and returns the merged capture. Pure function of
/// `(scale, spec)`: byte-identical at any thread count, and with an
/// all-off spec the exported JSON is byte-identical to not injecting at
/// all.
pub fn capture_fault_campaign(scale: Scale, spec: &CampaignSpec) -> Capture {
    let mut cap = Capture::default();
    faulted_sched_phase(scale, spec, &mut cap);
    faulted_system_phase(scale, spec, &mut cap);
    cap
}

/// A faulted [`ClusterSim`] run under the full recovery policy:
/// populates `sched.*` including `sched.resilience.*` fault tracks.
fn faulted_sched_phase(scale: Scale, spec: &CampaignSpec, cap: &mut Capture) {
    let tasks = scale.pick(300, 1_500);
    let tracer = Tracer::buffering();
    let trace = skewed_trace(tasks, 8, 120_000, 1.2, 17);
    let mut sim = ClusterSim::new(8, SchedPolicy::LazyLocal { probes: 2 }, 5)
        .with_faults(spec, ResilienceConfig::full())
        .with_tracer(tracer.clone(), "fsched");
    sim.run(&trace);
    sim.export_metrics(&mut cap.metrics, "sched");
    cap.trace.merge(tracer.take());
}

/// A faulted assembled-system run: SEU upsets with scrub/repair,
/// software fallback, plus the SMMU/NoC injection hooks armed from the
/// same spec. Populates `system.*`, `seu.*`, `resilience.*`.
fn faulted_system_phase(scale: Scale, spec: &CampaignSpec, cap: &mut Capture) {
    const KERNEL: &str = "kernel scale(in float a[], out float b[], int n) {
        for (i in 0 .. n) { b[i] = sqrt(a[i] + 1.0) * 2.0; }
    }";
    let tracer = Tracer::buffering();
    let mut sys = SystemBuilder::new()
        .workers_per_node(4)
        .compute_nodes(2)
        .kernel(KERNEL, HashMap::from([("n".to_owned(), 4096.0)]))
        .build()
        .expect("kernel synthesizes");
    sys.set_tracer(&tracer);
    sys.enable_faults(spec, ResilienceConfig::full());
    let n = scale.pick(1_024usize, 4_096);
    let args = || {
        let mut a = KernelArgs::new();
        a.bind_array("a", (0..n).map(|i| i as f64).collect())
            .bind_array("b", vec![0.0; n])
            .bind_scalar("n", n as f64);
        a
    };
    for _ in 0..12 {
        sys.call(NodeId(0), "scale", &mut args()).expect("runs");
    }
    sys.load_module(NodeId(0), "scale").expect("places");
    let calls = scale.pick(40, 160);
    for _ in 0..calls {
        sys.call(NodeId(0), "scale", &mut args()).expect("runs");
        sys.fault_tick();
        sys.daemon_tick();
    }
    cap.metrics.merge(&sys.export_metrics());
    cap.trace.merge(tracer.take());
}

/// Zipf-skewed translation stream through one dual-stage SMMU:
/// populates `smmu.*` (TLB hit/miss/MRU split, walk latencies, faults)
/// and an `smmu/walks` trace lane with one span per table walk, on a
/// synthetic clock advanced by each translation's returned latency.
fn smmu_phase(scale: Scale, cap: &mut Capture) {
    let config = SmmuConfig::default();
    let tlb_hit = config.tlb_hit;
    let mut smmu = Smmu::new(config);
    let pages = 256u64;
    for p in 0..pages {
        smmu.map(
            VirtAddr::from_page(p, 0),
            0x1_0000 + p,
            0x2_0000 + p,
            PagePerms::RW,
        )
        .expect("fresh mapping");
    }
    let tracer = Tracer::buffering();
    let walks = tracer.track("smmu/walks");
    let mut now = Time::ZERO;
    let mut rng = SimRng::seed_from(0xec05_ca1e);
    let n = scale.pick(4_000, 40_000);
    for _ in 0..n {
        let page = rng.gen_zipf(pages as usize, 1.2) as u64;
        let offset = rng.gen_range_u64(0, 4096);
        if let Ok((_, latency)) = smmu.translate(VirtAddr::from_page(page, offset), PagePerms::READ)
        {
            // latency beyond the TLB-hit cost means the table walker ran
            if latency > tlb_hit {
                tracer.complete(walks, "walk", now, latency);
            }
            now += latency;
        }
    }
    // a few touches beyond the mapped range fault (and cost walks)
    for p in pages..pages + 8 {
        let _ = smmu.translate(VirtAddr::from_page(p, 0), PagePerms::READ);
    }
    smmu.export_metrics(&mut cap.metrics, "smmu");
    cap.trace.merge(tracer.take());
}

/// UNIMEM traffic over a traced tree NoC: populates `unimem.*` and
/// `noc.*` and contributes per-link `noc/link<N>` trace lanes.
fn unimem_phase(scale: Scale, cap: &mut Capture) {
    let nodes = 16usize;
    let tracer = Tracer::buffering();
    let mut net = Network::new(TreeTopology::new(&[4, 4]), NetworkConfig::default());
    net.set_tracer(tracer.clone());
    let mut mem = UnimemSystem::new(nodes, CacheConfig::l1_default(), DramModel::default());
    let mut rng = SimRng::seed_from(0x0b5e_7ab1);
    let mut now = Time::ZERO;
    let accesses = scale.pick(600, 6_000);
    for _ in 0..accesses {
        let node = NodeId(rng.gen_range_usize(0, nodes));
        // concentrate on few owners/pages so caches and links contend
        let owner = NodeId(rng.gen_zipf(nodes, 1.1));
        let addr = GlobalAddr::new(owner, rng.gen_range_u64(0, 32) * 4096);
        let bytes = 64 * (1 + rng.gen_range_u64(0, 4));
        let access = if rng.gen_bool(0.3) {
            mem.write(&mut net, now, node, addr, bytes)
        } else {
            mem.read(&mut net, now, node, addr, bytes)
        };
        // pace arrivals below the drain rate so queues build but clear
        now = now.max(access.completion - access.latency) + ecoscale_sim::Duration::from_ns(40);
    }
    mem.export_metrics(&mut cap.metrics, "unimem");
    net.export_metrics(&mut cap.metrics, "noc");
    cap.trace.merge(tracer.take());
}

/// Scheduler lanes under [`pool`]: one seeded [`ClusterSim`] per lane
/// with a private tracer and registry, folded in input order. Populates
/// `sched.*` and per-worker `sched<L>/w<N>` trace lanes.
fn sched_phase(scale: Scale, cap: &mut Capture) {
    let lanes: Vec<u64> = scale.pick(vec![1, 2], vec![1, 2, 3, 4]);
    let tasks = scale.pick(300, 1_500);
    let results = pool::parallel_map(lanes, move |seed| {
        let tracer = Tracer::buffering();
        let label = format!("sched{seed}");
        let trace = skewed_trace(tasks, 8, 120_000, 1.1, seed);
        let mut sim = ClusterSim::new(8, SchedPolicy::LazyLocal { probes: 2 }, seed)
            .with_tracer(tracer.clone(), &label);
        sim.run(&trace);
        let mut m = MetricsRegistry::new();
        sim.export_metrics(&mut m, "sched");
        (tracer.take(), m)
    });
    for (trace, metrics) in results {
        cap.trace.merge(trace);
        cap.metrics.merge(&metrics);
    }
}

/// End-to-end [`SystemBuilder`] workload: CPU warm-up calls, an
/// explicit module load, accelerated calls, and a daemon tick.
/// Populates `system.*`/`reconfig.*` (and the per-worker SMMU zeros)
/// plus `w<N>/calls` and `w<N>/fabric` trace lanes.
fn system_phase(scale: Scale, cap: &mut Capture) {
    const KERNEL: &str = "kernel scale(in float a[], out float b[], int n) {
        for (i in 0 .. n) { b[i] = sqrt(a[i] + 1.0) * 2.0; }
    }";
    let tracer = Tracer::buffering();
    let mut sys = SystemBuilder::new()
        .workers_per_node(4)
        .compute_nodes(2)
        .kernel(KERNEL, HashMap::from([("n".to_owned(), 4096.0)]))
        .build()
        .expect("kernel synthesizes");
    sys.set_tracer(&tracer);
    let n = scale.pick(1_024usize, 4_096);
    let args = || {
        let mut a = KernelArgs::new();
        a.bind_array("a", (0..n).map(|i| i as f64).collect())
            .bind_array("b", vec![0.0; n])
            .bind_scalar("n", n as f64);
        a
    };
    for _ in 0..12 {
        sys.call(NodeId(0), "scale", &mut args())
            .expect("call runs");
    }
    sys.load_module(NodeId(0), "scale").expect("module places");
    for _ in 0..4 {
        sys.call(NodeId(0), "scale", &mut args())
            .expect("call runs");
    }
    sys.daemon_tick();
    cap.metrics.merge(&sys.export_metrics());
    cap.trace.merge(tracer.take());
}

/// One observed cluster-partitioned run through the sharded engine:
/// populates `shard.*` (including the `shard.occupancy.*` bands) and
/// per-cluster worker trace lanes, and returns the ProfPlane extras.
/// The outcome — and therefore everything merged into `cap` — is
/// byte-identical at any `ECOSCALE_SHARDS`; only the returned
/// [`Profiler`] is host-dependent.
fn shard_phase(scale: Scale, cap: &mut Capture) -> (ShardOccupancy, Profiler) {
    let cfg = scaling_config(scale.pick(4, 8), scale.pick(48, 256));
    let mut cp = CheckPlane::from_env();
    let (outcome, wall) = run_shard_sim_observed(&cfg, &mut cp);
    cap.metrics.merge(&outcome.metrics);
    cap.trace.merge(outcome.trace);
    (outcome.occupancy, wall)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_populates_every_layer() {
        let cap = capture_observability(Scale::Quick);
        let m = &cap.metrics;
        assert!(m.counter("smmu.tlb_hits").unwrap() > 0);
        assert!(m.counter("smmu.tlb_misses").unwrap() > 0);
        assert!(m.counter("noc.messages").unwrap() > 0);
        assert!(m.counter("unimem.cache.hits").unwrap() > 0);
        assert!(m.counter("sched.tasks").unwrap() > 0);
        assert!(m.counter("system.calls_cpu").unwrap() > 0);
        assert!(m.counter("reconfig.loads").unwrap() > 0);
        assert!(m.counter("shard.occupancy.events").unwrap() > 0);
        assert!(!cap.trace.is_empty());
        // every phase contributed lanes
        let tracks = cap.trace.tracks();
        assert!(tracks.iter().any(|t| t == "smmu/walks"));
        assert!(tracks.iter().any(|t| t.starts_with("noc/link")));
        assert!(tracks.iter().any(|t| t.starts_with("sched1/w")));
        assert!(tracks.iter().any(|t| t == "w0/calls"));
        // exports are well-formed
        ecoscale_sim::json::parse(&cap.trace.to_chrome_json()).expect("trace JSON parses");
        ecoscale_sim::json::parse(&m.to_json()).expect("metrics JSON parses");
    }

    #[test]
    fn profile_capture_returns_occupancy_and_wall_timers() {
        let pc = capture_profile(Scale::Quick);
        // occupancy bands cover the configured widths and saw events
        assert!(pc.occupancy.events > 0);
        assert!(pc.occupancy.windows > 0);
        // widths wider than the cluster count are clamped away
        let clusters = pc.occupancy.clusters();
        for w in ecoscale_core::OCCUPANCY_WIDTHS
            .iter()
            .filter(|&&w| w <= clusters)
        {
            let band = pc.occupancy.band(*w).expect("band armed");
            assert!(band.crit_events > 0, "band {w} never saw a window");
        }
        // the observed run arms the wall profiler
        assert!(pc.wall.is_enabled());
        assert!(pc.wall.total_ns() > 0);
        // the capture itself matches the plain observability capture
        let plain = capture_observability(Scale::Quick);
        assert_eq!(
            pc.capture.trace.to_chrome_json(),
            plain.trace.to_chrome_json()
        );
        assert_eq!(pc.capture.metrics.to_json(), plain.metrics.to_json());
    }

    #[test]
    fn telemetry_capture_is_deterministic_and_well_formed() {
        let a = capture_telemetry(Scale::Quick, &CampaignSpec::off());
        let b = capture_telemetry(Scale::Quick, &CampaignSpec::off());
        assert_eq!(a.to_json(), b.to_json());
        assert!(a.serve.series.lifetime("serve.submitted") > 0);
        assert!(a.shard.lifetime("shard.events") > 0);
        assert!(a.shard.rolled() > 0);
        ecoscale_sim::json::parse(&a.to_json()).expect("telemetry JSON parses");
        ecoscale_sim::json::parse(&a.flight_dump_json()).expect("dump JSON parses");
    }

    #[test]
    fn fault_capture_records_recovery_tracks() {
        let spec =
            CampaignSpec::parse("seed=3,crash=1ms,seu=400us,scrub=800us").expect("spec parses");
        let cap = capture_fault_campaign(Scale::Quick, &spec);
        let m = &cap.metrics;
        assert!(m.counter("sched.resilience.failures").unwrap() > 0);
        assert!(m.counter("seu.upsets").unwrap() > 0);
        assert!(m.get("resilience.recovery_ns").is_some());
        ecoscale_sim::json::parse(&cap.trace.to_chrome_json()).expect("trace JSON parses");
        ecoscale_sim::json::parse(&m.to_json()).expect("metrics JSON parses");
    }

    #[test]
    fn fault_capture_with_off_spec_matches_plain_runs() {
        let off = capture_fault_campaign(Scale::Quick, &CampaignSpec::off());
        // no resilience/seu instruments leak into a fault-free capture
        assert!(off.metrics.counter("seu.upsets").is_none());
        assert!(off.metrics.counter("resilience.failures").is_none());
        assert!(off.metrics.counter("sched.resilience.failures").is_none());
    }
}
