//! Perf-regression gate over `BENCH_*.json` artifacts.
//!
//! [`compare`] walks a freshly measured bench document against a
//! committed baseline and splits every numeric field into one of four
//! classes, keyed by field name:
//!
//! * **workload** (`clusters`, `tasks_per_cluster`, `reps`,
//!   `lookahead_ns`, `scale`, `shards`, and the serving bench's `spec`,
//!   `spec_off`, `faults`, `items` strings) — the two documents must
//!   describe the same experiment; any difference is a comparison
//!   error, not a regression (you re-ran the wrong config).
//! * **wall-clock** (`wall_s`: higher is worse; `events_per_sec`:
//!   lower is worse) — host-dependent, so they get a *ratio* tolerance
//!   rather than equality. The default, [`DEFAULT_WALL_TOLERANCE`] =
//!   3.0×, is deliberately generous: CI hosts differ and share cores,
//!   so the gate is tuned to catch order-of-magnitude regressions
//!   (accidental debug builds, quadratic blowups, lost parallelism)
//!   without flaking on scheduler noise. Tighten it for dedicated
//!   measurement boxes.
//! * **ignored** (`host_cores`, `speedup`, the `wall` phase-timer
//!   object) — either informational or a pure ratio of two wall
//!   clocks, which on a loaded 1-core host is all noise.
//! * **deterministic** (everything else: `events`, `rounds`,
//!   `identical_exports`, `critical_path_speedup`, the whole
//!   `profile`/`occupancy` sections, …) — produced by the seeded
//!   simulation, so the fresh run must reproduce the baseline exactly
//!   (floats to 1e-9). A mismatch is reported as a regression: the
//!   simulation's behavior changed.
//!
//! Shape mismatches (missing/extra keys, array length changes, a
//! different `bench` kind) are comparison errors. The `bench_regress`
//! binary maps: no regressions → exit 0, regressions → exit 1,
//! comparison error → exit 2.

use ecoscale_sim::json::Value;

/// Default ratio tolerance for wall-clock fields (see module docs for
/// why it is this loose).
pub const DEFAULT_WALL_TOLERANCE: f64 = 3.0;

/// Equality slack for deterministic floats (covers decimal
/// round-tripping, not behavior changes).
const EXACT_EPS: f64 = 1e-9;

/// How a field participates in the comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Rule {
    /// Must match exactly; a difference means the config differs and
    /// the comparison itself is invalid.
    Workload,
    /// Host-dependent; fresh may exceed baseline by at most the ratio
    /// tolerance.
    WallHigherWorse,
    /// Host-dependent; fresh may fall below baseline by at most the
    /// ratio tolerance.
    ThroughputLowerWorse,
    /// Not compared at all (subtrees included).
    Ignore,
    /// Deterministic output; must reproduce exactly.
    Exact,
}

fn rule(key: &str) -> Rule {
    match key {
        "clusters" | "tasks_per_cluster" | "reps" | "lookahead_ns" | "scale" | "shards"
        | "spec" | "spec_off" | "faults" | "items" => Rule::Workload,
        "wall_s" => Rule::WallHigherWorse,
        "events_per_sec" => Rule::ThroughputLowerWorse,
        "host_cores" | "speedup" | "wall" => Rule::Ignore,
        _ => Rule::Exact,
    }
}

/// The outcome of a baseline-vs-fresh walk.
#[derive(Debug, Clone, Default)]
pub struct Comparison {
    /// Fields compared (ignored fields excluded).
    pub checked: usize,
    /// One line per regressed field; empty means the gate passes.
    pub regressions: Vec<String>,
}

/// Compares `fresh` against `baseline` under `wall_tolerance` (a ratio
/// ≥ 1). Returns the per-field verdicts, or `Err` when the documents
/// cannot be meaningfully compared (different bench kind or workload,
/// shape mismatch, bad tolerance).
pub fn compare(baseline: &Value, fresh: &Value, wall_tolerance: f64) -> Result<Comparison, String> {
    if wall_tolerance.is_nan() || wall_tolerance < 1.0 {
        return Err(format!(
            "wall tolerance must be a ratio >= 1.0, got {wall_tolerance}"
        ));
    }
    let bk = baseline
        .get("bench")
        .and_then(Value::as_str)
        .ok_or("baseline has no \"bench\" kind field")?;
    let fk = fresh
        .get("bench")
        .and_then(Value::as_str)
        .ok_or("fresh document has no \"bench\" kind field")?;
    if bk != fk {
        return Err(format!(
            "benchmark kind mismatch: baseline is `{bk}`, fresh is `{fk}`"
        ));
    }
    let mut out = Comparison::default();
    walk("$", Rule::Exact, baseline, fresh, wall_tolerance, &mut out)?;
    Ok(out)
}

fn walk(
    path: &str,
    active: Rule,
    base: &Value,
    fresh: &Value,
    tol: f64,
    out: &mut Comparison,
) -> Result<(), String> {
    match (base, fresh) {
        (Value::Obj(bp), Value::Obj(fp)) => {
            for (k, bv) in bp {
                let child = format!("{path}.{k}");
                let r = rule(k);
                if r == Rule::Ignore {
                    continue;
                }
                let Some(fv) = fresh.get(k) else {
                    return Err(format!("{child}: missing from fresh document"));
                };
                walk(&child, r, bv, fv, tol, out)?;
            }
            for (k, _) in fp {
                if rule(k) != Rule::Ignore && base.get(k).is_none() {
                    return Err(format!("{path}.{k}: not present in baseline"));
                }
            }
            Ok(())
        }
        (Value::Arr(bs), Value::Arr(fs)) => {
            if bs.len() != fs.len() {
                return Err(format!(
                    "{path}: array length changed: {} -> {}",
                    bs.len(),
                    fs.len()
                ));
            }
            for (i, (bv, fv)) in bs.iter().zip(fs).enumerate() {
                // element rule is inherited from the array's key
                walk(&format!("{path}[{i}]"), active, bv, fv, tol, out)?;
            }
            Ok(())
        }
        (Value::Num(b), Value::Num(f)) => {
            out.checked += 1;
            match active {
                Rule::Workload => {
                    if (b - f).abs() > EXACT_EPS {
                        return Err(format!(
                            "{path}: workload mismatch: baseline ran {b}, fresh ran {f}"
                        ));
                    }
                }
                Rule::WallHigherWorse => {
                    if *f > b * tol + EXACT_EPS {
                        out.regressions.push(format!(
                            "{path}: {f:.6} is {:.2}x the baseline {b:.6} (tolerance {tol:.1}x)",
                            f / b
                        ));
                    }
                }
                Rule::ThroughputLowerWorse => {
                    if *f < b / tol - EXACT_EPS {
                        out.regressions.push(format!(
                            "{path}: {f:.3} is {:.2}x below the baseline {b:.3} (tolerance {tol:.1}x)",
                            b / f
                        ));
                    }
                }
                Rule::Exact | Rule::Ignore => {
                    if (b - f).abs() > EXACT_EPS {
                        out.regressions
                            .push(format!("{path}: deterministic field changed: {b} -> {f}"));
                    }
                }
            }
            Ok(())
        }
        (Value::Str(b), Value::Str(f)) => {
            out.checked += 1;
            if b != f {
                if active == Rule::Workload {
                    return Err(format!(
                        "{path}: workload mismatch: baseline ran `{b}`, fresh ran `{f}`"
                    ));
                }
                out.regressions
                    .push(format!("{path}: field changed: `{b}` -> `{f}`"));
            }
            Ok(())
        }
        (Value::Bool(b), Value::Bool(f)) => {
            out.checked += 1;
            if b != f {
                out.regressions
                    .push(format!("{path}: field changed: {b} -> {f}"));
            }
            Ok(())
        }
        (Value::Null, Value::Null) => Ok(()),
        _ => Err(format!("{path}: value type changed between documents")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecoscale_sim::json;

    const BASE: &str = r#"{"bench":"parallel_des","host_cores":1,"clusters":4,
        "tasks_per_cluster":64,"reps":1,"events":1000,"rounds":40,"lookahead_ns":90,
        "identical_exports":true,"points":[
        {"shards":2,"wall_s":0.1,"events_per_sec":10000,"speedup":1.0,
         "critical_path_speedup":1.5}]}"#;

    fn base() -> Value {
        json::parse(BASE).expect("fixture parses")
    }

    #[test]
    fn identical_documents_pass() {
        let cmp = compare(&base(), &base(), DEFAULT_WALL_TOLERANCE).unwrap();
        assert!(cmp.regressions.is_empty(), "{:?}", cmp.regressions);
        assert!(cmp.checked > 5);
    }

    #[test]
    fn slow_wall_clock_within_tolerance_passes() {
        let fresh = json::parse(&BASE.replace("\"wall_s\":0.1", "\"wall_s\":0.25")).unwrap();
        let cmp = compare(&base(), &fresh, 3.0).unwrap();
        assert!(cmp.regressions.is_empty(), "{:?}", cmp.regressions);
    }

    #[test]
    fn slow_wall_clock_beyond_tolerance_regresses() {
        let fresh = json::parse(&BASE.replace("\"wall_s\":0.1", "\"wall_s\":1.0")).unwrap();
        let cmp = compare(&base(), &fresh, 3.0).unwrap();
        assert_eq!(cmp.regressions.len(), 1, "{:?}", cmp.regressions);
        assert!(cmp.regressions[0].contains("wall_s"));
    }

    #[test]
    fn throughput_drop_beyond_tolerance_regresses() {
        let fresh =
            json::parse(&BASE.replace("\"events_per_sec\":10000", "\"events_per_sec\":1000"))
                .unwrap();
        let cmp = compare(&base(), &fresh, 3.0).unwrap();
        assert_eq!(cmp.regressions.len(), 1, "{:?}", cmp.regressions);
        assert!(cmp.regressions[0].contains("events_per_sec"));
    }

    #[test]
    fn deterministic_field_change_regresses() {
        let fresh = json::parse(&BASE.replace("\"events\":1000", "\"events\":1001")).unwrap();
        let cmp = compare(&base(), &fresh, 3.0).unwrap();
        assert_eq!(cmp.regressions.len(), 1);
        assert!(cmp.regressions[0].contains("deterministic"));
        // critical-path speedups are deterministic too
        let fresh = json::parse(&BASE.replace(
            "\"critical_path_speedup\":1.5",
            "\"critical_path_speedup\":1.4",
        ))
        .unwrap();
        let cmp = compare(&base(), &fresh, 3.0).unwrap();
        assert_eq!(cmp.regressions.len(), 1);
    }

    #[test]
    fn wall_speedup_and_host_cores_are_ignored() {
        let fresh = json::parse(
            &BASE
                .replace("\"speedup\":1.0", "\"speedup\":0.2")
                .replace("\"host_cores\":1", "\"host_cores\":64"),
        )
        .unwrap();
        let cmp = compare(&base(), &fresh, 3.0).unwrap();
        assert!(cmp.regressions.is_empty(), "{:?}", cmp.regressions);
    }

    #[test]
    fn kind_and_workload_mismatches_are_errors_not_regressions() {
        let other = json::parse(&BASE.replace("parallel_des", "profile")).unwrap();
        assert!(compare(&base(), &other, 3.0).unwrap_err().contains("kind"));
        let other = json::parse(&BASE.replace("\"clusters\":4", "\"clusters\":8")).unwrap();
        assert!(compare(&base(), &other, 3.0)
            .unwrap_err()
            .contains("workload mismatch"));
    }

    #[test]
    fn shape_changes_are_errors() {
        let missing = json::parse(&BASE.replace("\"rounds\":40,", "")).unwrap();
        assert!(compare(&base(), &missing, 3.0)
            .unwrap_err()
            .contains("missing from fresh"));
        assert!(compare(&missing, &base(), 3.0)
            .unwrap_err()
            .contains("not present in baseline"));
        let extra_point = json::parse(
            &BASE.replace("}]}", "},{\"shards\":4,\"wall_s\":0.1,\"events_per_sec\":10000,\"speedup\":1.0,\"critical_path_speedup\":2.0}]}"),
        )
        .unwrap();
        assert!(compare(&base(), &extra_point, 3.0)
            .unwrap_err()
            .contains("length changed"));
    }

    #[test]
    fn bad_tolerance_is_an_error() {
        assert!(compare(&base(), &base(), 0.5).is_err());
    }

    const SERVE: &str = r#"{"bench":"serve","scale":"quick",
        "spec":"seed=42,tenants=4,rate=350000","spec_off":"seed=42,batch=1",
        "faults":"seed=5,seu=200us","items":32,
        "batching_on":{"goodput":566,"p99_ns":218232,"conserved":true},
        "goodput_gain":1.59,"snapshot_bytes":47512}"#;

    #[test]
    fn serve_spec_is_workload_and_goodput_is_deterministic() {
        let base = json::parse(SERVE).unwrap();
        // running a different serving spec is a comparison error
        let other = json::parse(&SERVE.replace("rate=350000", "rate=999")).unwrap();
        assert!(compare(&base, &other, 3.0)
            .unwrap_err()
            .contains("workload mismatch"));
        // a goodput change is a deterministic regression
        let other = json::parse(&SERVE.replace("\"goodput\":566", "\"goodput\":500")).unwrap();
        let cmp = compare(&base, &other, 3.0).unwrap();
        assert_eq!(cmp.regressions.len(), 1, "{:?}", cmp.regressions);
        assert!(cmp.regressions[0].contains("goodput"));
        // the snapshot size is seeded-simulation output, pinned exactly
        let other =
            json::parse(&SERVE.replace("\"snapshot_bytes\":47512", "\"snapshot_bytes\":47513"))
                .unwrap();
        let cmp = compare(&base, &other, 3.0).unwrap();
        assert_eq!(cmp.regressions.len(), 1, "{:?}", cmp.regressions);
        assert!(cmp.regressions[0].contains("snapshot_bytes"));
    }
}
