//! Criterion benches: one group per experiment (E1–E15), running each
//! experiment's code path at [`Scale::Quick`], plus microbenches of the
//! substrate primitives the experiments are built on.

use criterion::{criterion_group, criterion_main, Criterion};

use ecoscale_bench::{accel, arch, fpga_exp, runtime_exp, scale_exp, Scale};

fn bench_experiments(c: &mut Criterion) {
    let mut g = c.benchmark_group("experiments");
    g.sample_size(10);
    g.bench_function("e01_hierarchy", |b| {
        b.iter(|| arch::e01_hierarchy(Scale::Quick))
    });
    g.bench_function("e02_task_vs_data", |b| {
        b.iter(|| arch::e02_task_vs_data(Scale::Quick))
    });
    g.bench_function("e03_coherence", |b| {
        b.iter(|| arch::e03_coherence(Scale::Quick))
    });
    g.bench_function("e04_smmu", |b| b.iter(|| accel::e04_smmu(Scale::Quick)));
    g.bench_function("e05_virtualization", |b| {
        b.iter(|| accel::e05_virtualization(Scale::Quick))
    });
    g.bench_function("e06_unilogic", |b| {
        b.iter(|| accel::e06_unilogic(Scale::Quick))
    });
    g.bench_function("e07_scheduler", |b| {
        b.iter(|| runtime_exp::e07_scheduler(Scale::Quick))
    });
    g.bench_function("e08_lazy", |b| {
        b.iter(|| runtime_exp::e08_lazy(Scale::Quick))
    });
    g.bench_function("e09_compression", |b| {
        b.iter(|| fpga_exp::e09_compression(Scale::Quick))
    });
    g.bench_function("e10_defrag", |b| {
        b.iter(|| fpga_exp::e10_defrag(Scale::Quick))
    });
    g.bench_function("e11_chaining", |b| {
        b.iter(|| fpga_exp::e11_chaining(Scale::Quick))
    });
    g.bench_function("e12_hls_dse", |b| {
        b.iter(|| fpga_exp::e12_hls_dse(Scale::Quick))
    });
    g.bench_function("e13_power", |b| {
        b.iter(|| scale_exp::e13_power(Scale::Quick))
    });
    g.bench_function("e14_hybrid", |b| {
        b.iter(|| scale_exp::e14_hybrid(Scale::Quick))
    });
    g.bench_function("e15_speedup_band", |b| {
        b.iter(|| accel::e15_speedup_band(Scale::Quick))
    });
    g.finish();
}

fn bench_substrate(c: &mut Criterion) {
    use ecoscale_fpga::{Bitstream, CompressionAlgo, Resources};
    use ecoscale_mem::{PagePerms, Smmu, SmmuConfig, VirtAddr};
    use ecoscale_noc::{NodeId, Topology, TreeTopology};
    use ecoscale_sim::{EventQueue, Time};

    let mut g = c.benchmark_group("substrate");

    g.bench_function("event_queue_push_pop_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1000u64 {
                q.schedule(Time::from_ns(i * 7 % 500), i);
            }
            let mut sum = 0u64;
            while let Some((_, v)) = q.pop() {
                sum += v;
            }
            sum
        })
    });

    g.bench_function("tree_route_4096", |b| {
        let topo = TreeTopology::new(&[8, 8, 8, 8]);
        b.iter(|| {
            let mut hops = 0u32;
            for i in (0..4096).step_by(17) {
                hops += topo.route(NodeId(0), NodeId(i)).hop_count();
            }
            hops
        })
    });

    g.bench_function("smmu_translate_hit", |b| {
        let mut smmu = Smmu::new(SmmuConfig::default());
        smmu.map(VirtAddr(0x1000), 0x10, 0x100, PagePerms::RW).unwrap();
        smmu.translate(VirtAddr(0x1000), PagePerms::READ).unwrap();
        b.iter(|| smmu.translate(VirtAddr(0x1008), PagePerms::READ).unwrap())
    });

    let bs = Bitstream::synthesize(Resources::new(1000, 16, 32), 9);
    g.bench_function("bitstream_lz_compress", |b| {
        b.iter(|| CompressionAlgo::Lz.compress(&bs))
    });
    g.bench_function("bitstream_rle_compress", |b| {
        b.iter(|| CompressionAlgo::ZeroRle.compress(&bs))
    });

    g.bench_function("hls_parse_and_analyze", |b| {
        b.iter(|| {
            let k = ecoscale_hls::parse_kernel(ecoscale_apps::blackscholes::KERNEL).unwrap();
            ecoscale_hls::KernelAnalysis::analyze(
                &k,
                &ecoscale_apps::blackscholes::kernel_hints(4096),
            )
        })
    });

    g.finish();
}

criterion_group!(benches, bench_experiments, bench_substrate);
criterion_main!(benches);
