//! Wall-clock benches: every experiment's code path at [`Scale::Quick`],
//! plus microbenches of the substrate primitives the experiments are
//! built on. Run with `cargo bench -p ecoscale-bench --bench experiments`;
//! extra arguments filter by substring.

use ecoscale_bench::timing::bench;
use ecoscale_bench::{Scale, EXPERIMENTS};

fn bench_experiments() {
    for &(key, run) in EXPERIMENTS {
        bench(&format!("exp/{key}"), || run(Scale::Quick));
    }
}

fn bench_substrate() {
    use ecoscale_fpga::{Bitstream, CompressionAlgo, Resources};
    use ecoscale_mem::{PagePerms, Smmu, SmmuConfig, VirtAddr};
    use ecoscale_noc::{NodeId, Topology, TreeTopology};
    use ecoscale_sim::{EventQueue, Time};

    bench("substrate/event_queue_push_pop_1k", || {
        let mut q = EventQueue::new();
        for i in 0..1000u64 {
            q.schedule(Time::from_ns(i * 7 % 500), i);
        }
        let mut sum = 0u64;
        while let Some((_, v)) = q.pop() {
            sum += v;
        }
        sum
    });

    let topo = TreeTopology::new(&[8, 8, 8, 8]);
    bench("substrate/tree_route_4096", || {
        let mut hops = 0u32;
        for i in (0..4096).step_by(17) {
            hops += topo.route(NodeId(0), NodeId(i)).hop_count();
        }
        hops
    });

    let mut smmu = Smmu::new(SmmuConfig::default());
    smmu.map(VirtAddr(0x1000), 0x10, 0x100, PagePerms::RW)
        .unwrap();
    smmu.translate(VirtAddr(0x1000), PagePerms::READ).unwrap();
    bench("substrate/smmu_translate_hit", || {
        smmu.translate(VirtAddr(0x1008), PagePerms::READ).unwrap()
    });

    let bs = Bitstream::synthesize(Resources::new(1000, 16, 32), 9);
    bench("substrate/bitstream_lz_compress", || {
        CompressionAlgo::Lz.compress(&bs)
    });
    bench("substrate/bitstream_rle_compress", || {
        CompressionAlgo::ZeroRle.compress(&bs)
    });

    bench("substrate/hls_parse_and_analyze", || {
        let k = ecoscale_hls::parse_kernel(ecoscale_apps::blackscholes::KERNEL).unwrap();
        ecoscale_hls::KernelAnalysis::analyze(&k, &ecoscale_apps::blackscholes::kernel_hints(4096))
    });
}

fn main() {
    bench_experiments();
    bench_substrate();
}
