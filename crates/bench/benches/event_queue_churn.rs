//! Microbenches of the discrete-event queue hot paths: heap churn,
//! same-instant FIFO-ring bursts (the pattern zero-latency event
//! cascades produce), and the `pop_if_at_or_before` horizon fast path
//! used by `Simulation::run_until`.

use ecoscale_bench::timing::bench;
use ecoscale_sim::{Duration, EventQueue, SimRng, Time};

const EVENTS: u64 = 10_000;

/// Random future timestamps: everything goes through the heap.
fn heap_churn() -> u64 {
    let mut rng = SimRng::seed_from(17);
    let mut q = EventQueue::with_capacity(EVENTS as usize);
    for i in 0..EVENTS {
        q.schedule(Time::from_ns(rng.gen_range_u64(1, 1 << 20)), i);
    }
    let mut sum = 0u64;
    while let Some((_, v)) = q.pop() {
        sum += v;
    }
    sum
}

/// Zero-latency cascades: each popped event schedules successors at the
/// current instant, which land in the FIFO ring and bypass the heap.
fn same_instant_cascade() -> u64 {
    let mut q = EventQueue::with_capacity(64);
    q.schedule(Time::from_ns(5), 0u64);
    let mut spawned = 1u64;
    let mut sum = 0u64;
    while let Some((_, v)) = q.pop() {
        sum += v;
        for _ in 0..4 {
            if spawned < EVENTS {
                q.schedule(q.now(), spawned);
                spawned += 1;
            }
        }
    }
    sum
}

/// Epoch-driven drain: pop everything due up to each horizon, mirroring
/// `Simulation::run_until` without handler dispatch.
fn horizon_scan() -> u64 {
    let mut rng = SimRng::seed_from(23);
    let mut q = EventQueue::with_capacity(EVENTS as usize);
    for i in 0..EVENTS {
        q.schedule(Time::from_ns(rng.gen_range_u64(0, 1000)), i);
    }
    let mut sum = 0u64;
    let mut horizon = Time::ZERO;
    while !q.is_empty() {
        horizon += Duration::from_ns(50);
        while let Some((_, v)) = q.pop_if_at_or_before(horizon) {
            sum += v;
        }
    }
    sum
}

fn main() {
    bench("event_queue/heap_churn_10k", heap_churn);
    bench("event_queue/same_instant_cascade_10k", same_instant_cascade);
    bench("event_queue/horizon_scan_10k", horizon_scan);
}
