//! Benches of the deterministic work pool: a synthetic CPU-bound sweep
//! and a real experiment table, each at `ECOSCALE_THREADS=1` vs the
//! machine's full width. Prints the observed speedup and asserts
//! nothing — wall-clock ratios are environment-dependent.

use ecoscale_bench::timing::bench;
use ecoscale_bench::{arch, Scale};
use ecoscale_sim::pool;

/// ~1 ms of integer work per item, 64 items.
fn synthetic_sweep() -> u64 {
    pool::parallel_map((0..64u64).collect::<Vec<_>>(), |x| {
        let mut acc = x;
        for k in 0..200_000u64 {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
        }
        acc
    })
    .into_iter()
    .fold(0, u64::wrapping_add)
}

fn with_threads<R>(threads: &str, f: impl FnOnce() -> R) -> R {
    // Benches are single-threaded mains; the env var is restored before
    // returning so subjects don't leak configuration into each other.
    let prev = std::env::var(pool::THREADS_ENV).ok();
    std::env::set_var(pool::THREADS_ENV, threads);
    let out = f();
    match prev {
        Some(v) => std::env::set_var(pool::THREADS_ENV, v),
        None => std::env::remove_var(pool::THREADS_ENV),
    }
    out
}

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let wide = cores.to_string();

    let seq = with_threads("1", || {
        bench("pool/synthetic_sweep_64x1ms/seq", synthetic_sweep)
    });
    let par = with_threads(&wide, || {
        bench(
            &format!("pool/synthetic_sweep_64x1ms/{cores}t"),
            synthetic_sweep,
        )
    });
    if let (Some(s), Some(p)) = (seq, par) {
        println!(
            "  -> synthetic speedup: {:.2}x on {cores} cores",
            s.as_secs_f64() / p.as_secs_f64()
        );
    }

    let seq = with_threads("1", || {
        bench("pool/e01_hierarchy_quick/seq", || {
            arch::e01_hierarchy(Scale::Quick)
        })
    });
    let par = with_threads(&wide, || {
        bench(&format!("pool/e01_hierarchy_quick/{cores}t"), || {
            arch::e01_hierarchy(Scale::Quick)
        })
    });
    if let (Some(s), Some(p)) = (seq, par) {
        println!(
            "  -> e01 speedup: {:.2}x on {cores} cores",
            s.as_secs_f64() / p.as_secs_f64()
        );
    }
}
