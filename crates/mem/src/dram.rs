//! DRAM latency and energy.
//!
//! Each ECOSCALE Worker has its own off-chip DRAM (Fig. 4). This model is
//! deliberately first-order: a fixed access latency plus a bandwidth term,
//! and a per-bit access energy in the range published for LPDDR4-class
//! parts (~15–25 pJ/bit including I/O).

use ecoscale_sim::{Counter, Duration, Energy, MetricsRegistry, ProbFault, SimRng};

/// A Worker's DRAM channel.
///
/// # Example
///
/// ```
/// use ecoscale_mem::DramModel;
///
/// let dram = DramModel::lpddr4_default();
/// let (lat, energy) = dram.access(64);
/// assert!(lat.as_ns_f64() > 50.0);
/// assert!(energy.as_pj() > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramModel {
    /// Fixed access latency (activation + CAS).
    pub latency: Duration,
    /// Sustained channel bandwidth, bytes/s.
    pub bandwidth: u64,
    /// Energy per byte accessed.
    pub energy_per_byte: Energy,
    /// Fixed per-access energy (row activation amortized).
    pub energy_per_access: Energy,
}

impl DramModel {
    /// LPDDR4-class defaults: 70 ns latency, 12.8 GB/s, ~20 pJ/bit.
    pub fn lpddr4_default() -> DramModel {
        DramModel {
            latency: Duration::from_ns(70),
            bandwidth: 12_800_000_000,
            energy_per_byte: Energy::from_pj(160.0), // 20 pJ/bit
            energy_per_access: Energy::from_pj(500.0),
        }
    }

    /// Latency and energy of one access of `bytes`.
    pub fn access(&self, bytes: u64) -> (Duration, Energy) {
        let mut lat = self.latency;
        if bytes > 0 {
            lat += Duration::from_bytes_at_bandwidth(bytes, self.bandwidth);
        }
        let e = self.energy_per_access + self.energy_per_byte * bytes as f64;
        (lat, e)
    }

    /// Latency of streaming `bytes` sequentially (single activation,
    /// bandwidth-bound).
    pub fn stream(&self, bytes: u64) -> (Duration, Energy) {
        let lat = if bytes == 0 {
            Duration::ZERO
        } else {
            self.latency + Duration::from_bytes_at_bandwidth(bytes, self.bandwidth)
        };
        let e = self.energy_per_access + self.energy_per_byte * bytes as f64;
        (lat, e)
    }
}

impl Default for DramModel {
    fn default() -> Self {
        DramModel::lpddr4_default()
    }
}

/// What ECC saw on one DRAM access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EccOutcome {
    /// No bit error struck.
    Clean,
    /// A single-bit error was corrected in-line (SECDED), costing
    /// [`EccModel::correction_latency`] extra.
    Corrected,
    /// A multi-bit error was detected but not correctable; the caller
    /// must retry the access or escalate.
    Uncorrectable,
}

/// SECDED ECC wrapped around a [`DramModel`] channel for fault campaigns.
///
/// Each access draws bit errors at the campaign's per-bit probability
/// over the bits actually transferred. A single flipped bit is corrected
/// transparently for a small latency penalty; two or more flipped bits in
/// the same access are detected-but-uncorrectable and surfaced to the
/// caller. With a zero error rate no randomness is drawn at all, so an
/// armed-but-idle model is bit-identical to the bare channel.
#[derive(Debug)]
pub struct EccModel {
    dram: DramModel,
    fault: ProbFault,
    /// Extra latency of an in-line single-bit correction.
    pub correction_latency: Duration,
    accesses: Counter,
    corrected: Counter,
    uncorrected: Counter,
}

impl EccModel {
    /// Wraps `dram` with SECDED ECC at per-bit error probability `p`,
    /// drawing from a stream seeded by `rng`.
    pub fn new(dram: DramModel, p: f64, rng: SimRng) -> EccModel {
        EccModel {
            dram,
            fault: if p > 0.0 {
                ProbFault::new(p, rng)
            } else {
                ProbFault::disabled()
            },
            correction_latency: Duration::from_ns(10),
            accesses: Counter::new(),
            corrected: Counter::new(),
            uncorrected: Counter::new(),
        }
    }

    /// The wrapped channel.
    pub fn dram(&self) -> &DramModel {
        &self.dram
    }

    /// Whether a nonzero error rate is armed.
    pub fn is_enabled(&self) -> bool {
        self.fault.is_enabled()
    }

    /// One access of `bytes` through ECC: latency (including any
    /// correction penalty), energy, and what ECC observed. An
    /// [`EccOutcome::Uncorrectable`] access still pays full latency; the
    /// caller decides whether to retry.
    pub fn access(&mut self, bytes: u64) -> (Duration, Energy, EccOutcome) {
        self.accesses.incr();
        let (mut lat, energy) = self.dram.access(bytes);
        let bits = bytes * 8;
        let outcome = if bits > 0 && self.fault.strikes_any(bits) {
            // One bit certainly flipped. A second, independent flip in
            // the same access upgrades it to uncorrectable.
            if self.fault.strikes_any(bits.saturating_sub(1)) {
                self.uncorrected.incr();
                EccOutcome::Uncorrectable
            } else {
                self.corrected.incr();
                lat += self.correction_latency;
                EccOutcome::Corrected
            }
        } else {
            EccOutcome::Clean
        };
        (lat, energy, outcome)
    }

    /// Accesses so far.
    pub fn accesses(&self) -> u64 {
        self.accesses.get()
    }

    /// Single-bit errors corrected so far.
    pub fn corrected(&self) -> u64 {
        self.corrected.get()
    }

    /// Multi-bit errors detected (uncorrectable) so far.
    pub fn uncorrected(&self) -> u64 {
        self.uncorrected.get()
    }

    /// Folds the ECC instruments into `m` under `prefix`
    /// (`{prefix}.accesses`, `.corrected`, `.uncorrected`). Exported only
    /// when a nonzero error rate is armed, so fault-free reports are
    /// unchanged.
    pub fn export_metrics(&self, m: &mut MetricsRegistry, prefix: &str) {
        if !self.is_enabled() {
            return;
        }
        m.add(&format!("{prefix}.accesses"), self.accesses.get());
        m.add(&format!("{prefix}.corrected"), self.corrected.get());
        m.add(&format!("{prefix}.uncorrected"), self.uncorrected.get());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_latency_has_fixed_and_bandwidth_terms() {
        let d = DramModel::lpddr4_default();
        let (l0, _) = d.access(0);
        let (l64, _) = d.access(64);
        let (l4k, _) = d.access(4096);
        assert_eq!(l0, Duration::from_ns(70));
        assert!(l64 > l0);
        assert!(l4k > l64);
    }

    #[test]
    fn energy_linear_in_bytes() {
        let d = DramModel::lpddr4_default();
        let (_, e1) = d.access(1000);
        let (_, e2) = d.access(2000);
        let fixed = d.energy_per_access;
        assert!(((e2 - fixed).as_pj() / (e1 - fixed).as_pj() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn stream_zero_bytes_is_free_latency() {
        let d = DramModel::lpddr4_default();
        let (l, _) = d.stream(0);
        assert_eq!(l, Duration::ZERO);
    }

    #[test]
    fn ecc_zero_rate_matches_bare_channel() {
        let d = DramModel::lpddr4_default();
        let mut ecc = EccModel::new(d, 0.0, SimRng::seed_from(1));
        assert!(!ecc.is_enabled());
        for bytes in [0u64, 64, 4096] {
            let (bl, be) = d.access(bytes);
            let (el, ee, out) = ecc.access(bytes);
            assert_eq!((bl, be, out), (el, ee, EccOutcome::Clean));
        }
        let mut m = MetricsRegistry::new();
        ecc.export_metrics(&mut m, "dram.ecc");
        assert!(m.is_empty(), "disabled ECC exports nothing");
    }

    #[test]
    fn ecc_corrects_and_detects() {
        let d = DramModel::lpddr4_default();
        // per-bit rate high enough that 64-byte accesses see errors
        let mut ecc = EccModel::new(d, 1e-3, SimRng::seed_from(7));
        let mut clean = 0u64;
        let mut corrected = 0u64;
        let mut uncorrected = 0u64;
        for _ in 0..2000 {
            let (lat, _, out) = ecc.access(64);
            match out {
                EccOutcome::Clean => {
                    clean += 1;
                    assert_eq!(lat, d.access(64).0);
                }
                EccOutcome::Corrected => {
                    corrected += 1;
                    assert_eq!(lat, d.access(64).0 + ecc.correction_latency);
                }
                EccOutcome::Uncorrectable => uncorrected += 1,
            }
        }
        assert!(clean > 0 && corrected > 0 && uncorrected > 0);
        assert_eq!(ecc.corrected(), corrected);
        assert_eq!(ecc.uncorrected(), uncorrected);
        assert_eq!(ecc.accesses(), 2000);
        assert!(
            corrected > uncorrected,
            "single-bit errors dominate double-bit"
        );
    }

    #[test]
    fn ecc_is_deterministic_per_seed() {
        let run = |seed| {
            let mut ecc = EccModel::new(DramModel::lpddr4_default(), 1e-3, SimRng::seed_from(seed));
            (0..500).map(|_| ecc.access(64).2).collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6), "different seeds diverge");
    }

    #[test]
    fn dram_energy_dominates_onchip_for_same_bytes() {
        // sanity: DRAM pJ/byte is far above on-chip link pJ/byte, the
        // premise of the paper's "reduce data traffic" argument.
        let d = DramModel::lpddr4_default();
        assert!(d.energy_per_byte.as_pj() > 100.0);
    }
}
