//! DRAM latency and energy.
//!
//! Each ECOSCALE Worker has its own off-chip DRAM (Fig. 4). This model is
//! deliberately first-order: a fixed access latency plus a bandwidth term,
//! and a per-bit access energy in the range published for LPDDR4-class
//! parts (~15–25 pJ/bit including I/O).

use ecoscale_sim::{Duration, Energy};

/// A Worker's DRAM channel.
///
/// # Example
///
/// ```
/// use ecoscale_mem::DramModel;
///
/// let dram = DramModel::lpddr4_default();
/// let (lat, energy) = dram.access(64);
/// assert!(lat.as_ns_f64() > 50.0);
/// assert!(energy.as_pj() > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramModel {
    /// Fixed access latency (activation + CAS).
    pub latency: Duration,
    /// Sustained channel bandwidth, bytes/s.
    pub bandwidth: u64,
    /// Energy per byte accessed.
    pub energy_per_byte: Energy,
    /// Fixed per-access energy (row activation amortized).
    pub energy_per_access: Energy,
}

impl DramModel {
    /// LPDDR4-class defaults: 70 ns latency, 12.8 GB/s, ~20 pJ/bit.
    pub fn lpddr4_default() -> DramModel {
        DramModel {
            latency: Duration::from_ns(70),
            bandwidth: 12_800_000_000,
            energy_per_byte: Energy::from_pj(160.0), // 20 pJ/bit
            energy_per_access: Energy::from_pj(500.0),
        }
    }

    /// Latency and energy of one access of `bytes`.
    pub fn access(&self, bytes: u64) -> (Duration, Energy) {
        let mut lat = self.latency;
        if bytes > 0 {
            lat += Duration::from_bytes_at_bandwidth(bytes, self.bandwidth);
        }
        let e = self.energy_per_access + self.energy_per_byte * bytes as f64;
        (lat, e)
    }

    /// Latency of streaming `bytes` sequentially (single activation,
    /// bandwidth-bound).
    pub fn stream(&self, bytes: u64) -> (Duration, Energy) {
        let lat = if bytes == 0 {
            Duration::ZERO
        } else {
            self.latency + Duration::from_bytes_at_bandwidth(bytes, self.bandwidth)
        };
        let e = self.energy_per_access + self.energy_per_byte * bytes as f64;
        (lat, e)
    }
}

impl Default for DramModel {
    fn default() -> Self {
        DramModel::lpddr4_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_latency_has_fixed_and_bandwidth_terms() {
        let d = DramModel::lpddr4_default();
        let (l0, _) = d.access(0);
        let (l64, _) = d.access(64);
        let (l4k, _) = d.access(4096);
        assert_eq!(l0, Duration::from_ns(70));
        assert!(l64 > l0);
        assert!(l4k > l64);
    }

    #[test]
    fn energy_linear_in_bytes() {
        let d = DramModel::lpddr4_default();
        let (_, e1) = d.access(1000);
        let (_, e2) = d.access(2000);
        let fixed = d.energy_per_access;
        assert!(((e2 - fixed).as_pj() / (e1 - fixed).as_pj() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn stream_zero_bytes_is_free_latency() {
        let d = DramModel::lpddr4_default();
        let (l, _) = d.stream(0);
        assert_eq!(l, Duration::ZERO);
    }

    #[test]
    fn dram_energy_dominates_onchip_for_same_bytes() {
        // sanity: DRAM pJ/byte is far above on-chip link pJ/byte, the
        // premise of the paper's "reduce data traffic" argument.
        let d = DramModel::lpddr4_default();
        assert!(d.energy_per_byte.as_pj() > 100.0);
    }
}
