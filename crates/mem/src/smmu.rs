//! The dual-stage System MMU (Fig. 4).
//!
//! ECOSCALE maps reconfigurable accelerators into the *virtual* address
//! space: an accelerator issues the same user-space pointers the
//! application holds, and a two-stage I/O MMU (stage 1: VA→IPA per
//! process, stage 2: IPA→PA per VM) translates them in hardware. This is
//! what enables **user-level access** to accelerators — no OS/hypervisor
//! trap, no page pinning, no explicit buffer mapping per call.
//!
//! [`Smmu`] models the translation data path (TLB hits, nested table
//! walks) and [`InvocationModel`] compares the two accelerator-invocation
//! paths the paper contrasts: the traditional OS-mediated path versus the
//! ECOSCALE user-level path (experiment E4).

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use ecoscale_sim::check::{invariant, CheckPlane};
use ecoscale_sim::{Counter, Duration, Histogram, MetricsRegistry, ProbFault, SimRng};

use crate::addr::{PhysAddr, VirtAddr};
use crate::page_table::{PagePerms, PageTable, TranslateError};

/// SMMU geometry and timing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SmmuConfig {
    /// Unified TLB capacity in entries.
    pub tlb_entries: usize,
    /// Radix levels of the stage-1 table (ARMv8: 4).
    pub stage1_levels: u32,
    /// Radix levels of the stage-2 table (ARMv8: 4).
    pub stage2_levels: u32,
    /// Latency of one page-table memory access during a walk.
    pub table_access: Duration,
    /// Latency of a TLB hit.
    pub tlb_hit: Duration,
}

impl Default for SmmuConfig {
    fn default() -> Self {
        SmmuConfig {
            tlb_entries: 64,
            stage1_levels: 4,
            stage2_levels: 4,
            table_access: Duration::from_ns(20), // table walks mostly hit L2
            tlb_hit: Duration::from_ns(1),
        }
    }
}

impl SmmuConfig {
    /// Memory accesses in a full nested (two-stage) walk.
    ///
    /// Every stage-1 table pointer is itself an IPA and must be walked
    /// through stage 2, giving the classic `n·m + n + m` accesses for
    /// `n` stage-1 and `m` stage-2 levels (24 for ARMv8's 4+4).
    pub fn nested_walk_accesses(&self) -> u32 {
        self.stage1_levels * self.stage2_levels + self.stage1_levels + self.stage2_levels
    }

    /// Latency of a full nested walk.
    pub fn walk_latency(&self) -> Duration {
        self.table_access * self.nested_walk_accesses() as u64
    }
}

/// A translation fault raised by the SMMU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SmmuFault {
    /// Stage-1 (VA→IPA) fault.
    Stage1(TranslateError),
    /// Stage-2 (IPA→PA) fault.
    Stage2(TranslateError),
    /// A spurious fault injected by an active fault campaign (transient
    /// walker/table upset). The translation would otherwise have
    /// succeeded; a retry is expected to go through.
    Injected,
}

impl fmt::Display for SmmuFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SmmuFault::Stage1(e) => write!(f, "stage-1 fault: {e}"),
            SmmuFault::Stage2(e) => write!(f, "stage-2 fault: {e}"),
            SmmuFault::Injected => write!(f, "injected transient translation fault"),
        }
    }
}

impl Error for SmmuFault {}

#[derive(Debug, Clone, Copy)]
struct TlbEntry {
    ppn: u64,
    perms: PagePerms,
    lru: u64,
}

/// The most-recently-used translation, held in front of the TLB map.
///
/// Accelerator streams touch the same page for many consecutive accesses,
/// so this single slot absorbs most lookups without hashing. LRU
/// bookkeeping for the shadowed TLB entry is deferred: `last_used` is
/// written back to the map entry when the slot moves to another page, so
/// eviction decisions are identical to a map-only TLB.
#[derive(Debug, Clone, Copy)]
struct MruSlot {
    vpn: u64,
    ppn: u64,
    perms: PagePerms,
    last_used: u64,
}

/// The dual-stage SMMU: two page tables plus a unified TLB caching the
/// combined VA→PA translation.
///
/// # Example
///
/// ```
/// use ecoscale_mem::{PagePerms, Smmu, SmmuConfig, VirtAddr};
///
/// let mut smmu = Smmu::new(SmmuConfig::default());
/// smmu.map(VirtAddr(0x5000), 0x20, 0x80, PagePerms::RW)?;
/// let (pa, walk) = smmu.translate(VirtAddr(0x5008), PagePerms::READ)?;
/// assert_eq!(pa.0, 0x80008);
/// let (_, hit) = smmu.translate(VirtAddr(0x5010), PagePerms::READ)?;
/// assert!(hit < walk, "second access hits the TLB");
/// # Ok::<(), ecoscale_mem::SmmuFault>(())
/// ```
#[derive(Debug)]
pub struct Smmu {
    config: SmmuConfig,
    stage1: PageTable,
    stage2: PageTable,
    tlb: HashMap<u64, TlbEntry>,
    mru: Option<MruSlot>,
    clock: u64,
    tlb_hits: Counter,
    tlb_misses: Counter,
    mru_hits: Counter,
    faults: Counter,
    injected: Counter,
    injection: Option<ProbFault>,
    translate_ns: Histogram,
}

impl Smmu {
    /// Creates an SMMU with empty tables.
    pub fn new(config: SmmuConfig) -> Smmu {
        Smmu {
            stage1: PageTable::new(config.stage1_levels),
            stage2: PageTable::new(config.stage2_levels),
            config,
            tlb: HashMap::with_capacity(config.tlb_entries),
            mru: None,
            clock: 0,
            tlb_hits: Counter::new(),
            tlb_misses: Counter::new(),
            mru_hits: Counter::new(),
            faults: Counter::new(),
            injected: Counter::new(),
            injection: None,
            translate_ns: Histogram::new(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &SmmuConfig {
        &self.config
    }

    /// Arms fault injection: each translation faults spuriously with
    /// probability `p`, drawn from a stream seeded by `rng`. A `p` of
    /// zero disarms injection entirely (no draws, no behaviour change).
    pub fn set_fault_injection(&mut self, p: f64, rng: SimRng) {
        self.injection = if p > 0.0 {
            Some(ProbFault::new(p, rng))
        } else {
            None
        };
    }

    /// Spurious faults injected by an active campaign (a subset of
    /// [`Smmu::faults`]).
    pub fn injected_faults(&self) -> u64 {
        self.injected.get()
    }

    /// Stage-1 table (VA→IPA), e.g. to map process pages.
    pub fn stage1_mut(&mut self) -> &mut PageTable {
        &mut self.stage1
    }

    /// Stage-2 table (IPA→PA), e.g. for the hypervisor layer.
    pub fn stage2_mut(&mut self) -> &mut PageTable {
        &mut self.stage2
    }

    /// Convenience: maps `va`'s page through both stages
    /// (VA page → `ipa_page` → `pa_page`).
    ///
    /// # Errors
    ///
    /// Returns a fault if either stage already maps the page.
    pub fn map(
        &mut self,
        va: VirtAddr,
        ipa_page: u64,
        pa_page: u64,
        perms: PagePerms,
    ) -> Result<(), SmmuFault> {
        self.stage1
            .map(va.page(), ipa_page, perms)
            .map_err(|_| SmmuFault::Stage1(TranslateError::NotMapped { page: va.page() }))?;
        // Stage-2 entries may be shared between many stage-1 pages; a
        // double map of the same IPA is fine and kept as-is.
        let _ = self.stage2.map(ipa_page, pa_page, PagePerms::RW);
        Ok(())
    }

    /// Translates `va`, returning the physical address and the latency of
    /// this translation (TLB hit or nested walk).
    ///
    /// # Errors
    ///
    /// Returns the faulting stage on a missing mapping or permission
    /// violation. Faults cost a full walk.
    pub fn translate(
        &mut self,
        va: VirtAddr,
        need: PagePerms,
    ) -> Result<(PhysAddr, Duration), SmmuFault> {
        self.clock += 1;
        // Injected transient faults strike before any lookup: the walker
        // itself glitches, so even a TLB-resident page faults. Charged a
        // full walk, like architectural faults.
        if let Some(inj) = &mut self.injection {
            if inj.strikes() {
                self.faults.incr();
                self.injected.incr();
                let walk = self.config.walk_latency();
                self.translate_ns.record(walk.as_ns());
                return Err(SmmuFault::Injected);
            }
        }
        let vpn = va.page();
        // MRU fast path: repeated touches of one page skip the map.
        if let Some(m) = &mut self.mru {
            if m.vpn == vpn && m.perms.allows(need) {
                m.last_used = self.clock;
                self.tlb_hits.incr();
                self.mru_hits.incr();
                self.translate_ns.record(self.config.tlb_hit.as_ns());
                return Ok((
                    PhysAddr::from_page(m.ppn, va.page_offset()),
                    self.config.tlb_hit,
                ));
            }
        }
        // Moving to a different page: sync the shadowed entry's LRU stamp
        // so eviction order matches a map-only TLB exactly.
        if let Some(m) = self.mru.take() {
            if let Some(e) = self.tlb.get_mut(&m.vpn) {
                e.lru = e.lru.max(m.last_used);
            }
        }
        if let Some(e) = self.tlb.get_mut(&vpn) {
            if e.perms.allows(need) {
                e.lru = self.clock;
                let slot = MruSlot {
                    vpn,
                    ppn: e.ppn,
                    perms: e.perms,
                    last_used: self.clock,
                };
                self.tlb_hits.incr();
                self.mru = Some(slot);
                self.translate_ns.record(self.config.tlb_hit.as_ns());
                return Ok((
                    PhysAddr::from_page(slot.ppn, va.page_offset()),
                    self.config.tlb_hit,
                ));
            }
            // permission upgrade needs a walk; fall through
        }
        self.tlb_misses.incr();
        let walk = self.config.walk_latency();
        let ipa_page = self.stage1.translate(vpn, need).map_err(|e| {
            self.faults.incr();
            self.translate_ns.record(walk.as_ns());
            SmmuFault::Stage1(e)
        })?;
        let pa_page = self
            .stage2
            .translate(ipa_page, PagePerms::READ)
            .map_err(|e| {
                self.faults.incr();
                self.translate_ns.record(walk.as_ns());
                SmmuFault::Stage2(e)
            })?;
        // Fill the TLB with the combined translation. The cached entry must
        // carry the *stage-1* permission bits: caching RW unconditionally
        // would let a read-only page be written once TLB-resident.
        let perms = self
            .stage1
            .perms_of(vpn)
            .expect("stage-1 walk above succeeded");
        if self.tlb.len() >= self.config.tlb_entries {
            if let Some((&evict, _)) = self.tlb.iter().min_by_key(|(_, e)| e.lru) {
                self.tlb.remove(&evict);
            }
        }
        self.tlb.insert(
            vpn,
            TlbEntry {
                ppn: pa_page,
                perms,
                lru: self.clock,
            },
        );
        self.mru = Some(MruSlot {
            vpn,
            ppn: pa_page,
            perms,
            last_used: self.clock,
        });
        self.translate_ns
            .record((self.config.tlb_hit + walk).as_ns());
        Ok((
            PhysAddr::from_page(pa_page, va.page_offset()),
            self.config.tlb_hit + walk,
        ))
    }

    /// Drops every TLB entry, including the MRU fast slot (e.g. on
    /// context switch or reconfiguration of the accelerator).
    pub fn invalidate_tlb(&mut self) {
        self.tlb.clear();
        self.mru = None;
    }

    /// TLB hits so far.
    pub fn tlb_hits(&self) -> u64 {
        self.tlb_hits.get()
    }

    /// TLB misses so far.
    pub fn tlb_misses(&self) -> u64 {
        self.tlb_misses.get()
    }

    /// TLB hits served by the last-translation MRU slot (a subset of
    /// [`Smmu::tlb_hits`]).
    pub fn mru_hits(&self) -> u64 {
        self.mru_hits.get()
    }

    /// Translation faults so far.
    pub fn faults(&self) -> u64 {
        self.faults.get()
    }

    /// Distribution of per-translation latencies (nanoseconds),
    /// including the walks charged to faulting accesses.
    pub fn translate_latency_ns(&self) -> &Histogram {
        &self.translate_ns
    }

    /// Folds this SMMU's instruments into `m` under `prefix`
    /// (`{prefix}.tlb_hits`, `.tlb_misses`, `.mru_hits`, `.faults`,
    /// `.translate_ns`). Exporting several SMMUs under one prefix
    /// aggregates them.
    pub fn export_metrics(&self, m: &mut MetricsRegistry, prefix: &str) {
        m.add(&format!("{prefix}.tlb_hits"), self.tlb_hits.get());
        m.add(&format!("{prefix}.tlb_misses"), self.tlb_misses.get());
        m.add(&format!("{prefix}.mru_hits"), self.mru_hits.get());
        m.add(&format!("{prefix}.faults"), self.faults.get());
        if self.injection.is_some() {
            m.add(&format!("{prefix}.injected_faults"), self.injected.get());
        }
        m.merge_hist(&format!("{prefix}.translate_ns"), &self.translate_ns);
    }

    /// CheckPlane hook: asserts the cached translation state agrees with the
    /// page tables. Read-only; early-outs when `cp` is disabled.
    ///
    /// * `smmu.tlb_bounded` — occupancy never exceeds the configured size.
    /// * `smmu.tlb_consistent` — each entry's output frame and permission
    ///   bits equal a fresh stage-1 ∘ stage-2 walk.
    /// * `smmu.mru_coherent` — the MRU fast slot mirrors a live TLB entry.
    pub fn check_invariants(&self, cp: &mut CheckPlane) {
        if !cp.is_enabled() {
            return;
        }
        cp.check(
            invariant::SMMU_TLB_BOUNDED,
            self.tlb.len() <= self.config.tlb_entries,
            || {
                format!(
                    "tlb holds {} entries, capacity {}",
                    self.tlb.len(),
                    self.config.tlb_entries
                )
            },
        );
        for (&vpn, e) in &self.tlb {
            let walk = self
                .stage1
                .translate(vpn, PagePerms::NONE)
                .ok()
                .and_then(|ipa| self.stage2.translate(ipa, PagePerms::NONE).ok());
            cp.check(invariant::SMMU_TLB_CONSISTENT, walk == Some(e.ppn), || {
                format!(
                    "vpn {vpn:#x}: cached ppn {:#x}, walk yields {walk:?}",
                    e.ppn
                )
            });
            let perms = self.stage1.perms_of(vpn);
            cp.check(
                invariant::SMMU_TLB_CONSISTENT,
                perms == Some(e.perms),
                || {
                    format!(
                        "vpn {vpn:#x}: cached perms {}, stage-1 has {perms:?}",
                        e.perms
                    )
                },
            );
        }
        if let Some(m) = &self.mru {
            let entry = self.tlb.get(&m.vpn);
            cp.check(
                invariant::SMMU_MRU_COHERENT,
                entry.is_some_and(|e| e.ppn == m.ppn && e.perms == m.perms),
                || format!("mru slot vpn {:#x} does not mirror a live TLB entry", m.vpn),
            );
        }
    }

    /// Serializes the SMMU's mutable state — both page tables, the TLB
    /// (entries sorted by virtual page), the MRU slot, the LRU clock,
    /// counters, armed fault injection and the latency histogram. The
    /// [`SmmuConfig`] is not written: it is structural and rebuilt from
    /// the run configuration.
    pub fn snapshot_state(&self, w: &mut ecoscale_sim::SnapWriter) {
        use ecoscale_sim::Snapshot as _;
        self.stage1.snapshot_state(w);
        self.stage2.snapshot_state(w);
        let mut vpns: Vec<u64> = self.tlb.keys().copied().collect();
        vpns.sort_unstable();
        w.put_usize(vpns.len());
        for vpn in vpns {
            let e = &self.tlb[&vpn];
            w.put_u64(vpn);
            w.put_u64(e.ppn);
            w.put_u8(e.perms.bits());
            w.put_u64(e.lru);
        }
        match &self.mru {
            None => w.put_bool(false),
            Some(m) => {
                w.put_bool(true);
                w.put_u64(m.vpn);
                w.put_u64(m.ppn);
                w.put_u8(m.perms.bits());
                w.put_u64(m.last_used);
            }
        }
        w.put_u64(self.clock);
        self.tlb_hits.snapshot(w);
        self.tlb_misses.snapshot(w);
        self.mru_hits.snapshot(w);
        self.faults.snapshot(w);
        self.injected.snapshot(w);
        match &self.injection {
            None => w.put_bool(false),
            Some(p) => {
                w.put_bool(true);
                p.snapshot(w);
            }
        }
        self.translate_ns.snapshot(w);
    }

    /// Overlays state captured by [`Smmu::snapshot_state`] onto this SMMU,
    /// which must have been built with the same [`SmmuConfig`].
    ///
    /// # Errors
    ///
    /// [`ecoscale_sim::RestoreError`] on truncation, invalid permission
    /// bits, unsorted TLB entries, or a TLB exceeding this config's
    /// capacity.
    pub fn restore_state(
        &mut self,
        r: &mut ecoscale_sim::SnapReader<'_>,
    ) -> Result<(), ecoscale_sim::RestoreError> {
        use ecoscale_sim::snap::malformed;
        use ecoscale_sim::Restore;
        self.stage1 = PageTable::restore_state(r)?;
        self.stage2 = PageTable::restore_state(r)?;
        let n = r.get_usize()?;
        if n > self.config.tlb_entries {
            return Err(malformed(format!(
                "snapshot TLB holds {n} entries, capacity {}",
                self.config.tlb_entries
            )));
        }
        self.tlb.clear();
        let mut prev: Option<u64> = None;
        for i in 0..n {
            let vpn = r.get_u64()?;
            if prev.is_some_and(|p| p >= vpn) {
                return Err(malformed(format!(
                    "TLB entries unsorted or duplicated at index {i}"
                )));
            }
            prev = Some(vpn);
            let ppn = r.get_u64()?;
            let bits = r.get_u8()?;
            if bits > 7 {
                return Err(malformed(format!("invalid TLB permission bits {bits:#x}")));
            }
            let lru = r.get_u64()?;
            self.tlb.insert(
                vpn,
                TlbEntry {
                    ppn,
                    perms: perms_from_bits(bits),
                    lru,
                },
            );
        }
        self.mru = if r.get_bool()? {
            let vpn = r.get_u64()?;
            let ppn = r.get_u64()?;
            let bits = r.get_u8()?;
            if bits > 7 {
                return Err(malformed(format!("invalid MRU permission bits {bits:#x}")));
            }
            let last_used = r.get_u64()?;
            Some(MruSlot {
                vpn,
                ppn,
                perms: perms_from_bits(bits),
                last_used,
            })
        } else {
            None
        };
        self.clock = r.get_u64()?;
        self.tlb_hits = Counter::restore(r)?;
        self.tlb_misses = Counter::restore(r)?;
        self.mru_hits = Counter::restore(r)?;
        self.faults = Counter::restore(r)?;
        self.injected = Counter::restore(r)?;
        self.injection = if r.get_bool()? {
            Some(ProbFault::restore(r)?)
        } else {
            None
        };
        self.translate_ns = Histogram::restore(r)?;
        Ok(())
    }
}

/// Reassembles [`PagePerms`] from validated raw bits.
fn perms_from_bits(bits: u8) -> PagePerms {
    let mut p = PagePerms::NONE;
    if bits & 1 != 0 {
        p = p | PagePerms::READ;
    }
    if bits & 2 != 0 {
        p = p | PagePerms::WRITE;
    }
    if bits & 4 != 0 {
        p = p | PagePerms::EXEC;
    }
    p
}

/// Costs of launching work on an accelerator via the two paths the paper
/// contrasts (experiment E4).
///
/// * **OS-mediated** (state of the art without an SMMU): a syscall into
///   the driver, per-page pinning and IOMMU programming, then the launch.
/// * **User-level** (ECOSCALE): ring a doorbell; the accelerator resolves
///   user pointers itself through the dual-stage SMMU, paying only
///   first-touch TLB walks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InvocationModel {
    /// Syscall entry + exit (trap, context, return).
    pub syscall: Duration,
    /// Per-page pin + IOMMU map cost in the driver path.
    pub pin_per_page: Duration,
    /// Driver bookkeeping per call (command validation, queue setup).
    pub driver_overhead: Duration,
    /// User-level doorbell write (uncached MMIO store).
    pub doorbell: Duration,
}

impl Default for InvocationModel {
    fn default() -> Self {
        InvocationModel {
            syscall: Duration::from_ns(1_300),
            pin_per_page: Duration::from_ns(350),
            driver_overhead: Duration::from_ns(900),
            doorbell: Duration::from_ns(120),
        }
    }
}

impl InvocationModel {
    /// Launch overhead via the OS-mediated path for a buffer of `pages`.
    pub fn os_mediated(&self, pages: u64) -> Duration {
        self.syscall + self.driver_overhead + self.pin_per_page * pages
    }

    /// Launch overhead via the user-level path: doorbell plus the exposed
    /// fraction of first-touch TLB walks for `pages` through
    /// `smmu_config`. Walks overlap the accelerator pipeline; empirically
    /// ~a quarter of their latency is exposed on the critical path.
    pub fn user_level(&self, pages: u64, smmu_config: &SmmuConfig) -> Duration {
        let walks = smmu_config.walk_latency() * pages.min(smmu_config.tlb_entries as u64);
        self.doorbell + walks / 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mapped_smmu(pages: u64) -> Smmu {
        let mut s = Smmu::new(SmmuConfig::default());
        for p in 0..pages {
            s.map(
                VirtAddr::from_page(p, 0),
                0x100 + p,
                0x1000 + p,
                PagePerms::RW,
            )
            .unwrap();
        }
        s
    }

    #[test]
    fn nested_walk_access_count_matches_armv8() {
        let c = SmmuConfig::default();
        assert_eq!(c.nested_walk_accesses(), 24);
        assert_eq!(c.walk_latency(), Duration::from_ns(480));
    }

    #[test]
    fn translate_walk_then_hit() {
        let mut s = mapped_smmu(4);
        let (pa, first) = s.translate(VirtAddr(0x10), PagePerms::READ).unwrap();
        assert_eq!(pa, PhysAddr::from_page(0x1000, 0x10));
        let (_, second) = s.translate(VirtAddr(0x20), PagePerms::READ).unwrap();
        assert!(second < first);
        assert_eq!(s.tlb_hits(), 1);
        assert_eq!(s.tlb_misses(), 1);
    }

    #[test]
    fn faults_on_unmapped_and_permission() {
        let mut s = mapped_smmu(1);
        let err = s
            .translate(VirtAddr::from_page(99, 0), PagePerms::READ)
            .unwrap_err();
        assert!(matches!(
            err,
            SmmuFault::Stage1(TranslateError::NotMapped { .. })
        ));
        assert_eq!(s.faults(), 1);
        assert!(err.to_string().contains("stage-1"));
    }

    #[test]
    fn tlb_fill_preserves_stage1_perms() {
        // Regression: the TLB fill used to cache RW unconditionally, so a
        // read-only page became writable once resident.
        let mut s = Smmu::new(SmmuConfig::default());
        s.map(VirtAddr::from_page(3, 0), 0x30, 0x300, PagePerms::READ)
            .unwrap();
        // Walk once (read), making the page TLB-resident.
        s.translate(VirtAddr::from_page(3, 8), PagePerms::READ)
            .unwrap();
        assert_eq!(s.tlb_misses(), 1);
        // A write must still be denied by the stage-1 permissions.
        let err = s
            .translate(VirtAddr::from_page(3, 8), PagePerms::WRITE)
            .unwrap_err();
        assert!(matches!(
            err,
            SmmuFault::Stage1(TranslateError::PermissionDenied { .. })
        ));
        let mut cp = CheckPlane::enabled(1);
        s.check_invariants(&mut cp);
        assert!(cp.ok(), "{:?}", cp.first());
    }

    #[test]
    fn check_invariants_pass_and_catch_staleness() {
        let mut s = mapped_smmu(8);
        for p in 0..8 {
            s.translate(VirtAddr::from_page(p, 0), PagePerms::RW)
                .unwrap();
        }
        let mut cp = CheckPlane::enabled(1);
        s.check_invariants(&mut cp);
        assert!(cp.ok(), "{:?}", cp.first());
        assert!(cp.checks_run() > 8);
        // Remapping stage-1 underneath the TLB (without an invalidate) must
        // be flagged as a stale cached translation.
        s.stage1_mut().unmap(2);
        s.stage1_mut().map(2, 0x999, PagePerms::RW).unwrap();
        let mut cp = CheckPlane::enabled(1);
        s.check_invariants(&mut cp);
        assert!(!cp.ok());
        assert_eq!(
            cp.first().unwrap().invariant,
            invariant::SMMU_TLB_CONSISTENT
        );
        // A disabled plane does no work on the same (inconsistent) state.
        let mut off = CheckPlane::disabled();
        s.check_invariants(&mut off);
        assert!(off.ok());
        assert_eq!(off.checks_run(), 0);
    }

    #[test]
    fn stage2_fault_detected() {
        let mut s = Smmu::new(SmmuConfig::default());
        // map stage 1 only
        s.stage1_mut().map(7, 0x70, PagePerms::RW).unwrap();
        let err = s
            .translate(VirtAddr::from_page(7, 0), PagePerms::READ)
            .unwrap_err();
        assert!(matches!(err, SmmuFault::Stage2(_)));
    }

    #[test]
    fn tlb_capacity_evicts_lru() {
        let cfg = SmmuConfig {
            tlb_entries: 2,
            ..SmmuConfig::default()
        };
        let mut s = Smmu::new(cfg);
        for p in 0..3 {
            s.map(
                VirtAddr::from_page(p, 0),
                0x100 + p,
                0x1000 + p,
                PagePerms::RW,
            )
            .unwrap();
        }
        s.translate(VirtAddr::from_page(0, 0), PagePerms::READ)
            .unwrap(); // miss
        s.translate(VirtAddr::from_page(1, 0), PagePerms::READ)
            .unwrap(); // miss
        s.translate(VirtAddr::from_page(0, 0), PagePerms::READ)
            .unwrap(); // hit; 1 is LRU
        s.translate(VirtAddr::from_page(2, 0), PagePerms::READ)
            .unwrap(); // miss, evicts 1
        s.translate(VirtAddr::from_page(1, 0), PagePerms::READ)
            .unwrap(); // miss again
        assert_eq!(s.tlb_misses(), 4);
        assert_eq!(s.tlb_hits(), 1);
    }

    #[test]
    fn mru_slot_serves_repeated_touches() {
        let mut s = mapped_smmu(4);
        s.translate(VirtAddr::from_page(0, 0), PagePerms::READ)
            .unwrap(); // walk
        for i in 0..10 {
            s.translate(VirtAddr::from_page(0, i), PagePerms::READ)
                .unwrap();
        }
        assert_eq!(s.mru_hits(), 10);
        assert_eq!(s.tlb_hits(), 10);
        // a different page misses the MRU slot but may still hit the map
        s.translate(VirtAddr::from_page(1, 0), PagePerms::READ)
            .unwrap(); // walk
        s.translate(VirtAddr::from_page(0, 0), PagePerms::READ)
            .unwrap(); // map hit
        assert_eq!(s.tlb_misses(), 2);
        assert_eq!(s.mru_hits(), 10);
        s.invalidate_tlb();
        s.translate(VirtAddr::from_page(0, 0), PagePerms::READ)
            .unwrap();
        assert_eq!(s.tlb_misses(), 3, "invalidation clears the MRU slot too");
    }

    #[test]
    fn invalidate_forces_walks() {
        let mut s = mapped_smmu(2);
        s.translate(VirtAddr(0), PagePerms::READ).unwrap();
        s.invalidate_tlb();
        s.translate(VirtAddr(0), PagePerms::READ).unwrap();
        assert_eq!(s.tlb_misses(), 2);
    }

    #[test]
    fn user_level_beats_os_for_small_buffers() {
        let inv = InvocationModel::default();
        let cfg = SmmuConfig::default();
        // 1-page argument buffer: paper's "small transfers / frequent
        // invocation" case
        assert!(inv.user_level(1, &cfg) < inv.os_mediated(1));
    }

    #[test]
    fn os_path_scales_with_pages() {
        let inv = InvocationModel::default();
        assert!(inv.os_mediated(1000) > inv.os_mediated(10) * 10);
    }

    #[test]
    fn injected_faults_strike_and_count() {
        let mut s = mapped_smmu(2);
        s.set_fault_injection(0.5, SimRng::seed_from(11));
        let mut hits = 0u64;
        let mut faults = 0u64;
        for i in 0..200 {
            match s.translate(VirtAddr::from_page(i % 2, 0), PagePerms::READ) {
                Ok(_) => hits += 1,
                Err(e) => {
                    assert_eq!(e, SmmuFault::Injected);
                    faults += 1;
                }
            }
        }
        assert!(hits > 0 && faults > 0, "both outcomes occur at p=0.5");
        assert_eq!(s.injected_faults(), faults);
        assert_eq!(s.faults(), faults, "no architectural faults here");
        // retry after an injected fault succeeds (transient)
        s.set_fault_injection(0.0, SimRng::seed_from(11));
        assert!(s
            .translate(VirtAddr::from_page(0, 0), PagePerms::READ)
            .is_ok());
    }

    #[test]
    fn zero_rate_injection_changes_nothing() {
        let mut base = mapped_smmu(4);
        let mut inj = mapped_smmu(4);
        inj.set_fault_injection(0.0, SimRng::seed_from(99));
        for i in 0..50 {
            let a = base.translate(VirtAddr::from_page(i % 4, 0), PagePerms::READ);
            let b = inj.translate(VirtAddr::from_page(i % 4, 0), PagePerms::READ);
            assert_eq!(a, b);
        }
        let mut ma = MetricsRegistry::new();
        let mut mb = MetricsRegistry::new();
        base.export_metrics(&mut ma, "smmu");
        inj.export_metrics(&mut mb, "smmu");
        assert_eq!(
            ma.to_json(),
            mb.to_json(),
            "disarmed injection is invisible"
        );
    }

    #[test]
    fn shared_stage2_pages_allowed() {
        let mut s = Smmu::new(SmmuConfig::default());
        s.map(VirtAddr::from_page(1, 0), 0x50, 0x500, PagePerms::RW)
            .unwrap();
        // second VA aliasing the same IPA page must not error
        s.map(VirtAddr::from_page(2, 0), 0x50, 0x500, PagePerms::RW)
            .unwrap();
        let (pa1, _) = s
            .translate(VirtAddr::from_page(1, 0), PagePerms::READ)
            .unwrap();
        let (pa2, _) = s
            .translate(VirtAddr::from_page(2, 0), PagePerms::READ)
            .unwrap();
        assert_eq!(pa1, pa2);
    }
}
