//! A set-associative write-back cache model.
//!
//! Used for each Worker's data cache and for accelerator-local caches.
//! The model tracks tags and LRU state exactly (so hit/miss sequences are
//! deterministic) and reports evictions of dirty lines so callers can
//! charge write-back traffic.

use ecoscale_sim::Counter;

/// Cache geometry and timing-free configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity: u64,
    /// Line size in bytes.
    pub line_size: u64,
    /// Associativity (ways per set).
    pub ways: usize,
}

impl CacheConfig {
    /// A 32 KiB, 64-byte-line, 4-way L1-style cache (Cortex-A53 class).
    pub fn l1_default() -> CacheConfig {
        CacheConfig {
            capacity: 32 * 1024,
            line_size: 64,
            ways: 4,
        }
    }

    /// A 512 KiB, 64-byte-line, 16-way shared-L2-style cache.
    pub fn l2_default() -> CacheConfig {
        CacheConfig {
            capacity: 512 * 1024,
            line_size: 64,
            ways: 16,
        }
    }

    fn sets(&self) -> usize {
        (self.capacity / self.line_size) as usize / self.ways
    }
}

/// The outcome of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheAccess {
    /// The line was present.
    Hit,
    /// The line was filled; no write-back needed.
    Miss,
    /// The line was filled and a dirty victim must be written back.
    MissDirtyEviction {
        /// Address of the first byte of the evicted line.
        victim_addr: u64,
    },
}

impl CacheAccess {
    /// Returns `true` for [`CacheAccess::Hit`].
    pub fn is_hit(self) -> bool {
        matches!(self, CacheAccess::Hit)
    }
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    lru: u64,
}

/// A set-associative write-back cache with exact LRU replacement.
///
/// # Example
///
/// ```
/// use ecoscale_mem::{Cache, CacheConfig};
///
/// let mut c = Cache::new(CacheConfig::l1_default());
/// assert!(!c.access(0x1000, false).is_hit()); // cold miss
/// assert!(c.access(0x1000, false).is_hit());  // now resident
/// assert!(c.access(0x1020, false).is_hit());  // same 64-byte line
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    sets: Vec<Vec<Line>>,
    clock: u64,
    hits: Counter,
    misses: Counter,
    writebacks: Counter,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero sets/ways, non-power-of-2
    /// line size, or capacity not divisible by `line_size × ways`).
    pub fn new(config: CacheConfig) -> Cache {
        assert!(
            config.line_size.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(config.ways > 0, "cache needs at least one way");
        assert!(
            config
                .capacity
                .is_multiple_of(config.line_size * config.ways as u64),
            "capacity must divide evenly into sets"
        );
        let sets = config.sets();
        assert!(sets > 0, "cache needs at least one set");
        Cache {
            config,
            sets: vec![
                vec![
                    Line {
                        tag: 0,
                        valid: false,
                        dirty: false,
                        lru: 0
                    };
                    config.ways
                ];
                sets
            ],
            clock: 0,
            hits: Counter::new(),
            misses: Counter::new(),
            writebacks: Counter::new(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    fn index(&self, addr: u64) -> (usize, u64) {
        let line = addr / self.config.line_size;
        let set = (line % self.sets.len() as u64) as usize;
        let tag = line / self.sets.len() as u64;
        (set, tag)
    }

    /// Accesses `addr`; `write` marks the line dirty.
    pub fn access(&mut self, addr: u64, write: bool) -> CacheAccess {
        self.clock += 1;
        let (set_idx, tag) = self.index(addr);
        let sets_len = self.sets.len() as u64;
        let line_size = self.config.line_size;
        let set = &mut self.sets[set_idx];

        if let Some(line) = set.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.lru = self.clock;
            line.dirty |= write;
            self.hits.incr();
            return CacheAccess::Hit;
        }
        self.misses.incr();
        // choose victim: first invalid, else LRU
        let victim_idx = set.iter().position(|l| !l.valid).unwrap_or_else(|| {
            set.iter()
                .enumerate()
                .min_by_key(|(_, l)| l.lru)
                .map(|(i, _)| i)
                .expect("ways > 0")
        });
        let victim = set[victim_idx];
        let result = if victim.valid && victim.dirty {
            self.writebacks.incr();
            let victim_line = victim.tag * sets_len + set_idx as u64;
            CacheAccess::MissDirtyEviction {
                victim_addr: victim_line * line_size,
            }
        } else {
            CacheAccess::Miss
        };
        set[victim_idx] = Line {
            tag,
            valid: true,
            dirty: write,
            lru: self.clock,
        };
        result
    }

    /// Invalidates any line containing `addr`, returning `true` if a dirty
    /// line was dropped (caller should charge a write-back).
    pub fn invalidate(&mut self, addr: u64) -> bool {
        let (set_idx, tag) = self.index(addr);
        for line in &mut self.sets[set_idx] {
            if line.valid && line.tag == tag {
                line.valid = false;
                let was_dirty = line.dirty;
                line.dirty = false;
                if was_dirty {
                    self.writebacks.incr();
                }
                return was_dirty;
            }
        }
        false
    }

    /// Flushes the whole cache, returning the number of dirty lines
    /// written back.
    pub fn flush(&mut self) -> u64 {
        let mut dirty = 0;
        for set in &mut self.sets {
            for line in set {
                if line.valid && line.dirty {
                    dirty += 1;
                }
                line.valid = false;
                line.dirty = false;
            }
        }
        self.writebacks.add(dirty);
        dirty
    }

    /// Hit count so far.
    pub fn hits(&self) -> u64 {
        self.hits.get()
    }

    /// Miss count so far.
    pub fn misses(&self) -> u64 {
        self.misses.get()
    }

    /// Write-back count so far.
    pub fn writebacks(&self) -> u64 {
        self.writebacks.get()
    }

    /// Hit rate in `[0, 1]` (0 for no accesses).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits.get() + self.misses.get();
        if total == 0 {
            0.0
        } else {
            self.hits.get() as f64 / total as f64
        }
    }

    /// Serializes the cache's mutable state: every line row-major
    /// (set-major, way-minor — a fixed walk, so the bytes are canonical),
    /// the LRU clock and the counters. The [`CacheConfig`] is structural
    /// and not written.
    pub fn snapshot_state(&self, w: &mut ecoscale_sim::SnapWriter) {
        use ecoscale_sim::Snapshot as _;
        w.put_u64(self.clock);
        for set in &self.sets {
            for line in set {
                w.put_u64(line.tag);
                w.put_bool(line.valid);
                w.put_bool(line.dirty);
                w.put_u64(line.lru);
            }
        }
        self.hits.snapshot(w);
        self.misses.snapshot(w);
        self.writebacks.snapshot(w);
    }

    /// Overlays state captured by [`Cache::snapshot_state`] onto this
    /// cache, which must have been built with the same [`CacheConfig`]
    /// (the line walk is geometry-shaped).
    ///
    /// # Errors
    ///
    /// [`ecoscale_sim::RestoreError`] on truncation or corrupt booleans.
    pub fn restore_state(
        &mut self,
        r: &mut ecoscale_sim::SnapReader<'_>,
    ) -> Result<(), ecoscale_sim::RestoreError> {
        use ecoscale_sim::Restore;
        self.clock = r.get_u64()?;
        for set in &mut self.sets {
            for line in set {
                line.tag = r.get_u64()?;
                line.valid = r.get_bool()?;
                line.dirty = r.get_bool()?;
                line.lru = r.get_u64()?;
            }
        }
        self.hits = Counter::restore(r)?;
        self.misses = Counter::restore(r)?;
        self.writebacks = Counter::restore(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets × 2 ways × 64 B lines = 256 B
        Cache::new(CacheConfig {
            capacity: 256,
            line_size: 64,
            ways: 2,
        })
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert_eq!(c.access(0, false), CacheAccess::Miss);
        assert_eq!(c.access(0, false), CacheAccess::Hit);
        assert_eq!(c.access(63, false), CacheAccess::Hit);
        assert_eq!(c.access(64, false), CacheAccess::Miss);
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 2);
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        // set 0 holds lines with (line % 2 == 0): addresses 0, 128, 256...
        c.access(0, false); // A
        c.access(128, false); // B
        c.access(0, false); // touch A so B is LRU
        c.access(256, false); // C evicts B
        assert_eq!(c.access(0, false), CacheAccess::Hit); // A survived
        assert_eq!(c.access(128, false), CacheAccess::Miss); // B gone
    }

    #[test]
    fn dirty_eviction_reports_victim() {
        let mut c = tiny();
        c.access(0, true); // dirty A in set 0
        c.access(128, false); // B
        c.access(256, false); // evicts A (LRU) -> dirty writeback
                              // find the eviction among the last access
        let mut c2 = tiny();
        c2.access(0, true);
        c2.access(128, false);
        match c2.access(256, false) {
            CacheAccess::MissDirtyEviction { victim_addr } => assert_eq!(victim_addr, 0),
            other => panic!("expected dirty eviction, got {other:?}"),
        }
        assert_eq!(c2.writebacks(), 1);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = tiny();
        c.access(0, false);
        c.access(0, true); // hit, marks dirty
        c.access(128, false);
        match c.access(256, false) {
            CacheAccess::MissDirtyEviction { victim_addr } => assert_eq!(victim_addr, 0),
            other => panic!("expected dirty eviction, got {other:?}"),
        }
    }

    #[test]
    fn invalidate_clean_and_dirty() {
        let mut c = tiny();
        c.access(0, false);
        assert!(!c.invalidate(0));
        assert_eq!(c.access(0, false), CacheAccess::Miss); // gone
        c.access(64, true);
        assert!(c.invalidate(64));
        assert!(!c.invalidate(64)); // already gone
    }

    #[test]
    fn flush_counts_dirty_lines() {
        let mut c = tiny();
        c.access(0, true);
        c.access(64, false);
        c.access(128, true);
        assert_eq!(c.flush(), 2);
        assert_eq!(c.access(0, false), CacheAccess::Miss);
    }

    #[test]
    fn default_geometries_sane() {
        let l1 = Cache::new(CacheConfig::l1_default());
        assert_eq!(l1.config().capacity, 32 * 1024);
        let l2 = Cache::new(CacheConfig::l2_default());
        assert_eq!(l2.config().ways, 16);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_line_size_rejected() {
        Cache::new(CacheConfig {
            capacity: 256,
            line_size: 48,
            ways: 2,
        });
    }

    #[test]
    fn working_set_larger_than_capacity_thrashes() {
        let mut c = tiny();
        // stream 16 distinct lines twice: second pass still misses
        for pass in 0..2 {
            for i in 0..16u64 {
                let r = c.access(i * 64, false);
                if pass == 1 {
                    assert!(!r.is_hit(), "line {i} unexpectedly survived");
                }
            }
        }
    }
}
