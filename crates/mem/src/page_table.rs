//! Sparse page tables with permissions.
//!
//! A [`PageTable`] is one translation stage: stage 1 maps
//! [`VirtAddr`](crate::addr::VirtAddr) pages to [`Ipa`](crate::addr::Ipa)
//! pages, stage 2 maps intermediate pages to [`PhysAddr`](crate::addr::PhysAddr)
//! pages. The table is stored sparsely (page-number map); the *cost* of a
//! hardware walk is modelled separately by the [`crate::smmu`] module.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::addr::PAGE_SHIFT;

/// Page permissions as a compact flag set.
///
/// # Example
///
/// ```
/// use ecoscale_mem::PagePerms;
///
/// let rw = PagePerms::READ | PagePerms::WRITE;
/// assert!(rw.allows(PagePerms::READ));
/// assert!(!rw.allows(PagePerms::EXEC));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct PagePerms(u8);

impl PagePerms {
    /// No access.
    pub const NONE: PagePerms = PagePerms(0);
    /// Read permission.
    pub const READ: PagePerms = PagePerms(1);
    /// Write permission.
    pub const WRITE: PagePerms = PagePerms(2);
    /// Execute permission.
    pub const EXEC: PagePerms = PagePerms(4);
    /// Read + write.
    pub const RW: PagePerms = PagePerms(3);

    /// Returns `true` if every permission in `required` is granted.
    #[inline]
    pub const fn allows(self, required: PagePerms) -> bool {
        self.0 & required.0 == required.0
    }

    /// Returns the raw bits.
    #[inline]
    pub const fn bits(self) -> u8 {
        self.0
    }
}

impl core::ops::BitOr for PagePerms {
    type Output = PagePerms;
    fn bitor(self, rhs: PagePerms) -> PagePerms {
        PagePerms(self.0 | rhs.0)
    }
}

impl fmt::Display for PagePerms {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let r = if self.allows(PagePerms::READ) {
            'r'
        } else {
            '-'
        };
        let w = if self.allows(PagePerms::WRITE) {
            'w'
        } else {
            '-'
        };
        let x = if self.allows(PagePerms::EXEC) {
            'x'
        } else {
            '-'
        };
        write!(f, "{r}{w}{x}")
    }
}

/// Error mapping a page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapPageError {
    /// The input page is already mapped.
    AlreadyMapped {
        /// The already-mapped input page number.
        page: u64,
    },
}

impl fmt::Display for MapPageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapPageError::AlreadyMapped { page } => {
                write!(f, "page {page:#x} is already mapped")
            }
        }
    }
}

impl Error for MapPageError {}

/// Error translating an address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TranslateError {
    /// No mapping exists for the page.
    NotMapped {
        /// The unmapped input page number.
        page: u64,
    },
    /// A mapping exists but lacks the required permission.
    PermissionDenied {
        /// The page number.
        page: u64,
        /// Permissions held.
        have: PagePerms,
        /// Permissions required.
        need: PagePerms,
    },
}

impl fmt::Display for TranslateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TranslateError::NotMapped { page } => write!(f, "page {page:#x} not mapped"),
            TranslateError::PermissionDenied { page, have, need } => {
                write!(f, "page {page:#x}: have {have}, need {need}")
            }
        }
    }
}

impl Error for TranslateError {}

#[derive(Debug, Clone, Copy)]
struct Entry {
    out_page: u64,
    perms: PagePerms,
}

/// One stage of page-granular translation with a configurable radix-tree
/// depth (used by the SMMU walk-cost model).
///
/// # Example
///
/// ```
/// use ecoscale_mem::{PagePerms, PageTable};
///
/// let mut pt = PageTable::new(4);
/// pt.map(0x10, 0x80, PagePerms::RW)?;
/// assert_eq!(pt.translate(0x10, PagePerms::READ)?, 0x80);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct PageTable {
    entries: HashMap<u64, Entry>,
    levels: u32,
}

impl PageTable {
    /// Creates an empty table with a radix-tree of `levels` levels
    /// (4 for an ARMv8 4 KiB-granule table).
    ///
    /// # Panics
    ///
    /// Panics if `levels` is zero.
    pub fn new(levels: u32) -> PageTable {
        assert!(levels > 0, "page table needs at least one level");
        PageTable {
            entries: HashMap::new(),
            levels,
        }
    }

    /// Number of radix levels a hardware walk traverses.
    pub fn levels(&self) -> u32 {
        self.levels
    }

    /// Maps input page `in_page` to output page `out_page`.
    ///
    /// # Errors
    ///
    /// Returns [`MapPageError::AlreadyMapped`] if `in_page` has a mapping.
    pub fn map(
        &mut self,
        in_page: u64,
        out_page: u64,
        perms: PagePerms,
    ) -> Result<(), MapPageError> {
        if self.entries.contains_key(&in_page) {
            return Err(MapPageError::AlreadyMapped { page: in_page });
        }
        self.entries.insert(in_page, Entry { out_page, perms });
        Ok(())
    }

    /// Maps a contiguous range of `count` pages starting at the given page
    /// numbers.
    ///
    /// # Errors
    ///
    /// Returns an error on the first already-mapped page; earlier pages in
    /// the range stay mapped.
    pub fn map_range(
        &mut self,
        in_page: u64,
        out_page: u64,
        count: u64,
        perms: PagePerms,
    ) -> Result<(), MapPageError> {
        for i in 0..count {
            self.map(in_page + i, out_page + i, perms)?;
        }
        Ok(())
    }

    /// Removes the mapping for `in_page`, returning whether one existed.
    pub fn unmap(&mut self, in_page: u64) -> bool {
        self.entries.remove(&in_page).is_some()
    }

    /// Permission bits recorded for `in_page`, if mapped. Used by the SMMU to
    /// propagate real stage-1 permissions into combined TLB entries and by
    /// the CheckPlane to cross-check cached translations.
    pub fn perms_of(&self, in_page: u64) -> Option<PagePerms> {
        self.entries.get(&in_page).map(|e| e.perms)
    }

    /// Translates input page → output page, checking `need` permissions.
    ///
    /// # Errors
    ///
    /// [`TranslateError::NotMapped`] or [`TranslateError::PermissionDenied`].
    pub fn translate(&self, in_page: u64, need: PagePerms) -> Result<u64, TranslateError> {
        match self.entries.get(&in_page) {
            None => Err(TranslateError::NotMapped { page: in_page }),
            Some(e) if !e.perms.allows(need) => Err(TranslateError::PermissionDenied {
                page: in_page,
                have: e.perms,
                need,
            }),
            Some(e) => Ok(e.out_page),
        }
    }

    /// Translates a full address (any addr newtype is `u64`-backed; this
    /// works on raw values to stay stage-agnostic).
    ///
    /// # Errors
    ///
    /// Same as [`PageTable::translate`].
    pub fn translate_addr(&self, addr: u64, need: PagePerms) -> Result<u64, TranslateError> {
        let page = addr >> PAGE_SHIFT;
        let out = self.translate(page, need)?;
        Ok((out << PAGE_SHIFT) | (addr & ((1 << PAGE_SHIFT) - 1)))
    }

    /// Number of mapped pages.
    pub fn mapped_pages(&self) -> usize {
        self.entries.len()
    }

    /// Serializes the table with entries sorted by input page, so the
    /// bytes are independent of hash-map iteration order.
    pub fn snapshot_state(&self, w: &mut ecoscale_sim::SnapWriter) {
        w.put_u32(self.levels);
        let mut pages: Vec<u64> = self.entries.keys().copied().collect();
        pages.sort_unstable();
        w.put_usize(pages.len());
        for p in pages {
            let e = &self.entries[&p];
            w.put_u64(p);
            w.put_u64(e.out_page);
            w.put_u8(e.perms.bits());
        }
    }

    /// Rebuilds a table serialized by [`PageTable::snapshot_state`].
    ///
    /// # Errors
    ///
    /// [`ecoscale_sim::RestoreError`] on truncation, invalid permission
    /// bits, duplicate or unsorted pages.
    pub fn restore_state(
        r: &mut ecoscale_sim::SnapReader<'_>,
    ) -> Result<PageTable, ecoscale_sim::RestoreError> {
        use ecoscale_sim::snap::malformed;
        let levels = r.get_u32()?;
        if levels == 0 {
            return Err(malformed("page table with zero levels"));
        }
        let n = r.get_usize()?;
        if n > r.remaining() {
            return Err(malformed(format!(
                "page table claims {n} entries but only {} bytes remain",
                r.remaining()
            )));
        }
        let mut pt = PageTable::new(levels);
        let mut prev: Option<u64> = None;
        for i in 0..n {
            let page = r.get_u64()?;
            if prev.is_some_and(|p| p >= page) {
                return Err(malformed(format!(
                    "page table entries unsorted or duplicated at index {i}"
                )));
            }
            prev = Some(page);
            let out_page = r.get_u64()?;
            let bits = r.get_u8()?;
            if bits > 7 {
                return Err(malformed(format!("invalid permission bits {bits:#x}")));
            }
            pt.entries.insert(
                page,
                Entry {
                    out_page,
                    perms: PagePerms(bits),
                },
            );
        }
        Ok(pt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perms_flags() {
        let rw = PagePerms::READ | PagePerms::WRITE;
        assert_eq!(rw, PagePerms::RW);
        assert!(rw.allows(PagePerms::READ));
        assert!(rw.allows(PagePerms::WRITE));
        assert!(rw.allows(PagePerms::NONE));
        assert!(!rw.allows(PagePerms::EXEC));
        assert_eq!(rw.to_string(), "rw-");
        assert_eq!(PagePerms::EXEC.to_string(), "--x");
        assert_eq!(rw.bits(), 3);
    }

    #[test]
    fn map_translate_unmap() {
        let mut pt = PageTable::new(4);
        pt.map(1, 100, PagePerms::RW).unwrap();
        assert_eq!(pt.translate(1, PagePerms::READ), Ok(100));
        assert_eq!(pt.mapped_pages(), 1);
        assert!(pt.unmap(1));
        assert!(!pt.unmap(1));
        assert_eq!(
            pt.translate(1, PagePerms::READ),
            Err(TranslateError::NotMapped { page: 1 })
        );
    }

    #[test]
    fn double_map_rejected() {
        let mut pt = PageTable::new(4);
        pt.map(5, 50, PagePerms::READ).unwrap();
        assert_eq!(
            pt.map(5, 51, PagePerms::READ),
            Err(MapPageError::AlreadyMapped { page: 5 })
        );
    }

    #[test]
    fn permission_enforced() {
        let mut pt = PageTable::new(4);
        pt.map(2, 20, PagePerms::READ).unwrap();
        let err = pt.translate(2, PagePerms::WRITE).unwrap_err();
        assert!(matches!(err, TranslateError::PermissionDenied { .. }));
        assert!(err.to_string().contains("have r--"));
    }

    #[test]
    fn range_mapping() {
        let mut pt = PageTable::new(4);
        pt.map_range(0x10, 0x90, 8, PagePerms::RW).unwrap();
        assert_eq!(pt.mapped_pages(), 8);
        for i in 0..8 {
            assert_eq!(pt.translate(0x10 + i, PagePerms::RW), Ok(0x90 + i));
        }
    }

    #[test]
    fn translate_addr_preserves_offset() {
        let mut pt = PageTable::new(4);
        pt.map(0x3, 0x7, PagePerms::READ).unwrap();
        assert_eq!(pt.translate_addr(0x3abc, PagePerms::READ), Ok(0x7abc));
    }

    #[test]
    #[should_panic(expected = "at least one level")]
    fn zero_levels_rejected() {
        PageTable::new(0);
    }
}
