//! UNIMEM: the partitioned global address space with single-node
//! cacheability.
//!
//! The UNIMEM consistency model (from EUROSERVER, adopted by ECOSCALE):
//! *"a memory page can be cacheable at the local coherent node or at a
//! remote coherent node, but not at both"*. [`UnimemDirectory`] tracks,
//! for every page, the one node allowed to cache it (its **cache home**,
//! by default the page's owning node). [`UnimemSystem`] then costs every
//! access:
//!
//! * an access **from the cache home** goes through that node's cache
//!   (hit, or miss + fill from the owning node's DRAM),
//! * an access **from any other node** is an *uncached* load/store routed
//!   over the interconnect to the owning node — always correct, never
//!   coherent-state-carrying, which is exactly why no global coherence
//!   protocol is needed.

use std::collections::HashMap;
use std::fmt;

use ecoscale_noc::{Network, NodeId, Topology};
use ecoscale_sim::check::{invariant, CheckPlane};
use ecoscale_sim::{Counter, Duration, Energy, MetricsRegistry, Time};

use crate::addr::GlobalAddr;
use crate::cache::{Cache, CacheAccess, CacheConfig};
use crate::dram::DramModel;

/// How an access was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Hit in the cache at the page's cache home.
    CacheHit,
    /// Miss at the cache home, filled from the owner's local DRAM.
    CacheMissLocalFill,
    /// Miss at the cache home, filled from a remote owner's DRAM.
    CacheMissRemoteFill,
    /// Uncached access from a node that is not the page's cache home.
    RemoteUncached,
    /// Atomic read-modify-write executed at the home node.
    Atomic,
    /// Home-side DRAM service of a request that originated *outside*
    /// this memory system (the sharded simulator runs one `UnimemSystem`
    /// per cluster; cross-cluster requests arrive as NoC messages and
    /// are serviced through [`UnimemSystem::serve_remote`]).
    RemoteServed,
}

/// Every [`AccessKind`] in a fixed order, used for the deterministic
/// snapshot byte layout of the per-kind counters.
const ALL_KINDS: [AccessKind; 6] = [
    AccessKind::CacheHit,
    AccessKind::CacheMissLocalFill,
    AccessKind::CacheMissRemoteFill,
    AccessKind::RemoteUncached,
    AccessKind::Atomic,
    AccessKind::RemoteServed,
];

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AccessKind::CacheHit => "cache-hit",
            AccessKind::CacheMissLocalFill => "miss-local-fill",
            AccessKind::CacheMissRemoteFill => "miss-remote-fill",
            AccessKind::RemoteUncached => "remote-uncached",
            AccessKind::Atomic => "atomic",
            AccessKind::RemoteServed => "remote-served",
        };
        f.write_str(s)
    }
}

/// The outcome of one memory access.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemAccess {
    /// When the access completes.
    pub completion: Time,
    /// Total latency.
    pub latency: Duration,
    /// Energy charged (cache + DRAM + interconnect).
    pub energy: Energy,
    /// How it was satisfied.
    pub kind: AccessKind,
}

/// Per-page cache-home directory.
///
/// The exclusive-cacheability invariant holds by construction: the
/// directory stores exactly one [`NodeId`] per page.
///
/// # Example
///
/// ```
/// use ecoscale_mem::{GlobalAddr, UnimemDirectory};
/// use ecoscale_noc::NodeId;
///
/// let mut dir = UnimemDirectory::new(4);
/// let page = GlobalAddr::new(NodeId(1), 0x2000);
/// assert_eq!(dir.cache_home(page), NodeId(1)); // defaults to the owner
/// dir.set_cache_home(page, NodeId(3));
/// assert_eq!(dir.cache_home(page), NodeId(3));
/// ```
#[derive(Debug, Clone)]
pub struct UnimemDirectory {
    nodes: usize,
    overrides: HashMap<(NodeId, u64), NodeId>,
    migrations: Counter,
}

impl UnimemDirectory {
    /// Creates a directory for `nodes` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    pub fn new(nodes: usize) -> UnimemDirectory {
        assert!(nodes > 0, "directory needs at least one node");
        UnimemDirectory {
            nodes,
            overrides: HashMap::new(),
            migrations: Counter::new(),
        }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// The single node allowed to cache `addr`'s page.
    pub fn cache_home(&self, addr: GlobalAddr) -> NodeId {
        self.overrides
            .get(&(addr.home(), addr.page()))
            .copied()
            .unwrap_or_else(|| addr.home())
    }

    /// Moves the cache home of `addr`'s page, returning the previous home.
    ///
    /// # Panics
    ///
    /// Panics if `new_home` is out of range.
    pub fn set_cache_home(&mut self, addr: GlobalAddr, new_home: NodeId) -> NodeId {
        assert!(new_home.0 < self.nodes, "node {new_home} out of range");
        let old = self.cache_home(addr);
        if new_home == addr.home() {
            self.overrides.remove(&(addr.home(), addr.page()));
        } else {
            self.overrides.insert((addr.home(), addr.page()), new_home);
        }
        if old != new_home {
            self.migrations.incr();
        }
        old
    }

    /// Number of cache-home migrations performed.
    pub fn migrations(&self) -> u64 {
        self.migrations.get()
    }

    /// Serializes the directory (overrides sorted by `(home, page)`, the
    /// migration counter). The node count is structural and verified on
    /// restore rather than rebuilt.
    pub fn snapshot_state(&self, w: &mut ecoscale_sim::SnapWriter) {
        use ecoscale_sim::Snapshot as _;
        w.put_usize(self.nodes);
        let mut keys: Vec<(NodeId, u64)> = self.overrides.keys().copied().collect();
        keys.sort_unstable_by_key(|&(home, page)| (home.0, page));
        w.put_usize(keys.len());
        for (home, page) in keys {
            w.put_usize(home.0);
            w.put_u64(page);
            w.put_usize(self.overrides[&(home, page)].0);
        }
        self.migrations.snapshot(w);
    }

    /// Overlays state captured by [`UnimemDirectory::snapshot_state`].
    ///
    /// # Errors
    ///
    /// [`ecoscale_sim::RestoreError`] on node-count mismatch, unsorted or
    /// out-of-range overrides.
    pub fn restore_state(
        &mut self,
        r: &mut ecoscale_sim::SnapReader<'_>,
    ) -> Result<(), ecoscale_sim::RestoreError> {
        use ecoscale_sim::snap::malformed;
        use ecoscale_sim::Restore;
        let nodes = r.get_usize()?;
        if nodes != self.nodes {
            return Err(malformed(format!(
                "snapshot directory spans {nodes} nodes, this one {}",
                self.nodes
            )));
        }
        let n = r.get_usize()?;
        if n > r.remaining() {
            return Err(malformed(format!(
                "directory claims {n} overrides but only {} bytes remain",
                r.remaining()
            )));
        }
        self.overrides.clear();
        let mut prev: Option<(usize, u64)> = None;
        for i in 0..n {
            let home = r.get_usize()?;
            let page = r.get_u64()?;
            let target = r.get_usize()?;
            if home >= self.nodes || target >= self.nodes {
                return Err(malformed(format!(
                    "override {i}: node out of range (home {home}, target {target})"
                )));
            }
            if prev.is_some_and(|p| p >= (home, page)) {
                return Err(malformed(format!(
                    "directory overrides unsorted or duplicated at index {i}"
                )));
            }
            prev = Some((home, page));
            self.overrides.insert((NodeId(home), page), NodeId(target));
        }
        self.migrations = Counter::restore(r)?;
        Ok(())
    }

    /// CheckPlane hook: every directory override must name an in-range node
    /// and must not alias the page's natural home (`set_cache_home` removes
    /// identity overrides, so a surviving one is stale state). Together with
    /// `HashMap` key uniqueness this is the paper's "exactly one cache home
    /// per page" claim. Read-only; early-outs when `cp` is disabled.
    pub fn check_invariants(&self, cp: &mut CheckPlane) {
        if !cp.is_enabled() {
            return;
        }
        for (&(home, page), &target) in &self.overrides {
            cp.check(
                invariant::UNIMEM_SINGLE_HOME,
                home.0 < self.nodes && target.0 < self.nodes,
                || format!("override ({home}, page {page:#x}) -> {target} out of range"),
            );
            cp.check(invariant::UNIMEM_SINGLE_HOME, target != home, || {
                format!("override ({home}, page {page:#x}) aliases the natural home")
            });
        }
    }
}

/// The UNIMEM memory system: one cache per node, DRAM at every node, and
/// the cache-home directory.
///
/// # Example
///
/// ```
/// use ecoscale_mem::{CacheConfig, DramModel, GlobalAddr, UnimemSystem};
/// use ecoscale_noc::{Network, NetworkConfig, NodeId, TreeTopology};
/// use ecoscale_sim::Time;
///
/// let mut net = Network::new(TreeTopology::new(&[4]), NetworkConfig::default());
/// let mut mem = UnimemSystem::new(4, CacheConfig::l1_default(), DramModel::default());
/// let addr = GlobalAddr::new(NodeId(0), 0x1000);
/// // first access from the cache home: miss + local fill
/// let a = mem.read(&mut net, Time::ZERO, NodeId(0), addr, 64);
/// // second: cache hit, much faster
/// let b = mem.read(&mut net, a.completion, NodeId(0), addr, 64);
/// assert!(b.latency < a.latency);
/// ```
#[derive(Debug)]
pub struct UnimemSystem {
    directory: UnimemDirectory,
    caches: Vec<Cache>,
    dram: DramModel,
    cache_hit_latency: Duration,
    cache_energy_per_byte: Energy,
    kind_counts: HashMap<AccessKind, u64>,
    /// Functional storage for atomics (word-granular; ordinary
    /// loads/stores are cost-only, but synchronization words must be
    /// real so fetch-and-add races resolve deterministically).
    atomics: HashMap<(NodeId, u64), i64>,
}

impl UnimemSystem {
    /// Creates a system with `nodes` nodes, one `cache_config` cache each,
    /// and `dram` channels.
    pub fn new(nodes: usize, cache_config: CacheConfig, dram: DramModel) -> UnimemSystem {
        UnimemSystem {
            directory: UnimemDirectory::new(nodes),
            caches: (0..nodes).map(|_| Cache::new(cache_config)).collect(),
            dram,
            cache_hit_latency: Duration::from_ns(2),
            cache_energy_per_byte: Energy::from_pj(1.0),
            kind_counts: HashMap::new(),
            atomics: HashMap::new(),
        }
    }

    /// The page directory.
    pub fn directory(&self) -> &UnimemDirectory {
        &self.directory
    }

    /// Mutable page directory (for placement policies).
    pub fn directory_mut(&mut self) -> &mut UnimemDirectory {
        &mut self.directory
    }

    /// The cache of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn cache(&self, node: NodeId) -> &Cache {
        &self.caches[node.0]
    }

    /// How many accesses of each kind have been served.
    pub fn count(&self, kind: AccessKind) -> u64 {
        self.kind_counts.get(&kind).copied().unwrap_or(0)
    }

    /// Folds UNIMEM instruments into `m` under `prefix`: one counter
    /// per [`AccessKind`] (`{prefix}.access.*`), aggregate cache
    /// hit/miss/writeback counts across every node's cache, the
    /// local-vs-remote split the paper's exclusive-cacheability
    /// argument turns on, and directory migrations.
    pub fn export_metrics(&self, m: &mut MetricsRegistry, prefix: &str) {
        const KINDS: [(AccessKind, &str); 6] = [
            (AccessKind::CacheHit, "cache_hit"),
            (AccessKind::CacheMissLocalFill, "miss_local_fill"),
            (AccessKind::CacheMissRemoteFill, "miss_remote_fill"),
            (AccessKind::RemoteUncached, "remote_uncached"),
            (AccessKind::Atomic, "atomic"),
            (AccessKind::RemoteServed, "remote_served"),
        ];
        for (kind, label) in KINDS {
            m.add(&format!("{prefix}.access.{label}"), self.count(kind));
        }
        let local = self.count(AccessKind::CacheHit) + self.count(AccessKind::CacheMissLocalFill);
        let remote =
            self.count(AccessKind::CacheMissRemoteFill) + self.count(AccessKind::RemoteUncached);
        m.add(&format!("{prefix}.local_accesses"), local);
        m.add(&format!("{prefix}.remote_accesses"), remote);
        let (mut hits, mut misses, mut writebacks) = (0, 0, 0);
        for c in &self.caches {
            hits += c.hits();
            misses += c.misses();
            writebacks += c.writebacks();
        }
        m.add(&format!("{prefix}.cache.hits"), hits);
        m.add(&format!("{prefix}.cache.misses"), misses);
        m.add(&format!("{prefix}.cache.writebacks"), writebacks);
        m.add(&format!("{prefix}.migrations"), self.directory.migrations());
    }

    /// CheckPlane hook: directory single-home invariants plus agreement
    /// between the per-kind access counters and the per-node cache counters
    /// (every cacheable access is accounted exactly once on both sides).
    /// Read-only; early-outs when `cp` is disabled.
    pub fn check_invariants(&self, cp: &mut CheckPlane) {
        if !cp.is_enabled() {
            return;
        }
        self.directory.check_invariants(cp);
        cp.check(
            invariant::UNIMEM_COUNTS_AGREE,
            self.caches.len() == self.directory.nodes(),
            || {
                format!(
                    "{} caches for {} directory nodes",
                    self.caches.len(),
                    self.directory.nodes()
                )
            },
        );
        let hits: u64 = self.caches.iter().map(|c| c.hits()).sum();
        let misses: u64 = self.caches.iter().map(|c| c.misses()).sum();
        cp.check(
            invariant::UNIMEM_COUNTS_AGREE,
            hits == self.count(AccessKind::CacheHit),
            || {
                format!(
                    "cache hits {hits} != access.cache_hit {}",
                    self.count(AccessKind::CacheHit)
                )
            },
        );
        let fills = self.count(AccessKind::CacheMissLocalFill)
            + self.count(AccessKind::CacheMissRemoteFill);
        cp.check(invariant::UNIMEM_COUNTS_AGREE, misses == fills, || {
            format!("cache misses {misses} != local+remote fills {fills}")
        });
    }

    /// Home-side service of a UNIMEM request that arrived from outside
    /// this memory system: one DRAM access of `bytes`, counted as
    /// [`AccessKind::RemoteServed`]. The sharded simulator runs one
    /// `UnimemSystem` per cluster, so a cross-cluster access splits into
    /// the NoC transit (paid by the message carrying the request) and
    /// this service cost at the home cluster.
    pub fn serve_remote(&mut self, bytes: u64) -> (Duration, Energy) {
        let (latency, energy) = self.dram.access(bytes);
        self.bump(AccessKind::RemoteServed);
        (latency, energy)
    }

    /// Reads `bytes` at `addr` from `node`.
    pub fn read<T: Topology>(
        &mut self,
        net: &mut Network<T>,
        now: Time,
        node: NodeId,
        addr: GlobalAddr,
        bytes: u64,
    ) -> MemAccess {
        self.access(net, now, node, addr, bytes, false)
    }

    /// Writes `bytes` at `addr` from `node`.
    pub fn write<T: Topology>(
        &mut self,
        net: &mut Network<T>,
        now: Time,
        node: NodeId,
        addr: GlobalAddr,
        bytes: u64,
    ) -> MemAccess {
        self.access(net, now, node, addr, bytes, true)
    }

    /// Flat cache-index address for a global address (homes live in
    /// disjoint windows).
    fn flat(addr: GlobalAddr) -> u64 {
        ((addr.home().0 as u64) << 44) | addr.offset()
    }

    fn bump(&mut self, kind: AccessKind) {
        *self.kind_counts.entry(kind).or_insert(0) += 1;
    }

    fn access<T: Topology>(
        &mut self,
        net: &mut Network<T>,
        now: Time,
        node: NodeId,
        addr: GlobalAddr,
        bytes: u64,
        write: bool,
    ) -> MemAccess {
        assert!(node.0 < self.caches.len(), "node {node} out of range");
        let home = addr.home();
        let cache_home = self.directory.cache_home(addr);
        let line = self.caches[node.0].config().line_size;

        if node == cache_home {
            // Cacheable path.
            let outcome = self.caches[node.0].access(Self::flat(addr), write);
            match outcome {
                CacheAccess::Hit => {
                    self.bump(AccessKind::CacheHit);
                    MemAccess {
                        completion: now + self.cache_hit_latency,
                        latency: self.cache_hit_latency,
                        energy: self.cache_energy_per_byte * bytes as f64,
                        kind: AccessKind::CacheHit,
                    }
                }
                CacheAccess::Miss | CacheAccess::MissDirtyEviction { .. } => {
                    let mut energy = self.cache_energy_per_byte * bytes as f64;
                    let mut latency = self.cache_hit_latency;
                    // Fill a full line from the owner's DRAM.
                    let (dram_lat, dram_e) = self.dram.access(line);
                    energy += dram_e;
                    let kind;
                    if home == node {
                        latency += dram_lat;
                        kind = AccessKind::CacheMissLocalFill;
                    } else {
                        // request to owner + line back
                        let req = net.transfer(now + latency, node, home, 16);
                        let at_home = req.arrival + dram_lat;
                        let resp = net.transfer(at_home, home, node, line);
                        energy += req.energy + resp.energy;
                        latency = resp.arrival - now;
                        kind = AccessKind::CacheMissRemoteFill;
                    }
                    // Dirty eviction: write the victim line back to DRAM.
                    if let CacheAccess::MissDirtyEviction { .. } = outcome {
                        let (_, wb_e) = self.dram.access(line);
                        energy += wb_e;
                    }
                    self.bump(kind);
                    MemAccess {
                        completion: now + latency,
                        latency,
                        energy,
                        kind,
                    }
                }
            }
        } else {
            // Uncached remote load/store to the owner (plain UNIMEM
            // load/store — no coherence traffic, no local caching).
            let (req_bytes, resp_bytes) = if write { (16 + bytes, 8) } else { (16, bytes) };
            let req = net.transfer(now, node, home, req_bytes);
            let (dram_lat, dram_e) = self.dram.access(bytes);
            let at_home = req.arrival + dram_lat;
            let resp = net.transfer(at_home, home, node, resp_bytes);
            let energy = req.energy + resp.energy + dram_e;
            self.bump(AccessKind::RemoteUncached);
            MemAccess {
                completion: resp.arrival,
                latency: resp.arrival - now,
                energy,
                kind: AccessKind::RemoteUncached,
            }
        }
    }

    /// Atomically adds `delta` to the 8-byte word at `addr`, executed at
    /// the word's home node (the UNIMEM way to synchronize remote
    /// threads without coherence traffic). Returns the *previous* value
    /// plus the access cost: one request/response pair from `node` to
    /// the home, or a local cache-speed RMW when `node` is the home.
    pub fn fetch_add<T: Topology>(
        &mut self,
        net: &mut Network<T>,
        now: Time,
        node: NodeId,
        addr: GlobalAddr,
        delta: i64,
    ) -> (i64, MemAccess) {
        let home = addr.home();
        let old = *self.atomics.entry((home, addr.offset())).or_insert(0);
        self.atomics.insert((home, addr.offset()), old + delta);
        self.bump(AccessKind::Atomic);
        let (dram_lat, dram_e) = self.dram.access(8);
        let access = if node == home {
            MemAccess {
                completion: now + self.cache_hit_latency + dram_lat,
                latency: self.cache_hit_latency + dram_lat,
                energy: dram_e,
                kind: AccessKind::Atomic,
            }
        } else {
            let req = net.transfer(now, node, home, 24); // op + addr + operand
            let at_home = req.arrival + dram_lat;
            let resp = net.transfer(at_home, home, node, 8);
            MemAccess {
                completion: resp.arrival,
                latency: resp.arrival - now,
                energy: req.energy + resp.energy + dram_e,
                kind: AccessKind::Atomic,
            }
        };
        (old, access)
    }

    /// Atomic compare-and-swap on the 8-byte word at `addr`: stores
    /// `new` iff the current value equals `expected`. Returns
    /// `(previous value, swapped?)` plus the access cost.
    #[allow(clippy::too_many_arguments)]
    pub fn compare_swap<T: Topology>(
        &mut self,
        net: &mut Network<T>,
        now: Time,
        node: NodeId,
        addr: GlobalAddr,
        expected: i64,
        new: i64,
    ) -> (i64, bool, MemAccess) {
        let home = addr.home();
        let slot = self.atomics.entry((home, addr.offset())).or_insert(0);
        let old = *slot;
        let swapped = old == expected;
        if swapped {
            *slot = new;
        }
        // same cost structure as fetch_add
        self.bump(AccessKind::Atomic);
        let (dram_lat, dram_e) = self.dram.access(8);
        let access = if node == home {
            MemAccess {
                completion: now + self.cache_hit_latency + dram_lat,
                latency: self.cache_hit_latency + dram_lat,
                energy: dram_e,
                kind: AccessKind::Atomic,
            }
        } else {
            let req = net.transfer(now, node, home, 32);
            let at_home = req.arrival + dram_lat;
            let resp = net.transfer(at_home, home, node, 8);
            MemAccess {
                completion: resp.arrival,
                latency: resp.arrival - now,
                energy: req.energy + resp.energy + dram_e,
                kind: AccessKind::Atomic,
            }
        };
        (old, swapped, access)
    }

    /// Serializes the system's mutable state: the directory, every
    /// node's cache in index order, the per-kind access counters in a
    /// fixed tag order, and the atomic words sorted by `(home, offset)`.
    /// Cost constants (DRAM model, hit latency, energy/byte) are
    /// structural and not written.
    pub fn snapshot_state(&self, w: &mut ecoscale_sim::SnapWriter) {
        self.directory.snapshot_state(w);
        w.put_usize(self.caches.len());
        for c in &self.caches {
            c.snapshot_state(w);
        }
        for kind in ALL_KINDS {
            w.put_u64(self.count(kind));
        }
        let mut keys: Vec<(NodeId, u64)> = self.atomics.keys().copied().collect();
        keys.sort_unstable_by_key(|&(home, off)| (home.0, off));
        w.put_usize(keys.len());
        for (home, off) in keys {
            w.put_usize(home.0);
            w.put_u64(off);
            w.put_i64(self.atomics[&(home, off)]);
        }
    }

    /// Overlays state captured by [`UnimemSystem::snapshot_state`] onto
    /// this system, which must have been built with the same shape.
    ///
    /// # Errors
    ///
    /// [`ecoscale_sim::RestoreError`] on any shape mismatch or unsorted
    /// atomic words.
    pub fn restore_state(
        &mut self,
        r: &mut ecoscale_sim::SnapReader<'_>,
    ) -> Result<(), ecoscale_sim::RestoreError> {
        use ecoscale_sim::snap::malformed;
        self.directory.restore_state(r)?;
        let n = r.get_usize()?;
        if n != self.caches.len() {
            return Err(malformed(format!(
                "snapshot has {n} caches, this system {}",
                self.caches.len()
            )));
        }
        for c in &mut self.caches {
            c.restore_state(r)?;
        }
        self.kind_counts.clear();
        for kind in ALL_KINDS {
            let v = r.get_u64()?;
            if v > 0 {
                self.kind_counts.insert(kind, v);
            }
        }
        let n = r.get_usize()?;
        if n > r.remaining() {
            return Err(malformed(format!(
                "system claims {n} atomic words but only {} bytes remain",
                r.remaining()
            )));
        }
        self.atomics.clear();
        let mut prev: Option<(usize, u64)> = None;
        for i in 0..n {
            let home = r.get_usize()?;
            let off = r.get_u64()?;
            let val = r.get_i64()?;
            if prev.is_some_and(|p| p >= (home, off)) {
                return Err(malformed(format!(
                    "atomic words unsorted or duplicated at index {i}"
                )));
            }
            prev = Some((home, off));
            self.atomics.insert((NodeId(home), off), val);
        }
        Ok(())
    }

    /// Migrates the cache home of `addr`'s page to `new_home`, flushing
    /// the old home's cached copies (modelled as one page write-back to
    /// the owner). Returns the completion time.
    pub fn migrate_cache_home<T: Topology>(
        &mut self,
        net: &mut Network<T>,
        now: Time,
        addr: GlobalAddr,
        new_home: NodeId,
    ) -> Time {
        let old = self.directory.set_cache_home(addr, new_home);
        if old == new_home {
            return now;
        }
        // Flush: invalidate the old home's lines for this page and write
        // the page back to the owner if the old home was remote.
        let page_bytes = crate::addr::PAGE_SIZE;
        let line = self.caches[old.0].config().line_size;
        let base = addr.page() << crate::addr::PAGE_SHIFT;
        for off in (0..page_bytes).step_by(line as usize) {
            let flat = ((addr.home().0 as u64) << 44) | (base + off);
            self.caches[old.0].invalidate(flat);
        }
        if old != addr.home() {
            let d = net.transfer(now, old, addr.home(), page_bytes);
            d.arrival
        } else {
            let (lat, _) = self.dram.stream(page_bytes);
            now + lat
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecoscale_noc::{NetworkConfig, TreeTopology};

    fn setup() -> (Network<TreeTopology>, UnimemSystem) {
        let net = Network::new(TreeTopology::new(&[4, 4]), NetworkConfig::default());
        let mem = UnimemSystem::new(16, CacheConfig::l1_default(), DramModel::default());
        (net, mem)
    }

    #[test]
    fn serve_remote_charges_dram_and_counts() {
        let (_, mut mem) = setup();
        let (lat, e) = mem.serve_remote(64);
        assert!(lat > Duration::ZERO);
        assert!(e > Energy::ZERO);
        assert_eq!(mem.count(AccessKind::RemoteServed), 1);
        // exported under its own key, outside the local/remote split of
        // accesses the cluster itself issued
        let mut m = MetricsRegistry::new();
        mem.export_metrics(&mut m, "mem");
        assert_eq!(m.counter("mem.access.remote_served"), Some(1));
        assert_eq!(m.counter("mem.remote_accesses"), Some(0));
    }

    #[test]
    fn directory_defaults_to_owner() {
        let dir = UnimemDirectory::new(4);
        let a = GlobalAddr::new(NodeId(2), 0x5000);
        assert_eq!(dir.cache_home(a), NodeId(2));
    }

    #[test]
    fn directory_override_and_restore() {
        let mut dir = UnimemDirectory::new(4);
        let a = GlobalAddr::new(NodeId(1), 0);
        assert_eq!(dir.set_cache_home(a, NodeId(3)), NodeId(1));
        assert_eq!(dir.cache_home(a), NodeId(3));
        // restoring to the owner removes the override
        assert_eq!(dir.set_cache_home(a, NodeId(1)), NodeId(3));
        assert_eq!(dir.cache_home(a), NodeId(1));
        assert_eq!(dir.migrations(), 2);
    }

    #[test]
    fn exclusive_cacheability_invariant() {
        // There is exactly one cache home at any instant: the API cannot
        // express two.
        let mut dir = UnimemDirectory::new(8);
        let a = GlobalAddr::new(NodeId(0), 0x9000);
        dir.set_cache_home(a, NodeId(5));
        dir.set_cache_home(a, NodeId(6));
        assert_eq!(dir.cache_home(a), NodeId(6));
    }

    #[test]
    fn local_hit_faster_than_miss() {
        let (mut net, mut mem) = setup();
        let a = GlobalAddr::new(NodeId(0), 0x1000);
        let miss = mem.read(&mut net, Time::ZERO, NodeId(0), a, 8);
        assert_eq!(miss.kind, AccessKind::CacheMissLocalFill);
        let hit = mem.read(&mut net, miss.completion, NodeId(0), a, 8);
        assert_eq!(hit.kind, AccessKind::CacheHit);
        assert!(hit.latency < miss.latency);
        assert!(hit.energy < miss.energy);
    }

    #[test]
    fn remote_uncached_slower_than_local_hit() {
        let (mut net, mut mem) = setup();
        let a = GlobalAddr::new(NodeId(0), 0x1000);
        // warm the cache at home
        let w = mem.read(&mut net, Time::ZERO, NodeId(0), a, 8);
        let hit = mem.read(&mut net, w.completion, NodeId(0), a, 8);
        // node 9 reads the same page: uncached remote
        let remote = mem.read(&mut net, hit.completion, NodeId(9), a, 8);
        assert_eq!(remote.kind, AccessKind::RemoteUncached);
        assert!(remote.latency > hit.latency * 10);
    }

    #[test]
    fn cache_home_away_from_owner() {
        let (mut net, mut mem) = setup();
        let a = GlobalAddr::new(NodeId(0), 0x2000);
        mem.directory_mut().set_cache_home(a, NodeId(3));
        // node 3 caches it: first access is a remote fill
        let first = mem.read(&mut net, Time::ZERO, NodeId(3), a, 8);
        assert_eq!(first.kind, AccessKind::CacheMissRemoteFill);
        let second = mem.read(&mut net, first.completion, NodeId(3), a, 8);
        assert_eq!(second.kind, AccessKind::CacheHit);
        // meanwhile the *owner* is now uncached for this page
        let owner = mem.read(&mut net, second.completion, NodeId(0), a, 8);
        assert_eq!(owner.kind, AccessKind::RemoteUncached);
    }

    #[test]
    fn writes_mark_dirty_and_evictions_charge_energy() {
        let (mut net, mut mem) = setup();
        // write a working set larger than the 32 KiB cache to force dirty
        // evictions
        let mut total_energy = Energy::ZERO;
        let mut t = Time::ZERO;
        for i in 0..2048u64 {
            let a = GlobalAddr::new(NodeId(0), i * 64);
            let acc = mem.write(&mut net, t, NodeId(0), a, 64);
            t = acc.completion;
            total_energy += acc.energy;
        }
        assert!(mem.cache(NodeId(0)).writebacks() > 0);
        assert!(total_energy.as_nj() > 0.0);
    }

    #[test]
    fn migrate_flushes_and_moves() {
        let (mut net, mut mem) = setup();
        let a = GlobalAddr::new(NodeId(0), 0x3000);
        let w = mem.write(&mut net, Time::ZERO, NodeId(0), a, 64);
        let done = mem.migrate_cache_home(&mut net, w.completion, a, NodeId(2));
        assert!(done >= w.completion);
        // old home no longer hits
        let after = mem.read(&mut net, done, NodeId(0), a, 8);
        assert_eq!(after.kind, AccessKind::RemoteUncached);
        // new home caches
        let fill = mem.read(&mut net, after.completion, NodeId(2), a, 8);
        assert_eq!(fill.kind, AccessKind::CacheMissRemoteFill);
        let hit = mem.read(&mut net, fill.completion, NodeId(2), a, 8);
        assert_eq!(hit.kind, AccessKind::CacheHit);
    }

    #[test]
    fn migrate_to_same_home_is_noop() {
        let (mut net, mut mem) = setup();
        let a = GlobalAddr::new(NodeId(1), 0);
        let done = mem.migrate_cache_home(&mut net, Time::from_ns(5), a, NodeId(1));
        assert_eq!(done, Time::from_ns(5));
    }

    #[test]
    fn kind_counters_track() {
        let (mut net, mut mem) = setup();
        let a = GlobalAddr::new(NodeId(0), 0);
        mem.read(&mut net, Time::ZERO, NodeId(0), a, 8);
        mem.read(&mut net, Time::from_us(1), NodeId(0), a, 8);
        mem.read(&mut net, Time::from_us(2), NodeId(7), a, 8);
        assert_eq!(mem.count(AccessKind::CacheMissLocalFill), 1);
        assert_eq!(mem.count(AccessKind::CacheHit), 1);
        assert_eq!(mem.count(AccessKind::RemoteUncached), 1);
    }

    #[test]
    fn fetch_add_is_sequentially_consistent_at_the_home() {
        let (mut net, mut mem) = setup();
        let counter = GlobalAddr::new(NodeId(0), 0x7000);
        // 8 workers increment the shared counter
        let mut t = Time::ZERO;
        let mut seen = Vec::new();
        for w in 0..8 {
            let (old, acc) = mem.fetch_add(&mut net, t, NodeId(w), counter, 1);
            seen.push(old);
            t = acc.completion;
        }
        assert_eq!(seen, (0..8).collect::<Vec<i64>>());
        let (val, _) = mem.fetch_add(&mut net, t, NodeId(0), counter, 0);
        assert_eq!(val, 8);
        assert_eq!(mem.count(AccessKind::Atomic), 9);
    }

    #[test]
    fn remote_atomic_costs_a_round_trip() {
        let (mut net, mut mem) = setup();
        let a = GlobalAddr::new(NodeId(0), 0x100);
        let (_, local) = mem.fetch_add(&mut net, Time::ZERO, NodeId(0), a, 1);
        let (_, remote) = mem.fetch_add(&mut net, local.completion, NodeId(9), a, 1);
        assert!(remote.latency > local.latency * 2);
        assert_eq!(remote.kind, AccessKind::Atomic);
    }

    #[test]
    fn compare_swap_lock_semantics() {
        let (mut net, mut mem) = setup();
        let lock = GlobalAddr::new(NodeId(2), 0x40);
        // worker 5 takes the lock
        let (old, ok, acc) = mem.compare_swap(&mut net, Time::ZERO, NodeId(5), lock, 0, 1);
        assert_eq!((old, ok), (0, true));
        // worker 7 fails to take it
        let (old, ok, acc2) = mem.compare_swap(&mut net, acc.completion, NodeId(7), lock, 0, 1);
        assert_eq!((old, ok), (1, false));
        // worker 5 releases; worker 7 retries successfully
        let (_, ok, acc3) = mem.compare_swap(&mut net, acc2.completion, NodeId(5), lock, 1, 0);
        assert!(ok);
        let (_, ok, _) = mem.compare_swap(&mut net, acc3.completion, NodeId(7), lock, 0, 1);
        assert!(ok);
    }

    /// Drives a system through cache fills, migrations, and atomics so
    /// every snapshotted field is non-trivial.
    fn churned() -> UnimemSystem {
        let (mut net, mut mem) = setup();
        let mut t = Time::ZERO;
        for i in 0..12u64 {
            let a = GlobalAddr::new(NodeId((i % 4) as usize), 0x1000 * i);
            let acc = mem.read(&mut net, t, NodeId((i % 7) as usize), a, 64);
            t = acc.completion;
        }
        mem.migrate_cache_home(&mut net, t, GlobalAddr::new(NodeId(1), 0x1000), NodeId(3));
        for w in 0..5 {
            let (_, acc) =
                mem.fetch_add(&mut net, t, NodeId(w), GlobalAddr::new(NodeId(2), 0x40), 1);
            t = acc.completion;
        }
        mem
    }

    #[test]
    fn snapshot_restore_round_trips_and_reserializes_identically() {
        let mem = churned();
        let mut w = ecoscale_sim::SnapWriter::new();
        mem.snapshot_state(&mut w);
        let bytes = w.into_bytes();

        let (_, mut fresh) = setup();
        let mut r = ecoscale_sim::SnapReader::new(&bytes);
        fresh.restore_state(&mut r).expect("restore");
        assert!(r.is_exhausted());

        let mut w2 = ecoscale_sim::SnapWriter::new();
        fresh.snapshot_state(&mut w2);
        assert_eq!(
            bytes,
            w2.into_bytes(),
            "restored system re-serializes differently"
        );

        // behavioural check: the restored system serves the same access
        // with the same cost and the same classification
        let (mut net_a, _) = setup();
        let (mut net_b, _) = setup();
        let mut orig = churned();
        let a = GlobalAddr::new(NodeId(2), 0x2000);
        let x = orig.read(&mut net_a, Time::from_us(5), NodeId(6), a, 32);
        let y = fresh.read(&mut net_b, Time::from_us(5), NodeId(6), a, 32);
        assert_eq!(
            (x.kind, x.latency, x.completion),
            (y.kind, y.latency, y.completion)
        );
    }

    #[test]
    fn restore_rejects_shape_mismatch_and_truncation() {
        let mem = churned();
        let mut w = ecoscale_sim::SnapWriter::new();
        mem.snapshot_state(&mut w);
        let bytes = w.into_bytes();

        // wrong node count
        let mut other = UnimemSystem::new(8, CacheConfig::l1_default(), DramModel::default());
        let mut r = ecoscale_sim::SnapReader::new(&bytes);
        assert!(other.restore_state(&mut r).is_err());

        // truncation fails cleanly (the stream is tens of KB — sample
        // cuts rather than sweeping every byte)
        for cut in (0..bytes.len()).step_by(211).chain([bytes.len() - 1]) {
            let (_, mut fresh) = setup();
            let mut r = ecoscale_sim::SnapReader::new(&bytes[..cut]);
            assert!(
                fresh.restore_state(&mut r).is_err() || !r.is_exhausted(),
                "truncated stream at {cut} restored fully"
            );
        }
    }
}
