//! Progressive address translation windows.
//!
//! The paper notes that "progressive address translation \[12\] can be
//! further applied on top of UNIMEM in order to provide interprocessor
//! communication": a process maps a *window* of its local virtual address
//! space onto a remote node's global partition, after which ordinary
//! loads and stores into the window become remote UNIMEM accesses —
//! load/store generalized into communication (Katevenis \[12\]).

use std::error::Error;
use std::fmt;

use ecoscale_noc::NodeId;

use crate::addr::{GlobalAddr, VirtAddr};

/// Error resolving a virtual address through the window set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResolveWindowError {
    /// No window covers the address.
    NoWindow {
        /// The unresolved address.
        addr: VirtAddr,
    },
}

impl fmt::Display for ResolveWindowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResolveWindowError::NoWindow { addr } => {
                write!(f, "no remote window covers {addr}")
            }
        }
    }
}

impl Error for ResolveWindowError {}

/// Error installing a window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapWindowError {
    /// The new window overlaps an existing one.
    Overlap {
        /// Base of the conflicting existing window.
        existing_base: VirtAddr,
    },
    /// Zero-length windows are meaningless.
    EmptyWindow,
}

impl fmt::Display for MapWindowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapWindowError::Overlap { existing_base } => {
                write!(f, "window overlaps existing window at {existing_base}")
            }
            MapWindowError::EmptyWindow => f.write_str("window length must be positive"),
        }
    }
}

impl Error for MapWindowError {}

#[derive(Debug, Clone, Copy)]
struct Window {
    base: VirtAddr,
    len: u64,
    target: GlobalAddr,
}

/// A per-process set of remote windows: contiguous VA ranges aliased onto
/// remote global partitions.
///
/// # Example
///
/// ```
/// use ecoscale_mem::progressive::ProgressiveTranslator;
/// use ecoscale_mem::{GlobalAddr, VirtAddr};
/// use ecoscale_noc::NodeId;
///
/// let mut pt = ProgressiveTranslator::new();
/// pt.map_window(VirtAddr(0x10000), 0x1000, GlobalAddr::new(NodeId(3), 0x8000))?;
/// let g = pt.resolve(VirtAddr(0x10010))?;
/// assert_eq!(g.home(), NodeId(3));
/// assert_eq!(g.offset(), 0x8010);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct ProgressiveTranslator {
    windows: Vec<Window>,
}

impl ProgressiveTranslator {
    /// Creates an empty window set.
    pub fn new() -> ProgressiveTranslator {
        ProgressiveTranslator::default()
    }

    /// Installs a window of `len` bytes at `base` targeting `target`.
    ///
    /// # Errors
    ///
    /// Rejects empty and overlapping windows.
    pub fn map_window(
        &mut self,
        base: VirtAddr,
        len: u64,
        target: GlobalAddr,
    ) -> Result<(), MapWindowError> {
        if len == 0 {
            return Err(MapWindowError::EmptyWindow);
        }
        for w in &self.windows {
            let disjoint = base.0 + len <= w.base.0 || w.base.0 + w.len <= base.0;
            if !disjoint {
                return Err(MapWindowError::Overlap {
                    existing_base: w.base,
                });
            }
        }
        self.windows.push(Window { base, len, target });
        Ok(())
    }

    /// Removes the window at exactly `base`, returning whether it existed.
    pub fn unmap_window(&mut self, base: VirtAddr) -> bool {
        let before = self.windows.len();
        self.windows.retain(|w| w.base != base);
        self.windows.len() != before
    }

    /// Resolves `va` to a global address through the window set.
    ///
    /// # Errors
    ///
    /// [`ResolveWindowError::NoWindow`] if no window covers `va`.
    pub fn resolve(&self, va: VirtAddr) -> Result<GlobalAddr, ResolveWindowError> {
        for w in &self.windows {
            if va.0 >= w.base.0 && va.0 < w.base.0 + w.len {
                return Ok(w.target.add(va.0 - w.base.0));
            }
        }
        Err(ResolveWindowError::NoWindow { addr: va })
    }

    /// Returns the remote node `va` targets, if any window covers it.
    pub fn target_node(&self, va: VirtAddr) -> Option<NodeId> {
        self.resolve(va).ok().map(|g| g.home())
    }

    /// Number of installed windows.
    pub fn window_count(&self) -> usize {
        self.windows.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_resolve_roundtrip() {
        let mut pt = ProgressiveTranslator::new();
        pt.map_window(VirtAddr(0x4000), 0x2000, GlobalAddr::new(NodeId(2), 0))
            .unwrap();
        assert_eq!(
            pt.resolve(VirtAddr(0x4abc)).unwrap(),
            GlobalAddr::new(NodeId(2), 0xabc)
        );
        assert_eq!(pt.target_node(VirtAddr(0x5fff)), Some(NodeId(2)));
        assert_eq!(pt.window_count(), 1);
    }

    #[test]
    fn outside_window_fails() {
        let mut pt = ProgressiveTranslator::new();
        pt.map_window(VirtAddr(0x4000), 0x1000, GlobalAddr::new(NodeId(2), 0))
            .unwrap();
        assert!(pt.resolve(VirtAddr(0x3fff)).is_err());
        assert!(pt.resolve(VirtAddr(0x5000)).is_err());
        assert_eq!(pt.target_node(VirtAddr(0x5000)), None);
    }

    #[test]
    fn overlap_rejected() {
        let mut pt = ProgressiveTranslator::new();
        pt.map_window(VirtAddr(0x1000), 0x1000, GlobalAddr::new(NodeId(0), 0))
            .unwrap();
        let err = pt
            .map_window(VirtAddr(0x1800), 0x1000, GlobalAddr::new(NodeId(1), 0))
            .unwrap_err();
        assert!(matches!(err, MapWindowError::Overlap { .. }));
        // adjacent is fine
        pt.map_window(VirtAddr(0x2000), 0x1000, GlobalAddr::new(NodeId(1), 0))
            .unwrap();
    }

    #[test]
    fn empty_window_rejected() {
        let mut pt = ProgressiveTranslator::new();
        assert_eq!(
            pt.map_window(VirtAddr(0), 0, GlobalAddr::new(NodeId(0), 0)),
            Err(MapWindowError::EmptyWindow)
        );
    }

    #[test]
    fn unmap_removes() {
        let mut pt = ProgressiveTranslator::new();
        pt.map_window(VirtAddr(0x1000), 0x1000, GlobalAddr::new(NodeId(0), 0))
            .unwrap();
        assert!(pt.unmap_window(VirtAddr(0x1000)));
        assert!(!pt.unmap_window(VirtAddr(0x1000)));
        assert!(pt.resolve(VirtAddr(0x1000)).is_err());
    }

    #[test]
    fn multiple_windows_to_different_nodes() {
        let mut pt = ProgressiveTranslator::new();
        for n in 0..4u64 {
            pt.map_window(
                VirtAddr(0x10000 + n * 0x1000),
                0x1000,
                GlobalAddr::new(NodeId(n as usize), 0x8000),
            )
            .unwrap();
        }
        for n in 0..4u64 {
            let g = pt.resolve(VirtAddr(0x10000 + n * 0x1000 + 4)).unwrap();
            assert_eq!(g.home(), NodeId(n as usize));
            assert_eq!(g.offset(), 0x8004);
        }
    }
}
