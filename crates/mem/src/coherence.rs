//! A directory-based *global* cache-coherence baseline.
//!
//! The paper's claim (§4.1): existing architectures "either require a
//! global cache coherent mechanism, which simply cannot scale, or support
//! only DMA operations". This module implements the thing UNIMEM
//! replaces — a full-map directory MSI protocol across all nodes — purely
//! to count its protocol traffic. Experiment E3 sweeps node count and
//! sharing degree to show the message blow-up UNIMEM avoids.

use std::collections::{HashMap, HashSet};

use ecoscale_noc::NodeId;

/// Directory state of one line/page.
#[derive(Debug, Clone, PartialEq, Eq)]
enum DirState {
    Uncached,
    Shared(HashSet<NodeId>),
    Exclusive(NodeId),
}

/// Protocol traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoherenceStats {
    /// Requests from nodes to the directory.
    pub requests: u64,
    /// Invalidation messages sent to sharers.
    pub invalidations: u64,
    /// Invalidation acknowledgements returned.
    pub acks: u64,
    /// Ownership transfers / data forwards between caches.
    pub forwards: u64,
    /// Data replies from the home to the requester.
    pub data_replies: u64,
}

impl CoherenceStats {
    /// All protocol messages combined.
    pub fn total_messages(&self) -> u64 {
        self.requests + self.invalidations + self.acks + self.forwards + self.data_replies
    }
}

/// A full-map directory MSI coherence protocol over `nodes` caches.
///
/// # Example
///
/// ```
/// use ecoscale_mem::GlobalCoherence;
/// use ecoscale_noc::NodeId;
///
/// let mut coh = GlobalCoherence::new(8);
/// for n in 0..8 {
///     coh.read(NodeId(n), 0x40); // everyone shares the line
/// }
/// let before = coh.stats().invalidations;
/// coh.write(NodeId(0), 0x40); // invalidates the other 7 sharers
/// assert_eq!(coh.stats().invalidations - before, 7);
/// ```
#[derive(Debug)]
pub struct GlobalCoherence {
    nodes: usize,
    directory: HashMap<u64, DirState>,
    stats: CoherenceStats,
}

impl GlobalCoherence {
    /// Creates a protocol instance over `nodes` caches.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    pub fn new(nodes: usize) -> GlobalCoherence {
        assert!(nodes > 0, "coherence needs at least one node");
        GlobalCoherence {
            nodes,
            directory: HashMap::new(),
            stats: CoherenceStats::default(),
        }
    }

    /// Number of participating nodes.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Accumulated protocol traffic.
    pub fn stats(&self) -> CoherenceStats {
        self.stats
    }

    fn check(&self, node: NodeId) {
        assert!(node.0 < self.nodes, "node {node} out of range");
    }

    /// A read of `line` by `node`.
    pub fn read(&mut self, node: NodeId, line: u64) {
        self.check(node);
        self.stats.requests += 1;
        let state = self.directory.entry(line).or_insert(DirState::Uncached);
        match state {
            DirState::Uncached => {
                self.stats.data_replies += 1;
                let mut s = HashSet::new();
                s.insert(node);
                *state = DirState::Shared(s);
            }
            DirState::Shared(sharers) => {
                if sharers.insert(node) {
                    self.stats.data_replies += 1;
                }
            }
            DirState::Exclusive(owner) => {
                if *owner == node {
                    return; // silent hit
                }
                // downgrade: forward from owner, both become sharers
                self.stats.forwards += 1;
                self.stats.data_replies += 1;
                let mut s = HashSet::new();
                s.insert(*owner);
                s.insert(node);
                *state = DirState::Shared(s);
            }
        }
    }

    /// A write of `line` by `node`.
    pub fn write(&mut self, node: NodeId, line: u64) {
        self.check(node);
        self.stats.requests += 1;
        let state = self.directory.entry(line).or_insert(DirState::Uncached);
        match state {
            DirState::Uncached => {
                self.stats.data_replies += 1;
                *state = DirState::Exclusive(node);
            }
            DirState::Shared(sharers) => {
                let to_invalidate = sharers.iter().filter(|&&s| s != node).count() as u64;
                self.stats.invalidations += to_invalidate;
                self.stats.acks += to_invalidate;
                self.stats.data_replies += 1;
                *state = DirState::Exclusive(node);
            }
            DirState::Exclusive(owner) => {
                if *owner == node {
                    return; // silent upgrade
                }
                self.stats.invalidations += 1;
                self.stats.acks += 1;
                self.stats.forwards += 1;
                *state = DirState::Exclusive(node);
            }
        }
    }

    /// Evicts `line` from `node`'s cache (silent for shared lines, a
    /// write-back message for exclusive ones).
    pub fn evict(&mut self, node: NodeId, line: u64) {
        self.check(node);
        if let Some(state) = self.directory.get_mut(&line) {
            match state {
                DirState::Shared(s) => {
                    s.remove(&node);
                    if s.is_empty() {
                        *state = DirState::Uncached;
                    }
                }
                DirState::Exclusive(owner) if *owner == node => {
                    self.stats.requests += 1; // write-back
                    *state = DirState::Uncached;
                }
                _ => {}
            }
        }
    }

    /// Current number of sharers of `line`.
    pub fn sharers(&self, line: u64) -> usize {
        match self.directory.get(&line) {
            None | Some(DirState::Uncached) => 0,
            Some(DirState::Shared(s)) => s.len(),
            Some(DirState::Exclusive(_)) => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_sharing_accumulates() {
        let mut c = GlobalCoherence::new(4);
        c.read(NodeId(0), 1);
        c.read(NodeId(1), 1);
        c.read(NodeId(2), 1);
        assert_eq!(c.sharers(1), 3);
        assert_eq!(c.stats().data_replies, 3);
        assert_eq!(c.stats().invalidations, 0);
    }

    #[test]
    fn re_read_by_sharer_is_cheap() {
        let mut c = GlobalCoherence::new(2);
        c.read(NodeId(0), 1);
        let before = c.stats().data_replies;
        c.read(NodeId(0), 1);
        assert_eq!(c.stats().data_replies, before);
    }

    #[test]
    fn write_invalidates_all_sharers() {
        let mut c = GlobalCoherence::new(8);
        for n in 0..8 {
            c.read(NodeId(n), 7);
        }
        c.write(NodeId(3), 7);
        assert_eq!(c.stats().invalidations, 7);
        assert_eq!(c.stats().acks, 7);
        assert_eq!(c.sharers(7), 1);
    }

    #[test]
    fn exclusive_transfer_forwards() {
        let mut c = GlobalCoherence::new(4);
        c.write(NodeId(0), 9);
        c.write(NodeId(1), 9);
        assert_eq!(c.stats().forwards, 1);
        assert_eq!(c.stats().invalidations, 1);
        // silent upgrade by the owner
        let total = c.stats().total_messages();
        c.write(NodeId(1), 9);
        assert_eq!(c.stats().total_messages(), total + 1); // just the request
    }

    #[test]
    fn read_downgrades_exclusive() {
        let mut c = GlobalCoherence::new(4);
        c.write(NodeId(0), 5);
        c.read(NodeId(2), 5);
        assert_eq!(c.sharers(5), 2);
        assert_eq!(c.stats().forwards, 1);
    }

    #[test]
    fn evictions_clean_up() {
        let mut c = GlobalCoherence::new(4);
        c.read(NodeId(0), 2);
        c.read(NodeId(1), 2);
        c.evict(NodeId(0), 2);
        assert_eq!(c.sharers(2), 1);
        c.evict(NodeId(1), 2);
        assert_eq!(c.sharers(2), 0);
        // exclusive eviction counts a write-back request
        c.write(NodeId(0), 3);
        let before = c.stats().requests;
        c.evict(NodeId(0), 3);
        assert_eq!(c.stats().requests, before + 1);
    }

    #[test]
    fn invalidation_traffic_grows_with_sharers() {
        // The scaling argument: writes to widely-shared lines cost O(n).
        let mut msgs = Vec::new();
        for &n in &[2usize, 8, 32, 128] {
            let mut c = GlobalCoherence::new(n);
            for i in 0..n {
                c.read(NodeId(i), 1);
            }
            let before = c.stats().total_messages();
            c.write(NodeId(0), 1);
            msgs.push(c.stats().total_messages() - before);
        }
        assert!(msgs.windows(2).all(|w| w[1] > w[0]));
        // O(n): 128 sharers cost ~64x the 2-sharer case
        assert!(msgs[3] > msgs[0] * 32);
    }
}
