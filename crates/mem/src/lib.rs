//! The ECOSCALE memory system: UNIMEM, caches, DRAM, the dual-stage SMMU,
//! and the global-coherence baseline it replaces.
//!
//! UNIMEM (inherited from the EUROSERVER project and extended here) gives
//! every Compute Node a **shared partitioned global address space**: any
//! Worker can issue plain loads and stores to any address, but a given
//! page is *cacheable at exactly one node* — its cache home. That single
//! invariant removes the need for a global cache-coherence protocol: a
//! remote access is simply an uncached load/store routed to the page's
//! home, and the paper's runtime moves **tasks to data** rather than data
//! to tasks.
//!
//! Modules:
//!
//! * [`addr`] — virtual / intermediate / physical / global address newtypes,
//! * [`page_table`] — sparse page tables with permissions,
//! * [`smmu`] — the dual-stage (VA→IPA→PA) system MMU with TLBs that lets
//!   user-space and accelerators share one translation path (Fig. 4),
//! * [`cache`] — a set-associative write-back cache model,
//! * [`dram`] — DRAM latency/energy,
//! * [`unimem`] — the page-ownership directory and access-path costing,
//! * [`coherence`] — a directory-based *global* coherence baseline used to
//!   quantify the paper's "global coherence cannot scale" claim,
//! * [`progressive`] — progressive address translation windows \[12\] for
//!   load/store interprocessor communication.

pub mod addr;
pub mod cache;
pub mod coherence;
pub mod dram;
pub mod page_table;
pub mod progressive;
pub mod smmu;
pub mod unimem;

pub use addr::{GlobalAddr, Ipa, PhysAddr, VirtAddr, PAGE_SHIFT, PAGE_SIZE};
pub use cache::{Cache, CacheAccess, CacheConfig};
pub use coherence::{CoherenceStats, GlobalCoherence};
pub use dram::{DramModel, EccModel, EccOutcome};
pub use page_table::{MapPageError, PagePerms, PageTable, TranslateError};
pub use smmu::{InvocationModel, Smmu, SmmuConfig, SmmuFault};
pub use unimem::{AccessKind, MemAccess, UnimemDirectory, UnimemSystem};
