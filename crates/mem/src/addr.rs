//! Address-space newtypes.
//!
//! Four distinct address spaces appear in the ECOSCALE Worker (Fig. 4):
//!
//! * [`VirtAddr`] — what an application (or an accelerator programmed with
//!   user pointers) issues,
//! * [`Ipa`] — the intermediate physical address after stage-1
//!   translation (the guest-physical space in a virtualized system),
//! * [`PhysAddr`] — the machine address after stage-2 translation,
//! * [`GlobalAddr`] — a UNIMEM global address: `(home node, offset)` in
//!   the partitioned global address space shared by a Compute Node.
//!
//! Keeping them as separate types makes it a compile error to, say, hand a
//! virtual address to the DRAM model without translating it first.

use core::fmt;

use ecoscale_noc::NodeId;

/// Page size: 4 KiB, the granularity of UNIMEM ownership and of the SMMU.
pub const PAGE_SIZE: u64 = 4096;
/// log2 of [`PAGE_SIZE`].
pub const PAGE_SHIFT: u32 = 12;

macro_rules! addr_newtype {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub u64);

        impl $name {
            /// The page number containing this address.
            #[inline]
            pub const fn page(self) -> u64 {
                self.0 >> PAGE_SHIFT
            }

            /// The byte offset within the page.
            #[inline]
            pub const fn page_offset(self) -> u64 {
                self.0 & (PAGE_SIZE - 1)
            }

            /// The first address of this address's page.
            #[inline]
            pub const fn page_base(self) -> $name {
                $name(self.0 & !(PAGE_SIZE - 1))
            }

            /// Builds an address from a page number and in-page offset.
            ///
            /// # Panics
            ///
            /// Panics if `offset >= PAGE_SIZE`.
            #[inline]
            pub fn from_page(page: u64, offset: u64) -> $name {
                assert!(offset < PAGE_SIZE, "offset {offset} exceeds page size");
                $name((page << PAGE_SHIFT) | offset)
            }

            /// Byte-offset addition.
            #[inline]
            pub const fn add(self, bytes: u64) -> $name {
                $name(self.0 + bytes)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}({:#x})", stringify!($name), self.0)
            }
        }

        impl fmt::LowerHex for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::LowerHex::fmt(&self.0, f)
            }
        }
    };
}

addr_newtype!(
    /// A virtual address as issued by an application or accelerator.
    VirtAddr
);
addr_newtype!(
    /// An intermediate physical address (output of stage-1 translation).
    Ipa
);
addr_newtype!(
    /// A machine physical address (output of stage-2 translation).
    PhysAddr
);

/// A UNIMEM global address: an offset within the partition owned by a
/// home node.
///
/// # Example
///
/// ```
/// use ecoscale_mem::GlobalAddr;
/// use ecoscale_noc::NodeId;
///
/// let a = GlobalAddr::new(NodeId(3), 0x1000);
/// assert_eq!(a.home(), NodeId(3));
/// assert_eq!(a.offset(), 0x1000);
/// assert_eq!(a.add(8).offset(), 0x1008);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct GlobalAddr {
    home: NodeId,
    offset: u64,
}

impl GlobalAddr {
    /// Creates a global address in `home`'s partition.
    #[inline]
    pub const fn new(home: NodeId, offset: u64) -> GlobalAddr {
        GlobalAddr { home, offset }
    }

    /// The node owning the backing memory.
    #[inline]
    pub const fn home(self) -> NodeId {
        self.home
    }

    /// Offset within the home partition.
    #[inline]
    pub const fn offset(self) -> u64 {
        self.offset
    }

    /// Page number within the home partition.
    #[inline]
    pub const fn page(self) -> u64 {
        self.offset >> PAGE_SHIFT
    }

    /// Byte-offset addition within the same partition.
    #[inline]
    pub const fn add(self, bytes: u64) -> GlobalAddr {
        GlobalAddr {
            home: self.home,
            offset: self.offset + bytes,
        }
    }
}

impl fmt::Display for GlobalAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "G[{}+{:#x}]", self.home, self.offset)
    }
}

/// Number of pages needed to hold `bytes`.
#[inline]
pub const fn pages_for(bytes: u64) -> u64 {
    bytes.div_ceil(PAGE_SIZE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_decomposition() {
        let a = VirtAddr(0x12345);
        assert_eq!(a.page(), 0x12);
        assert_eq!(a.page_offset(), 0x345);
        assert_eq!(a.page_base(), VirtAddr(0x12000));
        assert_eq!(VirtAddr::from_page(0x12, 0x345), a);
    }

    #[test]
    #[should_panic(expected = "exceeds page size")]
    fn from_page_rejects_big_offset() {
        let _ = PhysAddr::from_page(1, PAGE_SIZE);
    }

    #[test]
    fn add_and_display() {
        let a = Ipa(0xff0).add(0x20);
        assert_eq!(a, Ipa(0x1010));
        assert_eq!(format!("{a}"), "Ipa(0x1010)");
        assert_eq!(format!("{a:#x}"), "0x1010");
    }

    #[test]
    fn global_addr_fields() {
        let g = GlobalAddr::new(NodeId(7), 3 * PAGE_SIZE + 5);
        assert_eq!(g.home(), NodeId(7));
        assert_eq!(g.page(), 3);
        assert_eq!(g.add(PAGE_SIZE).page(), 4);
        assert_eq!(format!("{g}"), "G[W7+0x3005]");
    }

    #[test]
    fn distinct_types_do_not_compare() {
        // compile-time property: VirtAddr and PhysAddr are different types.
        fn takes_phys(_p: PhysAddr) {}
        takes_phys(PhysAddr(1));
        // takes_phys(VirtAddr(1)); // would not compile
    }

    #[test]
    fn pages_for_rounds_up() {
        assert_eq!(pages_for(0), 0);
        assert_eq!(pages_for(1), 1);
        assert_eq!(pages_for(PAGE_SIZE), 1);
        assert_eq!(pages_for(PAGE_SIZE + 1), 2);
    }
}
