//! GoAhead-style floorplanning: slot allocation, fragmentation,
//! defragmentation and module migration.
//!
//! Following the GoAhead framework \[10\], modules occupy full-height
//! windows of consecutive columns (the standard layout for partial
//! reconfiguration on column-based fabrics). The floorplanner:
//!
//! * finds the **minimum bounding box** for a module at each candidate
//!   position (bounding-box minimization reduces bitstream size,
//!   configuration latency and power §4.3),
//! * allocates first-fit into the free column space,
//! * reports fragmentation, and
//! * plans **defragmentation**: a left-compaction of live modules whose
//!   migrations the middleware then executes with partial
//!   reconfiguration (experiment E10).

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use ecoscale_sim::check::{invariant, CheckPlane};

use crate::fabric::{Fabric, Region, Resources};
use crate::module::ModuleId;

/// Handle to one placed module instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SlotId(pub u32);

impl fmt::Display for SlotId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

/// A placed module instance: which module, where, how wide.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// The placement handle.
    pub slot: SlotId,
    /// The module occupying the slot.
    pub module: ModuleId,
    /// First column.
    pub col: u32,
    /// Width in columns.
    pub width: u32,
}

/// Placement failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlaceError {
    /// The demand exceeds the whole fabric.
    TooLarge,
    /// Free space exists but no contiguous window fits (fragmentation).
    Fragmented {
        /// Total free columns.
        free_columns: u32,
        /// Largest contiguous free extent.
        largest_extent: u32,
    },
}

impl fmt::Display for PlaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlaceError::TooLarge => f.write_str("module exceeds fabric capacity"),
            PlaceError::Fragmented {
                free_columns,
                largest_extent,
            } => write!(
                f,
                "no contiguous window fits ({free_columns} columns free, largest extent {largest_extent})"
            ),
        }
    }
}

impl Error for PlaceError {}

/// The floorplanner for one Worker's reconfigurable block.
///
/// # Example
///
/// ```
/// use ecoscale_fpga::{Fabric, Floorplanner, ModuleId, Resources};
///
/// let mut fp = Floorplanner::new(Fabric::zynq_like(40, 60));
/// let slot = fp.place(ModuleId(0), Resources::new(600, 12, 24))?;
/// assert!(fp.placement(slot).is_some());
/// fp.remove(slot);
/// assert!(fp.placement(slot).is_none());
/// # Ok::<(), ecoscale_fpga::PlaceError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Floorplanner {
    fabric: Fabric,
    placements: BTreeMap<SlotId, Placement>,
    demands: BTreeMap<SlotId, Resources>,
    next_slot: u32,
}

impl Floorplanner {
    /// Creates an empty floorplan over `fabric`.
    pub fn new(fabric: Fabric) -> Floorplanner {
        Floorplanner {
            fabric,
            placements: BTreeMap::new(),
            demands: BTreeMap::new(),
            next_slot: 0,
        }
    }

    /// The underlying fabric.
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// Iterates current placements in slot order.
    pub fn placements(&self) -> impl Iterator<Item = &Placement> + '_ {
        self.placements.values()
    }

    /// Looks up one placement.
    pub fn placement(&self, slot: SlotId) -> Option<&Placement> {
        self.placements.get(&slot)
    }

    /// Number of live placements.
    pub fn live(&self) -> usize {
        self.placements.len()
    }

    fn occupied(&self, col: u32, width: u32) -> bool {
        self.placements.values().any(|p| {
            let r1 = Region {
                col,
                width,
                row: 0,
                height: 1,
            };
            let r2 = Region {
                col: p.col,
                width: p.width,
                row: 0,
                height: 1,
            };
            r1.overlaps(&r2)
        })
    }

    /// Minimal width of a window at `col` whose resources cover `need`,
    /// if any.
    fn width_at(&self, col: u32, need: &Resources) -> Option<u32> {
        let rows = self.fabric.rows();
        for width in 1..=(self.fabric.width() - col) {
            let region = Region {
                col,
                width,
                row: 0,
                height: rows,
            };
            if need.fits_in(&self.fabric.region_resources(&region)) {
                return Some(width);
            }
        }
        None
    }

    /// Places `module` with footprint `need` first-fit, minimizing the
    /// bounding box at each candidate position.
    ///
    /// # Errors
    ///
    /// [`PlaceError::TooLarge`] if the fabric can never host the module;
    /// [`PlaceError::Fragmented`] if only fragmentation prevents placement.
    pub fn place(&mut self, module: ModuleId, need: Resources) -> Result<SlotId, PlaceError> {
        if self.fabric.min_width_for(&need).is_none() {
            return Err(PlaceError::TooLarge);
        }
        let width_limit = self.fabric.width();
        for col in 0..width_limit {
            if let Some(width) = self.width_at(col, &need) {
                if !self.occupied(col, width) {
                    let slot = SlotId(self.next_slot);
                    self.next_slot += 1;
                    self.placements.insert(
                        slot,
                        Placement {
                            slot,
                            module,
                            col,
                            width,
                        },
                    );
                    self.demands.insert(slot, need);
                    return Ok(slot);
                }
            }
        }
        Err(PlaceError::Fragmented {
            free_columns: self.free_columns(),
            largest_extent: self.largest_free_extent(),
        })
    }

    /// Removes a placement, returning whether it existed.
    pub fn remove(&mut self, slot: SlotId) -> bool {
        self.demands.remove(&slot);
        self.placements.remove(&slot).is_some()
    }

    /// Total free columns.
    pub fn free_columns(&self) -> u32 {
        self.fabric.width() - self.placements.values().map(|p| p.width).sum::<u32>()
    }

    /// The largest contiguous run of free columns.
    pub fn largest_free_extent(&self) -> u32 {
        let mut occupied = vec![false; self.fabric.width() as usize];
        for p in self.placements.values() {
            for c in p.col..p.col + p.width {
                occupied[c as usize] = true;
            }
        }
        let mut best = 0u32;
        let mut run = 0u32;
        for o in occupied {
            if o {
                best = best.max(run);
                run = 0;
            } else {
                run += 1;
            }
        }
        best.max(run)
    }

    /// External fragmentation in `[0, 1]`: 1 − largest extent / free
    /// columns (0 when free space is contiguous or the fabric is full).
    pub fn fragmentation(&self) -> f64 {
        let free = self.free_columns();
        if free == 0 {
            return 0.0;
        }
        1.0 - self.largest_free_extent() as f64 / free as f64
    }

    /// Column utilization in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        1.0 - self.free_columns() as f64 / self.fabric.width() as f64
    }

    /// Serializes the floorplan's mutable state: every placement with
    /// its recorded demand (slot order), and the slot-id counter. The
    /// fabric itself is structural and not written.
    pub fn snapshot_state(&self, w: &mut ecoscale_sim::SnapWriter) {
        w.put_usize(self.placements.len());
        for (&slot, p) in &self.placements {
            w.put_u32(slot.0);
            w.put_u32(p.module.0);
            w.put_u32(p.col);
            w.put_u32(p.width);
            let need = self.demands.get(&slot).copied().unwrap_or(Resources::ZERO);
            w.put_u32(need.clb);
            w.put_u32(need.bram);
            w.put_u32(need.dsp);
        }
        w.put_u32(self.next_slot);
    }

    /// Overlays state captured by [`Floorplanner::snapshot_state`] onto
    /// this floorplan, which must wrap an identical fabric.
    ///
    /// # Errors
    ///
    /// [`ecoscale_sim::RestoreError`] on truncated or unsorted data, a
    /// placement outside the fabric, or a slot id at/above the counter.
    pub fn restore_state(
        &mut self,
        r: &mut ecoscale_sim::SnapReader<'_>,
    ) -> Result<(), ecoscale_sim::RestoreError> {
        use ecoscale_sim::snap::malformed;
        let n = r.get_usize()?;
        if n > r.remaining() {
            return Err(malformed(format!(
                "floorplan claims {n} placements but only {} bytes remain",
                r.remaining()
            )));
        }
        let mut placements = BTreeMap::new();
        let mut demands = BTreeMap::new();
        let mut prev: Option<u32> = None;
        for i in 0..n {
            let slot = r.get_u32()?;
            if prev.is_some_and(|p| p >= slot) {
                return Err(malformed(format!("placements unsorted at index {i}")));
            }
            prev = Some(slot);
            let module = ModuleId(r.get_u32()?);
            let col = r.get_u32()?;
            let width = r.get_u32()?;
            if width == 0
                || col
                    .checked_add(width)
                    .is_none_or(|e| e > self.fabric.width())
            {
                return Err(malformed(format!(
                    "slot S{slot} at cols {col}+{width} exceeds fabric width {}",
                    self.fabric.width()
                )));
            }
            let need = Resources::new(r.get_u32()?, r.get_u32()?, r.get_u32()?);
            let slot = SlotId(slot);
            placements.insert(
                slot,
                Placement {
                    slot,
                    module,
                    col,
                    width,
                },
            );
            demands.insert(slot, need);
        }
        let next_slot = r.get_u32()?;
        if placements
            .keys()
            .next_back()
            .is_some_and(|s| s.0 >= next_slot)
        {
            return Err(malformed(format!(
                "slot counter {next_slot} not above the highest live slot"
            )));
        }
        self.placements = placements;
        self.demands = demands;
        self.next_slot = next_slot;
        Ok(())
    }

    /// CheckPlane hook: asserts exclusive region ownership. Read-only;
    /// early-outs when `cp` is disabled.
    ///
    /// * `fabric.region_exclusive` — placements are pairwise disjoint and
    ///   lie entirely inside the fabric.
    /// * `fabric.demand_satisfied` — each placed window's resources still
    ///   cover the demand recorded at placement time (so defragmentation
    ///   never migrates a module onto an inadequate window).
    pub fn check_invariants(&self, cp: &mut CheckPlane) {
        if !cp.is_enabled() {
            return;
        }
        let placed: Vec<(&SlotId, &Placement)> = self.placements.iter().collect();
        for (i, (slot, p)) in placed.iter().enumerate() {
            cp.check(
                invariant::FABRIC_REGION_EXCLUSIVE,
                p.col + p.width <= self.fabric.width(),
                || {
                    format!(
                        "{slot} at cols {}..{} exceeds fabric width {}",
                        p.col,
                        p.col + p.width,
                        self.fabric.width()
                    )
                },
            );
            for (other_slot, q) in &placed[i + 1..] {
                cp.check(
                    invariant::FABRIC_REGION_EXCLUSIVE,
                    p.col + p.width <= q.col || q.col + q.width <= p.col,
                    || format!("{slot} and {other_slot} overlap in columns"),
                );
            }
            let region = Region {
                col: p.col,
                width: p.width,
                row: 0,
                height: self.fabric.rows(),
            };
            let have = self.fabric.region_resources(&region);
            match self.demands.get(slot) {
                Some(need) => cp.check(
                    invariant::FABRIC_DEMAND_SATISFIED,
                    need.fits_in(&have),
                    || format!("{slot} demands {need} but its window offers {have}"),
                ),
                None => cp.check(invariant::FABRIC_DEMAND_SATISFIED, false, || {
                    format!("{slot} has a placement but no recorded demand")
                }),
            }
        }
        cp.check(
            invariant::FABRIC_DEMAND_SATISFIED,
            self.demands.len() == self.placements.len(),
            || {
                format!(
                    "{} demands recorded for {} placements",
                    self.demands.len(),
                    self.placements.len()
                )
            },
        );
    }

    /// Plans and applies a left-compaction. Returns the migrations
    /// performed as `(slot, old_col, new_col)`; the caller charges each
    /// migration one partial reconfiguration of that module.
    ///
    /// Compaction keeps the relative order of modules (GoAhead migrates
    /// modules one at a time into free space, which order-preserving
    /// compaction guarantees is always possible left-to-right).
    pub fn defragment(&mut self) -> Vec<(SlotId, u32, u32)> {
        let mut order: Vec<SlotId> = self.placements.keys().copied().collect();
        order.sort_by_key(|s| self.placements[s].col);
        let mut migrations = Vec::new();
        let mut cursor = 0u32;
        for slot in order {
            let (old_col, _old_width) = {
                let p = &self.placements[&slot];
                (p.col, p.width)
            };
            let need = self.demands[&slot];
            // Recompute the bounding box at the new position: the column
            // mix differs, so the width may change.
            let new_col = cursor;
            let new_width = self
                .width_at(new_col, &need)
                .expect("compaction target must fit: it fit before at a column to the right");
            if new_col != old_col {
                migrations.push((slot, old_col, new_col));
            }
            let p = self.placements.get_mut(&slot).expect("slot is live");
            p.col = new_col;
            p.width = new_width;
            cursor = new_col + new_width;
        }
        migrations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn planner() -> Floorplanner {
        Floorplanner::new(Fabric::zynq_like(40, 60))
    }

    fn clb(n: u32) -> Resources {
        Resources::new(n, 0, 0)
    }

    #[test]
    fn place_and_remove() {
        let mut fp = planner();
        let s = fp.place(ModuleId(1), clb(300)).unwrap();
        assert_eq!(fp.live(), 1);
        let p = *fp.placement(s).unwrap();
        assert_eq!(p.module, ModuleId(1));
        assert!(p.width >= 5); // 300 CLB / 60 rows = ≥5 CLB columns
        assert!(fp.remove(s));
        assert!(!fp.remove(s));
        assert_eq!(fp.live(), 0);
    }

    #[test]
    fn too_large_rejected() {
        let mut fp = planner();
        assert_eq!(
            fp.place(ModuleId(0), clb(1_000_000)),
            Err(PlaceError::TooLarge)
        );
    }

    #[test]
    fn first_fit_packs_left() {
        let mut fp = planner();
        let a = fp.place(ModuleId(0), clb(120)).unwrap();
        let b = fp.place(ModuleId(1), clb(120)).unwrap();
        let pa = fp.placement(a).unwrap().col;
        let pb = fp.placement(b).unwrap().col;
        assert_eq!(pa, 0);
        assert!(pb > pa);
    }

    #[test]
    fn fragmentation_appears_after_churn() {
        let mut fp = planner();
        let slots: Vec<_> = (0..6)
            .map(|i| fp.place(ModuleId(i), clb(240)).unwrap())
            .collect();
        // free every other module -> fragmented free space
        fp.remove(slots[1]);
        fp.remove(slots[3]);
        assert!(fp.fragmentation() > 0.0);
        let frag_before = fp.fragmentation();
        let migrations = fp.defragment();
        assert!(!migrations.is_empty());
        assert!(fp.fragmentation() < frag_before);
        assert_eq!(fp.fragmentation(), 0.0);
    }

    #[test]
    fn fragmented_error_when_no_window_fits() {
        let mut fp = Floorplanner::new(Fabric::new(vec![crate::fabric::ResourceKind::Clb; 10], 10));
        // occupy cols with gaps: place 3 modules of 3 columns each (9 cols),
        // remove the middle one -> 3+1 free columns in two extents
        let a = fp.place(ModuleId(0), clb(30)).unwrap();
        let b = fp.place(ModuleId(1), clb(30)).unwrap();
        let c = fp.place(ModuleId(2), clb(30)).unwrap();
        assert_eq!(fp.free_columns(), 1);
        fp.remove(b);
        assert_eq!(fp.free_columns(), 4);
        // a 4-column module cannot fit although 4 columns are free
        let err = fp.place(ModuleId(3), clb(40)).unwrap_err();
        assert!(matches!(
            err,
            PlaceError::Fragmented {
                free_columns: 4,
                largest_extent: 3
            }
        ));
        // defragment, then it fits
        let migs = fp.defragment();
        assert_eq!(migs.len(), 1); // module c moves left
        fp.place(ModuleId(3), clb(40)).unwrap();
        let _ = (a, c);
    }

    #[test]
    fn defragment_preserves_demands() {
        let mut fp = planner();
        let ids: Vec<_> = (0..5)
            .map(|i| fp.place(ModuleId(i), Resources::new(200, 4, 4)).unwrap())
            .collect();
        fp.remove(ids[0]);
        fp.remove(ids[2]);
        fp.defragment();
        // every surviving placement still covers its demand
        for p in fp.placements() {
            let region = Region {
                col: p.col,
                width: p.width,
                row: 0,
                height: fp.fabric().rows(),
            };
            let have = fp.fabric().region_resources(&region);
            assert!(Resources::new(200, 4, 4).fits_in(&have));
        }
        // no overlaps
        let ps: Vec<_> = fp.placements().copied().collect();
        for (i, p) in ps.iter().enumerate() {
            for q in &ps[i + 1..] {
                let r1 = Region {
                    col: p.col,
                    width: p.width,
                    row: 0,
                    height: 1,
                };
                let r2 = Region {
                    col: q.col,
                    width: q.width,
                    row: 0,
                    height: 1,
                };
                assert!(!r1.overlaps(&r2));
            }
        }
    }

    #[test]
    fn metrics_sane() {
        let mut fp = planner();
        assert_eq!(fp.fragmentation(), 0.0);
        assert_eq!(fp.utilization(), 0.0);
        assert_eq!(fp.largest_free_extent(), 40);
        fp.place(ModuleId(0), clb(600)).unwrap();
        assert!(fp.utilization() > 0.0);
        assert!(fp.free_columns() < 40);
    }

    #[test]
    fn snapshot_restore_round_trips() {
        let mut fp = planner();
        let slots: Vec<_> = (0..5)
            .map(|i| fp.place(ModuleId(i), Resources::new(200, 4, 4)).unwrap())
            .collect();
        fp.remove(slots[1]);
        fp.remove(slots[3]);

        let mut w = ecoscale_sim::SnapWriter::new();
        fp.snapshot_state(&mut w);
        let bytes = w.into_bytes();

        let mut fresh = planner();
        let mut r = ecoscale_sim::SnapReader::new(&bytes);
        fresh.restore_state(&mut r).expect("restore");
        assert!(r.is_exhausted());
        let mut w2 = ecoscale_sim::SnapWriter::new();
        fresh.snapshot_state(&mut w2);
        assert_eq!(bytes, w2.into_bytes());

        let mut cp = CheckPlane::enabled(1);
        fresh.check_invariants(&mut cp);
        assert!(cp.ok(), "restored floorplan violates invariants");

        // behaviour matches: same defragmentation plan, same next slot id
        let a = fp.defragment();
        let b = fresh.defragment();
        assert_eq!(a, b);
        assert_eq!(
            fp.place(ModuleId(9), clb(120)).unwrap(),
            fresh.place(ModuleId(9), clb(120)).unwrap()
        );

        // truncation always fails cleanly
        for cut in 0..bytes.len() {
            let mut f = planner();
            let mut r = ecoscale_sim::SnapReader::new(&bytes[..cut]);
            assert!(
                f.restore_state(&mut r).is_err() || !r.is_exhausted(),
                "truncated stream at {cut} restored fully"
            );
        }
    }

    #[test]
    fn same_module_multiple_instances() {
        let mut fp = planner();
        let s1 = fp.place(ModuleId(7), clb(120)).unwrap();
        let s2 = fp.place(ModuleId(7), clb(120)).unwrap();
        assert_ne!(s1, s2);
        assert_eq!(fp.live(), 2);
    }
}
