//! Accelerator module descriptors.
//!
//! An [`AcceleratorModule`] is the physical-implementation-tool output for
//! one synthesized function: its resource footprint, performance contract
//! (clock, initiation interval, pipeline depth) and its partial bitstream.
//! The HLS crate produces these; the floorplanner places them; the
//! reconfiguration port loads them.

use core::fmt;

use ecoscale_sim::Duration;

use crate::bitstream::Bitstream;
use crate::fabric::Resources;

/// Identifies a module within a module library.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ModuleId(pub u32);

impl fmt::Display for ModuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "M{}", self.0)
    }
}

/// A synthesized, placeable accelerator module.
///
/// # Example
///
/// ```
/// use ecoscale_fpga::{AcceleratorModule, Bitstream, ModuleId, Resources};
///
/// let m = AcceleratorModule::new(
///     ModuleId(1),
///     "gemm_tile",
///     Resources::new(800, 16, 32),
///     200_000_000, // 200 MHz
///     1,           // fully pipelined: II = 1
///     24,          // pipeline depth
///     Bitstream::synthesize(Resources::new(800, 16, 32), 42),
/// );
/// assert_eq!(m.name(), "gemm_tile");
/// // one result per cycle after the pipeline fills
/// assert!(m.throughput_items_per_sec() > 1.9e8);
/// ```
#[derive(Debug, Clone)]
pub struct AcceleratorModule {
    id: ModuleId,
    name: String,
    resources: Resources,
    clock_hz: u64,
    initiation_interval: u32,
    pipeline_depth: u32,
    bitstream: Bitstream,
}

impl AcceleratorModule {
    /// Creates a module descriptor.
    ///
    /// # Panics
    ///
    /// Panics if `clock_hz` or `initiation_interval` is zero.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: ModuleId,
        name: &str,
        resources: Resources,
        clock_hz: u64,
        initiation_interval: u32,
        pipeline_depth: u32,
        bitstream: Bitstream,
    ) -> AcceleratorModule {
        assert!(clock_hz > 0, "module clock must be positive");
        assert!(
            initiation_interval > 0,
            "initiation interval must be positive"
        );
        AcceleratorModule {
            id,
            name: name.to_owned(),
            resources,
            clock_hz,
            initiation_interval,
            pipeline_depth,
            bitstream,
        }
    }

    /// The module id.
    pub fn id(&self) -> ModuleId {
        self.id
    }

    /// The synthesized function's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The resource footprint.
    pub fn resources(&self) -> Resources {
        self.resources
    }

    /// The implementation clock.
    pub fn clock_hz(&self) -> u64 {
        self.clock_hz
    }

    /// Cycles between successive input acceptances (1 = fully pipelined).
    pub fn initiation_interval(&self) -> u32 {
        self.initiation_interval
    }

    /// Cycles from input to the corresponding output.
    pub fn pipeline_depth(&self) -> u32 {
        self.pipeline_depth
    }

    /// The partial bitstream.
    pub fn bitstream(&self) -> &Bitstream {
        &self.bitstream
    }

    /// Steady-state throughput in items per second.
    pub fn throughput_items_per_sec(&self) -> f64 {
        self.clock_hz as f64 / self.initiation_interval as f64
    }

    /// Time to process `items` in steady state: fill the pipeline once,
    /// then one item per II cycles.
    pub fn batch_latency(&self, items: u64) -> Duration {
        if items == 0 {
            return Duration::ZERO;
        }
        let cycles = self.pipeline_depth as u64 + (items - 1) * self.initiation_interval as u64 + 1;
        Duration::from_cycles(cycles, self.clock_hz)
    }

    /// Latency of one isolated invocation.
    pub fn single_latency(&self) -> Duration {
        self.batch_latency(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn module(ii: u32, depth: u32) -> AcceleratorModule {
        AcceleratorModule::new(
            ModuleId(0),
            "m",
            Resources::new(100, 2, 4),
            100_000_000,
            ii,
            depth,
            Bitstream::synthesize(Resources::new(100, 2, 4), 1),
        )
    }

    #[test]
    fn throughput_follows_ii() {
        assert_eq!(module(1, 10).throughput_items_per_sec(), 1e8);
        assert_eq!(module(4, 10).throughput_items_per_sec(), 2.5e7);
    }

    #[test]
    fn batch_latency_pipelining() {
        let m = module(1, 9);
        // 1 item: depth + 1 cycles = 10 cycles @ 100 MHz = 100 ns
        assert_eq!(m.single_latency(), Duration::from_ns(100));
        // 91 more items at II=1: 101 cycles total
        assert_eq!(m.batch_latency(92), Duration::from_ns(1010));
        assert_eq!(m.batch_latency(0), Duration::ZERO);
    }

    #[test]
    fn unpipelined_batch_is_linear() {
        let m = module(10, 10);
        let one = m.batch_latency(1);
        let ten = m.batch_latency(10);
        // 10 items ≈ 10x of the II part
        assert!(ten > one * 5);
    }

    #[test]
    #[should_panic(expected = "initiation interval")]
    fn zero_ii_rejected() {
        module(0, 1);
    }

    #[test]
    fn accessors() {
        let m = module(2, 8);
        assert_eq!(m.id(), ModuleId(0));
        assert_eq!(m.name(), "m");
        assert_eq!(m.resources().total(), 106);
        assert_eq!(m.clock_hz(), 100_000_000);
        assert_eq!(m.initiation_interval(), 2);
        assert_eq!(m.pipeline_depth(), 8);
        assert!(!m.bitstream().as_bytes().is_empty());
        assert_eq!(format!("{}", m.id()), "M0");
    }
}
