//! The partial-reconfiguration port.
//!
//! Loading a module means streaming its (possibly compressed) bitstream
//! through an ICAP-class configuration port. Compression reduces the
//! bytes fetched from memory — and with a hardware decompressor running
//! at port speed, the configuration latency and energy drop by the same
//! ratio \[11\].

use ecoscale_sim::{Counter, Duration, Energy, MetricsRegistry};

use crate::bitstream::{Bitstream, CompressionAlgo};

/// Configuration-port parameters.
///
/// As in \[11\], the configuration pipeline has two stages: bitstream bytes
/// are *fetched* from storage over a shared memory path
/// ([`ReconfigPort::fetch_bandwidth`], typically far below the port's raw
/// rate because the bus is shared with the running application), then
/// clocked into the fabric through the ICAP
/// ([`ReconfigPort::icap_bandwidth`]). With an on-chip decompressor the
/// fetch stage moves only the *compressed* bytes — which is precisely why
/// compression cuts configuration latency, memory and power together.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReconfigPort {
    /// ICAP bandwidth in bytes/s (Zynq ICAP ≈ 400 MB/s).
    pub icap_bandwidth: u64,
    /// Effective bitstream-fetch bandwidth from storage, bytes/s.
    pub fetch_bandwidth: u64,
    /// Fixed per-reconfiguration setup cost (driver + port arbitration).
    pub setup: Duration,
    /// Energy per byte streamed through the port.
    pub energy_per_byte: Energy,
    /// Energy per byte fetched from bitstream storage (DRAM).
    pub fetch_energy_per_byte: Energy,
}

impl Default for ReconfigPort {
    fn default() -> Self {
        ReconfigPort {
            icap_bandwidth: 400_000_000,
            fetch_bandwidth: 100_000_000,
            setup: Duration::from_us(20),
            energy_per_byte: Energy::from_pj(50.0),
            fetch_energy_per_byte: Energy::from_pj(160.0),
        }
    }
}

/// Accumulated reconfiguration activity.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ReconfigStats {
    /// Reconfigurations performed.
    pub loads: u64,
    /// Total bytes streamed into the fabric (uncompressed size).
    pub config_bytes: u64,
    /// Total bytes fetched from storage (compressed size).
    pub stored_bytes: u64,
    /// Total time spent reconfiguring.
    pub busy: Duration,
    /// Total reconfiguration energy.
    pub energy: Energy,
}

impl ReconfigStats {
    /// Folds these stats into `m` under `prefix` (`{prefix}.loads`,
    /// `.config_bytes`, `.stored_bytes`, `.busy_us` counters and an
    /// `.energy_uj` observation). Exporting several ports' stats under
    /// one prefix aggregates them.
    pub fn export_metrics(&self, m: &mut MetricsRegistry, prefix: &str) {
        m.add(&format!("{prefix}.loads"), self.loads);
        m.add(&format!("{prefix}.config_bytes"), self.config_bytes);
        m.add(&format!("{prefix}.stored_bytes"), self.stored_bytes);
        m.add(&format!("{prefix}.busy_us"), self.busy.as_ns() / 1_000);
        m.observe(&format!("{prefix}.energy_uj"), self.energy.as_uj());
    }
}

impl ecoscale_sim::Snapshot for ReconfigStats {
    fn snapshot(&self, w: &mut ecoscale_sim::SnapWriter) {
        w.put_u64(self.loads);
        w.put_u64(self.config_bytes);
        w.put_u64(self.stored_bytes);
        w.put_duration(self.busy);
        self.energy.snapshot(w);
    }
}

impl ecoscale_sim::Restore for ReconfigStats {
    fn restore(r: &mut ecoscale_sim::SnapReader<'_>) -> Result<Self, ecoscale_sim::RestoreError> {
        Ok(ReconfigStats {
            loads: r.get_u64()?,
            config_bytes: r.get_u64()?,
            stored_bytes: r.get_u64()?,
            busy: r.get_duration()?,
            energy: Energy::restore(r)?,
        })
    }
}

impl ReconfigPort {
    /// Latency and energy of loading `bs` stored under `algo`.
    ///
    /// The pipeline is bottlenecked by whichever stage is slower: fetching
    /// the *compressed* bytes from storage, or clocking the *uncompressed*
    /// frames through the ICAP (throttled for LZ by its decompressor,
    /// [`CompressionAlgo::decompress_speed_factor`]).
    pub fn load_cost(&self, bs: &Bitstream, algo: CompressionAlgo) -> (Duration, Energy) {
        let compressed = algo.stats(bs).compressed.max(1) as u64;
        let uncompressed = bs.len().max(1) as u64;
        let icap_bw = (self.icap_bandwidth as f64 * algo.decompress_speed_factor()) as u64;
        let fetch = Duration::from_bytes_at_bandwidth(compressed, self.fetch_bandwidth);
        let stream = Duration::from_bytes_at_bandwidth(uncompressed, icap_bw);
        let lat = self.setup + fetch.max(stream);
        let energy = self.energy_per_byte * uncompressed as f64
            + self.fetch_energy_per_byte * compressed as f64;
        (lat, energy)
    }

    /// Loads `bs`, updating `stats`, and returns the latency.
    pub fn load(
        &self,
        bs: &Bitstream,
        algo: CompressionAlgo,
        stats: &mut ReconfigStats,
    ) -> Duration {
        let (lat, energy) = self.load_cost(bs, algo);
        stats.loads += 1;
        stats.config_bytes += bs.len() as u64;
        stats.stored_bytes += algo.stats(bs).compressed as u64;
        stats.busy += lat;
        stats.energy += energy;
        lat
    }
}

/// Utility: counts reconfigurations per module for eviction policies.
#[derive(Debug, Clone, Default)]
pub struct LoadCounter {
    counts: std::collections::HashMap<u32, Counter>,
}

impl LoadCounter {
    /// Creates an empty counter.
    pub fn new() -> LoadCounter {
        LoadCounter::default()
    }

    /// Records a load of module `id`.
    pub fn record(&mut self, id: u32) {
        self.counts.entry(id).or_default().incr();
    }

    /// Loads of module `id` so far.
    pub fn loads(&self, id: u32) -> u64 {
        self.counts.get(&id).map_or(0, |c| c.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::Resources;

    fn bs() -> Bitstream {
        Bitstream::synthesize(Resources::new(600, 12, 24), 5)
    }

    #[test]
    fn compressed_load_is_faster_and_cheaper() {
        let port = ReconfigPort::default();
        let b = bs();
        let (lat_none, e_none) = port.load_cost(&b, CompressionAlgo::None);
        let (lat_rle, e_rle) = port.load_cost(&b, CompressionAlgo::ZeroRle);
        let (lat_lz, e_lz) = port.load_cost(&b, CompressionAlgo::Lz);
        assert!(lat_rle < lat_none, "{lat_rle} !< {lat_none}");
        assert!(lat_lz < lat_none);
        assert!(e_rle < e_none);
        assert!(e_lz < e_none);
    }

    #[test]
    fn load_updates_stats() {
        let port = ReconfigPort::default();
        let b = bs();
        let mut stats = ReconfigStats::default();
        let lat = port.load(&b, CompressionAlgo::FrameDedup, &mut stats);
        assert_eq!(stats.loads, 1);
        assert_eq!(stats.config_bytes, b.len() as u64);
        assert!(stats.stored_bytes < stats.config_bytes);
        assert_eq!(stats.busy, lat);
        assert!(stats.energy.as_nj() > 0.0);
    }

    #[test]
    fn setup_dominates_tiny_bitstreams() {
        let port = ReconfigPort::default();
        let tiny = Bitstream::from_bytes(vec![1, 2, 3]);
        let (lat, _) = port.load_cost(&tiny, CompressionAlgo::None);
        assert!(lat >= port.setup);
        assert!(lat < port.setup + Duration::from_us(10));
    }

    #[test]
    fn load_counter() {
        let mut lc = LoadCounter::new();
        lc.record(3);
        lc.record(3);
        lc.record(5);
        assert_eq!(lc.loads(3), 2);
        assert_eq!(lc.loads(5), 1);
        assert_eq!(lc.loads(99), 0);
    }

    #[test]
    fn latency_scales_with_module_size() {
        let port = ReconfigPort::default();
        let small = Bitstream::synthesize(Resources::new(100, 0, 0), 1);
        let big = Bitstream::synthesize(Resources::new(4000, 64, 64), 1);
        let (ls, _) = port.load_cost(&small, CompressionAlgo::None);
        let (lb, _) = port.load_cost(&big, CompressionAlgo::None);
        assert!(lb > ls);
    }
}
