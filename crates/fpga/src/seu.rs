//! Single-event upsets in configuration memory and their repair.
//!
//! SRAM-based FPGA configuration memory is susceptible to radiation- and
//! noise-induced bit flips (SEUs). At exascale node counts the aggregate
//! upset rate becomes an availability concern, so the FaultPlane models
//! the standard mitigation: periodic **configuration scrubbing** that
//! re-reads frames and flags corrupted modules, after which the
//! reconfiguration daemon repairs them with a partial-bitstream reload.
//!
//! [`SeuScrubber`] owns the upset fault clock for one Worker's fabric. It
//! draws exponentially-spaced upset times, picks a victim among the
//! currently resident modules, and marks it *upset*: the module keeps
//! producing (wrong) results until the next scrub pass detects it. The
//! runtime half (software fallback, reload, quarantine) lives in the
//! runtime crate's resilience module.

use ecoscale_sim::check::{invariant, CheckPlane};
use ecoscale_sim::{CampaignSpec, Counter, Duration, FaultClock, MetricsRegistry, SimRng, Time};
use std::collections::BTreeMap;

use crate::module::ModuleId;

/// Salt for the scrubber's victim-pick stream (distinct from the upset
/// clock's own stream, which uses [`ecoscale_sim::fault::salt::SEU`]).
const PICK_SALT: u64 = ecoscale_sim::fault::salt::SEU_PICK;

/// Per-fabric SEU injection plus the scrub loop that detects upsets.
#[derive(Debug)]
pub struct SeuScrubber {
    clock: FaultClock,
    pick: SimRng,
    scrub_period: Duration,
    last_scrub: Time,
    /// Upset-but-undetected modules, keyed for deterministic iteration,
    /// with the time the upset struck (for detection-latency metrics).
    upset: BTreeMap<ModuleId, Time>,
    upsets: Counter,
    detected: Counter,
    scrubs: Counter,
    masked: Counter,
}

impl SeuScrubber {
    /// Builds the scrubber for one fabric from the campaign, salted with
    /// the Worker index so per-Worker streams never collide. Disabled
    /// (zero-cost) when the campaign's SEU rate is off.
    pub fn from_campaign(spec: &CampaignSpec, worker: u64) -> SeuScrubber {
        let enabled = !spec.seu_mtbf.is_zero();
        SeuScrubber {
            clock: if enabled {
                FaultClock::new(
                    spec.seu_mtbf,
                    spec.rng(ecoscale_sim::fault::salt::SEU ^ (worker << 32)),
                )
            } else {
                FaultClock::disabled()
            },
            pick: spec.rng(PICK_SALT ^ (worker << 32)),
            scrub_period: if spec.scrub_period.is_zero() {
                Duration::from_ms(1)
            } else {
                spec.scrub_period
            },
            last_scrub: Time::ZERO,
            upset: BTreeMap::new(),
            upsets: Counter::new(),
            detected: Counter::new(),
            scrubs: Counter::new(),
            masked: Counter::new(),
        }
    }

    /// Whether SEU injection is armed at all.
    pub fn is_enabled(&self) -> bool {
        self.clock.is_enabled()
    }

    /// Advances the upset clock to `now`, striking resident modules.
    /// Each due upset picks a victim uniformly among `resident`; an upset
    /// on an empty fabric is *masked* (hits unused configuration memory).
    /// Returns the modules newly upset by this call.
    pub fn advance(&mut self, now: Time, resident: &[ModuleId]) -> Vec<ModuleId> {
        let mut struck = Vec::new();
        while let Some(at) = self.clock.pop_due(now) {
            self.upsets.incr();
            if resident.is_empty() {
                self.masked.incr();
                continue;
            }
            let victim = resident[self.pick.gen_range_usize(0, resident.len())];
            // A second hit on an already-upset module changes nothing.
            if self.upset.insert(victim, at).is_none() {
                struck.push(victim);
            }
        }
        struck
    }

    /// Whether a scrub pass is due at `now`.
    pub fn scrub_due(&self, now: Time) -> bool {
        self.is_enabled() && now.saturating_since(self.last_scrub) >= self.scrub_period
    }

    /// Runs a scrub pass at `now`: every pending upset is detected and
    /// returned with its detection latency, ordered by module id. The
    /// caller repairs each via the reconfiguration daemon and then calls
    /// [`SeuScrubber::repaired`].
    pub fn scrub(&mut self, now: Time) -> Vec<(ModuleId, Duration)> {
        self.scrubs.incr();
        self.last_scrub = now;
        let found: Vec<(ModuleId, Duration)> = self
            .upset
            .iter()
            .map(|(&m, &at)| (m, now.saturating_since(at)))
            .collect();
        self.detected.add(found.len() as u64);
        found
    }

    /// Whether `module` is currently upset (producing wrong results).
    pub fn is_upset(&self, module: ModuleId) -> bool {
        self.upset.contains_key(&module)
    }

    /// Any module currently upset?
    pub fn any_upset(&self) -> bool {
        !self.upset.is_empty()
    }

    /// Marks `module` repaired (after a bitstream reload or unload).
    pub fn repaired(&mut self, module: ModuleId) {
        self.upset.remove(&module);
    }

    /// Total upsets struck (including masked ones).
    pub fn upsets(&self) -> u64 {
        self.upsets.get()
    }

    /// Upsets that landed on unused configuration memory.
    pub fn masked(&self) -> u64 {
        self.masked.get()
    }

    /// Upsets detected by scrub passes.
    pub fn detected(&self) -> u64 {
        self.detected.get()
    }

    /// Scrub passes run.
    pub fn scrubs(&self) -> u64 {
        self.scrubs.get()
    }

    /// Folds the scrubber's instruments into `m` under `prefix`
    /// (`{prefix}.upsets`, `.masked`, `.detected`, `.scrubs`). Exported
    /// only when armed, so fault-free reports are unchanged.
    pub fn export_metrics(&self, m: &mut MetricsRegistry, prefix: &str) {
        if !self.is_enabled() {
            return;
        }
        m.add(&format!("{prefix}.upsets"), self.upsets.get());
        m.add(&format!("{prefix}.masked"), self.masked.get());
        m.add(&format!("{prefix}.detected"), self.detected.get());
        m.add(&format!("{prefix}.scrubs"), self.scrubs.get());
    }

    /// Serializes the scrubber's mutable state: the upset clock and
    /// victim-pick RNG streams, the scrub cursor, pending upsets, and
    /// counters. The scrub period is structural (from the campaign) and
    /// not written.
    pub fn snapshot_state(&self, w: &mut ecoscale_sim::SnapWriter) {
        use ecoscale_sim::Snapshot as _;
        self.clock.snapshot(w);
        self.pick.snapshot(w);
        w.put_time(self.last_scrub);
        w.put_usize(self.upset.len());
        for (&m, &at) in &self.upset {
            w.put_u32(m.0);
            w.put_time(at);
        }
        self.upsets.snapshot(w);
        self.detected.snapshot(w);
        self.scrubs.snapshot(w);
        self.masked.snapshot(w);
    }

    /// Overlays state captured by [`SeuScrubber::snapshot_state`] onto
    /// this scrubber, which must have been built from the same campaign
    /// and worker index.
    ///
    /// # Errors
    ///
    /// [`ecoscale_sim::RestoreError`] on truncated or unsorted data.
    pub fn restore_state(
        &mut self,
        r: &mut ecoscale_sim::SnapReader<'_>,
    ) -> Result<(), ecoscale_sim::RestoreError> {
        use ecoscale_sim::snap::malformed;
        use ecoscale_sim::Restore;
        self.clock = FaultClock::restore(r)?;
        self.pick = SimRng::restore(r)?;
        self.last_scrub = r.get_time()?;
        let n = r.get_usize()?;
        if n > r.remaining() {
            return Err(malformed(format!(
                "scrubber claims {n} pending upsets but only {} bytes remain",
                r.remaining()
            )));
        }
        self.upset.clear();
        let mut prev: Option<u32> = None;
        for i in 0..n {
            let m = r.get_u32()?;
            let at = r.get_time()?;
            if prev.is_some_and(|p| p >= m) {
                return Err(malformed(format!("upset set unsorted at index {i}")));
            }
            prev = Some(m);
            self.upset.insert(ModuleId(m), at);
        }
        self.upsets = Counter::restore(r)?;
        self.detected = Counter::restore(r)?;
        self.scrubs = Counter::restore(r)?;
        self.masked = Counter::restore(r)?;
        Ok(())
    }

    /// CheckPlane hook: scrubber bookkeeping consistency — every pending or
    /// masked upset traces back to an injected one. Read-only; early-outs
    /// when `cp` is disabled (or the scrubber itself is off).
    pub fn check_invariants(&self, cp: &mut CheckPlane) {
        if !cp.is_enabled() || !self.is_enabled() {
            return;
        }
        let pending = self.upset.len() as u64;
        cp.check(
            invariant::SEU_COUNTS_AGREE,
            self.masked.get() + pending <= self.upsets.get(),
            || {
                format!(
                    "masked {} + pending {pending} exceed total upsets {}",
                    self.masked.get(),
                    self.upsets.get()
                )
            },
        );
        cp.check(
            invariant::SEU_COUNTS_AGREE,
            self.scrub_period > Duration::ZERO,
            || "scrub period is zero on an armed scrubber".to_string(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seu_spec() -> CampaignSpec {
        let mut s = CampaignSpec::off();
        s.seu_mtbf = Duration::from_us(50);
        s.scrub_period = Duration::from_us(200);
        s
    }

    #[test]
    fn disabled_scrubber_draws_nothing() {
        let mut s = SeuScrubber::from_campaign(&CampaignSpec::off(), 0);
        assert!(!s.is_enabled());
        assert!(s.advance(Time::from_ms(100), &[ModuleId(1)]).is_empty());
        assert!(!s.scrub_due(Time::from_ms(100)));
        assert_eq!(s.upsets(), 0);
    }

    #[test]
    fn upsets_strike_resident_modules() {
        let mut s = SeuScrubber::from_campaign(&seu_spec(), 0);
        let resident = [ModuleId(1), ModuleId(2), ModuleId(3)];
        let struck = s.advance(Time::from_ms(1), &resident);
        assert!(!struck.is_empty(), "1 ms at 50 us MTBF strikes");
        for m in &struck {
            assert!(s.is_upset(*m));
            assert!(resident.contains(m));
        }
        assert!(s.upsets() >= struck.len() as u64);
    }

    #[test]
    fn empty_fabric_masks_upsets() {
        let mut s = SeuScrubber::from_campaign(&seu_spec(), 0);
        let struck = s.advance(Time::from_ms(1), &[]);
        assert!(struck.is_empty());
        assert!(s.upsets() > 0);
        assert_eq!(s.masked(), s.upsets());
        assert!(!s.any_upset());
    }

    #[test]
    fn scrub_detects_then_repair_clears() {
        let mut s = SeuScrubber::from_campaign(&seu_spec(), 0);
        let resident = [ModuleId(7)];
        s.advance(Time::from_ms(1), &resident);
        assert!(s.is_upset(ModuleId(7)));
        assert!(s.scrub_due(Time::from_ms(1)));
        let found = s.scrub(Time::from_ms(1));
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].0, ModuleId(7));
        assert!(found[0].1 > Duration::ZERO, "detection latency recorded");
        s.repaired(ModuleId(7));
        assert!(!s.is_upset(ModuleId(7)));
        assert!(s.scrub(Time::from_ms(2)).is_empty());
        assert_eq!(s.detected(), 1);
        assert_eq!(s.scrubs(), 2);
    }

    #[test]
    fn per_worker_streams_differ() {
        let spec = seu_spec();
        let mut a = SeuScrubber::from_campaign(&spec, 0);
        let mut b = SeuScrubber::from_campaign(&spec, 1);
        let resident = [ModuleId(1), ModuleId(2)];
        let sa = a.advance(Time::from_ms(5), &resident);
        let sb = b.advance(Time::from_ms(5), &resident);
        // same campaign, different workers: independent upset streams
        // (counts may coincide, full sequences must not)
        assert!(a.upsets() > 0 && b.upsets() > 0);
        assert!(sa != sb || a.upsets() != b.upsets());
    }

    #[test]
    fn snapshot_restore_resumes_identically() {
        let spec = seu_spec();
        let resident = [ModuleId(1), ModuleId(2), ModuleId(3)];
        let mut orig = SeuScrubber::from_campaign(&spec, 3);
        orig.advance(Time::from_ms(1), &resident);
        if orig.scrub_due(Time::from_ms(1)) {
            for (m, _) in orig.scrub(Time::from_ms(1)) {
                orig.repaired(m);
            }
        }
        orig.advance(Time::from_ms(2), &resident);

        let mut w = ecoscale_sim::SnapWriter::new();
        orig.snapshot_state(&mut w);
        let bytes = w.into_bytes();

        let mut fresh = SeuScrubber::from_campaign(&spec, 3);
        let mut r = ecoscale_sim::SnapReader::new(&bytes);
        fresh.restore_state(&mut r).expect("restore");
        assert!(r.is_exhausted());
        let mut w2 = ecoscale_sim::SnapWriter::new();
        fresh.snapshot_state(&mut w2);
        assert_eq!(bytes, w2.into_bytes());

        // both continuations draw the same upsets
        for ms in 3..=10 {
            let a = orig.advance(Time::from_ms(ms), &resident);
            let b = fresh.advance(Time::from_ms(ms), &resident);
            assert_eq!(a, b, "diverged at {ms} ms");
        }
        assert_eq!(
            (orig.upsets(), orig.detected(), orig.scrubs(), orig.masked()),
            (
                fresh.upsets(),
                fresh.detected(),
                fresh.scrubs(),
                fresh.masked()
            )
        );

        // truncation always fails cleanly
        for cut in 0..bytes.len() {
            let mut s = SeuScrubber::from_campaign(&spec, 3);
            let mut r = ecoscale_sim::SnapReader::new(&bytes[..cut]);
            assert!(
                s.restore_state(&mut r).is_err() || !r.is_exhausted(),
                "truncated stream at {cut} restored fully"
            );
        }
    }

    #[test]
    fn scrubber_is_deterministic() {
        let run = || {
            let mut s = SeuScrubber::from_campaign(&seu_spec(), 3);
            let resident = [ModuleId(1), ModuleId(2), ModuleId(3)];
            let mut log = Vec::new();
            for ms in 1..=10 {
                log.extend(s.advance(Time::from_ms(ms), &resident));
                if s.scrub_due(Time::from_ms(ms)) {
                    for (m, _) in s.scrub(Time::from_ms(ms)) {
                        s.repaired(m);
                        log.push(m);
                    }
                }
            }
            (log, s.upsets(), s.detected(), s.scrubs())
        };
        assert_eq!(run(), run());
    }
}
