//! Pre-emptive hardware execution.
//!
//! §4.3 lists "pre-emptive hardware execution" among the middleware's
//! virtualization features: a running accelerator can be checkpointed
//! (its live state read back through the configuration port), its slot
//! reused, and the computation later resumed — the hardware analogue of
//! a context switch.
//!
//! [`PreemptModel`] costs the three phases: drain (let in-flight
//! pipeline stages retire), state readback, and state restore on resume
//! (the module's bitstream reload is charged separately via
//! [`crate::reconfig::ReconfigPort`]).

use ecoscale_sim::{Duration, Energy};

use crate::module::AcceleratorModule;

/// Costs of checkpoint/restore through the configuration port.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PreemptModel {
    /// Live state per occupied fabric cell (FF/BRAM contents), bytes.
    pub state_bytes_per_cell: u64,
    /// Readback bandwidth of the configuration port (≈ ICAP rate).
    pub readback_bandwidth: u64,
    /// Fixed cost to quiesce and arbitrate the port.
    pub setup: Duration,
    /// Energy per byte of state moved (either direction).
    pub energy_per_byte: Energy,
}

impl Default for PreemptModel {
    fn default() -> Self {
        PreemptModel {
            state_bytes_per_cell: 8,
            readback_bandwidth: 400_000_000,
            setup: Duration::from_us(5),
            energy_per_byte: Energy::from_pj(60.0),
        }
    }
}

/// A saved accelerator context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SavedContext {
    module: crate::module::ModuleId,
    state_bytes: u64,
    /// Hot-loop iterations already retired when preempted.
    progress: u64,
}

impl SavedContext {
    /// The checkpointed module.
    pub fn module(&self) -> crate::module::ModuleId {
        self.module
    }

    /// Iterations retired before preemption.
    pub fn progress(&self) -> u64 {
        self.progress
    }

    /// Size of the saved state.
    pub fn state_bytes(&self) -> u64 {
        self.state_bytes
    }
}

impl PreemptModel {
    /// State footprint of `module`.
    pub fn state_bytes(&self, module: &AcceleratorModule) -> u64 {
        module.resources().total() as u64 * self.state_bytes_per_cell
    }

    /// Checkpoints `module` after `progress` retired iterations: drain
    /// the pipeline, read the state back. Returns the context and the
    /// latency/energy of doing so.
    pub fn checkpoint(
        &self,
        module: &AcceleratorModule,
        progress: u64,
    ) -> (SavedContext, Duration, Energy) {
        // drain: the pipeline empties in `depth` cycles
        let drain = Duration::from_cycles(module.pipeline_depth() as u64, module.clock_hz());
        let bytes = self.state_bytes(module);
        let readback = Duration::from_bytes_at_bandwidth(bytes.max(1), self.readback_bandwidth);
        let lat = self.setup + drain + readback;
        let energy = self.energy_per_byte * bytes as f64;
        (
            SavedContext {
                module: module.id(),
                state_bytes: bytes,
                progress,
            },
            lat,
            energy,
        )
    }

    /// Restores `ctx` into a freshly reconfigured instance of its module.
    ///
    /// # Panics
    ///
    /// Panics if `ctx` belongs to a different module.
    pub fn restore(&self, module: &AcceleratorModule, ctx: &SavedContext) -> (Duration, Energy) {
        assert_eq!(
            ctx.module,
            module.id(),
            "context belongs to {} not {}",
            ctx.module,
            module.id()
        );
        let write =
            Duration::from_bytes_at_bandwidth(ctx.state_bytes.max(1), self.readback_bandwidth);
        (
            self.setup + write,
            self.energy_per_byte * ctx.state_bytes as f64,
        )
    }

    /// Remaining batch latency after resuming `ctx` with `total_items`
    /// originally submitted.
    pub fn remaining_latency(
        &self,
        module: &AcceleratorModule,
        ctx: &SavedContext,
        total_items: u64,
    ) -> Duration {
        module.batch_latency(total_items.saturating_sub(ctx.progress))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitstream::Bitstream;
    use crate::fabric::Resources;
    use crate::module::ModuleId;

    fn module(id: u32) -> AcceleratorModule {
        AcceleratorModule::new(
            ModuleId(id),
            "m",
            Resources::new(1000, 16, 32),
            200_000_000,
            1,
            20,
            Bitstream::synthesize(Resources::new(1000, 16, 32), id as u64),
        )
    }

    #[test]
    fn checkpoint_captures_progress_and_state() {
        let pm = PreemptModel::default();
        let m = module(0);
        let (ctx, lat, energy) = pm.checkpoint(&m, 5_000);
        assert_eq!(ctx.module(), ModuleId(0));
        assert_eq!(ctx.progress(), 5_000);
        assert_eq!(ctx.state_bytes(), 1048 * 8);
        assert!(lat > pm.setup);
        assert!(energy.as_nj() > 0.0);
    }

    #[test]
    fn restore_costs_less_than_checkpoint_plus_drain() {
        let pm = PreemptModel::default();
        let m = module(0);
        let (ctx, chk, _) = pm.checkpoint(&m, 100);
        let (res, _) = pm.restore(&m, &ctx);
        assert!(res <= chk);
    }

    #[test]
    #[should_panic(expected = "context belongs to")]
    fn restore_checks_module_identity() {
        let pm = PreemptModel::default();
        let (ctx, _, _) = pm.checkpoint(&module(0), 0);
        pm.restore(&module(1), &ctx);
    }

    #[test]
    fn resume_finishes_only_remaining_work() {
        let pm = PreemptModel::default();
        let m = module(0);
        let total = 10_000u64;
        let (ctx, _, _) = pm.checkpoint(&m, 7_500);
        let remaining = pm.remaining_latency(&m, &ctx, total);
        let full = m.batch_latency(total);
        assert!(remaining < full / 3);
        // over-progressed contexts clamp at zero work
        let (done, _, _) = pm.checkpoint(&m, total + 5);
        assert_eq!(pm.remaining_latency(&m, &done, total), Duration::ZERO);
    }

    #[test]
    fn preempt_resume_beats_restart_for_long_jobs() {
        // the point of preemption: a 90%-done long job should finish
        // faster via checkpoint+resume than by restarting from scratch
        let pm = PreemptModel::default();
        let m = module(0);
        let total = 2_000_000u64;
        let (ctx, chk, _) = pm.checkpoint(&m, total * 9 / 10);
        let (res, _) = pm.restore(&m, &ctx);
        let resume_path = chk + res + pm.remaining_latency(&m, &ctx, total);
        let restart_path = m.batch_latency(total);
        assert!(resume_path < restart_path);
    }
}
