//! The reconfigurable fabric of an ECOSCALE Worker.
//!
//! Each Worker carries a Reconfigurable Block (Fig. 4) that the middleware
//! manages through **partial runtime reconfiguration**: synthesized
//! accelerator modules are loaded into slots, migrated, evicted, and the
//! free area is defragmented (§4.3). Bitstreams are stored compressed to
//! cut "memory requirements, configuration latency and configuration power
//! at the same time" (Koch et al. \[11\]).
//!
//! Modules:
//!
//! * [`fabric`] — the resource grid (CLB/BRAM/DSP columns) and region
//!   resource accounting,
//! * [`module`] — accelerator module descriptors (area, initiation
//!   interval, pipeline depth, clock),
//! * [`bitstream`] — synthetic frame-structured bitstreams and the three
//!   compression families of \[11\] (zero-RLE, LZ-window, frame dedup),
//! * [`reconfig`] — the ICAP-class configuration port: latency and energy
//!   of (de)compressing and loading a bitstream,
//! * [`preempt`] — pre-emptive hardware execution: checkpoint a running
//!   module's state through the port and resume it later,
//! * [`floorplan`] — GoAhead-style slot allocation, fragmentation metrics,
//!   defragmentation planning and module migration,
//! * [`seu`] — single-event upsets in configuration memory and the
//!   periodic scrub loop that detects them (FaultPlane).

pub mod bitstream;
pub mod fabric;
pub mod floorplan;
pub mod module;
pub mod preempt;
pub mod reconfig;
pub mod seu;

pub use bitstream::{Bitstream, CompressionAlgo, CompressionStats};
pub use fabric::{Fabric, Region, ResourceKind, Resources};
pub use floorplan::{Floorplanner, PlaceError, Placement, SlotId};
pub use module::{AcceleratorModule, ModuleId};
pub use preempt::{PreemptModel, SavedContext};
pub use reconfig::{ReconfigPort, ReconfigStats};
pub use seu::SeuScrubber;
