//! Partial bitstreams and configuration-data compression.
//!
//! Real partial bitstreams are frame-structured and highly redundant:
//! unused frames are all-zero, and regular structures (datapaths repeated
//! down a column) produce identical frames. [`Bitstream::synthesize`]
//! generates synthetic bitstreams with those statistics, sized from the
//! module's resource footprint (the substitution documented in DESIGN.md
//! §5 — real vendor bitstreams are unavailable in this environment).
//!
//! [`CompressionAlgo`] implements the three decompressor families of
//! Koch, Beckhoff & Teich, "Hardware Decompression Techniques for
//! FPGA-based Embedded Systems" \[11\]: zero-run RLE, an LZSS-style window
//! compressor, and whole-frame deduplication. All three round-trip
//! exactly; experiment E9 compares their ratio / reconfiguration-latency
//! trade-offs.

use std::sync::{Arc, OnceLock};

use ecoscale_sim::SimRng;

use crate::fabric::Resources;

/// Bytes of configuration data per fabric cell (first-order Zynq figure).
pub const BYTES_PER_CELL: usize = 48;
/// Configuration frame size in bytes.
pub const FRAME_BYTES: usize = 256;

/// A partial bitstream: frame-aligned configuration data.
///
/// Compressed sizes are computed lazily once per algorithm and cached
/// (the runtime daemon queries them on every scheduling decision).
///
/// # Example
///
/// ```
/// use ecoscale_fpga::{Bitstream, Resources};
///
/// let bs = Bitstream::synthesize(Resources::new(500, 8, 16), 7);
/// assert_eq!(bs.len() % 256, 0); // frame aligned
/// ```
#[derive(Debug, Clone)]
pub struct Bitstream {
    data: Arc<[u8]>,
    compressed_sizes: Arc<OnceLock<[usize; 4]>>,
}

impl PartialEq for Bitstream {
    fn eq(&self, other: &Self) -> bool {
        self.data == other.data
    }
}

impl Eq for Bitstream {}

impl Bitstream {
    /// Wraps raw configuration data, padding to a whole frame.
    pub fn from_bytes(mut data: Vec<u8>) -> Bitstream {
        let rem = data.len() % FRAME_BYTES;
        if rem != 0 {
            data.resize(data.len() + FRAME_BYTES - rem, 0);
        }
        Bitstream {
            data: data.into(),
            compressed_sizes: Arc::new(OnceLock::new()),
        }
    }

    /// Generates a synthetic bitstream for a module of footprint
    /// `resources`, deterministically from `seed`.
    ///
    /// Frame statistics mirror published partial-bitstream traits:
    /// roughly a third of frames are all-zero, a sixth repeat an earlier
    /// frame, and the rest are sparse (~60 % zero bytes).
    pub fn synthesize(resources: Resources, seed: u64) -> Bitstream {
        let size = (resources.total().max(1) as usize) * BYTES_PER_CELL;
        let frames = size.div_ceil(FRAME_BYTES).max(1);
        let mut rng = SimRng::seed_from(seed ^ 0xB175_7EA4);
        let mut data = Vec::with_capacity(frames * FRAME_BYTES);
        let mut kept: Vec<usize> = Vec::new(); // offsets of non-trivial frames
        for _ in 0..frames {
            let roll = rng.gen_unit();
            if roll < 0.35 {
                data.extend(std::iter::repeat_n(0u8, FRAME_BYTES));
            } else if roll < 0.50 && !kept.is_empty() {
                let src = *rng.choose(&kept);
                let copy: Vec<u8> = data[src..src + FRAME_BYTES].to_vec();
                data.extend_from_slice(&copy);
            } else {
                // Sparse frame: configuration words come in 16-byte
                // chunks, most of them zero (unused routing/config words),
                // the rest dense — matching the run-structured sparsity of
                // real partial bitstreams.
                let start = data.len();
                for _ in 0..FRAME_BYTES / 16 {
                    if rng.gen_bool(0.55) {
                        data.extend(std::iter::repeat_n(0u8, 16));
                    } else {
                        for _ in 0..16 {
                            if rng.gen_bool(0.25) {
                                data.push(0);
                            } else {
                                data.push((rng.next_u64() & 0xff) as u8);
                            }
                        }
                    }
                }
                kept.push(start);
            }
        }
        Bitstream {
            data: data.into(),
            compressed_sizes: Arc::new(OnceLock::new()),
        }
    }

    /// The raw configuration bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.data
    }

    /// Size in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the bitstream holds no data.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Number of whole frames.
    pub fn frames(&self) -> usize {
        self.data.len() / FRAME_BYTES
    }

    /// Compressed size under `algo`, computed once and cached (all four
    /// algorithms are evaluated on first use).
    pub fn compressed_size(&self, algo: CompressionAlgo) -> usize {
        let sizes = self.compressed_sizes.get_or_init(|| {
            [
                self.data.len(),
                zero_rle_compress(&self.data).len(),
                lz_compress(&self.data).len(),
                frame_dedup_compress(&self.data).len(),
            ]
        });
        match algo {
            CompressionAlgo::None => sizes[0],
            CompressionAlgo::ZeroRle => sizes[1],
            CompressionAlgo::Lz => sizes[2],
            CompressionAlgo::FrameDedup => sizes[3],
        }
    }
}

/// Compression ratio bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompressionStats {
    /// Uncompressed size in bytes.
    pub original: usize,
    /// Compressed size in bytes.
    pub compressed: usize,
}

impl CompressionStats {
    /// original / compressed (1.0 when incompressible).
    pub fn ratio(&self) -> f64 {
        if self.compressed == 0 {
            1.0
        } else {
            self.original as f64 / self.compressed as f64
        }
    }
}

/// The decompressor families of \[11\].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompressionAlgo {
    /// Store uncompressed.
    None,
    /// Run-length encoding of zero runs (cheapest decompressor).
    ZeroRle,
    /// LZSS with a 2 KiB window (best ratio, costlier decompressor).
    Lz,
    /// Whole-frame deduplication (fast, exploits repeated frames).
    FrameDedup,
}

impl CompressionAlgo {
    /// All algorithms, for sweeps.
    pub const ALL: [CompressionAlgo; 4] = [
        CompressionAlgo::None,
        CompressionAlgo::ZeroRle,
        CompressionAlgo::Lz,
        CompressionAlgo::FrameDedup,
    ];

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            CompressionAlgo::None => "none",
            CompressionAlgo::ZeroRle => "zero-rle",
            CompressionAlgo::Lz => "lz",
            CompressionAlgo::FrameDedup => "frame-dedup",
        }
    }

    /// Relative decompressor throughput versus the raw configuration port
    /// (from the hardware decompressor designs in \[11\]: RLE and dedup run
    /// at port speed; LZ at ~80 %).
    pub fn decompress_speed_factor(self) -> f64 {
        match self {
            CompressionAlgo::None => 1.0,
            CompressionAlgo::ZeroRle => 1.0,
            CompressionAlgo::FrameDedup => 1.0,
            CompressionAlgo::Lz => 0.8,
        }
    }

    /// Compresses a bitstream.
    pub fn compress(self, bs: &Bitstream) -> Vec<u8> {
        match self {
            CompressionAlgo::None => bs.as_bytes().to_vec(),
            CompressionAlgo::ZeroRle => zero_rle_compress(bs.as_bytes()),
            CompressionAlgo::Lz => lz_compress(bs.as_bytes()),
            CompressionAlgo::FrameDedup => frame_dedup_compress(bs.as_bytes()),
        }
    }

    /// Decompresses back to a bitstream.
    ///
    /// # Panics
    ///
    /// Panics on malformed input (compressed streams are produced and
    /// consumed inside the middleware; corruption is a programming error).
    pub fn decompress(self, data: &[u8]) -> Bitstream {
        let raw = match self {
            CompressionAlgo::None => data.to_vec(),
            CompressionAlgo::ZeroRle => zero_rle_decompress(data),
            CompressionAlgo::Lz => lz_decompress(data),
            CompressionAlgo::FrameDedup => frame_dedup_decompress(data),
        };
        Bitstream::from_bytes(raw)
    }

    /// Reports sizes using the bitstream's lazy cache (no recompression
    /// after the first query).
    pub fn stats(self, bs: &Bitstream) -> CompressionStats {
        CompressionStats {
            original: bs.len(),
            compressed: bs.compressed_size(self),
        }
    }
}

// --- zero-RLE ---------------------------------------------------------
// Token stream: 0x00 <run u16 le> for zero runs; 0x01 <len u16 le> <bytes>
// for literal runs.

fn zero_rle_compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < data.len() {
        if data[i] == 0 {
            let start = i;
            while i < data.len() && data[i] == 0 && i - start < u16::MAX as usize {
                i += 1;
            }
            out.push(0x00);
            out.extend_from_slice(&((i - start) as u16).to_le_bytes());
        } else {
            let start = i;
            while i < data.len() && data[i] != 0 && i - start < u16::MAX as usize {
                i += 1;
            }
            out.push(0x01);
            out.extend_from_slice(&((i - start) as u16).to_le_bytes());
            out.extend_from_slice(&data[start..i]);
        }
    }
    out
}

fn zero_rle_decompress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < data.len() {
        let tag = data[i];
        let len = u16::from_le_bytes([data[i + 1], data[i + 2]]) as usize;
        i += 3;
        match tag {
            0x00 => out.extend(std::iter::repeat_n(0u8, len)),
            0x01 => {
                out.extend_from_slice(&data[i..i + len]);
                i += len;
            }
            t => panic!("corrupt zero-rle stream: tag {t:#x}"),
        }
    }
    out
}

// --- LZSS -------------------------------------------------------------
// Token stream: 0x00 <len u16> <literal bytes> | 0x01 <offset u16> <len u16>.

const LZ_WINDOW: usize = 2048;
const LZ_MIN_MATCH: usize = 4;

fn lz_compress(data: &[u8]) -> Vec<u8> {
    use std::collections::HashMap;
    let mut out = Vec::new();
    let mut literals: Vec<u8> = Vec::new();
    // positions of 4-byte prefixes
    let mut index: HashMap<[u8; 4], Vec<usize>> = HashMap::new();

    let flush_literals = |out: &mut Vec<u8>, lits: &mut Vec<u8>| {
        let mut start = 0;
        while start < lits.len() {
            let chunk = (lits.len() - start).min(u16::MAX as usize);
            out.push(0x00);
            out.extend_from_slice(&(chunk as u16).to_le_bytes());
            out.extend_from_slice(&lits[start..start + chunk]);
            start += chunk;
        }
        lits.clear();
    };

    let mut i = 0;
    while i < data.len() {
        let mut best_len = 0;
        let mut best_off = 0;
        if i + LZ_MIN_MATCH <= data.len() {
            let key = [data[i], data[i + 1], data[i + 2], data[i + 3]];
            if let Some(positions) = index.get(&key) {
                for &p in positions.iter().rev() {
                    if i - p > LZ_WINDOW {
                        break;
                    }
                    let mut l = 0;
                    let max = (data.len() - i).min(u16::MAX as usize);
                    while l < max && data[p + l] == data[i + l] {
                        l += 1;
                    }
                    if l > best_len {
                        best_len = l;
                        best_off = i - p;
                        if l >= 64 {
                            break; // good enough
                        }
                    }
                }
            }
        }
        if best_len >= LZ_MIN_MATCH {
            flush_literals(&mut out, &mut literals);
            out.push(0x01);
            out.extend_from_slice(&(best_off as u16).to_le_bytes());
            out.extend_from_slice(&(best_len as u16).to_le_bytes());
            // index the skipped positions
            for k in i..(i + best_len).min(data.len().saturating_sub(LZ_MIN_MATCH - 1)) {
                if k + 4 <= data.len() {
                    let key = [data[k], data[k + 1], data[k + 2], data[k + 3]];
                    index.entry(key).or_default().push(k);
                }
            }
            i += best_len;
        } else {
            if i + 4 <= data.len() {
                let key = [data[i], data[i + 1], data[i + 2], data[i + 3]];
                index.entry(key).or_default().push(i);
            }
            literals.push(data[i]);
            i += 1;
        }
    }
    flush_literals(&mut out, &mut literals);
    out
}

fn lz_decompress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < data.len() {
        match data[i] {
            0x00 => {
                let len = u16::from_le_bytes([data[i + 1], data[i + 2]]) as usize;
                i += 3;
                out.extend_from_slice(&data[i..i + len]);
                i += len;
            }
            0x01 => {
                let off = u16::from_le_bytes([data[i + 1], data[i + 2]]) as usize;
                let len = u16::from_le_bytes([data[i + 3], data[i + 4]]) as usize;
                i += 5;
                let start = out.len() - off;
                for k in 0..len {
                    let b = out[start + k];
                    out.push(b);
                }
            }
            t => panic!("corrupt lz stream: tag {t:#x}"),
        }
    }
    out
}

// --- frame dedup ------------------------------------------------------
// Header: frame count u32 le. Then per frame: u32 le, MSB set => literal
// frame follows; else index of an earlier frame to copy.

fn frame_dedup_compress(data: &[u8]) -> Vec<u8> {
    use std::collections::HashMap;
    assert!(
        data.len().is_multiple_of(FRAME_BYTES),
        "bitstreams are frame aligned"
    );
    let frames = data.len() / FRAME_BYTES;
    let mut out = Vec::new();
    out.extend_from_slice(&(frames as u32).to_le_bytes());
    let mut seen: HashMap<&[u8], u32> = HashMap::new();
    for f in 0..frames {
        let frame = &data[f * FRAME_BYTES..(f + 1) * FRAME_BYTES];
        if let Some(&idx) = seen.get(frame) {
            out.extend_from_slice(&idx.to_le_bytes());
        } else {
            out.extend_from_slice(&(f as u32 | 0x8000_0000).to_le_bytes());
            out.extend_from_slice(frame);
            seen.insert(frame, f as u32);
        }
    }
    out
}

fn frame_dedup_decompress(data: &[u8]) -> Vec<u8> {
    let frames = u32::from_le_bytes(data[0..4].try_into().expect("header")) as usize;
    let mut out: Vec<u8> = Vec::with_capacity(frames * FRAME_BYTES);
    let mut i = 4;
    for _ in 0..frames {
        let word = u32::from_le_bytes(data[i..i + 4].try_into().expect("frame word"));
        i += 4;
        if word & 0x8000_0000 != 0 {
            out.extend_from_slice(&data[i..i + FRAME_BYTES]);
            i += FRAME_BYTES;
        } else {
            let src = word as usize * FRAME_BYTES;
            let frame: Vec<u8> = out[src..src + FRAME_BYTES].to_vec();
            out.extend_from_slice(&frame);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(seed: u64) -> Bitstream {
        Bitstream::synthesize(Resources::new(400, 8, 16), seed)
    }

    #[test]
    fn synthesize_is_deterministic_and_sized() {
        let a = sample(9);
        let b = sample(9);
        let c = sample(10);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(
            a.len(),
            424 * BYTES_PER_CELL / FRAME_BYTES * FRAME_BYTES
                + if (424 * BYTES_PER_CELL).is_multiple_of(FRAME_BYTES) {
                    0
                } else {
                    FRAME_BYTES
                }
        );
        assert_eq!(a.len() % FRAME_BYTES, 0);
        assert!(a.frames() > 0);
    }

    #[test]
    fn from_bytes_pads_to_frame() {
        let bs = Bitstream::from_bytes(vec![1, 2, 3]);
        assert_eq!(bs.len(), FRAME_BYTES);
        assert_eq!(&bs.as_bytes()[..3], &[1, 2, 3]);
        assert!(!bs.is_empty());
    }

    #[test]
    fn all_algorithms_roundtrip() {
        for seed in [1u64, 2, 3, 99] {
            let bs = sample(seed);
            for algo in CompressionAlgo::ALL {
                let packed = algo.compress(&bs);
                let back = algo.decompress(&packed);
                assert_eq!(back.as_bytes(), bs.as_bytes(), "{} failed", algo.name());
            }
        }
    }

    #[test]
    fn roundtrip_edge_cases() {
        for data in [
            vec![],
            vec![0u8; FRAME_BYTES],
            vec![0xAB; FRAME_BYTES],
            (0..FRAME_BYTES as u32)
                .map(|i| (i % 251) as u8)
                .collect::<Vec<_>>(),
        ] {
            let bs = Bitstream::from_bytes(data);
            for algo in CompressionAlgo::ALL {
                let back = algo.decompress(&algo.compress(&bs));
                assert_eq!(back.as_bytes(), bs.as_bytes(), "{} failed", algo.name());
            }
        }
    }

    #[test]
    fn compression_actually_compresses_synthetic_streams() {
        let bs = sample(42);
        for algo in [
            CompressionAlgo::ZeroRle,
            CompressionAlgo::Lz,
            CompressionAlgo::FrameDedup,
        ] {
            let s = algo.stats(&bs);
            assert!(
                s.ratio() > 1.3,
                "{} ratio {} too low",
                algo.name(),
                s.ratio()
            );
        }
        assert_eq!(CompressionAlgo::None.stats(&bs).ratio(), 1.0);
    }

    #[test]
    fn lz_beats_rle_on_repeated_frames() {
        // a stream of many identical non-zero frames: dedup and LZ shine,
        // zero-RLE cannot compress it at all.
        let frame: Vec<u8> = (0..FRAME_BYTES).map(|i| (i % 255) as u8 + 1).collect();
        let mut data = Vec::new();
        for _ in 0..32 {
            data.extend_from_slice(&frame);
        }
        let bs = Bitstream::from_bytes(data);
        let rle = CompressionAlgo::ZeroRle.stats(&bs).ratio();
        let lz = CompressionAlgo::Lz.stats(&bs).ratio();
        let dedup = CompressionAlgo::FrameDedup.stats(&bs).ratio();
        assert!(rle < 1.1);
        assert!(lz > 5.0);
        assert!(dedup > 5.0);
    }

    #[test]
    fn stats_ratio_handles_empty() {
        let s = CompressionStats {
            original: 0,
            compressed: 0,
        };
        assert_eq!(s.ratio(), 1.0);
    }

    #[test]
    fn names_and_speed_factors() {
        assert_eq!(CompressionAlgo::Lz.name(), "lz");
        assert!(CompressionAlgo::Lz.decompress_speed_factor() < 1.0);
        assert_eq!(CompressionAlgo::ZeroRle.decompress_speed_factor(), 1.0);
    }
}
