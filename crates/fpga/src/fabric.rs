//! The fabric resource grid.
//!
//! Modelled after column-organized FPGAs (Zynq UltraScale class): the die
//! is a sequence of columns, each holding one resource kind (CLB, BRAM or
//! DSP) replicated down `rows` cells. A [`Region`] is a rectangle of whole
//! columns; its [`Resources`] are what a module placed there may use.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// One column's resource kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResourceKind {
    /// Configurable logic block (LUTs + FFs).
    Clb,
    /// Block RAM column.
    Bram,
    /// DSP slice column.
    Dsp,
}

impl fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ResourceKind::Clb => "CLB",
            ResourceKind::Bram => "BRAM",
            ResourceKind::Dsp => "DSP",
        })
    }
}

/// A bundle of fabric resources.
///
/// # Example
///
/// ```
/// use ecoscale_fpga::Resources;
///
/// let need = Resources::new(100, 4, 8);
/// let have = Resources::new(200, 8, 8);
/// assert!(need.fits_in(&have));
/// assert!(!have.fits_in(&need));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct Resources {
    /// CLB cells.
    pub clb: u32,
    /// BRAM cells.
    pub bram: u32,
    /// DSP cells.
    pub dsp: u32,
}

impl Resources {
    /// No resources.
    pub const ZERO: Resources = Resources {
        clb: 0,
        bram: 0,
        dsp: 0,
    };

    /// Creates a resource bundle.
    pub const fn new(clb: u32, bram: u32, dsp: u32) -> Resources {
        Resources { clb, bram, dsp }
    }

    /// Returns `true` if `self` fits inside `budget` component-wise.
    pub const fn fits_in(&self, budget: &Resources) -> bool {
        self.clb <= budget.clb && self.bram <= budget.bram && self.dsp <= budget.dsp
    }

    /// Component-wise saturating subtraction.
    pub const fn saturating_sub(self, rhs: Resources) -> Resources {
        Resources {
            clb: self.clb.saturating_sub(rhs.clb),
            bram: self.bram.saturating_sub(rhs.bram),
            dsp: self.dsp.saturating_sub(rhs.dsp),
        }
    }

    /// Total cell count (used as a scalar area proxy).
    pub const fn total(&self) -> u32 {
        self.clb + self.bram + self.dsp
    }

    /// Scales each component by an integer factor.
    pub const fn scale(self, k: u32) -> Resources {
        Resources {
            clb: self.clb * k,
            bram: self.bram * k,
            dsp: self.dsp * k,
        }
    }
}

impl Add for Resources {
    type Output = Resources;
    fn add(self, rhs: Resources) -> Resources {
        Resources {
            clb: self.clb + rhs.clb,
            bram: self.bram + rhs.bram,
            dsp: self.dsp + rhs.dsp,
        }
    }
}

impl AddAssign for Resources {
    fn add_assign(&mut self, rhs: Resources) {
        *self = *self + rhs;
    }
}

impl Sub for Resources {
    type Output = Resources;
    fn sub(self, rhs: Resources) -> Resources {
        self.saturating_sub(rhs)
    }
}

impl fmt::Display for Resources {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}CLB/{}BRAM/{}DSP", self.clb, self.bram, self.dsp)
    }
}

/// A rectangle of whole columns on the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    /// First column index.
    pub col: u32,
    /// Number of columns.
    pub width: u32,
    /// First row.
    pub row: u32,
    /// Number of rows.
    pub height: u32,
}

impl Region {
    /// Area in grid cells.
    pub const fn area(&self) -> u32 {
        self.width * self.height
    }

    /// Returns `true` if the two regions overlap.
    pub const fn overlaps(&self, other: &Region) -> bool {
        self.col < other.col + other.width
            && other.col < self.col + self.width
            && self.row < other.row + other.height
            && other.row < self.row + self.height
    }
}

/// The fabric: a column pattern × `rows` cells.
///
/// # Example
///
/// ```
/// use ecoscale_fpga::{Fabric, Region, ResourceKind};
///
/// let fab = Fabric::zynq_like(40, 60);
/// let r = Region { col: 0, width: 10, row: 0, height: 60 };
/// let res = fab.region_resources(&r);
/// assert!(res.clb > 0 && res.bram > 0);
/// ```
#[derive(Debug, Clone)]
pub struct Fabric {
    columns: Vec<ResourceKind>,
    rows: u32,
}

impl Fabric {
    /// Creates a fabric from an explicit column pattern.
    ///
    /// # Panics
    ///
    /// Panics if `columns` is empty or `rows` is zero.
    pub fn new(columns: Vec<ResourceKind>, rows: u32) -> Fabric {
        assert!(!columns.is_empty(), "fabric needs columns");
        assert!(rows > 0, "fabric needs rows");
        Fabric { columns, rows }
    }

    /// A Zynq-like pattern: every 5th column BRAM, every 7th DSP, the
    /// rest CLB.
    pub fn zynq_like(width: u32, rows: u32) -> Fabric {
        let columns = (0..width)
            .map(|c| {
                if c % 7 == 6 {
                    ResourceKind::Dsp
                } else if c % 5 == 4 {
                    ResourceKind::Bram
                } else {
                    ResourceKind::Clb
                }
            })
            .collect();
        Fabric::new(columns, rows)
    }

    /// Number of columns.
    pub fn width(&self) -> u32 {
        self.columns.len() as u32
    }

    /// Number of rows.
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// The resource kind of column `col`.
    ///
    /// # Panics
    ///
    /// Panics if `col` is out of range.
    pub fn column_kind(&self, col: u32) -> ResourceKind {
        self.columns[col as usize]
    }

    /// Total resources of the whole fabric.
    pub fn total_resources(&self) -> Resources {
        self.region_resources(&Region {
            col: 0,
            width: self.width(),
            row: 0,
            height: self.rows,
        })
    }

    /// Resources inside `region`.
    ///
    /// # Panics
    ///
    /// Panics if the region exceeds the fabric bounds.
    pub fn region_resources(&self, region: &Region) -> Resources {
        assert!(
            region.col + region.width <= self.width() && region.row + region.height <= self.rows,
            "region out of fabric bounds"
        );
        let mut r = Resources::ZERO;
        for c in region.col..region.col + region.width {
            let per_col = region.height;
            match self.columns[c as usize] {
                ResourceKind::Clb => r.clb += per_col,
                ResourceKind::Bram => r.bram += per_col,
                ResourceKind::Dsp => r.dsp += per_col,
            }
        }
        r
    }

    /// The minimum width (in columns, starting anywhere) of a full-height
    /// region holding `need`, or `None` if even the whole fabric is too
    /// small. Used by the floorplanner for bounding-box minimization.
    pub fn min_width_for(&self, need: &Resources) -> Option<u32> {
        let full = self.total_resources();
        if !need.fits_in(&full) {
            return None;
        }
        for width in 1..=self.width() {
            for col in 0..=(self.width() - width) {
                let region = Region {
                    col,
                    width,
                    row: 0,
                    height: self.rows,
                };
                if need.fits_in(&self.region_resources(&region)) {
                    return Some(width);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resources_arithmetic() {
        let a = Resources::new(10, 2, 1);
        let b = Resources::new(5, 1, 0);
        assert_eq!(a + b, Resources::new(15, 3, 1));
        assert_eq!(a - b, Resources::new(5, 1, 1));
        assert_eq!(b - a, Resources::ZERO);
        assert_eq!(a.total(), 13);
        assert_eq!(b.scale(3), Resources::new(15, 3, 0));
        let mut c = a;
        c += b;
        assert_eq!(c.total(), 19);
        assert_eq!(a.to_string(), "10CLB/2BRAM/1DSP");
    }

    #[test]
    fn fits_in_is_componentwise() {
        let budget = Resources::new(100, 10, 5);
        assert!(Resources::new(100, 10, 5).fits_in(&budget));
        assert!(!Resources::new(101, 0, 0).fits_in(&budget));
        assert!(!Resources::new(0, 11, 0).fits_in(&budget));
        assert!(!Resources::new(0, 0, 6).fits_in(&budget));
    }

    #[test]
    fn region_geometry() {
        let a = Region {
            col: 0,
            width: 4,
            row: 0,
            height: 4,
        };
        let b = Region {
            col: 3,
            width: 4,
            row: 0,
            height: 4,
        };
        let c = Region {
            col: 4,
            width: 4,
            row: 0,
            height: 4,
        };
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        assert_eq!(a.area(), 16);
        // vertical disjointness
        let d = Region {
            col: 0,
            width: 4,
            row: 4,
            height: 2,
        };
        assert!(!a.overlaps(&d));
    }

    #[test]
    fn zynq_pattern_counts() {
        let f = Fabric::zynq_like(35, 10);
        let total = f.total_resources();
        // columns 6,13,20,27,34 are DSP (5); 4,9,14*,19,24,29* — careful:
        // col where c%7==6 takes priority; c%5==4 and c%7!=6 are BRAM.
        let mut dsp = 0;
        let mut bram = 0;
        for c in 0..35u32 {
            if c % 7 == 6 {
                dsp += 1;
            } else if c % 5 == 4 {
                bram += 1;
            }
        }
        assert_eq!(total.dsp, dsp * 10);
        assert_eq!(total.bram, bram * 10);
        assert_eq!(total.total(), 350);
    }

    #[test]
    fn region_resources_subset() {
        let f = Fabric::zynq_like(20, 8);
        let half = f.region_resources(&Region {
            col: 0,
            width: 10,
            row: 0,
            height: 8,
        });
        let whole = f.total_resources();
        assert!(half.fits_in(&whole));
        assert!(half.total() < whole.total());
        // half height halves every count
        let short = f.region_resources(&Region {
            col: 0,
            width: 10,
            row: 0,
            height: 4,
        });
        assert_eq!(short.total() * 2, half.total());
    }

    #[test]
    #[should_panic(expected = "out of fabric bounds")]
    fn region_bounds_checked() {
        let f = Fabric::zynq_like(10, 10);
        f.region_resources(&Region {
            col: 8,
            width: 4,
            row: 0,
            height: 10,
        });
    }

    #[test]
    fn min_width_for_small_and_impossible() {
        let f = Fabric::zynq_like(40, 60);
        // a pure-CLB module needs few columns
        let w = f.min_width_for(&Resources::new(120, 0, 0)).unwrap();
        assert!(w <= 3);
        // needing BRAM forces the window to include a BRAM column
        let wb = f.min_width_for(&Resources::new(0, 60, 0)).unwrap();
        assert!(wb >= 1);
        // impossible demand
        assert_eq!(f.min_width_for(&Resources::new(1_000_000, 0, 0)), None);
    }

    #[test]
    fn min_width_monotone_in_demand() {
        let f = Fabric::zynq_like(40, 60);
        let w1 = f.min_width_for(&Resources::new(100, 0, 0)).unwrap();
        let w2 = f.min_width_for(&Resources::new(1000, 10, 5)).unwrap();
        assert!(w2 >= w1);
    }
}
