//! Hierarchical multi-layer interconnect models for the ECOSCALE
//! reproduction.
//!
//! ECOSCALE interconnects its Workers "in a tree-like fashion" (Fig. 1 and
//! Fig. 3 of the paper): an L0 interconnect inside each Worker group, L1
//! between groups, and so on up through boards, chassis and cabinets. The
//! paper argues that hierarchical partitioning bounds the maximum
//! communication distance (5 hops for petascale, 6–7 for exascale) and that
//! locality-aware placement keeps most traffic on the cheap low levels.
//!
//! This crate provides:
//!
//! * [`Topology`] — a trait computing the [`Route`] between two endpoint
//!   [`NodeId`]s, with implementations:
//!   [`TreeTopology`] (the ECOSCALE hierarchy), [`CrossbarTopology`] (the
//!   flat baseline), [`Mesh2d`] and [`Dragonfly`] (the application
//!   partitioning topologies the paper cites \[2\]),
//! * [`CostModel`] — per-level latency/bandwidth/energy parameters turning
//!   a route plus a payload size into [`Duration`](ecoscale_sim::Duration)
//!   and [`Energy`](ecoscale_sim::Energy),
//! * [`Network`] — an event-driven network with per-link FIFO contention,
//! * [`TrafficStats`] — bytes/messages per level, hop histograms.

pub mod cost;
pub mod network;
pub mod topology;
pub mod traffic;

pub use cost::{CostModel, LinkParams};
pub use network::{Delivery, Network, NetworkConfig};
pub use topology::{
    CrossbarTopology, Dragonfly, FatTreeTopology, LinkId, Mesh2d, NodeId, Route, Topology,
    TreeTopology,
};
pub use traffic::TrafficStats;
