//! Latency and energy cost models for routed messages.
//!
//! Each hierarchy level has its own [`LinkParams`]: low levels are on-chip
//! (sub-ns per hop, fractions of a pJ/bit), high levels are cables between
//! chassis (hundreds of ns, several pJ/bit). The defaults are first-order
//! figures for the hardware class ECOSCALE targets (ARM SoC + FPGA boards
//! in chassis); experiments only rely on the *ordering* of these costs.

use ecoscale_sim::{Duration, Energy};

use crate::topology::{NodeId, Route, Topology, TreeTopology};

/// Cost parameters for links at one hierarchy level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkParams {
    /// Per-hop switch + wire latency.
    pub hop_latency: Duration,
    /// Link bandwidth in bytes per second.
    pub bandwidth: u64,
    /// Energy per byte moved across the link.
    pub energy_per_byte: Energy,
    /// Fixed per-message energy (arbitration, header processing).
    pub energy_per_msg: Energy,
}

impl LinkParams {
    /// On-chip interconnect (ECOSCALE L0): ~5 ns hops, 16 GB/s,
    /// ~0.1 pJ/bit.
    pub fn on_chip() -> LinkParams {
        LinkParams {
            hop_latency: Duration::from_ns(5),
            bandwidth: 16_000_000_000,
            energy_per_byte: Energy::from_pj(0.8),
            energy_per_msg: Energy::from_pj(10.0),
        }
    }

    /// Board-level interconnect (L1): ~40 ns hops, 8 GB/s, ~1 pJ/bit.
    pub fn on_board() -> LinkParams {
        LinkParams {
            hop_latency: Duration::from_ns(40),
            bandwidth: 8_000_000_000,
            energy_per_byte: Energy::from_pj(8.0),
            energy_per_msg: Energy::from_pj(100.0),
        }
    }

    /// Chassis-level links (L2): ~200 ns hops, 4 GB/s, ~4 pJ/bit.
    pub fn in_chassis() -> LinkParams {
        LinkParams {
            hop_latency: Duration::from_ns(200),
            bandwidth: 4_000_000_000,
            energy_per_byte: Energy::from_pj(32.0),
            energy_per_msg: Energy::from_pj(400.0),
        }
    }

    /// Cabinet/inter-chassis cables (L3+): ~500 ns hops, 2 GB/s,
    /// ~10 pJ/bit.
    pub fn between_chassis() -> LinkParams {
        LinkParams {
            hop_latency: Duration::from_ns(500),
            bandwidth: 2_000_000_000,
            energy_per_byte: Energy::from_pj(80.0),
            energy_per_msg: Energy::from_pj(1_000.0),
        }
    }
}

/// Maps routes and payload sizes to latency and energy.
///
/// Level `i` of a route is costed with `params[min(i, params.len()-1)]`,
/// so a model with fewer levels than the topology degrades gracefully.
///
/// # Example
///
/// ```
/// use ecoscale_noc::{CostModel, NodeId, Topology, TreeTopology};
///
/// let topo = TreeTopology::new(&[4, 4]);
/// let cost = CostModel::ecoscale_defaults();
/// let near = cost.latency(&topo.route(NodeId(0), NodeId(1)), 64);
/// let far = cost.latency(&topo.route(NodeId(0), NodeId(15)), 64);
/// assert!(far > near);
/// ```
#[derive(Debug, Clone)]
pub struct CostModel {
    params: Vec<LinkParams>,
}

impl CostModel {
    /// Builds a model from per-level parameters (level 0 first).
    ///
    /// # Panics
    ///
    /// Panics if `params` is empty.
    pub fn new(params: Vec<LinkParams>) -> CostModel {
        assert!(!params.is_empty(), "cost model needs at least one level");
        CostModel { params }
    }

    /// The default ECOSCALE ladder: on-chip, board, chassis, cables.
    pub fn ecoscale_defaults() -> CostModel {
        CostModel::new(vec![
            LinkParams::on_chip(),
            LinkParams::on_board(),
            LinkParams::in_chassis(),
            LinkParams::between_chassis(),
        ])
    }

    /// A uniform model that charges every level the same (used by flat
    /// baselines so comparisons isolate topology effects).
    pub fn uniform(p: LinkParams) -> CostModel {
        CostModel::new(vec![p])
    }

    /// Parameters for hierarchy level `level`.
    pub fn level_params(&self, level: u8) -> &LinkParams {
        &self.params[(level as usize).min(self.params.len() - 1)]
    }

    /// Number of configured levels.
    pub fn levels(&self) -> usize {
        self.params.len()
    }

    /// End-to-end latency of `bytes` along `route`, assuming wormhole
    /// routing: per-hop header latency on every hop plus serialization at
    /// the *slowest* link on the path.
    pub fn latency(&self, route: &Route, bytes: u64) -> Duration {
        if route.is_local() {
            return Duration::ZERO;
        }
        let mut lat = Duration::ZERO;
        let mut min_bw = u64::MAX;
        for hop in route.iter() {
            let p = self.level_params(hop.level);
            lat += p.hop_latency;
            min_bw = min_bw.min(p.bandwidth);
        }
        if bytes > 0 {
            lat += Duration::from_bytes_at_bandwidth(bytes, min_bw);
        }
        lat
    }

    /// Total energy of moving `bytes` along `route`.
    pub fn energy(&self, route: &Route, bytes: u64) -> Energy {
        let mut e = Energy::ZERO;
        for hop in route.iter() {
            let p = self.level_params(hop.level);
            e += p.energy_per_msg;
            e += p.energy_per_byte * bytes as f64;
        }
        e
    }

    /// The minimum header latency of any message between Workers in
    /// *different* level-`cluster_level` subtrees of `topo`.
    ///
    /// This is the safe lookahead for a DES engine sharded at that level
    /// of the hierarchy: no cross-cluster interaction can take effect
    /// sooner, so every cluster may run `[t, t + lookahead)` without
    /// synchronizing. In a tree, every pair whose lowest common ancestor
    /// sits at level `c` costs the same, so scanning one representative
    /// pair per ancestor level `c` in `cluster_level+1 ..= levels()`
    /// covers all inter-cluster pairs.
    ///
    /// # Panics
    ///
    /// Panics if `cluster_level` is 0 (every Worker its own cluster has no
    /// positive latency floor below one hop pair — use level >= 1) or not
    /// below `topo.levels()` (coarser would leave a single cluster).
    pub fn min_inter_cluster_latency(&self, topo: &TreeTopology, cluster_level: usize) -> Duration {
        assert!(
            cluster_level >= 1 && cluster_level < topo.levels(),
            "cluster level {cluster_level} must be in 1..{}",
            topo.levels()
        );
        (cluster_level + 1..=topo.levels())
            .map(|c| {
                // first leaf of the second level-(c-1) subtree: the nearest
                // Worker whose common ancestor with Worker 0 is level c
                let dst = NodeId(topo.subtree_leaves(c - 1));
                self.latency(&topo.route(NodeId(0), dst), 0)
            })
            .min()
            .expect("at least one ancestor level above the cluster level")
    }

    /// Serialization time of `bytes` at the bottleneck bandwidth of
    /// `route` (zero for a local route).
    pub fn serialization(&self, route: &Route, bytes: u64) -> Duration {
        if route.is_local() || bytes == 0 {
            return Duration::ZERO;
        }
        let min_bw = route
            .iter()
            .map(|h| self.level_params(h.level).bandwidth)
            .min()
            .expect("non-local route has hops");
        Duration::from_bytes_at_bandwidth(bytes, min_bw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{CrossbarTopology, NodeId, Topology, TreeTopology};

    #[test]
    fn default_ladder_is_monotone() {
        let m = CostModel::ecoscale_defaults();
        assert_eq!(m.levels(), 4);
        for lvl in 0..3u8 {
            let lo = m.level_params(lvl);
            let hi = m.level_params(lvl + 1);
            assert!(hi.hop_latency > lo.hop_latency);
            assert!(hi.bandwidth < lo.bandwidth);
            assert!(hi.energy_per_byte > lo.energy_per_byte);
        }
    }

    #[test]
    fn level_params_clamps_beyond_configured() {
        let m = CostModel::new(vec![LinkParams::on_chip(), LinkParams::on_board()]);
        assert_eq!(m.level_params(7), m.level_params(1));
    }

    #[test]
    fn local_route_is_free() {
        let m = CostModel::ecoscale_defaults();
        let t = TreeTopology::new(&[4]);
        let r = t.route(NodeId(2), NodeId(2));
        assert_eq!(m.latency(&r, 4096), Duration::ZERO);
        assert_eq!(m.energy(&r, 4096), Energy::ZERO);
        assert_eq!(m.serialization(&r, 4096), Duration::ZERO);
    }

    #[test]
    fn farther_routes_cost_more() {
        let m = CostModel::ecoscale_defaults();
        let t = TreeTopology::new(&[4, 4, 4]);
        let near = t.route(NodeId(0), NodeId(1));
        let mid = t.route(NodeId(0), NodeId(5));
        let far = t.route(NodeId(0), NodeId(63));
        for bytes in [0u64, 64, 4096, 1 << 20] {
            assert!(m.latency(&near, bytes) < m.latency(&mid, bytes));
            assert!(m.latency(&mid, bytes) < m.latency(&far, bytes));
        }
        assert!(m.energy(&near, 64) < m.energy(&far, 64));
    }

    #[test]
    fn latency_known_value() {
        // 2 on-chip hops, 64 bytes at 16 GB/s: 2*5ns + 64/16e9 s = 10ns + 4ns
        let m = CostModel::uniform(LinkParams::on_chip());
        let x = CrossbarTopology::new(4);
        let r = x.route(NodeId(0), NodeId(1));
        let lat = m.latency(&r, 64);
        assert_eq!(lat, Duration::from_ns(14));
    }

    #[test]
    fn energy_scales_linearly_in_bytes() {
        let m = CostModel::ecoscale_defaults();
        let t = TreeTopology::new(&[4, 4]);
        let r = t.route(NodeId(0), NodeId(15));
        let e1 = m.energy(&r, 1000);
        let e2 = m.energy(&r, 2000);
        let fixed = m.energy(&r, 0);
        assert!(((e2 - fixed).as_pj() / (e1 - fixed).as_pj() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn serialization_uses_bottleneck() {
        let m = CostModel::ecoscale_defaults();
        let t = TreeTopology::new(&[2, 2, 2, 2]);
        let far = t.route(NodeId(0), NodeId(15));
        // bottleneck is the highest level traversed (level 3 -> 2 GB/s)
        let s = m.serialization(&far, 2_000_000);
        assert_eq!(s, Duration::from_ms(1));
    }

    #[test]
    fn min_inter_cluster_latency_known_value() {
        // clusters = level-1 groups of [4, 4]: nearest foreign Worker is
        // up on-chip, across the board switch, down on-chip:
        // 5 + 40 + 40 + 5 = 90 ns
        let m = CostModel::ecoscale_defaults();
        let t = TreeTopology::new(&[4, 4]);
        assert_eq!(m.min_inter_cluster_latency(&t, 1), Duration::from_ns(90));
    }

    #[test]
    fn min_inter_cluster_latency_matches_exhaustive_scan() {
        let m = CostModel::ecoscale_defaults();
        for fanouts in [&[2usize, 3, 2][..], &[4, 2, 2][..], &[3, 3][..]] {
            let t = TreeTopology::new(fanouts);
            for cluster_level in 1..t.levels() {
                let mut best: Option<Duration> = None;
                for s in 0..t.num_nodes() {
                    for d in 0..t.num_nodes() {
                        let (s, d) = (NodeId(s), NodeId(d));
                        if t.subtree_index(s, cluster_level) == t.subtree_index(d, cluster_level) {
                            continue;
                        }
                        let lat = m.latency(&t.route(s, d), 0);
                        best = Some(best.map_or(lat, |b| b.min(lat)));
                    }
                }
                assert_eq!(
                    m.min_inter_cluster_latency(&t, cluster_level),
                    best.unwrap(),
                    "fanouts {fanouts:?}, cluster level {cluster_level}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "must be in 1..")]
    fn min_inter_cluster_latency_rejects_whole_machine_cluster() {
        let m = CostModel::ecoscale_defaults();
        let t = TreeTopology::new(&[4, 4]);
        let _ = m.min_inter_cluster_latency(&t, 2);
    }

    #[test]
    #[should_panic(expected = "at least one level")]
    fn empty_model_rejected() {
        CostModel::new(vec![]);
    }
}
