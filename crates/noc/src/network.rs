//! An event-driven network with per-link FIFO contention.
//!
//! [`Network`] wraps a [`Topology`] plus a [`CostModel`] and tracks when
//! each link becomes free. Transfers submitted in time order contend for
//! links: a message arriving at a busy link waits for the earlier message
//! to drain. Two forwarding disciplines are modelled:
//!
//! * **store-and-forward** — each link serializes the full payload before
//!   the next hop begins (conservative, used by default), and
//! * **virtual cut-through** — serialization is charged once at the
//!   bottleneck link and other links are held only for the header time.

use std::collections::HashMap;

use ecoscale_sim::{Duration, Energy, Time};

use crate::cost::CostModel;
use crate::topology::{LinkId, NodeId, Route, Topology};
use crate::traffic::TrafficStats;

/// Configuration for a [`Network`].
#[derive(Debug, Clone)]
pub struct NetworkConfig {
    /// Per-level latency/bandwidth/energy parameters.
    pub cost: CostModel,
    /// `true` for virtual cut-through; `false` for store-and-forward.
    pub cut_through: bool,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            cost: CostModel::ecoscale_defaults(),
            cut_through: false,
        }
    }
}

/// The outcome of one message transfer.
#[derive(Debug, Clone, PartialEq)]
pub struct Delivery {
    /// When the last byte arrives at the destination.
    pub arrival: Time,
    /// Interconnect energy charged to this message.
    pub energy: Energy,
    /// Hops traversed.
    pub hops: u32,
    /// Time spent queueing behind other traffic (contention).
    pub queueing: Duration,
}

/// A contention-aware network instance.
///
/// # Example
///
/// ```
/// use ecoscale_noc::{Network, NetworkConfig, NodeId, TreeTopology};
/// use ecoscale_sim::Time;
///
/// let mut net = Network::new(TreeTopology::new(&[4, 4]), NetworkConfig::default());
/// let d1 = net.transfer(Time::ZERO, NodeId(0), NodeId(5), 4096);
/// let d2 = net.transfer(Time::ZERO, NodeId(1), NodeId(5), 4096);
/// // the second message shares links with the first and queues behind it
/// assert!(d2.arrival >= d1.arrival || d2.queueing.is_zero());
/// ```
#[derive(Debug)]
pub struct Network<T: Topology> {
    topo: T,
    config: NetworkConfig,
    link_free_at: HashMap<LinkId, Time>,
    stats: TrafficStats,
    /// Memoized routes per (src, dst) pair. Topologies are static between
    /// [`Network::invalidate_routes`] calls, and traffic patterns reuse
    /// the same pairs heavily, so transfers skip recomputing the route.
    route_memo: HashMap<(NodeId, NodeId), Route>,
    route_memo_hits: u64,
    route_memo_misses: u64,
}

impl<T: Topology> Network<T> {
    /// Creates a network over `topo` with `config`.
    pub fn new(topo: T, config: NetworkConfig) -> Network<T> {
        Network {
            topo,
            config,
            link_free_at: HashMap::new(),
            stats: TrafficStats::new(),
            route_memo: HashMap::new(),
            route_memo_hits: 0,
            route_memo_misses: 0,
        }
    }

    /// The underlying topology.
    pub fn topology(&self) -> &T {
        &self.topo
    }

    /// The cost model in use.
    pub fn cost(&self) -> &CostModel {
        &self.config.cost
    }

    /// Accumulated traffic statistics.
    pub fn stats(&self) -> &TrafficStats {
        &self.stats
    }

    /// Contention-free latency quote for `bytes` from `src` to `dst`.
    pub fn quote(&self, src: NodeId, dst: NodeId, bytes: u64) -> Duration {
        let route = self.topo.route(src, dst);
        self.config.cost.latency(&route, bytes)
    }

    /// Submits a transfer of `bytes` from `src` to `dst` starting at
    /// `start`, updating link occupancy and traffic statistics.
    ///
    /// Transfers should be submitted in non-decreasing `start` order for
    /// the contention model to be meaningful; out-of-order submissions are
    /// allowed but see the link in its latest known state.
    pub fn transfer(&mut self, start: Time, src: NodeId, dst: NodeId, bytes: u64) -> Delivery {
        let route = self.memoized_route(src, dst);
        self.stats.record(&route, bytes, &self.config.cost);
        if route.is_local() {
            return Delivery {
                arrival: start,
                energy: Energy::ZERO,
                hops: 0,
                queueing: Duration::ZERO,
            };
        }
        let energy = self.config.cost.energy(&route, bytes);
        let mut cursor = start;
        let mut queueing = Duration::ZERO;
        if self.config.cut_through {
            // Hold every link for the header; serialize once at the
            // bottleneck.
            let mut min_bw = u64::MAX;
            for hop in route.iter() {
                let p = *self.config.cost.level_params(hop.level);
                let free = self.link_free_at.get(&hop.link).copied().unwrap_or(Time::ZERO);
                if free > cursor {
                    queueing += free - cursor;
                    cursor = free;
                }
                cursor += p.hop_latency;
                self.link_free_at.insert(hop.link, cursor);
                min_bw = min_bw.min(p.bandwidth);
            }
            if bytes > 0 {
                cursor += Duration::from_bytes_at_bandwidth(bytes, min_bw);
            }
        } else {
            // Store-and-forward: each link serializes the whole payload.
            for hop in route.iter() {
                let p = *self.config.cost.level_params(hop.level);
                let free = self.link_free_at.get(&hop.link).copied().unwrap_or(Time::ZERO);
                if free > cursor {
                    queueing += free - cursor;
                    cursor = free;
                }
                cursor += p.hop_latency;
                if bytes > 0 {
                    cursor += Duration::from_bytes_at_bandwidth(bytes, p.bandwidth);
                }
                self.link_free_at.insert(hop.link, cursor);
            }
        }
        Delivery {
            arrival: cursor,
            energy,
            hops: route.hop_count(),
            queueing,
        }
    }

    /// Route lookup passthrough (uncached).
    pub fn route(&self, src: NodeId, dst: NodeId) -> Route {
        self.topo.route(src, dst)
    }

    /// Route lookup through the per-(src, dst) memo.
    fn memoized_route(&mut self, src: NodeId, dst: NodeId) -> Route {
        if let Some(r) = self.route_memo.get(&(src, dst)) {
            self.route_memo_hits += 1;
            return r.clone();
        }
        self.route_memo_misses += 1;
        let r = self.topo.route(src, dst);
        self.route_memo.insert((src, dst), r.clone());
        r
    }

    /// Transfers served from the route memo / computed fresh.
    pub fn route_memo_stats(&self) -> (u64, u64) {
        (self.route_memo_hits, self.route_memo_misses)
    }

    /// Drops all memoized routes. Call after reconfiguring the topology
    /// (e.g. remapping a failed link) so stale paths are never reused.
    pub fn invalidate_routes(&mut self) {
        self.route_memo.clear();
    }

    /// Clears link occupancy, statistics and memoized routes.
    pub fn reset(&mut self) {
        self.link_free_at.clear();
        self.stats = TrafficStats::new();
        self.invalidate_routes();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{CrossbarTopology, TreeTopology};

    fn net(cut_through: bool) -> Network<TreeTopology> {
        Network::new(
            TreeTopology::new(&[4, 4]),
            NetworkConfig {
                cost: CostModel::ecoscale_defaults(),
                cut_through,
            },
        )
    }

    #[test]
    fn local_transfer_is_instant_and_free() {
        let mut n = net(false);
        let d = n.transfer(Time::from_ns(100), NodeId(3), NodeId(3), 1 << 20);
        assert_eq!(d.arrival, Time::from_ns(100));
        assert_eq!(d.energy, Energy::ZERO);
        assert_eq!(d.hops, 0);
    }

    #[test]
    fn uncontended_matches_quote_in_cut_through() {
        let mut n = net(true);
        let quote = n.quote(NodeId(0), NodeId(5), 4096);
        let d = n.transfer(Time::ZERO, NodeId(0), NodeId(5), 4096);
        assert_eq!(d.arrival, Time::ZERO + quote);
        assert_eq!(d.queueing, Duration::ZERO);
    }

    #[test]
    fn store_and_forward_slower_than_cut_through() {
        let mut sf = net(false);
        let mut ct = net(true);
        let a = sf.transfer(Time::ZERO, NodeId(0), NodeId(15), 1 << 16);
        let b = ct.transfer(Time::ZERO, NodeId(0), NodeId(15), 1 << 16);
        assert!(a.arrival > b.arrival);
    }

    #[test]
    fn contention_queues_second_message() {
        let mut n = net(false);
        let first = n.transfer(Time::ZERO, NodeId(0), NodeId(15), 1 << 20);
        // same source, same links
        let second = n.transfer(Time::ZERO, NodeId(0), NodeId(15), 1 << 20);
        assert!(second.queueing > Duration::ZERO);
        assert!(second.arrival > first.arrival);
    }

    #[test]
    fn disjoint_routes_do_not_contend() {
        let mut n = net(false);
        let a = n.transfer(Time::ZERO, NodeId(0), NodeId(1), 4096);
        let b = n.transfer(Time::ZERO, NodeId(8), NodeId(9), 4096);
        assert_eq!(a.queueing, Duration::ZERO);
        assert_eq!(b.queueing, Duration::ZERO);
        assert_eq!(a.arrival, b.arrival);
    }

    #[test]
    fn stats_accumulate() {
        let mut n = net(false);
        n.transfer(Time::ZERO, NodeId(0), NodeId(1), 100);
        n.transfer(Time::ZERO, NodeId(0), NodeId(15), 100);
        assert_eq!(n.stats().messages(), 2);
        assert!(n.stats().energy().as_pj() > 0.0);
        n.reset();
        assert_eq!(n.stats().messages(), 0);
    }

    #[test]
    fn crossbar_network_works_too() {
        let mut n = Network::new(CrossbarTopology::new(8), NetworkConfig::default());
        let d = n.transfer(Time::ZERO, NodeId(0), NodeId(7), 64);
        assert_eq!(d.hops, 2);
        assert!(d.arrival > Time::ZERO);
    }

    #[test]
    fn route_memo_hits_on_repeated_pairs_and_invalidates() {
        let mut n = net(false);
        n.transfer(Time::ZERO, NodeId(0), NodeId(15), 64);
        n.transfer(Time::ZERO, NodeId(0), NodeId(15), 64);
        n.transfer(Time::ZERO, NodeId(1), NodeId(15), 64);
        assert_eq!(n.route_memo_stats(), (1, 2));
        // memoized transfers match the uncached route
        let d = n.transfer(Time::from_ms(10), NodeId(0), NodeId(15), 64);
        assert_eq!(d.hops, n.route(NodeId(0), NodeId(15)).hop_count());
        n.invalidate_routes();
        n.transfer(Time::from_ms(10), NodeId(0), NodeId(15), 64);
        assert_eq!(n.route_memo_stats(), (2, 3));
    }

    #[test]
    fn later_start_sees_free_links() {
        let mut n = net(false);
        let first = n.transfer(Time::ZERO, NodeId(0), NodeId(15), 1 << 20);
        // start well after the first drains: no queueing
        let late = first.arrival + Duration::from_ms(1);
        let second = n.transfer(late, NodeId(0), NodeId(15), 1 << 20);
        assert_eq!(second.queueing, Duration::ZERO);
    }
}
