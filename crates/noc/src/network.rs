//! An event-driven network with per-link FIFO contention.
//!
//! [`Network`] wraps a [`Topology`] plus a [`CostModel`] and tracks when
//! each link becomes free. Transfers submitted in time order contend for
//! links: a message arriving at a busy link waits for the earlier message
//! to drain. Two forwarding disciplines are modelled:
//!
//! * **store-and-forward** — each link serializes the full payload before
//!   the next hop begins (conservative, used by default), and
//! * **virtual cut-through** — serialization is charged once at the
//!   bottleneck link and other links are held only for the header time.

use std::collections::HashMap;

use ecoscale_sim::check::{invariant, CheckPlane};
use ecoscale_sim::{
    fault::salt, CampaignSpec, Counter, Duration, Energy, FaultClock, Histogram, MetricsRegistry,
    OnlineStats, ProbFault, SimRng, Time, TraceBuffer, Tracer, TrackId,
};

use crate::cost::CostModel;
use crate::topology::{LinkId, NodeId, Route, Topology};
use crate::traffic::TrafficStats;

/// Configuration for a [`Network`].
#[derive(Debug, Clone)]
pub struct NetworkConfig {
    /// Per-level latency/bandwidth/energy parameters.
    pub cost: CostModel,
    /// `true` for virtual cut-through; `false` for store-and-forward.
    pub cut_through: bool,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            cost: CostModel::ecoscale_defaults(),
            cut_through: false,
        }
    }
}

/// The outcome of one message transfer.
#[derive(Debug, Clone, PartialEq)]
pub struct Delivery {
    /// When the last byte arrives at the destination.
    pub arrival: Time,
    /// Interconnect energy charged to this message.
    pub energy: Energy,
    /// Hops traversed.
    pub hops: u32,
    /// Time spent queueing behind other traffic (contention).
    pub queueing: Duration,
    /// `true` when an active fault campaign corrupted the payload in
    /// flight; the receiver must discard and re-request it. Always
    /// `false` without a fault model.
    pub corrupted: bool,
}

/// FaultPlane injection for the interconnect: link degradation windows
/// plus probabilistic packet corruption.
///
/// A [`FaultClock`] fires degradation events; each one picks a hop of the
/// transfer in flight when it comes due and multiplies that link's
/// serialization time by the campaign's slowdown factor for a fixed
/// window (a flapping or retraining link). Independently, every delivery
/// is corrupted with the campaign's per-message probability.
#[derive(Debug)]
struct LinkFaultModel {
    degrade_clock: FaultClock,
    pick: SimRng,
    corrupt: ProbFault,
    degrade_for: Duration,
    slowdown: f64,
    /// Links currently degraded, and when they recover.
    degraded: HashMap<LinkId, Time>,
    degrade_events: Counter,
    degraded_hops: Counter,
    corrupted: Counter,
}

/// A contention-aware network instance.
///
/// # Example
///
/// ```
/// use ecoscale_noc::{Network, NetworkConfig, NodeId, TreeTopology};
/// use ecoscale_sim::Time;
///
/// let mut net = Network::new(TreeTopology::new(&[4, 4]), NetworkConfig::default());
/// let d1 = net.transfer(Time::ZERO, NodeId(0), NodeId(5), 4096);
/// let d2 = net.transfer(Time::ZERO, NodeId(1), NodeId(5), 4096);
/// // the second message shares links with the first and queues behind it
/// assert!(d2.arrival >= d1.arrival || d2.queueing.is_zero());
/// ```
#[derive(Debug)]
pub struct Network<T: Topology> {
    topo: T,
    config: NetworkConfig,
    link_free_at: HashMap<LinkId, Time>,
    stats: TrafficStats,
    /// Memoized routes per (src, dst) pair. Topologies are static between
    /// [`Network::invalidate_routes`] calls, and traffic patterns reuse
    /// the same pairs heavily, so transfers skip recomputing the route.
    route_memo: HashMap<(NodeId, NodeId), Route>,
    route_memo_hits: u64,
    route_memo_misses: u64,
    hop_hist: Histogram,
    queue_ns: OnlineStats,
    /// Cumulative busy time per link (the intervals a link was held by a
    /// message), the basis of per-link utilization.
    link_busy: HashMap<LinkId, Duration>,
    tracer: Tracer,
    link_tracks: HashMap<LinkId, TrackId>,
    faults: Option<LinkFaultModel>,
}

impl<T: Topology> Network<T> {
    /// Creates a network over `topo` with `config`.
    pub fn new(topo: T, config: NetworkConfig) -> Network<T> {
        Network {
            topo,
            config,
            link_free_at: HashMap::new(),
            stats: TrafficStats::new(),
            route_memo: HashMap::new(),
            route_memo_hits: 0,
            route_memo_misses: 0,
            hop_hist: Histogram::new(),
            queue_ns: OnlineStats::new(),
            link_busy: HashMap::new(),
            tracer: Tracer::disabled(),
            link_tracks: HashMap::new(),
            faults: None,
        }
    }

    /// Arms interconnect fault injection from `spec`. A campaign with
    /// both the link-degradation clock and packet corruption off is a
    /// no-op: no model is installed and transfers behave bit-identically
    /// to an unarmed network.
    pub fn set_faults(&mut self, spec: &CampaignSpec) {
        let degrade = !spec.link_degrade_mtbf.is_zero();
        let corrupt = spec.packet_corrupt_p > 0.0;
        self.faults = if degrade || corrupt {
            Some(LinkFaultModel {
                degrade_clock: if degrade {
                    FaultClock::new(spec.link_degrade_mtbf, spec.rng(salt::LINK_DEGRADE))
                } else {
                    FaultClock::disabled()
                },
                pick: spec.rng(salt::LINK_PICK),
                corrupt: if corrupt {
                    ProbFault::new(spec.packet_corrupt_p, spec.rng(salt::PACKET_CORRUPT))
                } else {
                    ProbFault::disabled()
                },
                degrade_for: spec.link_degrade_for,
                slowdown: spec.link_slowdown.max(1.0),
                degraded: HashMap::new(),
                degrade_events: Counter::new(),
                degraded_hops: Counter::new(),
                corrupted: Counter::new(),
            })
        } else {
            None
        };
    }

    /// Link-degradation events fired, hops that crossed a degraded link,
    /// and deliveries corrupted so far (all zero when unarmed).
    pub fn fault_stats(&self) -> (u64, u64, u64) {
        match &self.faults {
            Some(f) => (
                f.degrade_events.get(),
                f.degraded_hops.get(),
                f.corrupted.get(),
            ),
            None => (0, 0, 0),
        }
    }

    /// Installs a tracer. Every subsequent transfer records one span
    /// per link held, on a `noc/link<N>` track. The default tracer is
    /// disabled and costs one branch per hop.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
        self.link_tracks.clear();
    }

    /// Drains the tracer's buffered events (empty when disabled).
    pub fn take_trace(&self) -> TraceBuffer {
        self.tracer.take()
    }

    /// The underlying topology.
    pub fn topology(&self) -> &T {
        &self.topo
    }

    /// The cost model in use.
    pub fn cost(&self) -> &CostModel {
        &self.config.cost
    }

    /// Accumulated traffic statistics.
    pub fn stats(&self) -> &TrafficStats {
        &self.stats
    }

    /// Contention-free latency quote for `bytes` from `src` to `dst`.
    pub fn quote(&self, src: NodeId, dst: NodeId, bytes: u64) -> Duration {
        let route = self.topo.route(src, dst);
        self.config.cost.latency(&route, bytes)
    }

    /// Submits a transfer of `bytes` from `src` to `dst` starting at
    /// `start`, updating link occupancy and traffic statistics.
    ///
    /// Transfers should be submitted in non-decreasing `start` order for
    /// the contention model to be meaningful; out-of-order submissions are
    /// allowed but see the link in its latest known state.
    pub fn transfer(&mut self, start: Time, src: NodeId, dst: NodeId, bytes: u64) -> Delivery {
        let route = self.memoized_route(src, dst);
        self.stats.record(&route, bytes, &self.config.cost);
        self.hop_hist.record(route.hop_count() as u64);
        if route.is_local() {
            self.queue_ns.record(0.0);
            return Delivery {
                arrival: start,
                energy: Energy::ZERO,
                hops: 0,
                queueing: Duration::ZERO,
                corrupted: false,
            };
        }
        // Drain due link-degradation events: each picks a hop of this
        // transfer's route and slows that link for a recovery window.
        if let Some(f) = &mut self.faults {
            while let Some(at) = f.degrade_clock.pop_due(start) {
                f.degrade_events.incr();
                let hops: Vec<LinkId> = route.iter().map(|h| h.link).collect();
                let victim = hops[f.pick.gen_range_usize(0, hops.len())];
                let until = at + f.degrade_for;
                let e = f.degraded.entry(victim).or_insert(until);
                *e = (*e).max(until);
            }
        }
        let energy = self.config.cost.energy(&route, bytes);
        let mut cursor = start;
        let mut queueing = Duration::ZERO;
        if self.config.cut_through {
            // Hold every link for the header; serialize once at the
            // bottleneck.
            let mut min_bw = u64::MAX;
            let mut degraded_any = false;
            for hop in route.iter() {
                let p = *self.config.cost.level_params(hop.level);
                let free = self
                    .link_free_at
                    .get(&hop.link)
                    .copied()
                    .unwrap_or(Time::ZERO);
                if free > cursor {
                    queueing += free - cursor;
                    cursor = free;
                }
                if let Some(f) = &mut self.faults {
                    if f.degraded.get(&hop.link).is_some_and(|&u| u > cursor) {
                        f.degraded_hops.incr();
                        degraded_any = true;
                    }
                }
                let held_from = cursor;
                cursor += p.hop_latency;
                self.link_free_at.insert(hop.link, cursor);
                self.note_link_use(hop.link, held_from, cursor - held_from);
                min_bw = min_bw.min(p.bandwidth);
            }
            if bytes > 0 {
                let mut ser = Duration::from_bytes_at_bandwidth(bytes, min_bw);
                if degraded_any {
                    // a degraded link bottlenecks the whole cut-through path
                    ser = ser.mul_f64(self.faults.as_ref().map_or(1.0, |f| f.slowdown));
                }
                cursor += ser;
            }
        } else {
            // Store-and-forward: each link serializes the whole payload.
            for hop in route.iter() {
                let p = *self.config.cost.level_params(hop.level);
                let free = self
                    .link_free_at
                    .get(&hop.link)
                    .copied()
                    .unwrap_or(Time::ZERO);
                if free > cursor {
                    queueing += free - cursor;
                    cursor = free;
                }
                let held_from = cursor;
                cursor += p.hop_latency;
                if bytes > 0 {
                    let mut ser = Duration::from_bytes_at_bandwidth(bytes, p.bandwidth);
                    if let Some(f) = &mut self.faults {
                        if f.degraded.get(&hop.link).is_some_and(|&u| u > cursor) {
                            f.degraded_hops.incr();
                            ser = ser.mul_f64(f.slowdown);
                        }
                    }
                    cursor += ser;
                }
                self.link_free_at.insert(hop.link, cursor);
                self.note_link_use(hop.link, held_from, cursor - held_from);
            }
        }
        self.queue_ns.record(queueing.as_ns_f64());
        let corrupted = match &mut self.faults {
            Some(f) => f.corrupt.strikes(),
            None => false,
        };
        if corrupted {
            self.faults.as_mut().expect("faults armed").corrupted.incr();
        }
        Delivery {
            arrival: cursor,
            energy,
            hops: route.hop_count(),
            queueing,
            corrupted,
        }
    }

    /// Records one link occupancy interval: accumulates per-link busy
    /// time and, when tracing, emits a span on the link's track.
    fn note_link_use(&mut self, link: LinkId, from: Time, held: Duration) {
        *self.link_busy.entry(link).or_insert(Duration::ZERO) += held;
        if self.tracer.is_enabled() {
            let track = match self.link_tracks.get(&link) {
                Some(&t) => t,
                None => {
                    let t = self.tracer.track(&format!("noc/{link}"));
                    self.link_tracks.insert(link, t);
                    t
                }
            };
            self.tracer.complete(track, "xfer", from, held);
        }
    }

    /// Cumulative busy time of `link` so far.
    pub fn link_busy(&self, link: LinkId) -> Duration {
        self.link_busy.get(&link).copied().unwrap_or(Duration::ZERO)
    }

    /// Folds NoC instruments into `m` under `prefix`: message/byte
    /// counters, the hop-count histogram, queueing-delay stats, the
    /// number of distinct links used, and the distribution of per-link
    /// busy time (microseconds) — the per-link utilization signal.
    pub fn export_metrics(&self, m: &mut MetricsRegistry, prefix: &str) {
        m.add(&format!("{prefix}.messages"), self.stats.messages());
        m.add(
            &format!("{prefix}.local_messages"),
            self.stats.local_messages(),
        );
        m.add(
            &format!("{prefix}.payload_bytes"),
            self.stats.payload_bytes(),
        );
        m.add(&format!("{prefix}.byte_hops"), self.stats.byte_hops());
        m.merge_hist(&format!("{prefix}.hops"), &self.hop_hist);
        m.merge_stats(&format!("{prefix}.queue_ns"), &self.queue_ns);
        m.add(&format!("{prefix}.links_used"), self.link_busy.len() as u64);
        let busy_name = format!("{prefix}.link_busy_us");
        let mut links: Vec<(&LinkId, &Duration)> = self.link_busy.iter().collect();
        links.sort_by_key(|(id, _)| **id);
        for (_, busy) in links {
            m.record(&busy_name, busy.as_ns() / 1_000);
        }
        m.add(&format!("{prefix}.route_memo_hits"), self.route_memo_hits);
        m.add(
            &format!("{prefix}.route_memo_misses"),
            self.route_memo_misses,
        );
        if let Some(f) = &self.faults {
            m.add(&format!("{prefix}.degrade_events"), f.degrade_events.get());
            m.add(&format!("{prefix}.degraded_hops"), f.degraded_hops.get());
            m.add(&format!("{prefix}.corrupted"), f.corrupted.get());
        }
    }

    /// Route lookup passthrough (uncached).
    pub fn route(&self, src: NodeId, dst: NodeId) -> Route {
        self.topo.route(src, dst)
    }

    /// Route lookup through the per-(src, dst) memo.
    fn memoized_route(&mut self, src: NodeId, dst: NodeId) -> Route {
        if let Some(r) = self.route_memo.get(&(src, dst)) {
            self.route_memo_hits += 1;
            return r.clone();
        }
        self.route_memo_misses += 1;
        let r = self.topo.route(src, dst);
        self.route_memo.insert((src, dst), r.clone());
        r
    }

    /// Transfers served from the route memo / computed fresh.
    pub fn route_memo_stats(&self) -> (u64, u64) {
        (self.route_memo_hits, self.route_memo_misses)
    }

    /// Drops all memoized routes. Call after reconfiguring the topology
    /// (e.g. remapping a failed link) so stale paths are never reused.
    pub fn invalidate_routes(&mut self) {
        self.route_memo.clear();
    }

    /// CheckPlane hook: asserts the optimized transfer path's caches and
    /// accounting agree with first principles. Read-only; early-outs when
    /// `cp` is disabled.
    ///
    /// * `noc.route_memo_fresh` — every memoized route equals a fresh
    ///   computation on the topology.
    /// * `noc.conservation` — every transfer is counted exactly once in the
    ///   hop histogram and queueing stats, and the memo counters cover at
    ///   least every recorded message (they survive [`Network::reset`]).
    /// * `noc.link_bookkeeping` — busy-time and free-at maps track the same
    ///   link set.
    pub fn check_invariants(&self, cp: &mut CheckPlane) {
        if !cp.is_enabled() {
            return;
        }
        for (&(src, dst), route) in &self.route_memo {
            cp.check(
                invariant::NOC_ROUTE_MEMO_FRESH,
                self.topo.route(src, dst) == *route,
                || format!("memoized route {src} -> {dst} is stale"),
            );
        }
        let messages = self.stats.messages();
        cp.check(
            invariant::NOC_CONSERVATION,
            self.hop_hist.count() == messages,
            || {
                format!(
                    "hop histogram holds {} samples for {messages} messages",
                    self.hop_hist.count()
                )
            },
        );
        cp.check(
            invariant::NOC_CONSERVATION,
            self.queue_ns.count() == messages,
            || {
                format!(
                    "queueing stats hold {} samples for {messages} messages",
                    self.queue_ns.count()
                )
            },
        );
        cp.check(
            invariant::NOC_CONSERVATION,
            self.route_memo_hits + self.route_memo_misses >= messages,
            || {
                format!(
                    "route memo saw {} lookups for {messages} messages",
                    self.route_memo_hits + self.route_memo_misses
                )
            },
        );
        for link in self.link_busy.keys() {
            cp.check(
                invariant::NOC_LINK_BOOKKEEPING,
                self.link_free_at.contains_key(link),
                || format!("{link} has busy-time but no occupancy record"),
            );
        }
    }

    /// Serializes the network's mutable state: link occupancy and busy
    /// time (sorted by link id), traffic statistics, memoized route
    /// *keys* (routes are recomputed on restore so the memo can never go
    /// stale across a snapshot), instruments, and the fault model's RNG
    /// streams and degradation windows. The tracer and its track cache
    /// are host-facing and not serialized.
    pub fn snapshot_state(&self, w: &mut ecoscale_sim::SnapWriter) {
        use ecoscale_sim::Snapshot as _;
        let mut free: Vec<(LinkId, Time)> =
            self.link_free_at.iter().map(|(k, v)| (*k, *v)).collect();
        free.sort_unstable_by_key(|&(l, _)| l);
        w.put_usize(free.len());
        for (l, t) in free {
            w.put_u64(l.0);
            w.put_time(t);
        }
        self.stats.snapshot_state(w);
        let mut memo: Vec<(NodeId, NodeId)> = self.route_memo.keys().copied().collect();
        memo.sort_unstable();
        w.put_usize(memo.len());
        for (s, d) in memo {
            w.put_usize(s.0);
            w.put_usize(d.0);
        }
        w.put_u64(self.route_memo_hits);
        w.put_u64(self.route_memo_misses);
        self.hop_hist.snapshot(w);
        self.queue_ns.snapshot(w);
        let mut busy: Vec<(LinkId, Duration)> =
            self.link_busy.iter().map(|(k, v)| (*k, *v)).collect();
        busy.sort_unstable_by_key(|&(l, _)| l);
        w.put_usize(busy.len());
        for (l, d) in busy {
            w.put_u64(l.0);
            w.put_duration(d);
        }
        w.put_bool(self.faults.is_some());
        if let Some(f) = &self.faults {
            f.degrade_clock.snapshot(w);
            f.pick.snapshot(w);
            f.corrupt.snapshot(w);
            w.put_duration(f.degrade_for);
            w.put_f64(f.slowdown);
            let mut degraded: Vec<(LinkId, Time)> =
                f.degraded.iter().map(|(k, v)| (*k, *v)).collect();
            degraded.sort_unstable_by_key(|&(l, _)| l);
            w.put_usize(degraded.len());
            for (l, t) in degraded {
                w.put_u64(l.0);
                w.put_time(t);
            }
            f.degrade_events.snapshot(w);
            f.degraded_hops.snapshot(w);
            f.corrupted.snapshot(w);
        }
    }

    /// Overlays state captured by [`Network::snapshot_state`] onto this
    /// network, which must wrap the same topology and configuration.
    /// Memoized routes are recomputed from the live topology.
    ///
    /// # Errors
    ///
    /// [`ecoscale_sim::RestoreError`] on truncated, unsorted, or
    /// out-of-range data; `self` may be partially overwritten on error
    /// and should be discarded.
    pub fn restore_state(
        &mut self,
        r: &mut ecoscale_sim::SnapReader<'_>,
    ) -> Result<(), ecoscale_sim::RestoreError> {
        use ecoscale_sim::snap::malformed;
        use ecoscale_sim::Restore;
        let n = r.get_usize()?;
        if n > r.remaining() {
            return Err(malformed(format!(
                "network claims {n} occupied links but only {} bytes remain",
                r.remaining()
            )));
        }
        self.link_free_at.clear();
        let mut prev: Option<u64> = None;
        for i in 0..n {
            let l = r.get_u64()?;
            let t = r.get_time()?;
            if prev.is_some_and(|p| p >= l) {
                return Err(malformed(format!("link-free map unsorted at index {i}")));
            }
            prev = Some(l);
            self.link_free_at.insert(LinkId(l), t);
        }
        self.stats = TrafficStats::restore_state(r)?;
        let n = r.get_usize()?;
        if n > r.remaining() {
            return Err(malformed(format!(
                "network claims {n} memoized routes but only {} bytes remain",
                r.remaining()
            )));
        }
        self.route_memo.clear();
        let mut prev: Option<(usize, usize)> = None;
        for i in 0..n {
            let s = r.get_usize()?;
            let d = r.get_usize()?;
            if prev.is_some_and(|p| p >= (s, d)) {
                return Err(malformed(format!("route memo unsorted at index {i}")));
            }
            prev = Some((s, d));
            let (s, d) = (NodeId(s), NodeId(d));
            self.route_memo.insert((s, d), self.topo.route(s, d));
        }
        self.route_memo_hits = r.get_u64()?;
        self.route_memo_misses = r.get_u64()?;
        self.hop_hist = Histogram::restore(r)?;
        self.queue_ns = OnlineStats::restore(r)?;
        let n = r.get_usize()?;
        if n > r.remaining() {
            return Err(malformed(format!(
                "network claims {n} busy links but only {} bytes remain",
                r.remaining()
            )));
        }
        self.link_busy.clear();
        let mut prev: Option<u64> = None;
        for i in 0..n {
            let l = r.get_u64()?;
            let d = r.get_duration()?;
            if prev.is_some_and(|p| p >= l) {
                return Err(malformed(format!("link-busy map unsorted at index {i}")));
            }
            prev = Some(l);
            self.link_busy.insert(LinkId(l), d);
        }
        self.faults = if r.get_bool()? {
            let degrade_clock = FaultClock::restore(r)?;
            let pick = SimRng::restore(r)?;
            let corrupt = ProbFault::restore(r)?;
            let degrade_for = r.get_duration()?;
            let slowdown = r.get_f64()?;
            if !slowdown.is_finite() || slowdown < 1.0 {
                return Err(malformed(format!("fault slowdown {slowdown} out of range")));
            }
            let n = r.get_usize()?;
            if n > r.remaining() {
                return Err(malformed(format!(
                    "network claims {n} degraded links but only {} bytes remain",
                    r.remaining()
                )));
            }
            let mut degraded = HashMap::new();
            let mut prev: Option<u64> = None;
            for i in 0..n {
                let l = r.get_u64()?;
                let t = r.get_time()?;
                if prev.is_some_and(|p| p >= l) {
                    return Err(malformed(format!("degraded set unsorted at index {i}")));
                }
                prev = Some(l);
                degraded.insert(LinkId(l), t);
            }
            Some(LinkFaultModel {
                degrade_clock,
                pick,
                corrupt,
                degrade_for,
                slowdown,
                degraded,
                degrade_events: Counter::restore(r)?,
                degraded_hops: Counter::restore(r)?,
                corrupted: Counter::restore(r)?,
            })
        } else {
            None
        };
        Ok(())
    }

    /// Clears link occupancy, statistics, instruments and memoized
    /// routes. The tracer (if any) is kept but its per-link track cache
    /// is rebuilt lazily.
    pub fn reset(&mut self) {
        self.link_free_at.clear();
        self.stats = TrafficStats::new();
        self.hop_hist = Histogram::new();
        self.queue_ns = OnlineStats::new();
        self.link_busy.clear();
        if let Some(f) = &mut self.faults {
            f.degraded.clear();
        }
        self.invalidate_routes();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{CrossbarTopology, TreeTopology};

    fn net(cut_through: bool) -> Network<TreeTopology> {
        Network::new(
            TreeTopology::new(&[4, 4]),
            NetworkConfig {
                cost: CostModel::ecoscale_defaults(),
                cut_through,
            },
        )
    }

    #[test]
    fn local_transfer_is_instant_and_free() {
        let mut n = net(false);
        let d = n.transfer(Time::from_ns(100), NodeId(3), NodeId(3), 1 << 20);
        assert_eq!(d.arrival, Time::from_ns(100));
        assert_eq!(d.energy, Energy::ZERO);
        assert_eq!(d.hops, 0);
    }

    #[test]
    fn uncontended_matches_quote_in_cut_through() {
        let mut n = net(true);
        let quote = n.quote(NodeId(0), NodeId(5), 4096);
        let d = n.transfer(Time::ZERO, NodeId(0), NodeId(5), 4096);
        assert_eq!(d.arrival, Time::ZERO + quote);
        assert_eq!(d.queueing, Duration::ZERO);
    }

    #[test]
    fn store_and_forward_slower_than_cut_through() {
        let mut sf = net(false);
        let mut ct = net(true);
        let a = sf.transfer(Time::ZERO, NodeId(0), NodeId(15), 1 << 16);
        let b = ct.transfer(Time::ZERO, NodeId(0), NodeId(15), 1 << 16);
        assert!(a.arrival > b.arrival);
    }

    #[test]
    fn contention_queues_second_message() {
        let mut n = net(false);
        let first = n.transfer(Time::ZERO, NodeId(0), NodeId(15), 1 << 20);
        // same source, same links
        let second = n.transfer(Time::ZERO, NodeId(0), NodeId(15), 1 << 20);
        assert!(second.queueing > Duration::ZERO);
        assert!(second.arrival > first.arrival);
    }

    #[test]
    fn disjoint_routes_do_not_contend() {
        let mut n = net(false);
        let a = n.transfer(Time::ZERO, NodeId(0), NodeId(1), 4096);
        let b = n.transfer(Time::ZERO, NodeId(8), NodeId(9), 4096);
        assert_eq!(a.queueing, Duration::ZERO);
        assert_eq!(b.queueing, Duration::ZERO);
        assert_eq!(a.arrival, b.arrival);
    }

    #[test]
    fn stats_accumulate() {
        let mut n = net(false);
        n.transfer(Time::ZERO, NodeId(0), NodeId(1), 100);
        n.transfer(Time::ZERO, NodeId(0), NodeId(15), 100);
        assert_eq!(n.stats().messages(), 2);
        assert!(n.stats().energy().as_pj() > 0.0);
        n.reset();
        assert_eq!(n.stats().messages(), 0);
    }

    #[test]
    fn crossbar_network_works_too() {
        let mut n = Network::new(CrossbarTopology::new(8), NetworkConfig::default());
        let d = n.transfer(Time::ZERO, NodeId(0), NodeId(7), 64);
        assert_eq!(d.hops, 2);
        assert!(d.arrival > Time::ZERO);
    }

    #[test]
    fn route_memo_hits_on_repeated_pairs_and_invalidates() {
        let mut n = net(false);
        n.transfer(Time::ZERO, NodeId(0), NodeId(15), 64);
        n.transfer(Time::ZERO, NodeId(0), NodeId(15), 64);
        n.transfer(Time::ZERO, NodeId(1), NodeId(15), 64);
        assert_eq!(n.route_memo_stats(), (1, 2));
        // memoized transfers match the uncached route
        let d = n.transfer(Time::from_ms(10), NodeId(0), NodeId(15), 64);
        assert_eq!(d.hops, n.route(NodeId(0), NodeId(15)).hop_count());
        n.invalidate_routes();
        n.transfer(Time::from_ms(10), NodeId(0), NodeId(15), 64);
        assert_eq!(n.route_memo_stats(), (2, 3));
    }

    #[test]
    fn metrics_and_trace_capture_link_activity() {
        let mut n = net(false);
        n.set_tracer(ecoscale_sim::Tracer::buffering());
        n.transfer(Time::ZERO, NodeId(0), NodeId(15), 4096);
        n.transfer(Time::ZERO, NodeId(3), NodeId(3), 4096); // local
        let mut m = ecoscale_sim::MetricsRegistry::new();
        n.export_metrics(&mut m, "noc");
        assert_eq!(m.counter("noc.messages"), Some(2));
        assert_eq!(m.counter("noc.local_messages"), Some(1));
        assert!(m.counter("noc.links_used").unwrap() > 0);
        match m.get("noc.hops") {
            Some(ecoscale_sim::Instrument::Histogram(h)) => assert_eq!(h.count(), 2),
            other => panic!("unexpected: {other:?}"),
        }
        let trace = n.take_trace();
        // one span per link held by the non-local transfer
        assert_eq!(trace.len() as u64, m.counter("noc.links_used").unwrap());
        assert!(trace.tracks().iter().all(|t| t.starts_with("noc/link")));
        let total: Duration = trace
            .events()
            .iter()
            .map(|e| match e.kind {
                ecoscale_sim::trace::EventKind::Complete { dur } => dur,
                _ => Duration::ZERO,
            })
            .fold(Duration::ZERO, |a, b| a + b);
        let busy: Duration = n.link_busy.values().fold(Duration::ZERO, |a, b| a + *b);
        assert_eq!(total, busy);
    }

    fn fault_spec() -> CampaignSpec {
        let mut s = CampaignSpec::off();
        s.link_degrade_mtbf = Duration::from_us(100);
        s.link_degrade_for = Duration::from_us(500);
        s.link_slowdown = 8.0;
        s.packet_corrupt_p = 0.2;
        s
    }

    #[test]
    fn off_campaign_leaves_network_untouched() {
        let mut plain = net(false);
        let mut armed = net(false);
        armed.set_faults(&CampaignSpec::off());
        for i in 0..20u64 {
            let t = Time::from_us(i);
            let a = plain.transfer(t, NodeId(0), NodeId(15), 4096);
            let b = armed.transfer(t, NodeId(0), NodeId(15), 4096);
            assert_eq!(a, b);
        }
        let mut ma = ecoscale_sim::MetricsRegistry::new();
        let mut mb = ecoscale_sim::MetricsRegistry::new();
        plain.export_metrics(&mut ma, "noc");
        armed.export_metrics(&mut mb, "noc");
        assert_eq!(ma.to_json(), mb.to_json());
    }

    #[test]
    fn degraded_links_slow_transfers() {
        let mut n = net(false);
        n.set_faults(&fault_spec());
        let clean = net(false).transfer(Time::ZERO, NodeId(0), NodeId(15), 1 << 16);
        // advance far enough that degradation windows are active
        let d = n.transfer(Time::from_ms(1), NodeId(0), NodeId(15), 1 << 16);
        let (events, hops, _) = n.fault_stats();
        assert!(events > 0, "10 ms at 100 us MTBF fires");
        assert!(hops > 0, "transfer crossed a degraded link");
        assert!(
            d.arrival.since(Time::from_ms(1)) > clean.arrival.since(Time::ZERO),
            "degraded path is slower than the clean quote"
        );
    }

    #[test]
    fn packets_corrupt_at_campaign_rate() {
        let mut spec = CampaignSpec::off();
        spec.packet_corrupt_p = 0.3;
        let mut n = net(false);
        n.set_faults(&spec);
        let mut corrupted = 0u64;
        for i in 0..500u64 {
            let d = n.transfer(Time::from_us(i * 10), NodeId(0), NodeId(15), 64);
            if d.corrupted {
                corrupted += 1;
            }
        }
        assert!(corrupted > 80 && corrupted < 250, "got {corrupted}/500");
        assert_eq!(n.fault_stats().2, corrupted);
        // local transfers never corrupt (no links crossed)
        assert!(
            !n.transfer(Time::from_ms(100), NodeId(2), NodeId(2), 64)
                .corrupted
        );
    }

    #[test]
    fn faulted_network_is_deterministic() {
        let run = || {
            let mut n = net(false);
            n.set_faults(&fault_spec());
            let mut log = Vec::new();
            for i in 0..100u64 {
                let d = n.transfer(Time::from_us(i * 50), NodeId(0), NodeId(15), 4096);
                log.push((d.arrival, d.corrupted));
            }
            (log, n.fault_stats())
        };
        assert_eq!(run(), run());
    }

    /// Drives a faulted network through enough traffic that every
    /// snapshotted field (occupancy, memo, degradation windows, RNG
    /// streams) is non-trivial.
    fn churned() -> Network<TreeTopology> {
        let mut n = net(false);
        n.set_faults(&fault_spec());
        for i in 0..60u64 {
            n.transfer(
                Time::from_us(i * 40),
                NodeId((i % 5) as usize),
                NodeId(15 - (i % 3) as usize),
                1 << 12,
            );
        }
        n
    }

    #[test]
    fn snapshot_restore_resumes_identically() {
        let orig = churned();
        let mut w = ecoscale_sim::SnapWriter::new();
        orig.snapshot_state(&mut w);
        let bytes = w.into_bytes();

        let mut fresh = net(false);
        let mut r = ecoscale_sim::SnapReader::new(&bytes);
        fresh.restore_state(&mut r).expect("restore");
        assert!(r.is_exhausted());

        // re-serialization is byte-identical
        let mut w2 = ecoscale_sim::SnapWriter::new();
        fresh.snapshot_state(&mut w2);
        assert_eq!(bytes, w2.into_bytes());

        // both continuations produce identical deliveries and fault draws
        let mut cont = churned();
        for i in 60..120u64 {
            let t = Time::from_us(i * 40);
            let a = cont.transfer(t, NodeId(2), NodeId(14), 1 << 12);
            let b = fresh.transfer(t, NodeId(2), NodeId(14), 1 << 12);
            assert_eq!(a, b, "diverged at transfer {i}");
        }
        assert_eq!(cont.fault_stats(), fresh.fault_stats());
        let mut ma = ecoscale_sim::MetricsRegistry::new();
        let mut mb = ecoscale_sim::MetricsRegistry::new();
        cont.export_metrics(&mut ma, "noc");
        fresh.export_metrics(&mut mb, "noc");
        assert_eq!(ma.to_json(), mb.to_json());
    }

    #[test]
    fn restored_route_memo_is_fresh_and_truncation_fails() {
        let orig = churned();
        let mut w = ecoscale_sim::SnapWriter::new();
        orig.snapshot_state(&mut w);
        let bytes = w.into_bytes();

        let mut fresh = net(false);
        let mut r = ecoscale_sim::SnapReader::new(&bytes);
        fresh.restore_state(&mut r).expect("restore");
        let mut cp = CheckPlane::enabled(1);
        fresh.check_invariants(&mut cp);
        assert!(
            cp.ok(),
            "restored network violates invariants: {:?}",
            cp.violations()
        );

        for cut in (0..bytes.len()).step_by(7).chain([bytes.len() - 1]) {
            let mut n = net(false);
            let mut r = ecoscale_sim::SnapReader::new(&bytes[..cut]);
            assert!(
                n.restore_state(&mut r).is_err() || !r.is_exhausted(),
                "truncated stream at {cut} restored fully"
            );
        }
    }

    #[test]
    fn later_start_sees_free_links() {
        let mut n = net(false);
        let first = n.transfer(Time::ZERO, NodeId(0), NodeId(15), 1 << 20);
        // start well after the first drains: no queueing
        let late = first.arrival + Duration::from_ms(1);
        let second = n.transfer(late, NodeId(0), NodeId(15), 1 << 20);
        assert_eq!(second.queueing, Duration::ZERO);
    }
}
