//! Interconnect topologies and routing.
//!
//! Endpoints are Workers, identified by [`NodeId`]. A [`Topology`] maps a
//! `(src, dst)` pair to a [`Route`]: the ordered list of links the message
//! traverses, each tagged with its hierarchy *level* (0 = cheapest, local
//! interconnect; higher = more expensive, longer-reach links).

use core::fmt;

/// Identifies a Worker endpoint on the interconnect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "W{}", self.0)
    }
}

/// Identifies one directed link in a topology; stable across calls so the
/// contention model can track per-link occupancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub u64);

impl fmt::Display for LinkId {
    /// Hex, because topologies bit-pack direction/level/endpoint fields
    /// into the id — `link8000000000000003` beats its decimal form in a
    /// trace viewer.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "link{:x}", self.0)
    }
}

/// One traversed link: its id and its hierarchy level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hop {
    /// The link traversed.
    pub link: LinkId,
    /// Hierarchy level of the link (0 = most local).
    pub level: u8,
}

/// The path a message takes between two endpoints.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Route {
    hops: Vec<Hop>,
}

impl Route {
    /// An empty (same-endpoint) route.
    pub fn local() -> Route {
        Route { hops: Vec::new() }
    }

    /// Builds a route from hops.
    pub fn from_hops(hops: Vec<Hop>) -> Route {
        Route { hops }
    }

    /// Number of links traversed.
    pub fn hop_count(&self) -> u32 {
        self.hops.len() as u32
    }

    /// Returns `true` for a same-endpoint route.
    pub fn is_local(&self) -> bool {
        self.hops.is_empty()
    }

    /// The highest hierarchy level this route touches, or `None` if local.
    pub fn max_level(&self) -> Option<u8> {
        self.hops.iter().map(|h| h.level).max()
    }

    /// Iterates over the hops in traversal order.
    pub fn iter(&self) -> impl Iterator<Item = &Hop> + '_ {
        self.hops.iter()
    }
}

/// A routed interconnect topology over `num_nodes` Worker endpoints.
pub trait Topology {
    /// Number of endpoints.
    fn num_nodes(&self) -> usize;

    /// Computes the route from `src` to `dst`.
    ///
    /// # Panics
    ///
    /// Implementations panic if either endpoint is out of range.
    fn route(&self, src: NodeId, dst: NodeId) -> Route;

    /// Network diameter in hops: the maximum over all endpoint pairs.
    ///
    /// The default implementation is exhaustive (`O(n^2)` routes) and meant
    /// for tests and small instances; implementations override it with a
    /// closed form where one exists.
    fn diameter(&self) -> u32 {
        let n = self.num_nodes();
        let mut best = 0;
        for s in 0..n {
            for d in 0..n {
                best = best.max(self.route(NodeId(s), NodeId(d)).hop_count());
            }
        }
        best
    }
}

fn check_bounds(n: usize, src: NodeId, dst: NodeId) {
    assert!(src.0 < n, "source {src} out of range (n = {n})");
    assert!(dst.0 < n, "destination {dst} out of range (n = {n})");
}

/// The ECOSCALE hierarchy: Workers are leaves of a tree whose level-`i`
/// switches connect `fanouts[i]` level-`(i-1)` subtrees.
///
/// A message climbs to the lowest common ancestor and back down; a route
/// crossing an ancestor at level `L` takes `2·L` hops (up-links then
/// down-links), matching the paper's "each level up the tree adds one hop
/// to the maximum communication distance" in each direction.
///
/// # Example
///
/// ```
/// use ecoscale_noc::{NodeId, Topology, TreeTopology};
///
/// // 4 workers per compute node, 4 nodes per board, 4 boards: 64 workers
/// let t = TreeTopology::new(&[4, 4, 4]);
/// assert_eq!(t.num_nodes(), 64);
/// // neighbours inside one compute node: up 1, down 1
/// assert_eq!(t.route(NodeId(0), NodeId(1)).hop_count(), 2);
/// // across the whole machine: up 3, down 3
/// assert_eq!(t.diameter(), 6);
/// ```
#[derive(Debug, Clone)]
pub struct TreeTopology {
    fanouts: Vec<usize>,
    num_nodes: usize,
    /// subtree_size[i] = number of leaves under one level-i subtree
    /// (subtree_size\[0\] = 1 leaf).
    subtree_size: Vec<usize>,
}

impl TreeTopology {
    /// Creates a tree from per-level fanouts, `fanouts\[0\]` being the number
    /// of Workers per lowest-level group.
    ///
    /// # Panics
    ///
    /// Panics if `fanouts` is empty or any fanout is < 2.
    pub fn new(fanouts: &[usize]) -> TreeTopology {
        assert!(!fanouts.is_empty(), "tree needs at least one level");
        assert!(
            fanouts.iter().all(|&f| f >= 2),
            "every fanout must be at least 2"
        );
        let mut subtree_size = vec![1usize];
        for &f in fanouts {
            let next = subtree_size.last().unwrap() * f;
            subtree_size.push(next);
        }
        let num_nodes = *subtree_size.last().unwrap();
        TreeTopology {
            fanouts: fanouts.to_vec(),
            num_nodes,
            subtree_size,
        }
    }

    /// Number of levels (depth of the tree).
    pub fn levels(&self) -> usize {
        self.fanouts.len()
    }

    /// The per-level fanouts.
    pub fn fanouts(&self) -> &[usize] {
        &self.fanouts
    }

    /// Number of Worker leaves under one level-`level` subtree
    /// (`subtree_leaves(0)` = 1 — a leaf is its own level-0 subtree;
    /// `subtree_leaves(levels())` = the whole machine).
    ///
    /// # Panics
    ///
    /// Panics if `level > levels()`.
    pub fn subtree_leaves(&self, level: usize) -> usize {
        assert!(
            level <= self.levels(),
            "level {level} beyond tree depth {}",
            self.levels()
        );
        self.subtree_size[level]
    }

    /// Index (in left-to-right order) of the level-`level` subtree
    /// containing `node`. Two nodes share a level-`k` subtree iff their
    /// level-`k` indices match; the sharded engine uses this to map
    /// Workers onto their cluster.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range or `level > levels()`.
    pub fn subtree_index(&self, node: NodeId, level: usize) -> usize {
        check_bounds(self.num_nodes, node, node);
        assert!(
            level <= self.levels(),
            "level {level} beyond tree depth {}",
            self.levels()
        );
        node.0 / self.subtree_size[level]
    }

    /// The lowest level at which `a` and `b` share a subtree
    /// (0 = same leaf; `k` = same level-`k` subtree).
    pub fn common_level(&self, a: NodeId, b: NodeId) -> usize {
        check_bounds(self.num_nodes, a, b);
        for lvl in 0..=self.levels() {
            if a.0 / self.subtree_size[lvl] == b.0 / self.subtree_size[lvl] {
                return lvl;
            }
        }
        unreachable!("all nodes share the root subtree");
    }

    /// Link id of the up-link from the level-`lvl` subtree containing
    /// `node` to its parent switch. Levels use `lvl` in `0..levels()`.
    fn up_link(&self, node: NodeId, lvl: usize) -> LinkId {
        // Unique per (level, subtree index); direction folded in bit 63 = 0.
        let subtree = (node.0 / self.subtree_size[lvl]) as u64;
        LinkId((lvl as u64) << 48 | subtree)
    }

    fn down_link(&self, node: NodeId, lvl: usize) -> LinkId {
        let subtree = (node.0 / self.subtree_size[lvl]) as u64;
        LinkId(1 << 63 | (lvl as u64) << 48 | subtree)
    }
}

impl Topology for TreeTopology {
    fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    fn route(&self, src: NodeId, dst: NodeId) -> Route {
        check_bounds(self.num_nodes, src, dst);
        if src == dst {
            return Route::local();
        }
        let top = self.common_level(src, dst);
        let mut hops = Vec::with_capacity(2 * top);
        // climb: the up-link out of src's level-l subtree is a level-l link
        for lvl in 0..top {
            hops.push(Hop {
                link: self.up_link(src, lvl),
                level: lvl as u8,
            });
        }
        // descend toward dst
        for lvl in (0..top).rev() {
            hops.push(Hop {
                link: self.down_link(dst, lvl),
                level: lvl as u8,
            });
        }
        Route::from_hops(hops)
    }

    fn diameter(&self) -> u32 {
        2 * self.levels() as u32
    }
}

/// A flat single-switch crossbar over `n` endpoints: every non-local route
/// is 2 hops (in, out) at level 0. This is the "simple hardware scaling"
/// baseline the paper argues cannot continue.
///
/// # Example
///
/// ```
/// use ecoscale_noc::{CrossbarTopology, NodeId, Topology};
///
/// let x = CrossbarTopology::new(16);
/// assert_eq!(x.route(NodeId(0), NodeId(9)).hop_count(), 2);
/// assert_eq!(x.diameter(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct CrossbarTopology {
    n: usize,
}

impl CrossbarTopology {
    /// Creates a crossbar over `n` endpoints.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize) -> CrossbarTopology {
        assert!(n > 0, "crossbar needs at least one endpoint");
        CrossbarTopology { n }
    }
}

impl Topology for CrossbarTopology {
    fn num_nodes(&self) -> usize {
        self.n
    }

    fn route(&self, src: NodeId, dst: NodeId) -> Route {
        check_bounds(self.n, src, dst);
        if src == dst {
            return Route::local();
        }
        Route::from_hops(vec![
            Hop {
                link: LinkId(src.0 as u64),
                level: 0,
            },
            Hop {
                link: LinkId(1 << 63 | dst.0 as u64),
                level: 0,
            },
        ])
    }

    fn diameter(&self) -> u32 {
        if self.n > 1 {
            2
        } else {
            0
        }
    }
}

/// A 2-D mesh with dimension-order (XY) routing; all links are level 0.
///
/// # Example
///
/// ```
/// use ecoscale_noc::{Mesh2d, NodeId, Topology};
///
/// let m = Mesh2d::new(4, 4);
/// // (0,0) -> (3,3): 3 X hops + 3 Y hops
/// assert_eq!(m.route(NodeId(0), NodeId(15)).hop_count(), 6);
/// ```
#[derive(Debug, Clone)]
pub struct Mesh2d {
    width: usize,
    height: usize,
}

impl Mesh2d {
    /// Creates a `width × height` mesh.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: usize, height: usize) -> Mesh2d {
        assert!(width > 0 && height > 0, "mesh dimensions must be positive");
        Mesh2d { width, height }
    }

    fn coords(&self, n: NodeId) -> (usize, usize) {
        (n.0 % self.width, n.0 / self.width)
    }

    fn h_link(&self, x: usize, y: usize, east: bool) -> LinkId {
        LinkId((east as u64) << 62 | (y * self.width + x) as u64)
    }

    fn v_link(&self, x: usize, y: usize, north: bool) -> LinkId {
        LinkId(1 << 63 | (north as u64) << 62 | (y * self.width + x) as u64)
    }
}

impl Topology for Mesh2d {
    fn num_nodes(&self) -> usize {
        self.width * self.height
    }

    fn route(&self, src: NodeId, dst: NodeId) -> Route {
        check_bounds(self.num_nodes(), src, dst);
        let (mut x, mut y) = self.coords(src);
        let (dx, dy) = self.coords(dst);
        let mut hops = Vec::new();
        while x != dx {
            let east = dx > x;
            hops.push(Hop {
                link: self.h_link(x, y, east),
                level: 0,
            });
            x = if east { x + 1 } else { x - 1 };
        }
        while y != dy {
            let north = dy > y;
            hops.push(Hop {
                link: self.v_link(x, y, north),
                level: 0,
            });
            y = if north { y + 1 } else { y - 1 };
        }
        Route::from_hops(hops)
    }

    fn diameter(&self) -> u32 {
        (self.width - 1 + self.height - 1) as u32
    }
}

/// A simplified dragonfly: endpoints attach to routers, routers form
/// all-to-all groups, and each group pair is joined by one global link.
/// Minimal routing gives at most 5 hops (terminal–router, local, global,
/// local, router–terminal); the paper cites dragonfly \[2\] as the kind of
/// high-radix topology applications partition over.
///
/// # Example
///
/// ```
/// use ecoscale_noc::{Dragonfly, NodeId, Topology};
///
/// let d = Dragonfly::new(4, 4, 2);
/// assert_eq!(d.num_nodes(), 32);
/// assert!(d.diameter() <= 5);
/// ```
#[derive(Debug, Clone)]
pub struct Dragonfly {
    groups: usize,
    routers_per_group: usize,
    nodes_per_router: usize,
}

impl Dragonfly {
    /// Creates a dragonfly with the given shape.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero.
    pub fn new(groups: usize, routers_per_group: usize, nodes_per_router: usize) -> Dragonfly {
        assert!(
            groups > 0 && routers_per_group > 0 && nodes_per_router > 0,
            "dragonfly dimensions must be positive"
        );
        Dragonfly {
            groups,
            routers_per_group,
            nodes_per_router,
        }
    }

    fn locate(&self, n: NodeId) -> (usize, usize) {
        // (group, router-within-group)
        let router = n.0 / self.nodes_per_router;
        (
            router / self.routers_per_group,
            router % self.routers_per_group,
        )
    }

    /// The router in `group` that owns the global link toward `other`.
    fn gateway(&self, group: usize, other: usize) -> usize {
        // Deterministic assignment of global links to routers.
        let o = if other > group { other - 1 } else { other };
        o % self.routers_per_group
    }

    fn terminal_link(&self, n: NodeId, up: bool) -> LinkId {
        LinkId((up as u64) << 62 | n.0 as u64)
    }

    fn local_link(&self, group: usize, from: usize, to: usize) -> LinkId {
        LinkId(1 << 63 | (group as u64) << 32 | (from as u64) << 16 | to as u64)
    }

    fn global_link(&self, from_group: usize, to_group: usize) -> LinkId {
        LinkId(3 << 62 | (from_group as u64) << 24 | to_group as u64)
    }
}

impl Topology for Dragonfly {
    fn num_nodes(&self) -> usize {
        self.groups * self.routers_per_group * self.nodes_per_router
    }

    fn route(&self, src: NodeId, dst: NodeId) -> Route {
        check_bounds(self.num_nodes(), src, dst);
        if src == dst {
            return Route::local();
        }
        let (sg, sr) = self.locate(src);
        let (dg, dr) = self.locate(dst);
        let mut hops = vec![Hop {
            link: self.terminal_link(src, true),
            level: 0,
        }];
        if sg == dg {
            if sr != dr {
                hops.push(Hop {
                    link: self.local_link(sg, sr, dr),
                    level: 1,
                });
            }
        } else {
            let gw_out = self.gateway(sg, dg);
            if sr != gw_out {
                hops.push(Hop {
                    link: self.local_link(sg, sr, gw_out),
                    level: 1,
                });
            }
            hops.push(Hop {
                link: self.global_link(sg, dg),
                level: 2,
            });
            let gw_in = self.gateway(dg, sg);
            if gw_in != dr {
                hops.push(Hop {
                    link: self.local_link(dg, gw_in, dr),
                    level: 1,
                });
            }
        }
        hops.push(Hop {
            link: self.terminal_link(dst, false),
            level: 0,
        });
        Route::from_hops(hops)
    }

    fn diameter(&self) -> u32 {
        let mut d = 2; // two terminal links
        if self.groups > 1 {
            d += 3; // local + global + local worst case
        } else if self.routers_per_group > 1 {
            d += 1;
        }
        d
    }
}

/// A fat tree: the ECOSCALE hierarchy with `uplinks` parallel links out
/// of every subtree at every level. Routes hash `(src, dst)` onto one of
/// the parallel links, spreading unrelated flows across them — the
/// standard remedy for the plain tree's root bottleneck (ablation A4).
///
/// # Example
///
/// ```
/// use ecoscale_noc::{FatTreeTopology, NodeId, Topology};
///
/// let t = FatTreeTopology::new(&[4, 4], 4);
/// assert_eq!(t.num_nodes(), 16);
/// assert_eq!(t.route(NodeId(0), NodeId(15)).hop_count(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct FatTreeTopology {
    inner: TreeTopology,
    uplinks: u64,
}

impl FatTreeTopology {
    /// Creates a fat tree with `uplinks` parallel links per subtree per
    /// level.
    ///
    /// # Panics
    ///
    /// Panics on an empty fanout list, fanouts below 2, or zero uplinks.
    pub fn new(fanouts: &[usize], uplinks: u64) -> FatTreeTopology {
        assert!(uplinks > 0, "need at least one uplink");
        FatTreeTopology {
            inner: TreeTopology::new(fanouts),
            uplinks,
        }
    }

    /// Parallel links per subtree per level.
    pub fn uplinks(&self) -> u64 {
        self.uplinks
    }

    fn lane(&self, src: NodeId, dst: NodeId) -> u64 {
        // deterministic flow hash (fnv-ish) so a flow stays on one lane
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for v in [src.0 as u64, dst.0 as u64] {
            h ^= v;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h % self.uplinks
    }
}

impl Topology for FatTreeTopology {
    fn num_nodes(&self) -> usize {
        self.inner.num_nodes()
    }

    fn route(&self, src: NodeId, dst: NodeId) -> Route {
        let base = self.inner.route(src, dst);
        if base.is_local() {
            return base;
        }
        let lane = self.lane(src, dst);
        let hops = base
            .iter()
            .map(|h| Hop {
                // fold the lane into spare LinkId bits (bits 56..59)
                link: LinkId(h.link.0 | lane << 56),
                level: h.level,
            })
            .collect();
        Route::from_hops(hops)
    }

    fn diameter(&self) -> u32 {
        self.inner.diameter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_shape() {
        let t = TreeTopology::new(&[8, 4, 2]);
        assert_eq!(t.num_nodes(), 64);
        assert_eq!(t.levels(), 3);
        assert_eq!(t.fanouts(), &[8, 4, 2]);
    }

    #[test]
    fn tree_subtree_accessors() {
        let t = TreeTopology::new(&[4, 2, 3]);
        assert_eq!(t.subtree_leaves(0), 1);
        assert_eq!(t.subtree_leaves(1), 4);
        assert_eq!(t.subtree_leaves(2), 8);
        assert_eq!(t.subtree_leaves(3), 24);
        assert_eq!(t.subtree_index(NodeId(0), 1), 0);
        assert_eq!(t.subtree_index(NodeId(5), 1), 1);
        assert_eq!(t.subtree_index(NodeId(7), 2), 0);
        assert_eq!(t.subtree_index(NodeId(8), 2), 1);
        // consistency with common_level: same level-k index iff common
        // level <= k
        for s in 0..t.num_nodes() {
            for d in 0..t.num_nodes() {
                let (s, d) = (NodeId(s), NodeId(d));
                for k in 0..=t.levels() {
                    assert_eq!(
                        t.subtree_index(s, k) == t.subtree_index(d, k),
                        t.common_level(s, d) <= k
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "beyond tree depth")]
    fn tree_subtree_leaves_bounds_checked() {
        TreeTopology::new(&[4]).subtree_leaves(2);
    }

    #[test]
    fn tree_common_level() {
        let t = TreeTopology::new(&[4, 4]);
        assert_eq!(t.common_level(NodeId(0), NodeId(0)), 0);
        assert_eq!(t.common_level(NodeId(0), NodeId(3)), 1);
        assert_eq!(t.common_level(NodeId(0), NodeId(4)), 2);
        assert_eq!(t.common_level(NodeId(3), NodeId(15)), 2);
    }

    #[test]
    fn tree_routes_and_hops() {
        let t = TreeTopology::new(&[4, 4]);
        assert!(t.route(NodeId(5), NodeId(5)).is_local());
        let near = t.route(NodeId(0), NodeId(1));
        assert_eq!(near.hop_count(), 2);
        assert_eq!(near.max_level(), Some(0));
        let far = t.route(NodeId(0), NodeId(15));
        assert_eq!(far.hop_count(), 4);
        assert_eq!(far.max_level(), Some(1));
        assert_eq!(t.diameter(), 4);
    }

    #[test]
    fn tree_route_is_symmetric_in_length() {
        let t = TreeTopology::new(&[2, 3, 4]);
        for s in 0..t.num_nodes() {
            for d in 0..t.num_nodes() {
                let a = t.route(NodeId(s), NodeId(d));
                let b = t.route(NodeId(d), NodeId(s));
                assert_eq!(a.hop_count(), b.hop_count());
            }
        }
    }

    #[test]
    fn tree_diameter_matches_exhaustive() {
        let t = TreeTopology::new(&[3, 2, 2]);
        let mut max = 0;
        for s in 0..t.num_nodes() {
            for d in 0..t.num_nodes() {
                max = max.max(t.route(NodeId(s), NodeId(d)).hop_count());
            }
        }
        assert_eq!(max, t.diameter());
    }

    #[test]
    fn tree_exascale_hop_claim() {
        // Paper: petascale ~5 hops max distance; exascale pushes to 6-7.
        // A 3-level tree has diameter 6; 7 levels would be 14 switch hops,
        // but the paper counts tree *levels* as hops: our level count
        // matches their 6-7 figure for deep machines.
        let exa = TreeTopology::new(&[8, 8, 8, 8, 8, 8, 8]);
        assert_eq!(exa.levels(), 7);
        assert_eq!(exa.num_nodes(), 8usize.pow(7));
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn tree_rejects_unary_fanout() {
        TreeTopology::new(&[1, 4]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn tree_bounds_checked() {
        let t = TreeTopology::new(&[2]);
        t.route(NodeId(0), NodeId(5));
    }

    #[test]
    fn tree_link_sharing_reflects_subtrees() {
        let t = TreeTopology::new(&[2, 2]);
        let r1 = t.route(NodeId(0), NodeId(3));
        let r2 = t.route(NodeId(1), NodeId(2));
        assert_eq!(r1.hop_count(), r2.hop_count());
        // Both cross the same level-1 trunk links (left subtree -> right
        // subtree), but enter/leave through different leaf links.
        let trunk1: Vec<_> = r1.iter().filter(|h| h.level >= 1).map(|h| h.link).collect();
        let trunk2: Vec<_> = r2.iter().filter(|h| h.level >= 1).map(|h| h.link).collect();
        assert_eq!(trunk1, trunk2, "same subtree pair shares trunk links");
        let leaf1: Vec<_> = r1.iter().filter(|h| h.level == 0).map(|h| h.link).collect();
        let leaf2: Vec<_> = r2.iter().filter(|h| h.level == 0).map(|h| h.link).collect();
        assert!(leaf1.iter().all(|l| !leaf2.contains(l)));
        // Routes sharing a source share that source's leaf up-link.
        let r3 = t.route(NodeId(0), NodeId(1));
        let up0 = r1.iter().next().unwrap().link;
        assert_eq!(r3.iter().next().unwrap().link, up0);
    }

    #[test]
    fn crossbar_routes() {
        let x = CrossbarTopology::new(8);
        assert!(x.route(NodeId(3), NodeId(3)).is_local());
        let r = x.route(NodeId(3), NodeId(4));
        assert_eq!(r.hop_count(), 2);
        assert_eq!(r.max_level(), Some(0));
        assert_eq!(CrossbarTopology::new(1).diameter(), 0);
    }

    #[test]
    fn mesh_routing_lengths() {
        let m = Mesh2d::new(4, 3);
        assert_eq!(m.num_nodes(), 12);
        // Manhattan distance
        let r = m.route(NodeId(0), NodeId(11)); // (0,0) -> (3,2)
        assert_eq!(r.hop_count(), 5);
        assert_eq!(m.diameter(), 5);
        assert!(m.route(NodeId(6), NodeId(6)).is_local());
    }

    #[test]
    fn mesh_xy_routing_is_deterministic() {
        let m = Mesh2d::new(5, 5);
        let a = m.route(NodeId(2), NodeId(22));
        let b = m.route(NodeId(2), NodeId(22));
        let la: Vec<_> = a.iter().map(|h| h.link).collect();
        let lb: Vec<_> = b.iter().map(|h| h.link).collect();
        assert_eq!(la, lb);
    }

    #[test]
    fn dragonfly_hop_bounds() {
        let d = Dragonfly::new(6, 4, 2);
        let n = d.num_nodes();
        assert_eq!(n, 48);
        let mut max = 0;
        for s in 0..n {
            for t in 0..n {
                let h = d.route(NodeId(s), NodeId(t)).hop_count();
                if s != t {
                    assert!(h >= 2, "non-local route below 2 hops");
                }
                max = max.max(h);
            }
        }
        assert!(max <= 5);
        assert!(max <= d.diameter());
    }

    #[test]
    fn dragonfly_same_router_is_two_hops() {
        let d = Dragonfly::new(2, 2, 4);
        // nodes 0 and 1 share router 0
        assert_eq!(d.route(NodeId(0), NodeId(1)).hop_count(), 2);
    }

    #[test]
    fn dragonfly_cross_group_uses_level2() {
        let d = Dragonfly::new(3, 2, 2);
        let r = d.route(NodeId(0), NodeId(d.num_nodes() - 1));
        assert_eq!(r.max_level(), Some(2));
    }

    #[test]
    fn fat_tree_same_lengths_as_tree() {
        let plain = TreeTopology::new(&[4, 4]);
        let fat = FatTreeTopology::new(&[4, 4], 4);
        for s in 0..16 {
            for d in 0..16 {
                assert_eq!(
                    plain.route(NodeId(s), NodeId(d)).hop_count(),
                    fat.route(NodeId(s), NodeId(d)).hop_count()
                );
            }
        }
        assert_eq!(fat.diameter(), plain.diameter());
        assert_eq!(fat.uplinks(), 4);
    }

    #[test]
    fn fat_tree_spreads_flows_over_lanes() {
        let fat = FatTreeTopology::new(&[4, 4], 4);
        // collect the level-1 up-link ids of many cross-subtree flows
        let mut lanes = std::collections::HashSet::new();
        for s in 0..4 {
            for d in 12..16 {
                let r = fat.route(NodeId(s), NodeId(d));
                for h in r.iter().filter(|h| h.level == 1) {
                    lanes.insert(h.link);
                }
            }
        }
        assert!(lanes.len() > 1, "flows must not all share one trunk lane");
    }

    #[test]
    fn fat_tree_flow_is_lane_stable() {
        let fat = FatTreeTopology::new(&[4, 4], 8);
        let a = fat.route(NodeId(1), NodeId(14));
        let b = fat.route(NodeId(1), NodeId(14));
        let la: Vec<_> = a.iter().map(|h| h.link).collect();
        let lb: Vec<_> = b.iter().map(|h| h.link).collect();
        assert_eq!(la, lb);
    }

    #[test]
    #[should_panic(expected = "at least one uplink")]
    fn fat_tree_rejects_zero_uplinks() {
        FatTreeTopology::new(&[4], 0);
    }

    #[test]
    fn route_accessors() {
        let r = Route::local();
        assert!(r.is_local());
        assert_eq!(r.hop_count(), 0);
        assert_eq!(r.max_level(), None);
    }
}
