//! Traffic accounting: who moved how many bytes over which levels.

use ecoscale_sim::{Energy, Histogram};

use crate::cost::CostModel;
use crate::topology::Route;

/// Accumulated interconnect traffic statistics.
///
/// # Example
///
/// ```
/// use ecoscale_noc::{CostModel, NodeId, Topology, TrafficStats, TreeTopology};
///
/// let topo = TreeTopology::new(&[4, 4]);
/// let cost = CostModel::ecoscale_defaults();
/// let mut stats = TrafficStats::new();
/// stats.record(&topo.route(NodeId(0), NodeId(1)), 256, &cost);
/// stats.record(&topo.route(NodeId(0), NodeId(14)), 256, &cost);
/// assert_eq!(stats.messages(), 2);
/// assert!(stats.bytes_at_level(1) > 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TrafficStats {
    messages: u64,
    local_messages: u64,
    payload_bytes: u64,
    /// bytes × hops, the classic traffic metric
    byte_hops: u64,
    bytes_per_level: Vec<u64>,
    hops: Histogram,
    energy: Energy,
}

impl TrafficStats {
    /// Creates an empty accumulator.
    pub fn new() -> TrafficStats {
        TrafficStats::default()
    }

    /// Records one message of `bytes` along `route`, charging energy with
    /// `cost`.
    pub fn record(&mut self, route: &Route, bytes: u64, cost: &CostModel) {
        self.messages += 1;
        self.payload_bytes += bytes;
        self.hops.record(route.hop_count() as u64);
        if route.is_local() {
            self.local_messages += 1;
            return;
        }
        for hop in route.iter() {
            let lvl = hop.level as usize;
            if self.bytes_per_level.len() <= lvl {
                self.bytes_per_level.resize(lvl + 1, 0);
            }
            self.bytes_per_level[lvl] += bytes;
            self.byte_hops += bytes;
        }
        self.energy += cost.energy(route, bytes);
    }

    /// Total messages recorded (including local ones).
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Messages whose route was local (zero hops).
    pub fn local_messages(&self) -> u64 {
        self.local_messages
    }

    /// Total payload bytes offered (each message counted once).
    pub fn payload_bytes(&self) -> u64 {
        self.payload_bytes
    }

    /// Total bytes × hops moved (each byte counted once per link).
    pub fn byte_hops(&self) -> u64 {
        self.byte_hops
    }

    /// Bytes that crossed links of hierarchy `level`.
    pub fn bytes_at_level(&self, level: usize) -> u64 {
        self.bytes_per_level.get(level).copied().unwrap_or(0)
    }

    /// Highest level any recorded message touched, if any went non-local.
    pub fn max_level_seen(&self) -> Option<usize> {
        if self.bytes_per_level.is_empty() {
            None
        } else {
            Some(self.bytes_per_level.len() - 1)
        }
    }

    /// Mean hops per message.
    pub fn mean_hops(&self) -> f64 {
        self.hops.mean()
    }

    /// Maximum hops of any message.
    pub fn max_hops(&self) -> u64 {
        self.hops.max()
    }

    /// Total interconnect energy charged.
    pub fn energy(&self) -> Energy {
        self.energy
    }

    /// Serializes the accumulator for the snapshot subsystem.
    pub fn snapshot_state(&self, w: &mut ecoscale_sim::SnapWriter) {
        use ecoscale_sim::Snapshot as _;
        w.put_u64(self.messages);
        w.put_u64(self.local_messages);
        w.put_u64(self.payload_bytes);
        w.put_u64(self.byte_hops);
        self.bytes_per_level.snapshot(w);
        self.hops.snapshot(w);
        self.energy.snapshot(w);
    }

    /// Reconstructs an accumulator captured by
    /// [`TrafficStats::snapshot_state`].
    ///
    /// # Errors
    ///
    /// [`ecoscale_sim::RestoreError`] when the stream is truncated or
    /// malformed.
    pub fn restore_state(
        r: &mut ecoscale_sim::SnapReader<'_>,
    ) -> Result<TrafficStats, ecoscale_sim::RestoreError> {
        use ecoscale_sim::Restore;
        Ok(TrafficStats {
            messages: r.get_u64()?,
            local_messages: r.get_u64()?,
            payload_bytes: r.get_u64()?,
            byte_hops: r.get_u64()?,
            bytes_per_level: <Vec<u64>>::restore(r)?,
            hops: Histogram::restore(r)?,
            energy: Energy::restore(r)?,
        })
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &TrafficStats) {
        self.messages += other.messages;
        self.local_messages += other.local_messages;
        self.payload_bytes += other.payload_bytes;
        self.byte_hops += other.byte_hops;
        if self.bytes_per_level.len() < other.bytes_per_level.len() {
            self.bytes_per_level.resize(other.bytes_per_level.len(), 0);
        }
        for (i, b) in other.bytes_per_level.iter().enumerate() {
            self.bytes_per_level[i] += b;
        }
        self.hops.merge(&other.hops);
        self.energy += other.energy;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{NodeId, Topology, TreeTopology};

    fn setup() -> (TreeTopology, CostModel) {
        (TreeTopology::new(&[4, 4]), CostModel::ecoscale_defaults())
    }

    #[test]
    fn records_local_and_remote() {
        let (t, c) = setup();
        let mut s = TrafficStats::new();
        s.record(&t.route(NodeId(0), NodeId(0)), 100, &c);
        s.record(&t.route(NodeId(0), NodeId(1)), 100, &c);
        assert_eq!(s.messages(), 2);
        assert_eq!(s.local_messages(), 1);
        assert_eq!(s.payload_bytes(), 200);
        // local message contributes no byte-hops or energy
        assert_eq!(s.byte_hops(), 200); // 100 bytes * 2 hops
        assert!(s.energy().as_pj() > 0.0);
    }

    #[test]
    fn per_level_attribution() {
        let (t, c) = setup();
        let mut s = TrafficStats::new();
        // crosses level 1: hops at levels [0, 1, 1, 0] -> wait, route is
        // up(l0), up(l1)... our tree: top=2 means hops levels 0,1 then 1,0.
        s.record(&t.route(NodeId(0), NodeId(15)), 10, &c);
        assert_eq!(s.bytes_at_level(0), 20);
        assert_eq!(s.bytes_at_level(1), 20);
        assert_eq!(s.bytes_at_level(2), 0);
        assert_eq!(s.max_level_seen(), Some(1));
        assert_eq!(s.max_hops(), 4);
    }

    #[test]
    fn merge_adds_everything() {
        let (t, c) = setup();
        let mut a = TrafficStats::new();
        let mut b = TrafficStats::new();
        a.record(&t.route(NodeId(0), NodeId(1)), 50, &c);
        b.record(&t.route(NodeId(0), NodeId(15)), 70, &c);
        let solo_energy = a.energy() + b.energy();
        a.merge(&b);
        assert_eq!(a.messages(), 2);
        assert_eq!(a.payload_bytes(), 120);
        assert!((a.energy().as_pj() - solo_energy.as_pj()).abs() < 1e-6);
        assert_eq!(a.mean_hops(), 3.0);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = TrafficStats::new();
        assert_eq!(s.messages(), 0);
        assert_eq!(s.mean_hops(), 0.0);
        assert_eq!(s.max_level_seen(), None);
        assert_eq!(s.bytes_at_level(3), 0);
    }
}
