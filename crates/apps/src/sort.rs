//! Out-of-core distributed sample sort with hybrid MPI+PGAS
//! communication.
//!
//! The paper (§2) argues, citing Jose et al. \[5\], that "a hybrid flexible
//! MPI+PGAS programming model is an efficient choice … for achieving
//! exascale computing". This module implements the sample-sort structure
//! of \[5\] over the simulation substrate and runs it under both models
//! (experiment E14):
//!
//! * [`SortMode::PureMpi`] — every exchange goes through the MPI stack
//!   (per-message software overhead, routed via the node representative),
//! * [`SortMode::Hybrid`] — intra-node exchanges become direct UNIMEM
//!   loads/stores (PGAS: near-zero software overhead, worker-to-worker
//!   route); only inter-node traffic pays the MPI stack.
//!
//! The sort is *functionally real*: the returned vector is the sorted
//! permutation of the input, while the costs come from the interconnect
//! and CPU models.

use ecoscale_noc::{Network, NetworkConfig, NodeId, TreeTopology};
use ecoscale_runtime::CpuModel;
use ecoscale_sim::{Duration, Energy, SimRng, Time};

/// Which programming model carries the exchange phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortMode {
    /// All exchanges via MPI.
    PureMpi,
    /// Intra-node via PGAS loads/stores, inter-node via MPI.
    Hybrid,
}

/// The result of one distributed sort.
#[derive(Debug, Clone)]
pub struct SortOutcome {
    /// The globally sorted data.
    pub sorted: Vec<f64>,
    /// Simulated end-to-end time.
    pub elapsed: Duration,
    /// Bytes crossing node boundaries.
    pub inter_node_bytes: u64,
    /// Bytes exchanged inside nodes.
    pub intra_node_bytes: u64,
    /// Interconnect energy.
    pub energy: Energy,
    /// Exchange-phase messages.
    pub messages: u64,
    /// Duration of the exchange phase alone (where the two programming
    /// models differ).
    pub exchange: Duration,
}

/// Per-message software overheads of the two stacks.
const MPI_OVERHEAD: Duration = Duration::from_us(2);
const PGAS_OVERHEAD: Duration = Duration::from_ps(200_000); // 0.2 us

/// Generates `n` uniform keys.
pub fn generate(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = SimRng::seed_from(seed);
    (0..n).map(|_| rng.gen_range_f64(0.0, 1e9)).collect()
}

fn cpu_sort_cost(cpu: &CpuModel, n: usize) -> Duration {
    if n < 2 {
        return Duration::from_ns(50);
    }
    // ~12 cycles per element-comparison step of an introsort
    let cycles = (n as f64 * (n as f64).log2() * 12.0) as u64;
    Duration::from_cycles(cycles.max(1), cpu.clock_hz)
}

/// Runs the distributed sample sort.
///
/// # Panics
///
/// Panics if `nodes` or `workers_per_node` is below 2, or data is empty.
pub fn distributed_sort(
    data: &[f64],
    nodes: usize,
    workers_per_node: usize,
    mode: SortMode,
    seed: u64,
) -> SortOutcome {
    assert!(nodes >= 2 && workers_per_node >= 2, "need a real machine");
    assert!(!data.is_empty(), "nothing to sort");
    let w = nodes * workers_per_node;
    let cpu = CpuModel::a53_default();
    let mut net = Network::new(
        TreeTopology::new(&[workers_per_node, nodes]),
        NetworkConfig::default(),
    );
    let mut rng = SimRng::seed_from(seed);
    let mut now = Time::ZERO;
    let mut energy = Energy::ZERO;
    let mut messages = 0u64;
    let mut inter_node_bytes = 0u64;
    let mut intra_node_bytes = 0u64;

    // 1. block-distribute and locally sort
    let chunk = data.len().div_ceil(w);
    let mut local: Vec<Vec<f64>> = data.chunks(chunk).map(|c| c.to_vec()).collect();
    local.resize(w, Vec::new());
    for part in &mut local {
        part.sort_by(|a, b| a.partial_cmp(b).expect("no NaN keys"));
    }
    now += cpu_sort_cost(&cpu, chunk);

    // 2. splitter selection: every worker samples 8 keys to rank 0, which
    // sorts and broadcasts w-1 splitters
    let mut samples = Vec::new();
    for part in &local {
        for _ in 0..8.min(part.len()) {
            samples.push(*rng.choose(part));
        }
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN keys"));
    let splitters: Vec<f64> = (1..w).map(|k| samples[k * samples.len() / w]).collect();
    // gather + bcast cost: each worker sends 64 B to worker 0; then 8(w-1)
    // bytes broadcast back (tree) — approximate with two rounds of the
    // farthest route
    let far = NodeId(w - 1);
    let d1 = net.transfer(now, far, NodeId(0), 64);
    let d2 = net.transfer(d1.arrival, NodeId(0), far, (8 * (w - 1)) as u64);
    energy += d1.energy + d2.energy;
    now = d2.arrival + MPI_OVERHEAD * 2;

    // 3. partition and exchange
    let mut outgoing: Vec<Vec<Vec<f64>>> = vec![vec![Vec::new(); w]; w];
    for (src, part) in local.iter().enumerate() {
        for &v in part {
            let dst = splitters.partition_point(|&s| s < v);
            outgoing[src][dst].push(v);
        }
    }
    // Each worker issues its sends sequentially: the per-message software
    // overhead (MPI stack vs PGAS store) accumulates on the sender, which
    // is exactly the effect [5] exploits by keeping intra-node exchanges
    // on the PGAS path.
    let exchange_start = now;
    let mut send_cursor = vec![now; w];
    let mut recv_cursor = vec![now; w];
    let mut exchange_done = now;
    for src in 0..w {
        for dst in 0..w {
            if src == dst || outgoing[src][dst].is_empty() {
                continue;
            }
            let bytes = (outgoing[src][dst].len() * 8) as u64;
            let same_node = src / workers_per_node == dst / workers_per_node;
            messages += 1;
            if same_node {
                intra_node_bytes += bytes;
            } else {
                inter_node_bytes += bytes;
            }
            let (from, to, overhead, wire_bytes) = match (mode, same_node) {
                // PGAS: direct worker-to-worker loads/stores
                (SortMode::Hybrid, true) => (NodeId(src), NodeId(dst), PGAS_OVERHEAD, bytes),
                // hybrid inter-node: worker-to-worker but through MPI
                (SortMode::Hybrid, false) => (NodeId(src), NodeId(dst), MPI_OVERHEAD, bytes),
                // pure MPI intra-node: shared-memory path bounces through
                // a copy buffer (bytes move twice)
                (SortMode::PureMpi, true) => (NodeId(src), NodeId(dst), MPI_OVERHEAD, 2 * bytes),
                // pure MPI inter-node: routed via node representatives
                (SortMode::PureMpi, false) => (
                    NodeId((src / workers_per_node) * workers_per_node),
                    NodeId((dst / workers_per_node) * workers_per_node),
                    MPI_OVERHEAD,
                    bytes,
                ),
            };
            send_cursor[src] += overhead;
            let d = net.transfer(send_cursor[src], from, to, wire_bytes);
            energy += d.energy;
            // the receiver pays the same stack overhead to absorb the
            // message (PGAS stores land directly in the target buffer)
            let done = d.arrival.max(recv_cursor[dst]) + overhead;
            recv_cursor[dst] = done;
            exchange_done = exchange_done.max(done);
        }
    }
    now = exchange_done;

    // 4. local multiway merge and global concatenation
    let mut buckets: Vec<Vec<f64>> = vec![Vec::new(); w];
    for per_dst in &mut outgoing {
        for (dst, chunk) in per_dst.iter_mut().enumerate() {
            buckets[dst].append(chunk);
        }
    }
    let max_bucket = buckets.iter().map(|b| b.len()).max().unwrap_or(0);
    for b in &mut buckets {
        b.sort_by(|a, b| a.partial_cmp(b).expect("no NaN keys"));
    }
    now += cpu_sort_cost(&cpu, max_bucket);

    let sorted: Vec<f64> = buckets.into_iter().flatten().collect();
    SortOutcome {
        sorted,
        elapsed: now.saturating_since(Time::ZERO),
        inter_node_bytes,
        intra_node_bytes,
        energy,
        messages,
        exchange: exchange_done.saturating_since(exchange_start),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_sorted(v: &[f64]) -> bool {
        v.windows(2).all(|w| w[0] <= w[1])
    }

    #[test]
    fn sorts_correctly_in_both_modes() {
        let data = generate(10_000, 5);
        for mode in [SortMode::PureMpi, SortMode::Hybrid] {
            let out = distributed_sort(&data, 4, 4, mode, 1);
            assert_eq!(out.sorted.len(), data.len());
            assert!(is_sorted(&out.sorted), "{mode:?} output not sorted");
            // permutation check via sums
            let s1: f64 = data.iter().sum();
            let s2: f64 = out.sorted.iter().sum();
            assert!((s1 - s2).abs() / s1 < 1e-12);
        }
    }

    #[test]
    fn hybrid_beats_pure_mpi() {
        let data = generate(50_000, 9);
        let mpi = distributed_sort(&data, 4, 8, SortMode::PureMpi, 1);
        let hybrid = distributed_sort(&data, 4, 8, SortMode::Hybrid, 1);
        assert!(
            hybrid.elapsed < mpi.elapsed,
            "hybrid {} !< mpi {}",
            hybrid.elapsed,
            mpi.elapsed
        );
        assert_eq!(hybrid.sorted, mpi.sorted);
    }

    #[test]
    fn traffic_split_respects_topology() {
        let data = generate(20_000, 3);
        let out = distributed_sort(&data, 4, 4, SortMode::Hybrid, 1);
        assert!(out.inter_node_bytes > 0);
        assert!(out.intra_node_bytes > 0);
        assert!(out.messages > 0);
        assert!(out.energy.as_nj() > 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let data = generate(5_000, 2);
        let a = distributed_sort(&data, 2, 4, SortMode::Hybrid, 7);
        let b = distributed_sort(&data, 2, 4, SortMode::Hybrid, 7);
        assert_eq!(a.elapsed, b.elapsed);
        assert_eq!(a.sorted, b.sorted);
    }

    #[test]
    #[should_panic(expected = "nothing to sort")]
    fn empty_input_rejected() {
        distributed_sort(&[], 2, 2, SortMode::PureMpi, 1);
    }

    #[test]
    fn small_input_still_sorts() {
        let data = vec![5.0, 1.0, 3.0];
        let out = distributed_sort(&data, 2, 2, SortMode::Hybrid, 1);
        assert_eq!(out.sorted, vec![1.0, 3.0, 5.0]);
    }
}
