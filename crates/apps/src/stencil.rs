//! 2-D Jacobi heat-diffusion stencil.
//!
//! The canonical halo-exchange workload of §2's hierarchical-partitioning
//! argument: each Worker owns a block of the grid, iterates the 5-point
//! stencil locally, and exchanges one-row halos with its neighbours.

use ecoscale_hls::KernelArgs;
use ecoscale_sim::SimRng;

use crate::hints;
use std::collections::HashMap;

/// The 5-point Jacobi update as an HLS kernel over an `n × n` interior
/// (grid arrays are `(n+2) × (n+2)` with a fixed boundary).
pub const KERNEL: &str = "kernel jacobi2d(in float grid[], out float next[], int n) {
    for (i in 1 .. n + 1) {
        for (j in 1 .. n + 1) {
            w = n + 2;
            next[i * w + j] = 0.25 * (grid[(i - 1) * w + j] + grid[(i + 1) * w + j]
                + grid[i * w + j - 1] + grid[i * w + j + 1]);
        }
    }
}";

/// HLS scalar hints for an `n × n` interior.
pub fn kernel_hints(n: u64) -> HashMap<String, f64> {
    hints(&[("n", n as f64)])
}

/// Generates an `(n+2)²` grid with random interior and zero boundary.
pub fn generate(n: usize, seed: u64) -> Vec<f64> {
    let w = n + 2;
    let mut rng = SimRng::seed_from(seed);
    let mut g = vec![0.0; w * w];
    for i in 1..=n {
        for j in 1..=n {
            g[i * w + j] = rng.gen_range_f64(0.0, 100.0);
        }
    }
    g
}

/// One reference Jacobi sweep over the interior.
pub fn reference_step(grid: &[f64], n: usize) -> Vec<f64> {
    let w = n + 2;
    assert_eq!(grid.len(), w * w, "grid must be (n+2)^2");
    let mut next = grid.to_vec();
    for i in 1..=n {
        for j in 1..=n {
            next[i * w + j] = 0.25
                * (grid[(i - 1) * w + j]
                    + grid[(i + 1) * w + j]
                    + grid[i * w + j - 1]
                    + grid[i * w + j + 1]);
        }
    }
    next
}

/// Runs `steps` reference sweeps.
pub fn reference(grid: &[f64], n: usize, steps: usize) -> Vec<f64> {
    let mut g = grid.to_vec();
    for _ in 0..steps {
        g = reference_step(&g, n);
    }
    g
}

/// Binds kernel arguments for one sweep.
pub fn bind_args(grid: &[f64], n: usize) -> KernelArgs {
    let mut args = KernelArgs::new();
    args.bind_array("grid", grid.to_vec())
        .bind_array("next", grid.to_vec())
        .bind_scalar("n", n as f64);
    args
}

/// Bytes of halo exchanged per neighbour per sweep for an `n × n` block.
pub fn halo_bytes(n: usize) -> u64 {
    (n * 8) as u64
}

/// Arithmetic operations per sweep of an `n × n` interior.
pub fn flops_per_step(n: usize) -> u64 {
    // 3 adds + 1 mul per point
    (n * n * 4) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecoscale_hls::parse_kernel;

    #[test]
    fn kernel_matches_reference() {
        let n = 8;
        let grid = generate(n, 42);
        let k = parse_kernel(KERNEL).unwrap();
        let mut args = bind_args(&grid, n);
        args.run(&k).unwrap();
        let reference = reference_step(&grid, n);
        let got = args.array("next").unwrap();
        for (idx, (g, r)) in got.iter().zip(&reference).enumerate() {
            // boundary cells differ (the kernel writes only the interior
            // of `next`, which was initialized from `grid`)
            assert!((g - r).abs() < 1e-12, "cell {idx}: {g} vs {r}");
        }
    }

    #[test]
    fn heat_diffuses_toward_mean() {
        let n = 16;
        let grid = generate(n, 7);
        let after = reference(&grid, n, 50);
        let spread = |g: &[f64]| {
            let vals: Vec<f64> = g.iter().copied().filter(|v| *v != 0.0).collect();
            let mean = vals.iter().sum::<f64>() / vals.len() as f64;
            vals.iter().map(|v| (v - mean).abs()).fold(0.0, f64::max)
        };
        assert!(spread(&after) < spread(&grid));
    }

    #[test]
    fn boundary_stays_fixed() {
        let n = 8;
        let grid = generate(n, 3);
        let after = reference(&grid, n, 5);
        let w = n + 2;
        for k in 0..w {
            assert_eq!(after[k], 0.0); // top row
            assert_eq!(after[(w - 1) * w + k], 0.0); // bottom row
            assert_eq!(after[k * w], 0.0); // left col
            assert_eq!(after[k * w + w - 1], 0.0); // right col
        }
    }

    #[test]
    fn generator_is_deterministic() {
        assert_eq!(generate(8, 1), generate(8, 1));
        assert_ne!(generate(8, 1), generate(8, 2));
    }

    #[test]
    fn metrics_scale() {
        assert_eq!(halo_bytes(128), 1024);
        assert_eq!(flops_per_step(10), 400);
    }

    #[test]
    #[should_panic(expected = "(n+2)^2")]
    fn reference_checks_dimensions() {
        reference_step(&[0.0; 10], 8);
    }
}
