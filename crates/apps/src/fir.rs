//! FIR filtering — the classic streaming DSP kernel, and the cleanest
//! pipelining/unrolling showcase for the HLS design-space explorer
//! (every tap is independent; memory partitioning directly buys II).

use ecoscale_hls::KernelArgs;
use ecoscale_sim::SimRng;

use crate::hints;
use std::collections::HashMap;

/// `y[i] = Σ_k h[k] · x[i+k]` over `n` outputs with `taps` coefficients.
pub const KERNEL: &str = "kernel fir(in float x[], in float h[], out float y[], int n, int taps) {
    for (i in 0 .. n) {
        acc = 0.0;
        for (k in 0 .. taps) {
            acc = acc + h[k] * x[i + k];
        }
        y[i] = acc;
    }
}";

/// HLS scalar hints.
pub fn kernel_hints(n: u64, taps: u64) -> HashMap<String, f64> {
    hints(&[("n", n as f64), ("taps", taps as f64)])
}

/// Generates an input signal of `n + taps` samples and `taps`
/// normalized coefficients.
pub fn generate(n: usize, taps: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
    let mut rng = SimRng::seed_from(seed);
    let x = (0..n + taps)
        .map(|_| rng.gen_range_f64(-1.0, 1.0))
        .collect();
    let mut h: Vec<f64> = (0..taps).map(|_| rng.gen_range_f64(0.0, 1.0)).collect();
    let sum: f64 = h.iter().sum();
    for c in &mut h {
        *c /= sum;
    }
    (x, h)
}

/// Reference convolution.
pub fn reference(x: &[f64], h: &[f64], n: usize) -> Vec<f64> {
    assert!(x.len() >= n + h.len(), "signal too short");
    (0..n)
        .map(|i| h.iter().enumerate().map(|(k, &c)| c * x[i + k]).sum())
        .collect()
}

/// Binds kernel arguments.
pub fn bind_args(x: &[f64], h: &[f64], n: usize) -> KernelArgs {
    let mut args = KernelArgs::new();
    args.bind_array("x", x.to_vec())
        .bind_array("h", h.to_vec())
        .bind_array("y", vec![0.0; n])
        .bind_scalar("n", n as f64)
        .bind_scalar("taps", h.len() as f64);
    args
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecoscale_hls::parse_kernel;

    #[test]
    fn kernel_matches_reference() {
        let (x, h) = generate(64, 8, 3);
        let k = parse_kernel(KERNEL).unwrap();
        let mut args = bind_args(&x, &h, 64);
        args.run(&k).unwrap();
        let want = reference(&x, &h, 64);
        for (g, r) in args.array("y").unwrap().iter().zip(&want) {
            assert!((g - r).abs() < 1e-12);
        }
    }

    #[test]
    fn normalized_taps_preserve_dc() {
        // a constant signal passes through a normalized filter unchanged
        let (_, h) = generate(16, 8, 5);
        let x = vec![3.0; 16 + 8];
        let y = reference(&x, &h, 16);
        for v in y {
            assert!((v - 3.0).abs() < 1e-9);
        }
    }

    #[test]
    fn dse_exploits_partitioning() {
        use ecoscale_fpga::Resources;
        use ecoscale_hls::Explorer;
        let k = parse_kernel(KERNEL).unwrap();
        let hints = kernel_hints(4096, 16);
        let ex = Explorer::new(Resources::new(8000, 256, 256));
        let best = ex.best(&k, &hints).unwrap().expect("fits");
        let naive = ecoscale_hls::estimate::estimate(
            &k,
            &hints,
            ecoscale_hls::HlsDirectives {
                unroll: 1,
                pipeline: false,
                partition: 1,
            },
            &ecoscale_hls::OpCosts::default(),
        )
        .unwrap();
        assert!(best.estimate.cycles * 4 < naive.cycles);
    }

    #[test]
    #[should_panic(expected = "signal too short")]
    fn reference_checks_signal_length() {
        reference(&[1.0; 10], &[0.5; 4], 10);
    }
}
