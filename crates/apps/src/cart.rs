//! CART decision-tree classification.
//!
//! The data-mining workload of the Convey HC-1 reference \[17\] (HC-CART):
//! the hot loop of tree construction is evaluating the Gini impurity of
//! every candidate split threshold over every feature — a dense,
//! branch-light scan that maps beautifully to hardware. The HLS kernel
//! evaluates all thresholds for one feature; the host's recursive tree
//! builder calls it per node per feature.

use ecoscale_hls::KernelArgs;
use ecoscale_sim::SimRng;

use crate::hints;
use std::collections::HashMap;

/// Gini impurity of every candidate threshold over one feature column.
///
/// For threshold `t`, samples with `x <= t` go left. Binary labels in
/// `{0, 1}`. Outputs the weighted Gini impurity per threshold.
pub const KERNEL: &str = "kernel gini_scan(in float x[], in float label[], in float thresh[], out float gini[], int n, int m) {
    for (t in 0 .. m) {
        lp = 0.0;
        ln = 0.0;
        rp = 0.0;
        rn = 0.0;
        for (i in 0 .. n) {
            left = x[i] <= thresh[t];
            pos = label[i];
            lp = lp + left * pos;
            ln = ln + left * (1.0 - pos);
            rp = rp + (1.0 - left) * pos;
            rn = rn + (1.0 - left) * (1.0 - pos);
        }
        l = lp + ln;
        r = rp + rn;
        gl = select(l > 0.0, 1.0 - (lp / l) * (lp / l) - (ln / l) * (ln / l), 0.0);
        gr = select(r > 0.0, 1.0 - (rp / r) * (rp / r) - (rn / r) * (rn / r), 0.0);
        gini[t] = (l * gl + r * gr) / (l + r);
    }
}";

/// HLS scalar hints for `n` samples × `m` thresholds.
pub fn kernel_hints(n: u64, m: u64) -> HashMap<String, f64> {
    hints(&[("n", n as f64), ("m", m as f64)])
}

/// A labelled dataset: row-major features plus binary labels.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// `samples × features`, row-major.
    pub features: Vec<f64>,
    /// Binary labels (0.0 / 1.0).
    pub labels: Vec<f64>,
    /// Feature count.
    pub num_features: usize,
}

impl Dataset {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Returns `true` for an empty dataset.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Column `f` of the feature matrix.
    pub fn column(&self, f: usize) -> Vec<f64> {
        (0..self.len())
            .map(|i| self.features[i * self.num_features + f])
            .collect()
    }
}

/// Generates a two-cluster binary classification problem that a shallow
/// tree separates well.
pub fn generate(n: usize, num_features: usize, seed: u64) -> Dataset {
    let mut rng = SimRng::seed_from(seed);
    let mut features = Vec::with_capacity(n * num_features);
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        let label = rng.gen_bool(0.5);
        let center = if label { 2.0 } else { -2.0 };
        for f in 0..num_features {
            // first two features are informative, the rest noise
            let mu = if f < 2 { center } else { 0.0 };
            features.push(rng.gen_normal(mu, 1.5));
        }
        labels.push(if label { 1.0 } else { 0.0 });
    }
    Dataset {
        features,
        labels,
        num_features,
    }
}

/// Reference Gini scan over one feature column.
pub fn reference_gini(x: &[f64], labels: &[f64], thresholds: &[f64]) -> Vec<f64> {
    thresholds
        .iter()
        .map(|&t| {
            let (mut lp, mut ln, mut rp, mut rn) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
            for (&xi, &yi) in x.iter().zip(labels) {
                if xi <= t {
                    if yi > 0.5 {
                        lp += 1.0;
                    } else {
                        ln += 1.0;
                    }
                } else if yi > 0.5 {
                    rp += 1.0;
                } else {
                    rn += 1.0;
                }
            }
            let l = lp + ln;
            let r = rp + rn;
            let gl = if l > 0.0 {
                1.0 - (lp / l).powi(2) - (ln / l).powi(2)
            } else {
                0.0
            };
            let gr = if r > 0.0 {
                1.0 - (rp / r).powi(2) - (rn / r).powi(2)
            } else {
                0.0
            };
            (l * gl + r * gr) / (l + r)
        })
        .collect()
}

/// Binds kernel arguments for one feature scan.
pub fn bind_args(x: &[f64], labels: &[f64], thresholds: &[f64]) -> KernelArgs {
    let mut args = KernelArgs::new();
    args.bind_array("x", x.to_vec())
        .bind_array("label", labels.to_vec())
        .bind_array("thresh", thresholds.to_vec())
        .bind_array("gini", vec![0.0; thresholds.len()])
        .bind_scalar("n", x.len() as f64)
        .bind_scalar("m", thresholds.len() as f64);
    args
}

/// A trained decision tree.
#[derive(Debug, Clone)]
pub enum Tree {
    /// A leaf predicting a class probability.
    Leaf {
        /// Probability of class 1.
        p: f64,
    },
    /// An internal split.
    Node {
        /// Feature index tested.
        feature: usize,
        /// Threshold (`<=` goes left).
        threshold: f64,
        /// Left subtree.
        left: Box<Tree>,
        /// Right subtree.
        right: Box<Tree>,
    },
}

impl Tree {
    /// Predicts the class-1 probability of one sample.
    pub fn predict(&self, sample: &[f64]) -> f64 {
        match self {
            Tree::Leaf { p } => *p,
            Tree::Node {
                feature,
                threshold,
                left,
                right,
            } => {
                if sample[*feature] <= *threshold {
                    left.predict(sample)
                } else {
                    right.predict(sample)
                }
            }
        }
    }

    /// Number of nodes (internal + leaves).
    pub fn size(&self) -> usize {
        match self {
            Tree::Leaf { .. } => 1,
            Tree::Node { left, right, .. } => 1 + left.size() + right.size(),
        }
    }
}

/// The Gini-scan callback: `(feature column, labels, thresholds)` →
/// per-threshold weighted impurity. Both the software reference and the
/// HLS-kernel-backed scan have this shape.
pub type GiniScan<'a> = dyn FnMut(&[f64], &[f64], &[f64]) -> Vec<f64> + 'a;

/// Builds a CART tree of at most `max_depth`, using `thresholds_per_feature`
/// candidate quantile thresholds, with the provided Gini scan function
/// (so the hardware-accelerated scan slots in unchanged).
pub fn build_tree(
    data: &Dataset,
    max_depth: u32,
    thresholds_per_feature: usize,
    gini_scan: &mut GiniScan<'_>,
) -> Tree {
    let pos = data.labels.iter().filter(|&&y| y > 0.5).count() as f64;
    let p = if data.is_empty() {
        0.5
    } else {
        pos / data.len() as f64
    };
    if max_depth == 0 || data.len() < 4 || p == 0.0 || p == 1.0 {
        return Tree::Leaf { p };
    }
    // best split over all features
    let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, gini)
    for f in 0..data.num_features {
        let col = data.column(f);
        let thresholds = quantile_thresholds(&col, thresholds_per_feature);
        if thresholds.is_empty() {
            continue;
        }
        let ginis = gini_scan(&col, &data.labels, &thresholds);
        for (t, g) in thresholds.iter().zip(&ginis) {
            if best.map(|(_, _, bg)| *g < bg).unwrap_or(true) {
                best = Some((f, *t, *g));
            }
        }
    }
    let Some((feature, threshold, _)) = best else {
        return Tree::Leaf { p };
    };
    // partition
    let (mut lf, mut ll, mut rf, mut rl) = (Vec::new(), Vec::new(), Vec::new(), Vec::new());
    for i in 0..data.len() {
        let row = &data.features[i * data.num_features..(i + 1) * data.num_features];
        if row[feature] <= threshold {
            lf.extend_from_slice(row);
            ll.push(data.labels[i]);
        } else {
            rf.extend_from_slice(row);
            rl.push(data.labels[i]);
        }
    }
    if ll.is_empty() || rl.is_empty() {
        return Tree::Leaf { p };
    }
    let left_data = Dataset {
        features: lf,
        labels: ll,
        num_features: data.num_features,
    };
    let right_data = Dataset {
        features: rf,
        labels: rl,
        num_features: data.num_features,
    };
    Tree::Node {
        feature,
        threshold,
        left: Box::new(build_tree(
            &left_data,
            max_depth - 1,
            thresholds_per_feature,
            gini_scan,
        )),
        right: Box::new(build_tree(
            &right_data,
            max_depth - 1,
            thresholds_per_feature,
            gini_scan,
        )),
    }
}

/// Evenly-spaced quantile thresholds of a column.
pub fn quantile_thresholds(col: &[f64], count: usize) -> Vec<f64> {
    if col.is_empty() || count == 0 {
        return Vec::new();
    }
    let mut sorted = col.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN features"));
    (1..=count)
        .map(|q| sorted[(q * (sorted.len() - 1)) / (count + 1)])
        .collect()
}

/// Classification accuracy of `tree` on `data` at the 0.5 cut.
pub fn accuracy(tree: &Tree, data: &Dataset) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let correct = (0..data.len())
        .filter(|&i| {
            let row = &data.features[i * data.num_features..(i + 1) * data.num_features];
            let pred = tree.predict(row) > 0.5;
            pred == (data.labels[i] > 0.5)
        })
        .count();
    correct as f64 / data.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecoscale_hls::parse_kernel;

    #[test]
    fn kernel_matches_reference_gini() {
        let data = generate(200, 3, 7);
        let col = data.column(0);
        let thresholds = quantile_thresholds(&col, 16);
        let k = parse_kernel(KERNEL).unwrap();
        let mut args = bind_args(&col, &data.labels, &thresholds);
        args.run(&k).unwrap();
        let expect = reference_gini(&col, &data.labels, &thresholds);
        for (g, r) in args.array("gini").unwrap().iter().zip(&expect) {
            assert!((g - r).abs() < 1e-9, "{g} vs {r}");
        }
    }

    #[test]
    fn tree_learns_separable_data() {
        let train = generate(600, 4, 1);
        let test = generate(300, 4, 2);
        let mut scan = |x: &[f64], y: &[f64], t: &[f64]| reference_gini(x, y, t);
        let tree = build_tree(&train, 4, 16, &mut scan);
        let acc = accuracy(&tree, &test);
        assert!(acc > 0.85, "accuracy {acc}");
        assert!(tree.size() > 1, "tree must actually split");
    }

    #[test]
    fn pure_leaf_for_single_class() {
        let data = Dataset {
            features: vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0],
            labels: vec![1.0; 8],
            num_features: 1,
        };
        let mut scan = |x: &[f64], y: &[f64], t: &[f64]| reference_gini(x, y, t);
        let tree = build_tree(&data, 3, 4, &mut scan);
        assert!(matches!(tree, Tree::Leaf { p } if p == 1.0));
    }

    #[test]
    fn gini_is_zero_for_perfect_split() {
        let x = vec![1.0, 2.0, 3.0, 10.0, 11.0, 12.0];
        let y = vec![0.0, 0.0, 0.0, 1.0, 1.0, 1.0];
        let g = reference_gini(&x, &y, &[5.0]);
        assert!(g[0] < 1e-12);
    }

    #[test]
    fn gini_is_half_for_useless_split() {
        let x = vec![1.0, 1.0, 1.0, 1.0];
        let y = vec![0.0, 1.0, 0.0, 1.0];
        let g = reference_gini(&x, &y, &[5.0]); // everything goes left
        assert!((g[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn quantile_thresholds_sane() {
        let col = vec![5.0, 1.0, 3.0, 2.0, 4.0];
        let t = quantile_thresholds(&col, 3);
        assert_eq!(t.len(), 3);
        assert!(t.windows(2).all(|w| w[0] <= w[1]));
        assert!(quantile_thresholds(&[], 3).is_empty());
        assert!(quantile_thresholds(&col, 0).is_empty());
    }

    #[test]
    fn dataset_column_extraction() {
        let d = Dataset {
            features: vec![1.0, 2.0, 3.0, 4.0],
            labels: vec![0.0, 1.0],
            num_features: 2,
        };
        assert_eq!(d.column(0), vec![1.0, 3.0]);
        assert_eq!(d.column(1), vec![2.0, 4.0]);
        assert_eq!(d.len(), 2);
    }
}
