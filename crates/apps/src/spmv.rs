//! Sparse matrix–vector multiply (CSR).
//!
//! The irregular-access counterpoint to GEMM: its inner trip count is
//! data-dependent (`rowptr[i+1] - rowptr[i]`), so the HLS estimator
//! cannot resolve it and the function stays **software-only** — the
//! realistic outcome for irregular kernels, and a useful negative case
//! for the runtime's device selection.

use ecoscale_hls::KernelArgs;
use ecoscale_sim::SimRng;

/// CSR SpMV as an HLS kernel. The interpreter executes it fine; the
/// estimator rejects it (unresolvable trip counts), as intended.
pub const KERNEL: &str = "kernel spmv(in float vals[], in float cols[], in float rowptr[], in float x[], out float y[], int rows) {
    for (i in 0 .. rows) {
        acc = 0.0;
        for (k in rowptr[i] .. rowptr[i + 1]) {
            acc = acc + vals[k] * x[cols[k]];
        }
        y[i] = acc;
    }
}";

/// A CSR matrix with f64-encoded indices (the kernel language is
/// mono-typed).
#[derive(Debug, Clone)]
pub struct CsrMatrix {
    /// Non-zero values.
    pub vals: Vec<f64>,
    /// Column index of each value.
    pub cols: Vec<f64>,
    /// Row start offsets (`rows + 1` entries).
    pub rowptr: Vec<f64>,
    /// Number of rows/columns (square).
    pub n: usize,
}

impl CsrMatrix {
    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }
}

/// Generates a random sparse matrix with ~`nnz_per_row` entries per row.
pub fn generate(n: usize, nnz_per_row: usize, seed: u64) -> CsrMatrix {
    let mut rng = SimRng::seed_from(seed);
    let mut vals = Vec::new();
    let mut cols = Vec::new();
    let mut rowptr = vec![0.0];
    for _ in 0..n {
        let count = rng.gen_range_usize(1, 2 * nnz_per_row.max(1) + 1).min(n);
        let mut picked: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut picked);
        let mut row_cols: Vec<usize> = picked[..count].to_vec();
        row_cols.sort_unstable();
        for c in row_cols {
            vals.push(rng.gen_range_f64(-1.0, 1.0));
            cols.push(c as f64);
        }
        rowptr.push(vals.len() as f64);
    }
    CsrMatrix {
        vals,
        cols,
        rowptr,
        n,
    }
}

/// Generates a dense vector.
pub fn generate_vector(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = SimRng::seed_from(seed);
    (0..n).map(|_| rng.gen_range_f64(-1.0, 1.0)).collect()
}

/// Reference SpMV.
pub fn reference(m: &CsrMatrix, x: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), m.n);
    let mut y = vec![0.0; m.n];
    for (i, yi) in y.iter_mut().enumerate() {
        let start = m.rowptr[i] as usize;
        let end = m.rowptr[i + 1] as usize;
        for k in start..end {
            *yi += m.vals[k] * x[m.cols[k] as usize];
        }
    }
    y
}

/// Binds kernel arguments.
pub fn bind_args(m: &CsrMatrix, x: &[f64]) -> KernelArgs {
    let mut args = KernelArgs::new();
    args.bind_array("vals", m.vals.clone())
        .bind_array("cols", m.cols.clone())
        .bind_array("rowptr", m.rowptr.clone())
        .bind_array("x", x.to_vec())
        .bind_array("y", vec![0.0; m.n])
        .bind_scalar("rows", m.n as f64);
    args
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecoscale_hls::{estimate::estimate, parse_kernel, EstimateError, HlsDirectives, OpCosts};
    use std::collections::HashMap;

    #[test]
    fn kernel_matches_reference() {
        let m = generate(32, 4, 3);
        let x = generate_vector(32, 4);
        let k = parse_kernel(KERNEL).unwrap();
        let mut args = bind_args(&m, &x);
        args.run(&k).unwrap();
        let expect = reference(&m, &x);
        for (g, r) in args.array("y").unwrap().iter().zip(&expect) {
            assert!((g - r).abs() < 1e-9);
        }
    }

    #[test]
    fn estimator_rejects_irregular_kernel() {
        let k = parse_kernel(KERNEL).unwrap();
        let err = estimate(
            &k,
            &HashMap::from([("rows".to_owned(), 32.0)]),
            HlsDirectives::default(),
            &OpCosts::default(),
        )
        .unwrap_err();
        assert_eq!(err, EstimateError::UnresolvedTripCount);
    }

    #[test]
    fn csr_structure_valid() {
        let m = generate(50, 5, 9);
        assert_eq!(m.rowptr.len(), 51);
        assert_eq!(m.rowptr[0], 0.0);
        assert_eq!(*m.rowptr.last().unwrap() as usize, m.nnz());
        // rowptr monotone
        assert!(m.rowptr.windows(2).all(|w| w[0] <= w[1]));
        // cols in range
        assert!(m.cols.iter().all(|&c| (c as usize) < m.n));
    }

    #[test]
    fn zero_vector_gives_zero_result() {
        let m = generate(16, 3, 1);
        let y = reference(&m, &[0.0; 16]);
        assert!(y.iter().all(|&v| v == 0.0));
    }
}
