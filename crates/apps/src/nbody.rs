//! N-body gravitational force computation (one velocity-update step).

use ecoscale_hls::KernelArgs;
use ecoscale_sim::SimRng;

use crate::hints;
use std::collections::HashMap;

/// Softening constant keeping forces finite.
pub const SOFTENING: f64 = 1e-3;

/// All-pairs force accumulation as an HLS kernel (2-D positions packed
/// as `x[i], y[i]`; accelerations out).
pub const KERNEL: &str = "kernel nbody(in float px[], in float py[], in float mass[], out float ax[], out float ay[], int n) {
    for (i in 0 .. n) {
        fx = 0.0;
        fy = 0.0;
        for (j in 0 .. n) {
            dx = px[j] - px[i];
            dy = py[j] - py[i];
            d2 = dx * dx + dy * dy + 0.001;
            inv = 1.0 / (d2 * sqrt(d2));
            fx = fx + mass[j] * dx * inv;
            fy = fy + mass[j] * dy * inv;
        }
        ax[i] = fx;
        ay[i] = fy;
    }
}";

/// HLS scalar hints.
pub fn kernel_hints(n: u64) -> HashMap<String, f64> {
    hints(&[("n", n as f64)])
}

/// Generates `n` bodies: positions in `[-1, 1]²`, masses in `[0.1, 1]`.
pub fn generate(n: usize, seed: u64) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    let mut rng = SimRng::seed_from(seed);
    let px = (0..n).map(|_| rng.gen_range_f64(-1.0, 1.0)).collect();
    let py = (0..n).map(|_| rng.gen_range_f64(-1.0, 1.0)).collect();
    let mass = (0..n).map(|_| rng.gen_range_f64(0.1, 1.0)).collect();
    (px, py, mass)
}

/// Reference all-pairs accelerations.
pub fn reference(px: &[f64], py: &[f64], mass: &[f64]) -> (Vec<f64>, Vec<f64>) {
    let n = px.len();
    let mut ax = vec![0.0; n];
    let mut ay = vec![0.0; n];
    for i in 0..n {
        for j in 0..n {
            let dx = px[j] - px[i];
            let dy = py[j] - py[i];
            let d2 = dx * dx + dy * dy + SOFTENING;
            let inv = 1.0 / (d2 * d2.sqrt());
            ax[i] += mass[j] * dx * inv;
            ay[i] += mass[j] * dy * inv;
        }
    }
    (ax, ay)
}

/// Binds kernel arguments.
pub fn bind_args(px: &[f64], py: &[f64], mass: &[f64]) -> KernelArgs {
    let n = px.len();
    let mut args = KernelArgs::new();
    args.bind_array("px", px.to_vec())
        .bind_array("py", py.to_vec())
        .bind_array("mass", mass.to_vec())
        .bind_array("ax", vec![0.0; n])
        .bind_array("ay", vec![0.0; n])
        .bind_scalar("n", n as f64);
    args
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecoscale_hls::parse_kernel;

    #[test]
    fn kernel_matches_reference() {
        let (px, py, m) = generate(24, 5);
        let k = parse_kernel(KERNEL).unwrap();
        let mut args = bind_args(&px, &py, &m);
        args.run(&k).unwrap();
        let (ax, ay) = reference(&px, &py, &m);
        for (g, r) in args.array("ax").unwrap().iter().zip(&ax) {
            assert!((g - r).abs() < 1e-9);
        }
        for (g, r) in args.array("ay").unwrap().iter().zip(&ay) {
            assert!((g - r).abs() < 1e-9);
        }
    }

    #[test]
    fn two_bodies_attract_each_other() {
        let (ax, _) = reference(&[-1.0, 1.0], &[0.0, 0.0], &[1.0, 1.0]);
        assert!(ax[0] > 0.0); // body at -1 pulled right
        assert!(ax[1] < 0.0); // body at +1 pulled left
        assert!((ax[0] + ax[1]).abs() < 1e-12); // equal masses: symmetric
    }

    #[test]
    fn isolated_body_feels_nothing_but_softened_self() {
        let (ax, ay) = reference(&[0.5], &[0.5], &[1.0]);
        assert_eq!(ax[0], 0.0);
        assert_eq!(ay[0], 0.0);
    }

    #[test]
    fn heavier_neighbours_pull_harder() {
        let (ax_light, _) = reference(&[0.0, 1.0], &[0.0, 0.0], &[1.0, 0.5]);
        let (ax_heavy, _) = reference(&[0.0, 1.0], &[0.0, 0.0], &[1.0, 2.0]);
        assert!(ax_heavy[0] > ax_light[0]);
    }
}
