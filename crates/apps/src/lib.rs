//! HPC workloads for the ECOSCALE reproduction.
//!
//! The paper motivates its architecture with the application classes its
//! related work accelerates: dense linear algebra, stencils, N-body,
//! Monte-Carlo financial simulation (Maxeler \[18\]), CART decision-tree
//! data mining (Convey HC-1 \[17\]), and hybrid MPI+PGAS out-of-core
//! sorting \[5\]. Each module here provides:
//!
//! * a pure-Rust **reference implementation** (the ground truth),
//! * the same computation as an **HLS kernel** in the textual kernel
//!   language (so it can be synthesized, placed, and "run in hardware"
//!   by the simulation with bit-identical results),
//! * a deterministic **input generator**, and
//! * `hints` for the HLS trip-count resolution.
//!
//! The test-suite of every module checks `interpreted kernel ==
//! reference`, which is exactly the property that makes the simulated
//! accelerator results trustworthy.

pub mod blackscholes;
pub mod cart;
pub mod fir;
pub mod gemm;
pub mod mix;
pub mod montecarlo;
pub mod nbody;
pub mod sort;
pub mod spmv;
pub mod stencil;

use std::collections::HashMap;

/// Convenience: builds an HLS scalar-hint map from pairs.
///
/// # Example
///
/// ```
/// let h = ecoscale_apps::hints(&[("n", 1024.0)]);
/// assert_eq!(h["n"], 1024.0);
/// ```
pub fn hints(pairs: &[(&str, f64)]) -> HashMap<String, f64> {
    pairs.iter().map(|(k, v)| ((*k).to_owned(), *v)).collect()
}

#[cfg(test)]
mod tests {
    #[test]
    fn hints_builds_map() {
        let h = super::hints(&[("a", 1.0), ("b", 2.0)]);
        assert_eq!(h.len(), 2);
        assert_eq!(h["b"], 2.0);
    }
}
