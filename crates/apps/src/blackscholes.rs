//! Black–Scholes European option pricing (closed form).
//!
//! The financial workload family the paper cites for Maxeler-style
//! acceleration \[18\]: embarrassingly parallel, transcendental-dense —
//! exactly the profile where a pipelined datapath crushes a scalar core.

use ecoscale_hls::KernelArgs;
use ecoscale_sim::SimRng;

use crate::hints;
use std::collections::HashMap;

/// Black–Scholes call pricing as an HLS kernel.
///
/// The normal CDF is approximated with the logistic function
/// `1 / (1 + exp(-1.702 x))` (max error ≈ 0.01), keeping the kernel
/// within the language's intrinsics; the reference uses the same
/// approximation so hardware and software agree bit-for-bit.
pub const KERNEL: &str = "kernel blackscholes(in float spot[], in float strike[], out float price[], float r, float sigma, float t, int n) {
    for (i in 0 .. n) {
        s = spot[i];
        k = strike[i];
        d1 = (log(s / k) + (r + 0.5 * sigma * sigma) * t) / (sigma * sqrt(t));
        d2 = d1 - sigma * sqrt(t);
        nd1 = 1.0 / (1.0 + exp(0.0 - 1.702 * d1));
        nd2 = 1.0 / (1.0 + exp(0.0 - 1.702 * d2));
        price[i] = s * nd1 - k * exp(0.0 - r * t) * nd2;
    }
}";

/// HLS scalar hints.
pub fn kernel_hints(n: u64) -> HashMap<String, f64> {
    hints(&[("n", n as f64), ("r", 0.02), ("sigma", 0.3), ("t", 1.0)])
}

/// Generates `n` (spot, strike) pairs.
pub fn generate(n: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
    let mut rng = SimRng::seed_from(seed);
    let spots = (0..n).map(|_| rng.gen_range_f64(50.0, 150.0)).collect();
    let strikes = (0..n).map(|_| rng.gen_range_f64(50.0, 150.0)).collect();
    (spots, strikes)
}

fn logistic_cdf(x: f64) -> f64 {
    1.0 / (1.0 + (-1.702 * x).exp())
}

/// Reference pricing with the same CDF approximation as the kernel.
pub fn reference(spots: &[f64], strikes: &[f64], r: f64, sigma: f64, t: f64) -> Vec<f64> {
    assert_eq!(spots.len(), strikes.len());
    spots
        .iter()
        .zip(strikes)
        .map(|(&s, &k)| {
            let d1 = ((s / k).ln() + (r + 0.5 * sigma * sigma) * t) / (sigma * t.sqrt());
            let d2 = d1 - sigma * t.sqrt();
            s * logistic_cdf(d1) - k * (-r * t).exp() * logistic_cdf(d2)
        })
        .collect()
}

/// Binds kernel arguments.
pub fn bind_args(spots: &[f64], strikes: &[f64], r: f64, sigma: f64, t: f64) -> KernelArgs {
    let n = spots.len();
    let mut args = KernelArgs::new();
    args.bind_array("spot", spots.to_vec())
        .bind_array("strike", strikes.to_vec())
        .bind_array("price", vec![0.0; n])
        .bind_scalar("r", r)
        .bind_scalar("sigma", sigma)
        .bind_scalar("t", t)
        .bind_scalar("n", n as f64);
    args
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecoscale_hls::parse_kernel;

    #[test]
    fn kernel_matches_reference() {
        let n = 64;
        let (s, k) = generate(n, 5);
        let kern = parse_kernel(KERNEL).unwrap();
        let mut args = bind_args(&s, &k, 0.02, 0.3, 1.0);
        args.run(&kern).unwrap();
        let expect = reference(&s, &k, 0.02, 0.3, 1.0);
        for (g, r) in args.array("price").unwrap().iter().zip(&expect) {
            assert!((g - r).abs() < 1e-9, "{g} vs {r}");
        }
    }

    #[test]
    fn deep_in_the_money_approaches_intrinsic() {
        // spot far above strike: price ≈ s - k·e^{-rt}
        let p = reference(&[200.0], &[50.0], 0.02, 0.2, 1.0)[0];
        let intrinsic = 200.0 - 50.0 * (-0.02f64).exp();
        assert!((p - intrinsic).abs() < 1.0);
    }

    #[test]
    fn price_increases_with_volatility_at_the_money() {
        let lo = reference(&[100.0], &[100.0], 0.02, 0.1, 1.0)[0];
        let hi = reference(&[100.0], &[100.0], 0.02, 0.6, 1.0)[0];
        assert!(hi > lo);
    }

    #[test]
    fn prices_are_positive_within_cdf_error_and_below_spot() {
        // the logistic CDF approximation has ≈1% absolute error, so deep
        // out-of-the-money prices can dip slightly below zero
        let (s, k) = generate(256, 11);
        for (p, &spot) in reference(&s, &k, 0.02, 0.3, 1.0).iter().zip(&s) {
            assert!(*p > -1.5, "price {p} beyond approximation error");
            assert!(*p < spot);
        }
    }
}
