//! Dense matrix–matrix multiply (GEMM).

use ecoscale_hls::KernelArgs;
use ecoscale_sim::SimRng;

use crate::hints;
use std::collections::HashMap;

/// `C = A × B` over `n × n` matrices as an HLS kernel.
pub const KERNEL: &str = "kernel gemm(in float a[], in float b[], out float c[], int n) {
    for (i in 0 .. n) {
        for (j in 0 .. n) {
            acc = 0.0;
            for (k in 0 .. n) {
                acc = acc + a[i * n + k] * b[k * n + j];
            }
            c[i * n + j] = acc;
        }
    }
}";

/// HLS scalar hints.
pub fn kernel_hints(n: u64) -> HashMap<String, f64> {
    hints(&[("n", n as f64)])
}

/// Generates a deterministic `n × n` matrix.
pub fn generate(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = SimRng::seed_from(seed);
    (0..n * n).map(|_| rng.gen_range_f64(-1.0, 1.0)).collect()
}

/// Reference multiply.
pub fn reference(a: &[f64], b: &[f64], n: usize) -> Vec<f64> {
    assert_eq!(a.len(), n * n);
    assert_eq!(b.len(), n * n);
    let mut c = vec![0.0; n * n];
    for i in 0..n {
        for k in 0..n {
            let aik = a[i * n + k];
            for j in 0..n {
                c[i * n + j] += aik * b[k * n + j];
            }
        }
    }
    c
}

/// Binds kernel arguments.
pub fn bind_args(a: &[f64], b: &[f64], n: usize) -> KernelArgs {
    let mut args = KernelArgs::new();
    args.bind_array("a", a.to_vec())
        .bind_array("b", b.to_vec())
        .bind_array("c", vec![0.0; n * n])
        .bind_scalar("n", n as f64);
    args
}

/// Arithmetic operations of an `n × n` GEMM.
pub fn flops(n: usize) -> u64 {
    (2 * n * n * n) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecoscale_hls::parse_kernel;

    #[test]
    fn kernel_matches_reference() {
        let n = 6;
        let a = generate(n, 1);
        let b = generate(n, 2);
        let k = parse_kernel(KERNEL).unwrap();
        let mut args = bind_args(&a, &b, n);
        args.run(&k).unwrap();
        let c_ref = reference(&a, &b, n);
        for (g, r) in args.array("c").unwrap().iter().zip(&c_ref) {
            // the kernel accumulates in a different order (ijk vs ikj)
            assert!((g - r).abs() < 1e-9);
        }
    }

    #[test]
    fn identity_multiplication() {
        let n = 4;
        let mut eye = vec![0.0; n * n];
        for i in 0..n {
            eye[i * n + i] = 1.0;
        }
        let b = generate(n, 9);
        let c = reference(&eye, &b, n);
        assert_eq!(c, b);
    }

    #[test]
    fn flops_formula() {
        assert_eq!(flops(10), 2000);
    }

    #[test]
    #[should_panic]
    fn dimension_mismatch_panics() {
        reference(&[1.0; 4], &[1.0; 9], 3);
    }
}
