//! The serving kernel mix: the `apps` kernels tenants draw requests
//! from in a ServePlane run.
//!
//! Only **item-linear** kernels qualify: a batch of `k` coalesced
//! requests executes as one call over `k × items` items, which models
//! the true cost only when work scales linearly in the item count (FIR
//! over `n` outputs, Black–Scholes over `n` options). Superlinear
//! kernels (GEMM is `O(n³)` in its dimension, the stencil sweeps a 2-D
//! grid) would make a coalesced batch *more* expensive than its parts,
//! so they stay out of the mix.
//!
//! Binders are pure functions of the item count — fixed generator seeds,
//! no ambient state — which keeps serving runs byte-identical across
//! thread and shard counts.

use ecoscale_core::{serve_hints, ServeKernel};
use ecoscale_hls::KernelArgs;

use crate::{blackscholes, fir};

/// Taps used by the serving FIR entry (fixed: per-request work must be
/// a function of the item count alone).
pub const FIR_TAPS: usize = 16;

fn bind_fir(n: usize) -> KernelArgs {
    let (x, h) = fir::generate(n, FIR_TAPS, 7);
    fir::bind_args(&x, &h, n)
}

fn bind_blackscholes(n: usize) -> KernelArgs {
    let (spots, strikes) = blackscholes::generate(n, 11);
    blackscholes::bind_args(&spots, &strikes, 0.02, 0.3, 1.0)
}

/// The default serving mix: FIR filtering and Black–Scholes pricing,
/// both item-linear and HLS-synthesizable.
pub fn serve_mix() -> Vec<ServeKernel> {
    vec![
        ServeKernel {
            name: "fir",
            source: fir::KERNEL,
            hints: serve_hints(&[("n", 96.0), ("taps", FIR_TAPS as f64)]),
            bind: bind_fir,
        },
        ServeKernel {
            name: "blackscholes",
            source: blackscholes::KERNEL,
            hints: serve_hints(&[("n", 96.0), ("r", 0.02), ("sigma", 0.3), ("t", 1.0)]),
            bind: bind_blackscholes,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecoscale_core::{run_serve_sim, ServeSimConfig};
    use ecoscale_runtime::ServeSpec;

    #[test]
    fn mix_binders_match_their_kernels() {
        use ecoscale_hls::parse_kernel;
        for k in serve_mix() {
            let kernel = parse_kernel(k.source).unwrap();
            let mut args = (k.bind)(64);
            args.run(&kernel).expect("mix binder satisfies its kernel");
        }
    }

    #[test]
    fn mix_serves_end_to_end() {
        let spec = ServeSpec::parse("seed=3,tenants=2,rate=60000,horizon=400us,batch=4").unwrap();
        let mut cfg = ServeSimConfig::new(spec, serve_mix());
        cfg.items = 48;
        let out = run_serve_sim(&cfg);
        assert!(out.serving.conserved());
        assert!(out.serving.completed() > 0);
        assert_eq!(out.violations, 0);
        // both mix entries actually got traffic
        let m = &out.metrics;
        assert!(m.counter("serve.batches").unwrap() > 0);
        assert!(out
            .report
            .functions
            .iter()
            .any(|f| f.function == "fir" || f.function == "blackscholes"));
    }
}
