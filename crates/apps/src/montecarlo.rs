//! Monte-Carlo European option pricing.
//!
//! The Maxeler-style "curve-based Monte Carlo financial simulation" \[18\]:
//! price a call by simulating terminal prices under geometric Brownian
//! motion. The kernel consumes pre-drawn standard normals (the kernel
//! language is deterministic; randomness stays in the host generator,
//! which is how real OpenCL MC engines feed hardware pipelines too).

use ecoscale_hls::KernelArgs;
use ecoscale_sim::SimRng;

use crate::hints;
use std::collections::HashMap;

/// Per-path terminal payoff as an HLS kernel.
pub const KERNEL: &str = "kernel mc_payoff(in float z[], out float payoff[], float s0, float strike, float r, float sigma, float t, int n) {
    for (i in 0 .. n) {
        st = s0 * exp((r - 0.5 * sigma * sigma) * t + sigma * sqrt(t) * z[i]);
        payoff[i] = max(st - strike, 0.0);
    }
}";

/// HLS scalar hints.
pub fn kernel_hints(n: u64) -> HashMap<String, f64> {
    hints(&[
        ("n", n as f64),
        ("s0", 100.0),
        ("strike", 100.0),
        ("r", 0.02),
        ("sigma", 0.3),
        ("t", 1.0),
    ])
}

/// Draws `n` standard normals.
pub fn generate_normals(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = SimRng::seed_from(seed);
    (0..n).map(|_| rng.gen_std_normal()).collect()
}

/// Reference per-path payoffs.
#[allow(clippy::too_many_arguments)]
pub fn reference_payoffs(z: &[f64], s0: f64, strike: f64, r: f64, sigma: f64, t: f64) -> Vec<f64> {
    z.iter()
        .map(|&zi| {
            let st = s0 * ((r - 0.5 * sigma * sigma) * t + sigma * t.sqrt() * zi).exp();
            (st - strike).max(0.0)
        })
        .collect()
}

/// Discounted mean of payoffs: the option price estimate.
pub fn price_from_payoffs(payoffs: &[f64], r: f64, t: f64) -> f64 {
    if payoffs.is_empty() {
        return 0.0;
    }
    let mean = payoffs.iter().sum::<f64>() / payoffs.len() as f64;
    (-r * t).exp() * mean
}

/// Binds kernel arguments.
pub fn bind_args(z: &[f64], s0: f64, strike: f64, r: f64, sigma: f64, t: f64) -> KernelArgs {
    let mut args = KernelArgs::new();
    args.bind_array("z", z.to_vec())
        .bind_array("payoff", vec![0.0; z.len()])
        .bind_scalar("s0", s0)
        .bind_scalar("strike", strike)
        .bind_scalar("r", r)
        .bind_scalar("sigma", sigma)
        .bind_scalar("t", t)
        .bind_scalar("n", z.len() as f64);
    args
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecoscale_hls::parse_kernel;

    #[test]
    fn kernel_matches_reference() {
        let z = generate_normals(128, 3);
        let k = parse_kernel(KERNEL).unwrap();
        let mut args = bind_args(&z, 100.0, 100.0, 0.02, 0.3, 1.0);
        args.run(&k).unwrap();
        let expect = reference_payoffs(&z, 100.0, 100.0, 0.02, 0.3, 1.0);
        for (g, r) in args.array("payoff").unwrap().iter().zip(&expect) {
            assert!((g - r).abs() < 1e-9);
        }
    }

    #[test]
    fn mc_price_converges_to_black_scholes_ballpark() {
        // At s0 = k = 100, r = 2%, σ = 30%, t = 1: BS call ≈ 12.8
        let z = generate_normals(200_000, 17);
        let payoffs = reference_payoffs(&z, 100.0, 100.0, 0.02, 0.3, 1.0);
        let price = price_from_payoffs(&payoffs, 0.02, 1.0);
        assert!((price - 12.8).abs() < 0.5, "price {price}");
    }

    #[test]
    fn payoffs_nonnegative() {
        let z = generate_normals(1000, 23);
        for p in reference_payoffs(&z, 90.0, 110.0, 0.02, 0.4, 0.5) {
            assert!(p >= 0.0);
        }
    }

    #[test]
    fn empty_payoffs_price_zero() {
        assert_eq!(price_from_payoffs(&[], 0.02, 1.0), 0.0);
    }

    #[test]
    fn deterministic_normals() {
        assert_eq!(generate_normals(16, 1), generate_normals(16, 1));
    }
}
