//! Structured tracing with simulated-time timestamps and a Chrome
//! Trace Event exporter.
//!
//! Components record *spans* (a named interval on a track), *instant*
//! events, and *counter* samples, all stamped with sim [`Time`]. A
//! track is one horizontal lane in the viewer — one per Worker, NoC
//! link, accelerator, or fabric region.
//!
//! The API is built around [`Tracer`], a cheap clonable handle that is
//! either **disabled** (the default — every record call is a single
//! branch on an `Option`, no allocation, no locking) or **buffering**
//! into a shared [`TraceBuffer`]. Per-thread buffers produced under
//! [`crate::pool`] merge deterministically with [`TraceBuffer::merge`]
//! in input order, so exports are byte-identical regardless of
//! `ECOSCALE_THREADS`.
//!
//! [`TraceBuffer::to_chrome_json`] emits the Chrome Trace Event JSON
//! array format (`"X"` complete, `"i"` instant, `"C"` counter events
//! plus `thread_name` metadata), which Perfetto and `chrome://tracing`
//! load directly. Timestamps are microseconds with six fractional
//! digits, i.e. exact picoseconds — no float rounding, so output is
//! deterministic.

use std::sync::{Arc, Mutex};

use crate::json;
use crate::time::{Duration, Time};

/// Identifies one track (viewer lane). Obtained from
/// [`Tracer::track`] / [`TraceBuffer::track`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TrackId(pub u32);

/// What a [`TraceEvent`] records.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A span covering `[ts, ts + dur]` (Chrome phase `"X"`).
    Complete {
        /// Length of the span.
        dur: Duration,
    },
    /// A point-in-time marker (Chrome phase `"i"`).
    Instant,
    /// A sampled counter value (Chrome phase `"C"`).
    Counter {
        /// The sampled value.
        value: f64,
    },
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// The track (lane) the event belongs to.
    pub track: TrackId,
    /// Event name shown in the viewer.
    pub name: String,
    /// Simulated start time.
    pub ts: Time,
    /// Payload: span, instant, or counter sample.
    pub kind: EventKind,
}

/// An in-memory event buffer plus its track-name table.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceBuffer {
    tracks: Vec<String>,
    events: Vec<TraceEvent>,
}

impl TraceBuffer {
    /// Returns the id for the track named `name`, registering it on
    /// first use. Names are deduplicated, so merging buffers that used
    /// the same name lands their events on the same lane.
    pub fn track(&mut self, name: &str) -> TrackId {
        if let Some(i) = self.tracks.iter().position(|t| t == name) {
            return TrackId(i as u32);
        }
        self.tracks.push(name.to_owned());
        TrackId((self.tracks.len() - 1) as u32)
    }

    /// Appends an event.
    pub fn push(&mut self, ev: TraceEvent) {
        self.events.push(ev);
    }

    /// Registered track names, indexed by [`TrackId`].
    pub fn tracks(&self) -> &[String] {
        &self.tracks
    }

    /// All recorded events, in recording order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Folds `other` into `self`, remapping its track ids onto this
    /// buffer's name table. Merging per-thread buffers in input order
    /// yields the same result as single-threaded recording.
    pub fn merge(&mut self, other: TraceBuffer) {
        let remap: Vec<TrackId> = other.tracks.iter().map(|name| self.track(name)).collect();
        self.events.reserve(other.events.len());
        for mut ev in other.events {
            ev.track = remap[ev.track.0 as usize];
            self.events.push(ev);
        }
    }

    /// Renders the buffer as a Chrome Trace Event JSON document.
    ///
    /// Events are sorted by `(track, ts)` (stable, so same-instant
    /// events keep recording order), which guarantees per-track
    /// monotonic timestamps. Every track gets a `thread_name` metadata
    /// event; all tracks share `pid` 1.
    pub fn to_chrome_json(&self) -> String {
        let mut order: Vec<usize> = (0..self.events.len()).collect();
        order.sort_by_key(|&i| (self.events[i].track, self.events[i].ts));

        let mut out = String::with_capacity(64 + self.events.len() * 96);
        out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
        let mut first = true;
        for (i, name) in self.tracks.iter().enumerate() {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("{\"ph\":\"M\",\"pid\":1,\"tid\":");
            out.push_str(&i.to_string());
            out.push_str(",\"name\":\"thread_name\",\"args\":{\"name\":");
            json::escape(&mut out, name);
            out.push_str("}}");
        }
        for i in order {
            let ev = &self.events[i];
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("{\"ph\":\"");
            out.push(match ev.kind {
                EventKind::Complete { .. } => 'X',
                EventKind::Instant => 'i',
                EventKind::Counter { .. } => 'C',
            });
            out.push_str("\",\"pid\":1,\"tid\":");
            out.push_str(&ev.track.0.to_string());
            out.push_str(",\"name\":");
            json::escape(&mut out, &ev.name);
            out.push_str(",\"cat\":\"sim\",\"ts\":");
            push_us(&mut out, ev.ts.as_ps());
            match &ev.kind {
                EventKind::Complete { dur } => {
                    out.push_str(",\"dur\":");
                    push_us(&mut out, dur.as_ps());
                }
                EventKind::Instant => out.push_str(",\"s\":\"t\""),
                EventKind::Counter { value } => {
                    out.push_str(",\"args\":{\"value\":");
                    json::fmt_f64(&mut out, *value);
                    out.push('}');
                }
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

/// Writes `ps` picoseconds as a decimal microsecond literal with six
/// fractional digits (`123.000456`). Integer arithmetic only, so the
/// rendering is exact and deterministic.
fn push_us(out: &mut String, ps: u64) {
    use std::fmt::Write as _;
    let _ = write!(out, "{}.{:06}", ps / 1_000_000, ps % 1_000_000);
}

/// Handle components use to record events.
///
/// `Tracer::default()` is disabled: record calls cost one branch and
/// touch nothing else, so instrumented hot paths stay hot. A
/// [`buffering`](Tracer::buffering) tracer shares one [`TraceBuffer`]
/// across its clones (cheap `Arc` clone), which [`take`](Tracer::take)
/// extracts at the end of a run.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    shared: Option<Arc<Mutex<TraceBuffer>>>,
}

impl Tracer {
    /// A tracer that drops every event (the default).
    pub fn disabled() -> Tracer {
        Tracer::default()
    }

    /// A tracer that buffers events in shared memory.
    pub fn buffering() -> Tracer {
        Tracer {
            shared: Some(Arc::new(Mutex::new(TraceBuffer::default()))),
        }
    }

    /// True when events are being recorded. Callers with non-trivial
    /// event construction (e.g. formatted names) should gate on this.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// Registers (or looks up) the track named `name`. On a disabled
    /// tracer this returns a dummy id; record calls ignore it.
    pub fn track(&self, name: &str) -> TrackId {
        match &self.shared {
            Some(buf) => buf.lock().unwrap().track(name),
            None => TrackId(u32::MAX),
        }
    }

    /// Records a span of length `dur` starting at `start`.
    #[inline]
    pub fn complete(&self, track: TrackId, name: &str, start: Time, dur: Duration) {
        if let Some(buf) = &self.shared {
            buf.lock().unwrap().push(TraceEvent {
                track,
                name: name.to_owned(),
                ts: start,
                kind: EventKind::Complete { dur },
            });
        }
    }

    /// Records an instant marker at `ts`.
    #[inline]
    pub fn instant(&self, track: TrackId, name: &str, ts: Time) {
        if let Some(buf) = &self.shared {
            buf.lock().unwrap().push(TraceEvent {
                track,
                name: name.to_owned(),
                ts,
                kind: EventKind::Instant,
            });
        }
    }

    /// Records a counter sample at `ts`.
    #[inline]
    pub fn counter(&self, track: TrackId, name: &str, ts: Time, value: f64) {
        if let Some(buf) = &self.shared {
            buf.lock().unwrap().push(TraceEvent {
                track,
                name: name.to_owned(),
                ts,
                kind: EventKind::Counter { value },
            });
        }
    }

    /// Takes the buffered events, leaving the tracer's buffer empty.
    /// Returns an empty buffer on a disabled tracer.
    pub fn take(&self) -> TraceBuffer {
        match &self.shared {
            Some(buf) => std::mem::take(&mut *buf.lock().unwrap()),
            None => TraceBuffer::default(),
        }
    }

    /// Clones the buffered events without draining them — for post-hoc
    /// analysis (e.g. [`crate::prof::critical_path`]) that must not
    /// steal the trace from a later exporter. Returns an empty buffer on
    /// a disabled tracer.
    pub fn snapshot(&self) -> TraceBuffer {
        match &self.shared {
            Some(buf) => buf.lock().unwrap().clone(),
            None => TraceBuffer::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_buffer() -> TraceBuffer {
        let t = Tracer::buffering();
        let w0 = t.track("w0");
        let w1 = t.track("w\"1\"");
        t.complete(w0, "call", Time::from_ns(10), Duration::from_ns(5));
        t.instant(w1, "fault", Time::from_ns(3));
        t.complete(w0, "call", Time::from_ns(2), Duration::from_ns(1));
        t.counter(w1, "depth", Time::from_ns(7), 3.0);
        t.take()
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        let id = t.track("x");
        t.complete(id, "a", Time::ZERO, Duration::from_ns(1));
        t.instant(id, "b", Time::ZERO);
        assert!(!t.is_enabled());
        assert!(t.take().is_empty());
    }

    #[test]
    fn export_is_well_formed_and_per_track_time_ordered() {
        let jsn = sample_buffer().to_chrome_json();
        let doc = json::parse(&jsn).expect("trace JSON must parse");
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        // 2 metadata + 4 payload events.
        assert_eq!(events.len(), 6);
        // Per-track timestamps must be monotonically non-decreasing.
        let mut last: std::collections::HashMap<i64, f64> = std::collections::HashMap::new();
        let mut names = Vec::new();
        for ev in events {
            let ph = ev.get("ph").unwrap().as_str().unwrap();
            if ph == "M" {
                names.push(
                    ev.get("args")
                        .unwrap()
                        .get("name")
                        .unwrap()
                        .as_str()
                        .unwrap()
                        .to_owned(),
                );
                continue;
            }
            let tid = ev.get("tid").unwrap().as_f64().unwrap() as i64;
            let ts = ev.get("ts").unwrap().as_f64().unwrap();
            let prev = last.insert(tid, ts);
            assert!(prev.is_none_or(|p| p <= ts), "track {tid} went backwards");
        }
        assert_eq!(names, vec!["w0".to_owned(), "w\"1\"".to_owned()]);
    }

    #[test]
    fn timestamps_are_exact_picoseconds() {
        let t = Tracer::buffering();
        let id = t.track("t");
        t.complete(id, "a", Time::from_ps(1_234_567), Duration::from_ps(7));
        let jsn = t.take().to_chrome_json();
        assert!(jsn.contains("\"ts\":1.234567"), "got: {jsn}");
        assert!(jsn.contains("\"dur\":0.000007"), "got: {jsn}");
    }

    #[test]
    fn merge_remaps_tracks_and_matches_sequential_recording() {
        // Two "threads" record onto identically-named tracks.
        let a = Tracer::buffering();
        let ta = a.track("shared");
        a.complete(ta, "x", Time::from_ns(1), Duration::from_ns(1));
        let b = Tracer::buffering();
        let tb_other = b.track("other");
        let tb = b.track("shared");
        b.instant(tb, "y", Time::from_ns(2));
        b.instant(tb_other, "z", Time::from_ns(9));

        let mut merged = a.take();
        merged.merge(b.take());
        assert_eq!(merged.tracks(), &["shared".to_owned(), "other".to_owned()]);
        assert_eq!(merged.len(), 3);
        // "y" landed on the same lane as "x" despite different ids.
        assert_eq!(merged.events()[1].track, merged.events()[0].track);

        // Equivalent single-buffer recording exports identically.
        let seq = Tracer::buffering();
        let s = seq.track("shared");
        let o = seq.track("other");
        seq.complete(s, "x", Time::from_ns(1), Duration::from_ns(1));
        seq.instant(s, "y", Time::from_ns(2));
        seq.instant(o, "z", Time::from_ns(9));
        assert_eq!(merged.to_chrome_json(), seq.take().to_chrome_json());
    }
}
