//! Fixed-width table rendering for the experiment binaries.
//!
//! Every experiment in `ecoscale-bench` prints its series as a [`Table`]
//! so `EXPERIMENTS.md` can quote outputs verbatim.

use core::fmt;

/// A simple right-aligned fixed-width table.
///
/// # Example
///
/// ```
/// use ecoscale_sim::report::Table;
///
/// let mut t = Table::new("demo", &["n", "latency"]);
/// t.row(&["1", "35ns"]);
/// t.row(&["2", "70ns"]);
/// let s = t.to_string();
/// assert!(s.contains("latency"));
/// assert!(s.contains("70ns"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Table {
        Table {
            title: title.to_owned(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the header count.
    pub fn row(&mut self, cells: &[&str]) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row has {} cells, table has {} columns",
            cells.len(),
            self.headers.len()
        );
        self.rows
            .push(cells.iter().map(|s| (*s).to_owned()).collect());
    }

    /// Appends a row of already-owned strings.
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the header count.
    pub fn row_owned(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if there are no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Access to the raw cells of row `i`.
    pub fn cells(&self, i: usize) -> Option<&[String]> {
        self.rows.get(i).map(|r| r.as_slice())
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        for (i, h) in self.headers.iter().enumerate() {
            if i > 0 {
                write!(f, "  ")?;
            }
            write!(f, "{h:>w$}", w = widths[i])?;
        }
        writeln!(f)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:>w$}", w = widths[i])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Formats a float with engineering-style precision: 3 significant-ish
/// decimals for small values, fewer for large.
pub fn fnum(v: f64) -> String {
    if !v.is_finite() {
        return format!("{v}");
    }
    let a = v.abs();
    if a >= 1000.0 {
        format!("{v:.0}")
    } else if a >= 10.0 {
        format!("{v:.1}")
    } else if a >= 0.01 || a == 0.0 {
        format!("{v:.3}")
    } else {
        format!("{v:.2e}")
    }
}

/// Formats a speedup/ratio as `12.3x`.
pub fn fratio(v: f64) -> String {
    format!("{}x", fnum(v))
}

/// Formats a byte count with binary units.
pub fn fbytes(b: u64) -> String {
    const UNITS: [&str; 6] = ["B", "KiB", "MiB", "GiB", "TiB", "PiB"];
    let mut v = b as f64;
    let mut u = 0;
    while v >= 1024.0 && u < UNITS.len() - 1 {
        v /= 1024.0;
        u += 1;
    }
    if u == 0 {
        format!("{b}B")
    } else {
        format!("{v:.1}{}", UNITS[u])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("t", &["a", "bbbb"]);
        t.row(&["1", "2"]);
        t.row(&["333", "4"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "== t ==");
        assert!(lines[1].contains("a") && lines[1].contains("bbbb"));
        // all data lines equal width
        assert_eq!(lines[3].len(), lines[4].len());
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.cells(1).unwrap()[0], "333");
        assert_eq!(t.title(), "t");
    }

    #[test]
    #[should_panic(expected = "columns")]
    fn row_arity_checked() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(&["only-one"]);
    }

    #[test]
    fn row_owned_works() {
        let mut t = Table::new("t", &["x"]);
        t.row_owned(vec!["5".to_owned()]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn fnum_ranges() {
        assert_eq!(fnum(12345.6), "12346");
        assert_eq!(fnum(42.25), "42.2");
        assert_eq!(fnum(1.23456), "1.235");
        assert_eq!(fnum(0.0), "0.000");
        assert_eq!(fnum(0.0001234), "1.23e-4");
        assert_eq!(fnum(f64::INFINITY), "inf");
    }

    #[test]
    fn fratio_and_fbytes() {
        assert_eq!(fratio(40.0), "40.0x");
        assert_eq!(fbytes(512), "512B");
        assert_eq!(fbytes(2048), "2.0KiB");
        assert_eq!(fbytes(3 * 1024 * 1024), "3.0MiB");
        assert_eq!(fbytes(5 * 1024 * 1024 * 1024), "5.0GiB");
    }
}
