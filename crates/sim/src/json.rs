//! Minimal JSON support: an escaping writer helper and a small
//! recursive-descent parser.
//!
//! The workspace is dependency-free, so the trace and metrics exporters
//! hand-roll their JSON output. This module keeps the two shared pieces
//! in one place: [`escape`] for string emission, and [`parse`] so tests
//! (and the `exp_all` CLI tests) can validate that the emitted documents
//! are well-formed without pulling in serde.
//!
//! The parser accepts standard JSON (objects, arrays, strings with
//! escapes including `\uXXXX` surrogate pairs, numbers, booleans,
//! null). It preserves object key order, which the deterministic
//! exporters rely on in tests.

use std::fmt::Write as _;

/// A parsed JSON value. Object keys keep their document order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, held as `f64`.
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in document order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Appends `s` to `out` as a JSON string literal (including the
/// surrounding quotes).
pub fn escape(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Formats an `f64` so it round-trips through the parser: finite values
/// use the shortest `Display` form, non-finite values become `null`
/// (JSON has no NaN/Inf).
pub fn fmt_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        let _ = write!(out, "{x}");
    } else {
        out.push_str("null");
    }
}

/// Parses a complete JSON document. Trailing non-whitespace is an
/// error, as is any malformed construct; the message carries a byte
/// offset.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected byte at {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        if self.pos + 4 > self.bytes.len() {
            return Err(format!("truncated \\u escape at byte {}", self.pos));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
        let n = u32::from_str_radix(s, 16)
            .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
        self.pos += 4;
        Ok(n)
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while matches!(self.peek(), Some(b) if b != b'"' && b != b'\\') {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| format!("invalid utf-8 near byte {start}"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let code = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if self.peek() != Some(b'\\') {
                                    return Err(format!("lone surrogate at byte {}", self.pos));
                                }
                                self.pos += 1;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("bad codepoint near byte {start}"))?,
                            );
                            continue;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                _ => return Err(format!("unterminated string at byte {start}")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        s.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("bad number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_escapes() {
        let mut s = String::new();
        escape(&mut s, "a\"b\\c\nd\u{1}e");
        let v = parse(&s).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\nd\u{1}e"));
    }

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a":[1,2.5,-3e2],"b":{"c":null,"d":true},"e":"é😀"}"#).unwrap();
        let a = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(a[2].as_f64(), Some(-300.0));
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Value::Null));
        assert_eq!(v.get("e").unwrap().as_str(), Some("é😀"));
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse("{\"a\":1,}").is_err());
        assert!(parse("[1 2]").is_err());
        assert!(parse("{\"a\":1} x").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn preserves_key_order() {
        let v = parse(r#"{"z":1,"a":2}"#).unwrap();
        match v {
            Value::Obj(pairs) => {
                assert_eq!(pairs[0].0, "z");
                assert_eq!(pairs[1].0, "a");
            }
            _ => panic!("expected object"),
        }
    }
}
