//! ProfPlane: deterministic post-hoc profiling over the trace/metrics
//! exports, plus low-overhead runtime self-profiling.
//!
//! Three answers to "where did the time go?":
//!
//! 1. **Causal critical path** — [`critical_path`] reconstructs a span
//!    DAG from a recorded [`TraceBuffer`] (every Complete span, with
//!    happens-before edges implied by time: a span's predecessor is the
//!    latest span that finished at or before it started) and walks the
//!    longest chain backwards from the last span to finish. Each chain
//!    span blames its [`Layer`]; every gap between chain spans — time
//!    when nothing on the chain was running — blames scheduler wait.
//!    By construction the blame vector sums *exactly* to the critical
//!    path length, so the per-layer percentages in [`ProfileReport`]
//!    always total 100%.
//! 2. **Shard occupancy** — [`ShardOccupancy`] counts, per safe window,
//!    how many events each cluster processed and buckets them into
//!    hypothetical shard partitions ("bands"). Event counts are part of
//!    the deterministic simulation state, so unlike wall-clock profiles
//!    the export is byte-identical at any `ECOSCALE_SHARDS` setting.
//!    `events / crit_events` is the standard conservative-PDES
//!    critical-path speedup bound; the imbalance index is how much the
//!    busiest shard exceeds the mean.
//! 3. **Self-profiling** — [`Profiler`] accumulates wall-clock time per
//!    engine phase ([`Phase`]: drain/decide/process/barrier). Disabled
//!    profilers cost one branch per phase and never allocate, so the
//!    hot path stays hot. Wall numbers are host-dependent and therefore
//!    kept *out* of deterministic exports (stderr and `BENCH_*.json`
//!    only).

use std::time::Instant;

use crate::json;
use crate::metrics::MetricsRegistry;
use crate::report::Table;
use crate::time::Duration;
use crate::trace::{EventKind, TraceBuffer};

/// The layer a span blames critical-path time on.
///
/// The variant order is the canonical reporting order (scheduler wait,
/// NoC, SMMU, fabric reconfiguration, compute) used by every export.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layer {
    /// Scheduler wait: explicit wait spans plus every gap on the chain.
    Wait = 0,
    /// NoC transfers (`noc/*` tracks).
    Noc = 1,
    /// SMMU translation walks (`smmu*` tracks).
    Smmu = 2,
    /// Fabric reconfiguration (`*/fabric` tracks, repair spans).
    Reconfig = 3,
    /// Everything else: task execution, accelerator calls.
    Compute = 4,
}

/// Number of [`Layer`] variants.
pub const LAYERS: usize = 5;

impl Layer {
    /// Every layer, in reporting order.
    pub const ALL: [Layer; LAYERS] = [
        Layer::Wait,
        Layer::Noc,
        Layer::Smmu,
        Layer::Reconfig,
        Layer::Compute,
    ];

    /// The export name of the layer.
    pub fn name(self) -> &'static str {
        match self {
            Layer::Wait => "wait",
            Layer::Noc => "noc",
            Layer::Smmu => "smmu",
            Layer::Reconfig => "reconfig",
            Layer::Compute => "compute",
        }
    }
}

/// Maps a span's `(track, name)` onto a [`Layer`] using the workspace's
/// track-naming conventions: `noc/*` lanes are transfers, `smmu*` lanes
/// are translation walks, `*/fabric` lanes (and the repair spans the
/// daemon records on them) are reconfiguration, `*/wait` lanes or spans
/// named `wait` are scheduler wait, and everything else is compute.
pub fn classify(track: &str, name: &str) -> Layer {
    if name == "wait" || track.ends_with("/wait") {
        Layer::Wait
    } else if track.starts_with("noc/") {
        Layer::Noc
    } else if track.starts_with("smmu") || name == "walk" {
        Layer::Smmu
    } else if track.ends_with("/fabric") || name == "seu-repair" || name == "daemon-reconfig" {
        Layer::Reconfig
    } else {
        Layer::Compute
    }
}

/// The result of a critical-path extraction: total path length and the
/// exact per-layer blame split. `blame_ps` sums to `total_ps` by
/// construction, so percentages always total 100.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProfileReport {
    /// Critical-path length: last span end minus first span start (ps).
    pub total_ps: u64,
    /// Spans considered (every Complete event in the trace).
    pub spans: u64,
    /// Spans on the extracted chain.
    pub path_spans: u64,
    /// Per-layer blame in ps, indexed by [`Layer`] (reporting order).
    pub blame_ps: [u64; LAYERS],
}

impl ProfileReport {
    /// Blame charged to `layer`, in picoseconds.
    pub fn blame(&self, layer: Layer) -> u64 {
        self.blame_ps[layer as usize]
    }

    /// Blame charged to `layer` as a percentage of the critical path
    /// (0.0 on an empty profile).
    pub fn percent(&self, layer: Layer) -> f64 {
        if self.total_ps == 0 {
            0.0
        } else {
            self.blame(layer) as f64 * 100.0 / self.total_ps as f64
        }
    }

    /// Deterministic JSON rendering: fixed key order, layers in
    /// reporting order, percentages derived from the exact ps counts.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"total_ps\":");
        out.push_str(&self.total_ps.to_string());
        out.push_str(",\"spans\":");
        out.push_str(&self.spans.to_string());
        out.push_str(",\"path_spans\":");
        out.push_str(&self.path_spans.to_string());
        out.push_str(",\"blame\":[");
        for (i, layer) in Layer::ALL.into_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"layer\":\"");
            out.push_str(layer.name());
            out.push_str("\",\"ps\":");
            out.push_str(&self.blame(layer).to_string());
            out.push_str(",\"percent\":");
            json::fmt_f64(&mut out, self.percent(layer));
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// Renders the blame attribution as a table.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new("critical-path blame", &["layer", "time", "percent"]);
        for layer in Layer::ALL {
            t.row_owned(vec![
                layer.name().to_owned(),
                Duration::from_ps(self.blame(layer)).to_string(),
                format!("{:.1}%", self.percent(layer)),
            ]);
        }
        t.row_owned(vec![
            "total".to_owned(),
            Duration::from_ps(self.total_ps).to_string(),
            "100.0%".to_owned(),
        ]);
        t
    }
}

/// One span lifted out of the trace for path extraction.
#[derive(Debug, Clone, Copy)]
struct Span {
    start: u64,
    end: u64,
    layer: Layer,
}

/// [`critical_path_with`] under the default [`classify`] rules.
pub fn critical_path(trace: &TraceBuffer) -> ProfileReport {
    critical_path_with(trace, classify)
}

/// Extracts the critical path of `trace` and attributes it per layer.
///
/// The chain starts at the span with the latest end. Each step picks the
/// predecessor with the latest end among spans that finished at or
/// before the current span started (and started strictly earlier, which
/// guarantees termination); the gap between them blames [`Layer::Wait`].
/// The lead-in from the globally earliest span start to the first chain
/// span blames wait too, which makes the blame sum exactly `total_ps`.
///
/// Deterministic: ties resolve by the trace's (deterministic) recording
/// order, so byte-identical traces yield byte-identical reports.
pub fn critical_path_with(
    trace: &TraceBuffer,
    classify: impl Fn(&str, &str) -> Layer,
) -> ProfileReport {
    let tracks = trace.tracks();
    let mut spans: Vec<Span> = trace
        .events()
        .iter()
        .filter_map(|ev| match ev.kind {
            EventKind::Complete { dur } => {
                let start = ev.ts.as_ps();
                Some(Span {
                    start,
                    end: start.saturating_add(dur.as_ps()),
                    layer: classify(&tracks[ev.track.0 as usize], &ev.name),
                })
            }
            _ => None,
        })
        .collect();
    let mut report = ProfileReport {
        spans: spans.len() as u64,
        ..ProfileReport::default()
    };
    if spans.is_empty() {
        return report;
    }
    // Stable sort: ties keep recording order, so the walk is a pure
    // function of the (byte-identical) trace.
    spans.sort_by_key(|s| (s.end, s.start));
    let min_start = spans.iter().map(|s| s.start).min().expect("non-empty");
    let ends: Vec<u64> = spans.iter().map(|s| s.end).collect();
    let mut cur = spans.len() - 1;
    report.total_ps = spans[cur].end - min_start;
    loop {
        let s = spans[cur];
        report.blame_ps[s.layer as usize] += s.end - s.start;
        report.path_spans += 1;
        // Candidates end at or before s.start; scan from the latest end
        // down for one that also started strictly earlier.
        let cut = ends.partition_point(|&e| e <= s.start);
        let pred = (0..cut).rev().find(|&i| spans[i].start < s.start);
        match pred {
            Some(p) => {
                report.blame_ps[Layer::Wait as usize] += s.start - spans[p].end;
                cur = p;
            }
            None => {
                report.blame_ps[Layer::Wait as usize] += s.start - min_start;
                break;
            }
        }
    }
    debug_assert_eq!(report.blame_ps.iter().sum::<u64>(), report.total_ps);
    report
}

/// Occupancy of one hypothetical `shards`-way partition, accumulated
/// per safe window by [`ShardOccupancy::fold_window`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OccupancyBand {
    /// The hypothetical shard count of this band.
    pub shards: usize,
    /// Sum over windows of the busiest shard's event count — the
    /// critical path of the window protocol in event terms.
    pub crit_events: u64,
    /// Sum over windows of the events the non-critical shards were
    /// short of the busiest (barrier-wait, in event terms).
    pub wait_events: u64,
    /// Shard-windows that processed no events at all.
    pub idle_windows: u64,
}

/// Per-window per-cluster event accounting inside the sharded engine.
///
/// Everything here is derived from event *counts*, which are part of the
/// deterministic simulation state — so unlike a wall-clock profile the
/// whole export is byte-identical at any `ECOSCALE_SHARDS` or thread
/// setting, and one run yields bounds for several hypothetical shard
/// widths at once.
#[derive(Debug, Clone)]
pub struct ShardOccupancy {
    clusters: usize,
    /// Safe windows folded (windows that processed at least one event).
    pub windows: u64,
    /// Total events across all folded windows.
    pub events: u64,
    /// Events per cluster, in cluster order.
    pub cluster_events: Vec<u64>,
    /// One band per requested shard width, ascending.
    pub bands: Vec<OccupancyBand>,
    scratch: Vec<u64>,
}

impl ShardOccupancy {
    /// An empty accumulator over `clusters` clusters with one band per
    /// width in `widths` (each clamped to `[1, clusters]`, deduplicated,
    /// ascending). Buckets use the engine's contiguous partition rule
    /// (`cluster * shards / clusters`), so a band mirrors exactly what
    /// running at that `ECOSCALE_SHARDS` would distribute.
    ///
    /// # Panics
    ///
    /// Panics if `clusters` is zero.
    pub fn new(clusters: usize, widths: &[usize]) -> ShardOccupancy {
        assert!(clusters > 0, "occupancy needs at least one cluster");
        let mut ws: Vec<usize> = widths.iter().map(|&w| w.clamp(1, clusters)).collect();
        ws.sort_unstable();
        ws.dedup();
        let max_w = ws.last().copied().unwrap_or(0);
        ShardOccupancy {
            clusters,
            windows: 0,
            events: 0,
            cluster_events: vec![0; clusters],
            bands: ws
                .into_iter()
                .map(|shards| OccupancyBand {
                    shards,
                    crit_events: 0,
                    wait_events: 0,
                    idle_windows: 0,
                })
                .collect(),
            scratch: vec![0; max_w],
        }
    }

    /// Number of clusters the accumulator was built for.
    pub fn clusters(&self) -> usize {
        self.clusters
    }

    /// Folds one window's per-cluster event counts. Windows with no
    /// events (possible before the first decision) are ignored.
    ///
    /// # Panics
    ///
    /// Panics if `deltas` does not have one entry per cluster.
    pub fn fold_window(&mut self, deltas: &[u64]) {
        assert_eq!(deltas.len(), self.clusters, "one delta per cluster");
        let total: u64 = deltas.iter().sum();
        if total == 0 {
            return;
        }
        self.windows += 1;
        self.events += total;
        for (acc, d) in self.cluster_events.iter_mut().zip(deltas) {
            *acc += d;
        }
        let mut scratch = std::mem::take(&mut self.scratch);
        for band in &mut self.bands {
            let b = band.shards;
            scratch[..b].fill(0);
            for (c, d) in deltas.iter().enumerate() {
                scratch[c * b / self.clusters] += d;
            }
            let crit = scratch[..b].iter().copied().max().unwrap_or(0);
            band.crit_events += crit;
            band.wait_events += crit * b as u64 - total;
            band.idle_windows += scratch[..b].iter().filter(|&&x| x == 0).count() as u64;
        }
        self.scratch = scratch;
    }

    /// The band for `shards`, if that width was requested.
    pub fn band(&self, shards: usize) -> Option<&OccupancyBand> {
        self.bands.iter().find(|b| b.shards == shards)
    }

    /// `events / crit_events` of the `shards` band: the event-count
    /// critical-path speedup bound of the window protocol (1.0 when the
    /// band is missing or empty).
    pub fn speedup(&self, shards: usize) -> f64 {
        match self.band(shards) {
            Some(b) if b.crit_events > 0 => self.events as f64 / b.crit_events as f64,
            _ => 1.0,
        }
    }

    /// How much the busiest shard exceeds the mean, summed over windows:
    /// `crit_events * shards / events - 1` (0.0 = perfectly balanced).
    pub fn imbalance(&self, shards: usize) -> f64 {
        match self.band(shards) {
            Some(b) if self.events > 0 => {
                (b.crit_events as f64 * b.shards as f64) / self.events as f64 - 1.0
            }
            _ => 0.0,
        }
    }

    /// Mean busy fraction across shard-windows of the `shards` band:
    /// `events / (crit_events * shards)` (1.0 when empty).
    pub fn occupancy(&self, shards: usize) -> f64 {
        match self.band(shards) {
            Some(b) if b.crit_events > 0 => {
                self.events as f64 / (b.crit_events as f64 * b.shards as f64)
            }
            _ => 1.0,
        }
    }

    /// The imbalance of the widest requested band — the headline
    /// "imbalance index" of a run.
    pub fn imbalance_index(&self) -> f64 {
        self.bands.last().map_or(0.0, |b| self.imbalance(b.shards))
    }

    /// Exports the accounting under `prefix` (counters for the exact
    /// event counts, observations for the derived ratios). All values
    /// are deterministic, so they are safe in byte-compared snapshots.
    pub fn export_metrics(&self, m: &mut MetricsRegistry, prefix: &str) {
        m.add(&format!("{prefix}.windows"), self.windows);
        m.add(&format!("{prefix}.events"), self.events);
        for band in &self.bands {
            let p = format!("{prefix}.s{}", band.shards);
            m.add(&format!("{p}.crit_events"), band.crit_events);
            m.add(&format!("{p}.wait_events"), band.wait_events);
            m.add(&format!("{p}.idle_windows"), band.idle_windows);
            m.observe(&format!("{p}.speedup"), self.speedup(band.shards));
            m.observe(&format!("{p}.imbalance"), self.imbalance(band.shards));
        }
    }

    /// Deterministic JSON rendering (fixed key order, bands ascending).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"clusters\":");
        out.push_str(&self.clusters.to_string());
        out.push_str(",\"windows\":");
        out.push_str(&self.windows.to_string());
        out.push_str(",\"events\":");
        out.push_str(&self.events.to_string());
        out.push_str(",\"cluster_events\":[");
        for (i, e) in self.cluster_events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&e.to_string());
        }
        out.push_str("],\"bands\":[");
        for (i, band) in self.bands.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"shards\":");
            out.push_str(&band.shards.to_string());
            out.push_str(",\"crit_events\":");
            out.push_str(&band.crit_events.to_string());
            out.push_str(",\"wait_events\":");
            out.push_str(&band.wait_events.to_string());
            out.push_str(",\"idle_windows\":");
            out.push_str(&band.idle_windows.to_string());
            out.push_str(",\"speedup\":");
            json::fmt_f64(&mut out, self.speedup(band.shards));
            out.push_str(",\"imbalance\":");
            json::fmt_f64(&mut out, self.imbalance(band.shards));
            out.push_str(",\"occupancy\":");
            json::fmt_f64(&mut out, self.occupancy(band.shards));
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// Renders the per-band analytics as a table.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(
            "shard occupancy",
            &["shards", "crit events", "speedup", "imbalance", "occupancy"],
        );
        for band in &self.bands {
            t.row_owned(vec![
                band.shards.to_string(),
                band.crit_events.to_string(),
                format!("{:.2}x", self.speedup(band.shards)),
                format!("{:.3}", self.imbalance(band.shards)),
                format!("{:.1}%", self.occupancy(band.shards) * 100.0),
            ]);
        }
        t
    }
}

/// A wall-clock phase of the sharded engine's round protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Moving mailbox messages into wheels and publishing horizons.
    Drain = 0,
    /// The leader's window decision.
    Decide = 1,
    /// Executing the window's events.
    Process = 2,
    /// Waiting on the round barrier.
    Barrier = 3,
}

/// Number of [`Phase`] variants.
pub const PHASES: usize = 4;

impl Phase {
    /// Every phase, in protocol order.
    pub const ALL: [Phase; PHASES] = [Phase::Drain, Phase::Decide, Phase::Process, Phase::Barrier];

    /// The export name of the phase.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Drain => "drain",
            Phase::Decide => "decide",
            Phase::Process => "process",
            Phase::Barrier => "barrier",
        }
    }
}

/// Wall-clock phase timers, zero-cost when disabled: [`Profiler::begin`]
/// is one branch returning `None`, [`Profiler::end`] one branch on the
/// token; no allocation on either path, ever (the accumulators are two
/// fixed arrays). Wall times are host-dependent — export them next to
/// (never inside) deterministic results.
#[derive(Debug, Clone, Default)]
pub struct Profiler {
    enabled: bool,
    ns: [u64; PHASES],
    calls: [u64; PHASES],
}

impl Profiler {
    /// A profiler that measures nothing (the default).
    pub fn disabled() -> Profiler {
        Profiler::default()
    }

    /// A profiler that accumulates wall time per phase.
    pub fn armed() -> Profiler {
        Profiler {
            enabled: true,
            ..Profiler::default()
        }
    }

    /// True when phases are being timed.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Starts timing a phase. Returns `None` (and reads no clock) when
    /// disabled.
    #[inline]
    pub fn begin(&self) -> Option<Instant> {
        if self.enabled {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Ends the phase started by the matching [`Profiler::begin`].
    #[inline]
    pub fn end(&mut self, phase: Phase, token: Option<Instant>) {
        if let Some(t0) = token {
            self.ns[phase as usize] += t0.elapsed().as_nanos() as u64;
            self.calls[phase as usize] += 1;
        }
    }

    /// Folds another profiler's accumulators into this one.
    pub fn merge(&mut self, other: &Profiler) {
        self.enabled |= other.enabled;
        for i in 0..PHASES {
            self.ns[i] += other.ns[i];
            self.calls[i] += other.calls[i];
        }
    }

    /// Accumulated wall nanoseconds in `phase`.
    pub fn ns(&self, phase: Phase) -> u64 {
        self.ns[phase as usize]
    }

    /// Number of timed entries into `phase`.
    pub fn phase_calls(&self, phase: Phase) -> u64 {
        self.calls[phase as usize]
    }

    /// Total wall nanoseconds across all phases.
    pub fn total_ns(&self) -> u64 {
        self.ns.iter().sum()
    }

    /// JSON rendering. Host-dependent — keep out of byte-compared
    /// exports.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128);
        out.push('{');
        for (i, phase) in Phase::ALL.into_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(phase.name());
            out.push_str("_ns\":");
            out.push_str(&self.ns(phase).to_string());
            out.push_str(",\"");
            out.push_str(phase.name());
            out.push_str("_calls\":");
            out.push_str(&self.phase_calls(phase).to_string());
        }
        out.push('}');
        out
    }

    /// Renders the phase timers as a table.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new("engine wall phases", &["phase", "wall", "calls", "share"]);
        let total = self.total_ns().max(1);
        for phase in Phase::ALL {
            t.row_owned(vec![
                phase.name().to_owned(),
                format!("{:.3}ms", self.ns(phase) as f64 / 1e6),
                self.phase_calls(phase).to_string(),
                format!("{:.1}%", self.ns(phase) as f64 * 100.0 / total as f64),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Time;
    use crate::trace::Tracer;

    fn span(t: &Tracer, track: &str, name: &str, start_ns: u64, dur_ns: u64) {
        let id = t.track(track);
        t.complete(id, name, Time::from_ns(start_ns), Duration::from_ns(dur_ns));
    }

    #[test]
    fn classify_follows_track_conventions() {
        assert_eq!(classify("noc/link3", "xfer"), Layer::Noc);
        assert_eq!(classify("smmu/walks", "walk"), Layer::Smmu);
        assert_eq!(classify("w2/fabric", "scale"), Layer::Reconfig);
        assert_eq!(classify("w0/fabric", "seu-repair"), Layer::Reconfig);
        assert_eq!(classify("sched0/wait", "wait"), Layer::Wait);
        assert_eq!(classify("c3/w1", "task"), Layer::Compute);
        assert_eq!(classify("w0/calls", "hot"), Layer::Compute);
    }

    #[test]
    fn linear_chain_blames_compute_entirely() {
        let t = Tracer::buffering();
        span(&t, "c0/w0", "task", 0, 10);
        span(&t, "c0/w0", "task", 10, 20);
        span(&t, "c0/w0", "task", 30, 10);
        let r = critical_path(&t.take());
        assert_eq!(r.total_ps, Duration::from_ns(40).as_ps());
        assert_eq!(r.spans, 3);
        assert_eq!(r.path_spans, 3);
        assert_eq!(r.percent(Layer::Compute), 100.0);
        assert_eq!(r.blame_ps.iter().sum::<u64>(), r.total_ps);
    }

    #[test]
    fn fork_join_takes_longest_branch_and_blames_gaps_on_wait() {
        let t = Tracer::buffering();
        // fork at 10, branches 10ns and 20ns; join starts 2ns after the
        // long branch ends -> wait = 2ns of 40ns = 5%.
        span(&t, "c0/w0", "task", 0, 10);
        span(&t, "c0/w1", "task", 10, 10);
        span(&t, "c0/w2", "task", 10, 20);
        span(&t, "c0/w0", "task", 32, 8);
        let r = critical_path(&t.take());
        assert_eq!(r.total_ps, Duration::from_ns(40).as_ps());
        assert_eq!(r.path_spans, 3, "short branch is off the path");
        assert_eq!(r.percent(Layer::Wait), 5.0);
        assert_eq!(r.percent(Layer::Compute), 95.0);
        assert_eq!(r.blame_ps.iter().sum::<u64>(), r.total_ps);
    }

    #[test]
    fn cross_shard_edge_blames_the_noc_hop() {
        let t = Tracer::buffering();
        // compute on cluster 0, a NoC transfer, compute on cluster 1.
        span(&t, "c0/w0", "task", 0, 10);
        span(&t, "noc/link0", "xfer", 10, 4);
        span(&t, "c1/w0", "task", 14, 6);
        let r = critical_path(&t.take());
        assert_eq!(r.total_ps, Duration::from_ns(20).as_ps());
        assert_eq!(r.path_spans, 3);
        assert_eq!(r.percent(Layer::Noc), 20.0);
        assert_eq!(r.percent(Layer::Compute), 80.0);
        assert_eq!(r.percent(Layer::Wait), 0.0);
    }

    #[test]
    fn leading_idle_time_blames_wait() {
        let t = Tracer::buffering();
        span(&t, "a", "early", 0, 5);
        // the chain head's own history starts at 20; 0..20 is wait
        // because nothing on the chain ran before it.
        span(&t, "b", "late", 20, 10);
        let r = critical_path(&t.take());
        assert_eq!(r.total_ps, Duration::from_ns(30).as_ps());
        // span "early" overlaps nothing before "late": end 5 <= start 20
        // and start 0 < 20, so it IS the predecessor with a 15ns gap.
        assert_eq!(r.path_spans, 2);
        assert_eq!(r.blame(Layer::Wait), Duration::from_ns(15).as_ps());
        assert_eq!(r.blame_ps.iter().sum::<u64>(), r.total_ps);
    }

    #[test]
    fn empty_trace_yields_zero_report() {
        let r = critical_path(&TraceBuffer::default());
        assert_eq!(r.total_ps, 0);
        assert_eq!(r.spans, 0);
        assert_eq!(r.percent(Layer::Compute), 0.0);
        crate::json::parse(&r.to_json()).expect("report JSON parses");
    }

    #[test]
    fn report_json_is_valid_and_percentages_total_100() {
        let t = Tracer::buffering();
        span(&t, "c0/w0", "task", 0, 7);
        span(&t, "noc/link1", "xfer", 7, 3);
        span(&t, "c1/w0", "task", 12, 8);
        let r = critical_path(&t.take());
        let doc = crate::json::parse(&r.to_json()).expect("parses");
        let blame = doc.get("blame").and_then(|v| v.as_arr()).expect("blame");
        assert_eq!(blame.len(), LAYERS);
        let total: f64 = blame
            .iter()
            .map(|b| b.get("percent").and_then(|p| p.as_f64()).unwrap())
            .sum();
        assert!((total - 100.0).abs() < 1e-9, "percentages sum to {total}");
    }

    #[test]
    fn occupancy_folds_windows_and_bounds_speedup() {
        let mut occ = ShardOccupancy::new(4, &[2, 4, 99]);
        // width 99 clamps to 4
        assert_eq!(
            occ.bands.iter().map(|b| b.shards).collect::<Vec<_>>(),
            vec![2, 4]
        );
        occ.fold_window(&[4, 0, 0, 0]); // fully imbalanced
        occ.fold_window(&[1, 1, 1, 1]); // fully balanced
        occ.fold_window(&[0, 0, 0, 0]); // ignored
        assert_eq!(occ.windows, 2);
        assert_eq!(occ.events, 8);
        assert_eq!(occ.cluster_events, vec![5, 1, 1, 1]);
        // width 2: windows contribute max(4,0)=4 and max(2,2)=2.
        let b2 = occ.band(2).expect("band 2");
        assert_eq!(b2.crit_events, 6);
        // wait = (crit*width - total) per window: (4*2-4) + (2*2-4) = 4
        assert_eq!(b2.wait_events, 4);
        assert_eq!(b2.idle_windows, 1);
        assert_eq!(occ.speedup(2), 8.0 / 6.0);
        // width 4: contributes max 4 then max 1.
        let b4 = occ.band(4).expect("band 4");
        assert_eq!(b4.crit_events, 5);
        assert_eq!(b4.idle_windows, 3);
        assert_eq!(occ.speedup(4), 8.0 / 5.0);
        assert!(occ.imbalance(4) > occ.imbalance(2) - 1e-12);
        assert_eq!(occ.imbalance_index(), occ.imbalance(4));
        crate::json::parse(&occ.to_json()).expect("occupancy JSON parses");
    }

    #[test]
    fn occupancy_exports_deterministic_metrics() {
        let mut occ = ShardOccupancy::new(4, &[2]);
        occ.fold_window(&[3, 1, 0, 2]);
        let mut m = MetricsRegistry::new();
        occ.export_metrics(&mut m, "shard.occupancy");
        assert_eq!(m.counter("shard.occupancy.windows"), Some(1));
        assert_eq!(m.counter("shard.occupancy.events"), Some(6));
        assert_eq!(m.counter("shard.occupancy.s2.crit_events"), Some(4));
        assert!(m.get("shard.occupancy.s2.speedup").is_some());
    }

    #[test]
    fn disabled_profiler_measures_nothing() {
        let mut p = Profiler::disabled();
        let t = p.begin();
        assert!(t.is_none(), "disabled begin must not read the clock");
        p.end(Phase::Process, t);
        assert_eq!(p.total_ns(), 0);
        assert_eq!(p.phase_calls(Phase::Process), 0);
    }

    #[test]
    fn armed_profiler_accumulates_and_merges() {
        let mut a = Profiler::armed();
        let t = a.begin();
        assert!(t.is_some());
        p_spin();
        a.end(Phase::Drain, t);
        assert_eq!(a.phase_calls(Phase::Drain), 1);
        let mut b = Profiler::armed();
        let t = b.begin();
        p_spin();
        b.end(Phase::Process, t);
        a.merge(&b);
        assert_eq!(a.phase_calls(Phase::Drain), 1);
        assert_eq!(a.phase_calls(Phase::Process), 1);
        crate::json::parse(&a.to_json()).expect("profiler JSON parses");
        assert!(a.to_table().to_string().contains("process"));
    }

    fn p_spin() {
        // a handful of volatile reads so elapsed() has something to see
        let x = std::hint::black_box(0u64);
        for i in 0..64 {
            std::hint::black_box(x.wrapping_add(i));
        }
    }
}
