//! The deterministic event queue.
//!
//! [`EventQueue`] is a priority queue of `(Time, E)` pairs ordered first by
//! time, then by insertion sequence number, so that two events scheduled
//! for the same instant are always delivered in the order they were
//! scheduled. This tie-break is what makes whole-system runs reproducible.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::{Duration, Time};

#[derive(Debug)]
struct Entry<E> {
    time: Time,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time.cmp(&other.time).then(self.seq.cmp(&other.seq))
    }
}

/// A deterministic time-ordered event queue.
///
/// Events with equal timestamps are popped in scheduling order (FIFO), so
/// simulations are reproducible run-to-run.
///
/// # Example
///
/// ```
/// use ecoscale_sim::{EventQueue, Time};
///
/// let mut q = EventQueue::new();
/// q.schedule(Time::from_ns(5), "b");
/// q.schedule(Time::from_ns(5), "c");
/// q.schedule(Time::from_ns(1), "a");
/// let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
/// assert_eq!(order, ["a", "b", "c"]);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    next_seq: u64,
    now: Time,
    scheduled_total: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`Time::ZERO`].
    pub fn new() -> EventQueue<E> {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: Time::ZERO,
            scheduled_total: 0,
        }
    }

    /// The current simulation time: the timestamp of the most recently
    /// popped event (or [`Time::ZERO`] before the first pop).
    pub fn now(&self) -> Time {
        self.now
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current simulation time — the past is
    /// immutable in a discrete-event simulation.
    pub fn schedule(&mut self, at: Time, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule an event at {at}, which is before now ({})",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.heap.push(Reverse(Entry { time: at, seq, event }));
    }

    /// Schedules `event` at `now() + delay`.
    pub fn schedule_in(&mut self, delay: Duration, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Schedules `event` at the current time (it will run after every event
    /// already scheduled for this instant).
    pub fn schedule_now(&mut self, event: E) {
        self.schedule(self.now, event);
    }

    /// Removes and returns the earliest event, advancing the clock to its
    /// timestamp.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        let Reverse(entry) = self.heap.pop()?;
        debug_assert!(entry.time >= self.now);
        self.now = entry.time;
        Some((entry.time, entry.event))
    }

    /// The timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled on this queue.
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Discards all pending events without advancing the clock.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_ns(30), 3);
        q.schedule(Time::from_ns(10), 1);
        q.schedule(Time::from_ns(20), 2);
        let out: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(Time::from_ns(7), i);
        }
        let out: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(out, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), Time::ZERO);
        q.schedule(Time::from_ns(5), ());
        q.schedule(Time::from_ns(9), ());
        q.pop();
        assert_eq!(q.now(), Time::from_ns(5));
        q.pop();
        assert_eq!(q.now(), Time::from_ns(9));
        // clock holds after drain
        assert!(q.pop().is_none());
        assert_eq!(q.now(), Time::from_ns(9));
    }

    #[test]
    fn schedule_in_and_now() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_ns(10), "first");
        q.pop();
        q.schedule_in(Duration::from_ns(5), "second");
        q.schedule_now("same-instant");
        let (t, e) = q.pop().unwrap();
        assert_eq!((t, e), (Time::from_ns(10), "same-instant"));
        let (t, e) = q.pop().unwrap();
        assert_eq!((t, e), (Time::from_ns(15), "second"));
    }

    #[test]
    #[should_panic(expected = "before now")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_ns(10), ());
        q.pop();
        q.schedule(Time::from_ns(9), ());
    }

    #[test]
    fn bookkeeping() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(Time::from_ns(4), ());
        q.schedule(Time::from_ns(2), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(Time::from_ns(2)));
        assert_eq!(q.scheduled_total(), 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.scheduled_total(), 2);
    }
}
