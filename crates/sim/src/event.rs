//! The deterministic event queue.
//!
//! [`EventQueue`] is a priority queue of `(Time, E)` pairs ordered first by
//! time, then by insertion sequence number, so that two events scheduled
//! for the same instant are always delivered in the order they were
//! scheduled. This tie-break is what makes whole-system runs reproducible.
//!
//! # Hot-path structure
//!
//! Request/response chains schedule most of their events *at the current
//! instant* ([`EventQueue::schedule_now`]). Those events never need heap
//! ordering: any event scheduled at the current time is, by the FIFO
//! tie-break, delivered after everything already pending for this instant
//! and before anything later. They therefore go to a plain ring buffer
//! that is pushed and popped in `O(1)`, bypassing the `BinaryHeap`
//! entirely; only genuinely future events pay the `O(log n)` heap cost.
//!
//! Heap entries are fixed-size `(time, seq, slot)` keys; the event
//! payloads live in a slot arena whose freed slots are chained through a
//! freelist and reused by the next push. In steady state (pushes balanced
//! by pops) neither the heap nor the arena grows, so the hot path
//! performs zero allocations.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use crate::snap::{malformed, RestoreError, SnapReader, SnapWriter};
use crate::time::{Duration, Time};

#[derive(Debug)]
struct Entry {
    time: Time,
    seq: u64,
    /// Index of the event payload in the arena.
    slot: u32,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time.cmp(&other.time).then(self.seq.cmp(&other.seq))
    }
}

/// A deterministic time-ordered event queue.
///
/// Events with equal timestamps are popped in scheduling order (FIFO), so
/// simulations are reproducible run-to-run.
///
/// # Example
///
/// ```
/// use ecoscale_sim::{EventQueue, Time};
///
/// let mut q = EventQueue::new();
/// q.schedule(Time::from_ns(5), "b");
/// q.schedule(Time::from_ns(5), "c");
/// q.schedule(Time::from_ns(1), "a");
/// let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
/// assert_eq!(order, ["a", "b", "c"]);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry>>,
    /// Heap event payloads, indexed by `Entry::slot`. `None` slots are
    /// free and chained through `free_slots` for reuse.
    arena: Vec<Option<E>>,
    /// Indices of free arena slots (a freelist kept as a stack).
    free_slots: Vec<u32>,
    /// Events scheduled *at* the current instant, in FIFO order. Invariant:
    /// every entry here carries timestamp `now`, and was scheduled after
    /// every heap entry with timestamp `now` (heap entries at the current
    /// instant were pushed before the clock reached it, hence carry
    /// smaller sequence numbers).
    now_ring: VecDeque<E>,
    next_seq: u64,
    now: Time,
    scheduled_total: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`Time::ZERO`].
    pub fn new() -> EventQueue<E> {
        EventQueue {
            heap: BinaryHeap::new(),
            arena: Vec::new(),
            free_slots: Vec::new(),
            now_ring: VecDeque::new(),
            next_seq: 0,
            now: Time::ZERO,
            scheduled_total: 0,
        }
    }

    /// Creates an empty queue with room for `capacity` pending events.
    pub fn with_capacity(capacity: usize) -> EventQueue<E> {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            arena: Vec::with_capacity(capacity),
            free_slots: Vec::new(),
            now_ring: VecDeque::with_capacity(capacity.min(1024)),
            next_seq: 0,
            now: Time::ZERO,
            scheduled_total: 0,
        }
    }

    /// Reserves room for at least `additional` more pending events,
    /// avoiding reallocation churn in scheduling bursts.
    pub fn reserve(&mut self, additional: usize) {
        self.heap.reserve(additional);
        self.arena.reserve(additional);
    }

    /// Number of arena slots ever allocated for heap payloads. In steady
    /// state (pushes balanced by pops) this stays flat: freed slots are
    /// reused instead of allocating per push.
    pub fn arena_len(&self) -> usize {
        self.arena.len()
    }

    /// The current simulation time: the timestamp of the most recently
    /// popped event (or [`Time::ZERO`] before the first pop).
    pub fn now(&self) -> Time {
        self.now
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current simulation time — the past is
    /// immutable in a discrete-event simulation.
    pub fn schedule(&mut self, at: Time, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule an event at {at}, which is before now ({})",
            self.now
        );
        self.scheduled_total += 1;
        if at == self.now {
            // Same-instant events keep FIFO order by construction; no heap
            // ordering (or sequence number) needed.
            self.now_ring.push_back(event);
            return;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = match self.free_slots.pop() {
            Some(slot) => {
                debug_assert!(self.arena[slot as usize].is_none());
                self.arena[slot as usize] = Some(event);
                slot
            }
            None => {
                let slot = u32::try_from(self.arena.len()).expect("arena exhausted");
                self.arena.push(Some(event));
                slot
            }
        };
        self.heap.push(Reverse(Entry {
            time: at,
            seq,
            slot,
        }));
    }

    /// Schedules `event` at `now() + delay`.
    pub fn schedule_in(&mut self, delay: Duration, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Schedules `event` at the current time (it will run after every event
    /// already scheduled for this instant).
    pub fn schedule_now(&mut self, event: E) {
        self.schedule(self.now, event);
    }

    /// Removes and returns the earliest event, advancing the clock to its
    /// timestamp.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        // Heap entries at the current instant precede the ring (they were
        // scheduled before the clock reached this instant).
        if let Some(Reverse(top)) = self.heap.peek() {
            if top.time == self.now || self.now_ring.is_empty() {
                let Reverse(entry) = self.heap.pop().expect("peeked entry exists");
                debug_assert!(entry.time >= self.now);
                self.now = entry.time;
                let event = self.arena[entry.slot as usize]
                    .take()
                    .expect("heap entry has a live arena slot");
                self.free_slots.push(entry.slot);
                return Some((entry.time, event));
            }
        }
        let event = self.now_ring.pop_front()?;
        Some((self.now, event))
    }

    /// Pops the earliest event only if it is at or before `horizon`
    /// (single traversal — the `run_until` fast path).
    pub fn pop_if_at_or_before(&mut self, horizon: Time) -> Option<(Time, E)> {
        if self.peek_time()? > horizon {
            return None;
        }
        self.pop()
    }

    /// The timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<Time> {
        if self.now_ring.is_empty() {
            self.heap.peek().map(|Reverse(e)| e.time)
        } else {
            // ring entries are at the current instant; a heap entry can
            // tie but never precede it
            Some(self.now)
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len() + self.now_ring.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty() && self.now_ring.is_empty()
    }

    /// Total number of events ever scheduled on this queue.
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Discards all pending events without advancing the clock. The arena
    /// keeps its capacity.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.arena.clear();
        self.free_slots.clear();
        self.now_ring.clear();
    }
}

impl<E: crate::snap::Snapshot> crate::snap::Snapshot for EventQueue<E> {
    /// Serializes the queue in canonical order: heap entries sorted by
    /// `(time, seq)` with their exact sequence numbers, then the
    /// same-instant ring in FIFO order. Arena slot numbers and freelist
    /// shape are layout, not state — they are not written, so snapshot →
    /// restore → snapshot is byte-identical regardless of churn history.
    fn snapshot(&self, w: &mut SnapWriter) {
        w.put_time(self.now);
        w.put_u64(self.next_seq);
        w.put_u64(self.scheduled_total);
        let mut entries: Vec<(Time, u64, u32)> = self
            .heap
            .iter()
            .map(|Reverse(e)| (e.time, e.seq, e.slot))
            .collect();
        entries.sort_unstable_by_key(|&(t, seq, _)| (t, seq));
        w.put_usize(entries.len());
        for (t, seq, slot) in entries {
            w.put_time(t);
            w.put_u64(seq);
            self.arena[slot as usize]
                .as_ref()
                .expect("heap entry has a live arena slot")
                .snapshot(w);
        }
        w.put_usize(self.now_ring.len());
        for ev in &self.now_ring {
            ev.snapshot(w);
        }
    }
}

impl<E: crate::snap::Restore> crate::snap::Restore for EventQueue<E> {
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, RestoreError> {
        let mut q = EventQueue::new();
        q.now = r.get_time()?;
        q.next_seq = r.get_u64()?;
        q.scheduled_total = r.get_u64()?;
        let n = r.get_usize()?;
        if n > r.remaining() {
            return Err(malformed(format!(
                "event queue claims {n} heap entries but only {} bytes remain",
                r.remaining()
            )));
        }
        let mut prev: Option<(Time, u64)> = None;
        for i in 0..n {
            let time = r.get_time()?;
            let seq = r.get_u64()?;
            if time < q.now {
                return Err(malformed(format!(
                    "heap entry {i} at {time} is before the queue clock {}",
                    q.now
                )));
            }
            if seq >= q.next_seq {
                return Err(malformed(format!(
                    "heap entry {i} carries seq {seq} >= next_seq {}",
                    q.next_seq
                )));
            }
            if prev.is_some_and(|p| p >= (time, seq)) {
                return Err(malformed(format!(
                    "heap entries out of canonical (time, seq) order at index {i}"
                )));
            }
            prev = Some((time, seq));
            let event = E::restore(r)?;
            let slot = i as u32;
            q.arena.push(Some(event));
            q.heap.push(Reverse(Entry { time, seq, slot }));
        }
        let ring = r.get_usize()?;
        if ring > r.remaining() {
            return Err(malformed(format!(
                "event queue claims {ring} ring entries but only {} bytes remain",
                r.remaining()
            )));
        }
        for _ in 0..ring {
            q.now_ring.push_back(E::restore(r)?);
        }
        Ok(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_ns(30), 3);
        q.schedule(Time::from_ns(10), 1);
        q.schedule(Time::from_ns(20), 2);
        let out: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(Time::from_ns(7), i);
        }
        let out: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(out, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), Time::ZERO);
        q.schedule(Time::from_ns(5), ());
        q.schedule(Time::from_ns(9), ());
        q.pop();
        assert_eq!(q.now(), Time::from_ns(5));
        q.pop();
        assert_eq!(q.now(), Time::from_ns(9));
        // clock holds after drain
        assert!(q.pop().is_none());
        assert_eq!(q.now(), Time::from_ns(9));
    }

    #[test]
    fn schedule_in_and_now() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_ns(10), "first");
        q.pop();
        q.schedule_in(Duration::from_ns(5), "second");
        q.schedule_now("same-instant");
        let (t, e) = q.pop().unwrap();
        assert_eq!((t, e), (Time::from_ns(10), "same-instant"));
        let (t, e) = q.pop().unwrap();
        assert_eq!((t, e), (Time::from_ns(15), "second"));
    }

    #[test]
    #[should_panic(expected = "before now")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_ns(10), ());
        q.pop();
        q.schedule(Time::from_ns(9), ());
    }

    #[test]
    fn heap_events_at_current_instant_precede_ring_events() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_ns(10), "heap-early"); // seq 0, future
        q.schedule(Time::from_ns(10), "heap-late"); // seq 1, future
        q.schedule(Time::from_ns(5), "first");
        let (_, e) = q.pop().unwrap();
        assert_eq!(e, "first");
        // clock at 5; advance to 10 by popping the first heap entry
        let (t, e) = q.pop().unwrap();
        assert_eq!((t, e), (Time::from_ns(10), "heap-early"));
        // now == 10: schedule_now goes to the ring, but the remaining
        // heap entry at 10 was scheduled earlier and must come first
        q.schedule_now("ring-a");
        q.schedule_now("ring-b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, ["heap-late", "ring-a", "ring-b"]);
    }

    #[test]
    fn ring_then_future_heap_event() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_ns(20), "later");
        q.schedule_now("now-1");
        q.schedule_now("now-2");
        assert_eq!(q.len(), 3);
        assert_eq!(q.peek_time(), Some(Time::ZERO));
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(
            order,
            [
                (Time::ZERO, "now-1"),
                (Time::ZERO, "now-2"),
                (Time::from_ns(20), "later"),
            ]
        );
    }

    #[test]
    fn pop_if_at_or_before_respects_horizon() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_ns(10), "a");
        q.schedule(Time::from_ns(20), "b");
        assert_eq!(q.pop_if_at_or_before(Time::from_ns(5)), None);
        assert_eq!(
            q.pop_if_at_or_before(Time::from_ns(10)),
            Some((Time::from_ns(10), "a"))
        );
        // ring events sit at now (=10), inside any horizon >= now
        q.schedule_now("c");
        assert_eq!(
            q.pop_if_at_or_before(Time::from_ns(10)),
            Some((Time::from_ns(10), "c"))
        );
        assert_eq!(q.pop_if_at_or_before(Time::from_ns(19)), None);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn with_capacity_and_reserve_behave_like_new() {
        let mut q = EventQueue::with_capacity(64);
        q.reserve(100);
        q.schedule(Time::from_ns(3), 1);
        q.schedule_now(0);
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, [0, 1]);
    }

    #[test]
    fn steady_state_churn_performs_zero_allocations() {
        let mut q = EventQueue::new();
        // Warm up to the working-set size: 64 pending future events.
        for i in 0..64u64 {
            q.schedule(Time::from_ns(i + 1), i);
        }
        let arena = q.arena_len();
        assert_eq!(arena, 64);
        // Steady state: every push follows a pop. Freed slots must be
        // reused, so the arena never grows past the warm-up watermark.
        for i in 0..10_000u64 {
            let (t, _) = q.pop().unwrap();
            q.schedule(t + Duration::from_ns(100), i);
            assert_eq!(q.arena_len(), arena, "push {i} allocated a new slot");
        }
        assert_eq!(q.len(), 64);
    }

    #[test]
    fn bookkeeping() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(Time::from_ns(4), ());
        q.schedule(Time::from_ns(2), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(Time::from_ns(2)));
        assert_eq!(q.scheduled_total(), 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.scheduled_total(), 2);
    }

    use crate::snap::{Restore, RestoreError, SnapReader, SnapWriter, Snapshot};

    fn snap_bytes(q: &EventQueue<u64>) -> Vec<u8> {
        let mut w = SnapWriter::new();
        q.snapshot(&mut w);
        w.into_bytes()
    }

    fn unsnap(bytes: &[u8]) -> Result<EventQueue<u64>, RestoreError> {
        let mut r = SnapReader::new(bytes);
        EventQueue::restore(&mut r)
    }

    /// A mid-run queue with churned arena slots, pending heap entries and
    /// a non-empty same-instant ring.
    fn churned() -> EventQueue<u64> {
        let mut q = EventQueue::new();
        for i in 0..32u64 {
            q.schedule(Time::from_ns(i * 3 + 1), i);
        }
        for _ in 0..10 {
            q.pop();
        }
        q.schedule(Time::from_ns(200), 100);
        q.schedule_now(200);
        q.schedule_now(201);
        q
    }

    #[test]
    fn snapshot_restore_round_trips_and_reserializes_identically() {
        let mut q = churned();
        let bytes = snap_bytes(&q);
        let mut restored = unsnap(&bytes).expect("restore");
        assert_eq!(snap_bytes(&restored), bytes, "re-snapshot not identical");
        assert_eq!(restored.now(), q.now());
        assert_eq!(restored.len(), q.len());
        assert_eq!(restored.scheduled_total(), q.scheduled_total());
        // The two queues must drain identically, including after fresh
        // scheduling on both sides.
        restored.schedule_in(Duration::from_ns(7), 999);
        q.schedule_in(Duration::from_ns(7), 999);
        let a: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        let b: Vec<_> = std::iter::from_fn(|| restored.pop()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn restore_rejects_malformed_streams() {
        let q = churned();
        let bytes = snap_bytes(&q);
        // truncation anywhere must fail, never panic
        for cut in 0..bytes.len() {
            assert!(unsnap(&bytes[..cut]).is_err(), "cut at {cut} accepted");
        }
        // an entry timestamped before the clock is refused
        let mut w = SnapWriter::new();
        w.put_time(Time::from_ns(100)); // now
        w.put_u64(5); // next_seq
        w.put_u64(5); // scheduled_total
        w.put_usize(1);
        w.put_time(Time::from_ns(99)); // before now
        w.put_u64(0);
        w.put_u64(7);
        w.put_usize(0);
        assert!(matches!(
            unsnap(&w.into_bytes()),
            Err(RestoreError::Malformed { .. })
        ));
    }
}
