//! Deterministic discrete-event simulation substrate for the ECOSCALE
//! reproduction.
//!
//! The ECOSCALE paper (DATE 2016) describes a hardware/software stack that
//! in reality runs on multi-FPGA prototypes. This crate provides the
//! foundation every higher layer of the reproduction is modelled on:
//!
//! * [`Time`] / [`Duration`] — picosecond-resolution virtual time,
//! * [`Energy`] / [`Power`] — energy accounting newtypes,
//! * [`EventQueue`] and the [`Simulation`] engine — a deterministic
//!   discrete-event kernel with (time, sequence) tie-breaking,
//! * [`TimingWheel`] — a hierarchical timing wheel with an arena of
//!   reusable entries, the per-cluster queue behind the sharded engine,
//! * [`shard`] — the conservative-parallel engine ([`ShardedEngine`]):
//!   cluster-partitioned wheels synchronized by NoC-lookahead safe
//!   windows, byte-identical to sequential execution at any
//!   `ECOSCALE_SHARDS` setting,
//! * [`SimRng`] — a seeded random source with the distributions the
//!   workload generators need (uniform, exponential, normal, Zipf, Pareto),
//! * [`snap`] — SnapPlane: a versioned, deterministic snapshot/restore
//!   codec ([`SnapshotBuilder`], [`Snapshot`]/[`Restore`]) with
//!   length-prefixed, checksummed sections and no external crates,
//! * [`fault`] — seeded fault-campaign primitives ([`CampaignSpec`],
//!   [`FaultClock`], [`ProbFault`]) that every layer's injection hooks
//!   build on,
//! * [`check`] — the CheckPlane: declarative cross-layer invariant
//!   checks ([`CheckPlane`]) and a delta-debugging op-stream reducer,
//!   zero-cost when disabled,
//! * [`stats`] — counters, online moments, and log-binned histograms,
//! * [`metrics`] — a deterministic [`MetricsRegistry`] of named
//!   instruments with snapshot/merge semantics,
//! * [`trace`] — structured tracing ([`Tracer`]) with a Chrome Trace
//!   Event JSON exporter loadable in Perfetto,
//! * [`prof`] — ProfPlane: causal critical-path extraction with
//!   per-layer blame ([`ProfileReport`]), deterministic shard occupancy
//!   analytics ([`ShardOccupancy`]), and zero-cost-when-disabled
//!   wall-clock phase timers ([`Profiler`]),
//! * [`telem`] — TelePlane: windowed time-series telemetry
//!   ([`TimeSeries`]) and an anomaly-triggered flight recorder
//!   ([`FlightRecorder`], [`TriggerPolicy`]), one branch when disabled,
//! * [`report`] — fixed-width table rendering used by the experiment
//!   binaries to print paper-style figures.
//!
//! # Determinism
//!
//! Every run of a simulation built on this crate is a pure function of its
//! configuration and seeds: the event queue breaks ties by insertion
//! sequence number, and all randomness flows through [`SimRng`].
//!
//! # Example
//!
//! ```
//! use ecoscale_sim::{EventQueue, Time};
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev { Ping, Pong }
//!
//! let mut q = EventQueue::new();
//! q.schedule(Time::from_ns(10), Ev::Pong);
//! q.schedule(Time::from_ns(5), Ev::Ping);
//! let (t, ev) = q.pop().expect("queue is non-empty");
//! assert_eq!((t, ev), (Time::from_ns(5), Ev::Ping));
//! ```

pub mod check;
pub mod energy;
pub mod engine;
pub mod event;
pub mod fault;
pub mod json;
pub mod metrics;
pub mod pool;
pub mod prof;
pub mod report;
pub mod rng;
pub mod shard;
pub mod snap;
pub mod stats;
pub mod telem;
pub mod time;
pub mod trace;
pub mod wheel;

pub use check::{CheckPlane, Violation};
pub use energy::{Energy, EnergyMeter, Power};
pub use engine::{EventHandler, Simulation, StopReason};
pub use event::EventQueue;
pub use fault::{CampaignSpec, FaultClock, ProbFault};
pub use metrics::{Instrument, MetricsRegistry};
pub use prof::{Layer, ProfileReport, Profiler, ShardOccupancy};
pub use rng::SimRng;
pub use shard::{ClusterCtx, ClusterModel, ShardedEngine};
pub use snap::{
    Restore, RestoreError, SnapReader, SnapWriter, Snapshot, SnapshotBuilder, SnapshotFile,
};
pub use stats::{Counter, Histogram, OnlineStats};
pub use telem::{
    FlightRecorder, TelemetryConfig, TimeSeries, TriggerFire, TriggerKind, TriggerPolicy,
};
pub use time::{Duration, Time};
pub use trace::{TraceBuffer, TraceEvent, Tracer, TrackId};
pub use wheel::TimingWheel;
