//! Measurement primitives: counters, online moments, histograms.

use core::fmt;

/// A saturating event counter.
///
/// # Example
///
/// ```
/// use ecoscale_sim::Counter;
///
/// let mut c = Counter::new();
/// c.incr();
/// c.add(4);
/// assert_eq!(c.get(), 5);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Counter {
        Counter(0)
    }

    /// Adds one.
    #[inline]
    pub fn incr(&mut self) {
        self.0 = self.0.saturating_add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 = self.0.saturating_add(n);
    }

    /// Current count.
    #[inline]
    pub fn get(self) -> u64 {
        self.0
    }

    /// Resets to zero.
    #[inline]
    pub fn reset(&mut self) {
        self.0 = 0;
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl crate::snap::Snapshot for Counter {
    fn snapshot(&self, w: &mut crate::snap::SnapWriter) {
        w.put_u64(self.0);
    }
}

impl crate::snap::Restore for Counter {
    fn restore(r: &mut crate::snap::SnapReader<'_>) -> Result<Self, crate::snap::RestoreError> {
        Ok(Counter(r.get_u64()?))
    }
}

/// Streaming mean/variance/min/max via Welford's algorithm.
///
/// # Example
///
/// ```
/// use ecoscale_sim::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// for x in [2.0, 4.0, 6.0] {
///     s.record(x);
/// }
/// assert_eq!(s.mean(), 4.0);
/// assert_eq!(s.max(), 6.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> OnlineStats {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one sample.
    ///
    /// # Panics
    ///
    /// Panics if `x` is NaN.
    pub fn record(&mut self, x: f64) {
        assert!(!x.is_nan(), "cannot record NaN");
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 if fewer than 2 samples).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample (0 if empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample (0 if empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.mean() * self.count as f64
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

// The empty-accumulator sentinels (`min = +inf`, `max = -inf`) must
// survive a round trip exactly, so the raw fields travel as bits rather
// than going through the zero-returning accessors.
impl crate::snap::Snapshot for OnlineStats {
    fn snapshot(&self, w: &mut crate::snap::SnapWriter) {
        w.put_u64(self.count);
        w.put_f64(self.mean);
        w.put_f64(self.m2);
        w.put_f64(self.min);
        w.put_f64(self.max);
    }
}

impl crate::snap::Restore for OnlineStats {
    fn restore(r: &mut crate::snap::SnapReader<'_>) -> Result<Self, crate::snap::RestoreError> {
        Ok(OnlineStats {
            count: r.get_u64()?,
            mean: r.get_f64()?,
            m2: r.get_f64()?,
            min: r.get_f64()?,
            max: r.get_f64()?,
        })
    }
}

/// A log-linear histogram for long-tailed quantities (latencies,
/// message sizes). Values below 4 get exact unit bins; from 4 up, each
/// power-of-two octave `[2^o, 2^(o+1))` is split into 4 equal-width
/// sub-buckets, bounding the relative quantile error at ~25% per bucket
/// instead of the ~100% a pure power-of-two binning allows. That
/// resolution is what keeps `p50`/`p99` apart under realistic serving
/// load (pure octave bins collapse them into one bucket).
///
/// # Example
///
/// ```
/// use ecoscale_sim::Histogram;
///
/// let mut h = Histogram::new();
/// for v in [1u64, 2, 3, 100, 100_000] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.percentile(50.0), 3);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Histogram {
    bins: Vec<u64>,
    count: u64,
    sum: u128,
    max: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Sub-buckets per octave (must be a power of two; 4 = 2 bits).
    const SUBS: usize = 4;

    fn bin_of(value: u64) -> usize {
        if value < Self::SUBS as u64 {
            value as usize
        } else {
            let octave = 63 - value.leading_zeros() as usize;
            let sub = ((value >> (octave - 2)) & 3) as usize;
            Self::SUBS + (octave - 2) * Self::SUBS + sub
        }
    }

    /// `(lower, upper)` inclusive bounds of bin `i`.
    fn bin_bounds(i: usize) -> (u64, u64) {
        if i < Self::SUBS {
            (i as u64, i as u64)
        } else {
            let k = i - Self::SUBS;
            let octave = k / Self::SUBS + 2;
            let sub = (k % Self::SUBS) as u64;
            let width = 1u64 << (octave - 2);
            let lower = (Self::SUBS as u64 + sub) << (octave - 2);
            (lower, lower + (width - 1))
        }
    }

    /// Records one value.
    pub fn record(&mut self, value: u64) {
        let b = Self::bin_of(value);
        if self.bins.len() <= b {
            self.bins.resize(b + 1, 0);
        }
        self.bins[b] += 1;
        self.count += 1;
        self.sum += value as u128;
        self.max = self.max.max(value);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of recorded values (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Approximate percentile (`p` in `[0, 100]`): returns the upper edge
    /// of the bin containing the p-th ranked sample, clamped to the
    /// observed maximum.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> u64 {
        assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.bins.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bin_bounds(i).1.min(self.max);
            }
        }
        self.max
    }

    /// Iterates `(bin_lower_bound, count)` for non-empty bins.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.bins
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (Self::bin_bounds(i).0, c))
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if self.bins.len() < other.bins.len() {
            self.bins.resize(other.bins.len(), 0);
        }
        for (i, &c) in other.bins.iter().enumerate() {
            self.bins[i] += c;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

impl crate::snap::Snapshot for Histogram {
    fn snapshot(&self, w: &mut crate::snap::SnapWriter) {
        w.put_usize(self.bins.len());
        for &b in &self.bins {
            w.put_u64(b);
        }
        w.put_u64(self.count);
        w.put_u128(self.sum);
        w.put_u64(self.max);
    }
}

impl crate::snap::Restore for Histogram {
    fn restore(r: &mut crate::snap::SnapReader<'_>) -> Result<Self, crate::snap::RestoreError> {
        let bins = <Vec<u64> as crate::snap::Restore>::restore(r)?;
        Ok(Histogram {
            bins,
            count: r.get_u64()?,
            sum: r.get_u128()?,
            max: r.get_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        c.incr();
        c.add(10);
        assert_eq!(c.get(), 11);
        assert_eq!(c.to_string(), "11");
        c.reset();
        assert_eq!(c.get(), 0);
        // saturation
        c.add(u64::MAX);
        c.incr();
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn online_stats_known_values() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert!((s.sum() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn online_stats_empty_is_zeroed() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn online_stats_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.record(x);
        }
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        for &x in &xs[..37] {
            left.record(x);
        }
        for &x in &xs[37..] {
            right.record(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.record(1.0);
        a.record(3.0);
        let before = a.mean();
        a.merge(&OnlineStats::new());
        assert_eq!(a.mean(), before);
        let mut e = OnlineStats::new();
        e.merge(&a);
        assert_eq!(e.count(), 2);
        assert_eq!(e.mean(), before);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        OnlineStats::new().record(f64::NAN);
    }

    #[test]
    fn histogram_binning() {
        // Values below 4 get exact unit bins.
        assert_eq!(Histogram::bin_of(0), 0);
        assert_eq!(Histogram::bin_of(1), 1);
        assert_eq!(Histogram::bin_of(2), 2);
        assert_eq!(Histogram::bin_of(3), 3);
        // Octave 2 sub-buckets are still exact (width 1).
        assert_eq!(Histogram::bin_of(4), 4);
        assert_eq!(Histogram::bin_of(7), 7);
        // Octave 3 starts at bin 8 with width-2 sub-buckets.
        assert_eq!(Histogram::bin_of(8), 8);
        assert_eq!(Histogram::bin_of(9), 8);
        assert_eq!(Histogram::bin_of(10), 9);
        assert_eq!(Histogram::bin_of(15), 11);
        assert_eq!(Histogram::bin_of(16), 12);
        assert_eq!(Histogram::bin_of(u64::MAX), 251);
        // Bounds invert bin_of: every bin's bounds map back to itself.
        for i in 0..252 {
            let (lo, hi) = Histogram::bin_bounds(i);
            assert_eq!(Histogram::bin_of(lo), i, "lower bound of bin {i}");
            assert_eq!(Histogram::bin_of(hi), i, "upper bound of bin {i}");
            assert!(lo <= hi);
        }
        assert_eq!(Histogram::bin_bounds(251).1, u64::MAX);
    }

    #[test]
    fn histogram_stats() {
        let mut h = Histogram::new();
        for v in [1u64, 1, 2, 4, 8, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - (1 + 1 + 2 + 4 + 8 + 1000) as f64 / 6.0).abs() < 1e-9);
        // p100 is the observed max
        assert_eq!(h.percentile(100.0), 1000);
        // p50 is the third ranked sample's bin, which is exact here
        assert_eq!(h.percentile(50.0), 2);
        let bins: Vec<_> = h.iter().collect();
        assert!(bins.iter().any(|&(lo, c)| lo == 1 && c == 2));
    }

    #[test]
    fn percentiles_separate_under_skewed_load() {
        // A 90/10 bimodal latency mix: pure power-of-two bins would put
        // p50 and p99 only one octave apart (or collapse them); the
        // log-linear sub-buckets must keep them clearly distinct.
        let mut h = Histogram::new();
        for _ in 0..90 {
            h.record(1_000);
        }
        for _ in 0..10 {
            h.record(9_000);
        }
        let p50 = h.percentile(50.0);
        let p99 = h.percentile(99.0);
        assert!((896..=1_023).contains(&p50), "p50 = {p50}");
        assert!((8_192..=10_239).contains(&p99), "p99 = {p99}");
        assert!(p99 > 4 * p50, "p50 {p50} and p99 {p99} must separate");
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(5);
        b.record(500);
        b.record(5000);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max(), 5000);
    }

    #[test]
    fn percentile_on_empty_is_zero() {
        assert_eq!(Histogram::new().percentile(99.0), 0);
    }
}
