//! CheckPlane — cross-layer structural invariant checking.
//!
//! The paper's central correctness claims are *structural*: UNIMEM caches any
//! page at exactly one node, the dual-stage SMMU never serves a translation
//! that disagrees with the page tables, partial reconfiguration never lets two
//! modules share a fabric region, and the scheduler neither loses nor
//! duplicates tasks across queues and migrations. The CheckPlane turns these
//! into machine-checked invariants that every layer can assert at a
//! configurable cadence.
//!
//! Like [`crate::fault`], the CheckPlane is **zero-cost when disabled**: a
//! disabled [`CheckPlane`] draws nothing from any RNG, records no metrics,
//! emits no trace events, and every `check*` call returns immediately. Layer
//! hooks (`check_invariants(&self, &mut CheckPlane)`) additionally early-out
//! on [`CheckPlane::is_enabled`] so no per-entry work happens either. This
//! keeps the determinism contract intact: exports are byte-identical with the
//! checker compiled in but switched off.
//!
//! Three entry points:
//! * [`CheckPlane::enabled`] / [`CheckPlane::disabled`] — explicit.
//! * [`CheckPlane::from_env`] — honours `ECOSCALE_CHECK` (unset/`0` = off,
//!   `N` = check every N-th opportunity), used by tests and `scripts/ci.sh`.
//! * [`shrink`] — generic delta-debugging reducer for failing operation
//!   streams, shared by the differential-oracle property tests and the
//!   `fuzz_configs` sweep binary.

use std::collections::BTreeMap;
use std::fmt;

/// Environment variable enabling invariant checks (`0`/unset = disabled,
/// `N` = run checks at every N-th [`CheckPlane::due`] opportunity).
pub const CHECK_ENV: &str = "ECOSCALE_CHECK";

/// Upper bound on retained violations; past this we only count.
const MAX_RETAINED: usize = 64;

/// Named invariants — the catalog. Names are `layer.property` so violation
/// reports are self-describing and DESIGN.md §10 can mirror this table.
pub mod invariant {
    /// TLB occupancy never exceeds the configured capacity.
    pub const SMMU_TLB_BOUNDED: &str = "smmu.tlb_bounded";
    /// Every TLB entry agrees with a fresh stage-1 ∘ stage-2 walk
    /// (both the output frame and the cached permission bits).
    pub const SMMU_TLB_CONSISTENT: &str = "smmu.tlb_consistent";
    /// The MRU fast slot mirrors a live TLB entry.
    pub const SMMU_MRU_COHERENT: &str = "smmu.mru_coherent";
    /// Directory overrides stay in range and never alias the natural home
    /// (a page is cacheable at exactly one node).
    pub const UNIMEM_SINGLE_HOME: &str = "unimem.single_home";
    /// Per-kind access counts agree with the per-node cache counters.
    pub const UNIMEM_COUNTS_AGREE: &str = "unimem.counts_agree";
    /// Every memoized route equals a fresh route computation on the
    /// (immutable) topology.
    pub const NOC_ROUTE_MEMO_FRESH: &str = "noc.route_memo_fresh";
    /// Message/packet conservation: every transfer is accounted exactly once
    /// in the hop histogram, queueing stats and route-memo counters.
    pub const NOC_CONSERVATION: &str = "noc.conservation";
    /// Link bookkeeping agreement: busy-time and free-at maps track the same
    /// link set.
    pub const NOC_LINK_BOOKKEEPING: &str = "noc.link_bookkeeping";
    /// No task index appears more than once across worker queues, the central
    /// queue and in-flight slots.
    pub const SCHED_NO_DUPLICATE_TASKS: &str = "sched.no_duplicate_tasks";
    /// Every submitted task is eventually completed or declared lost.
    pub const SCHED_TASK_CONSERVATION: &str = "sched.task_conservation";
    /// No two placements overlap and every placement fits the fabric.
    pub const FABRIC_REGION_EXCLUSIVE: &str = "fabric.region_exclusive";
    /// Each placed region still satisfies the resource demand recorded for it.
    pub const FABRIC_DEMAND_SATISFIED: &str = "fabric.demand_satisfied";
    /// The daemon's loaded-module map and the floorplanner's placements
    /// describe the same residency (bitstream bookkeeping agreement).
    pub const FABRIC_RESIDENCY_AGREES: &str = "fabric.residency_agrees";
    /// Every resident module still has a golden bitstream in the library to
    /// scrub/reconfigure against.
    pub const FABRIC_GOLDEN_BITSTREAM: &str = "fabric.golden_bitstream";
    /// SEU scrubber counters stay mutually consistent
    /// (detected + masked never exceed injected upsets).
    pub const SEU_COUNTS_AGREE: &str = "seu.counts_agree";
    /// Simulated time never moves backwards between checks.
    pub const SYSTEM_TIME_MONOTONE: &str = "system.time_monotone";
    /// Accumulated energy never decreases between checks.
    pub const SYSTEM_ENERGY_MONOTONE: &str = "system.energy_monotone";
    /// The sharded engine's safe-window end never moves backwards, and no
    /// cluster clock ever runs ahead of the window it executed under.
    pub const SHARD_WINDOW_MONOTONE: &str = "shard.window_monotone";
    /// Cross-shard mailbox conservation: every message sent through a
    /// per-pair mailbox is delivered exactly once, and no mailbox holds
    /// messages after the engine stops (stops happen post-drain).
    pub const SHARD_MAILBOX_CONSERVED: &str = "shard.mailbox_conserved";
    /// ServePlane request conservation: every submitted request is accounted
    /// exactly once (`submitted = admitted + shed` and
    /// `admitted = queued + in-flight + completed + failed`) at every cadence
    /// tick and at drain. Rejected is not lost.
    pub const SERVE_REQUEST_CONSERVED: &str = "serve.request_conserved";
    /// No ServePlane tenant queue ever exceeds its configured bound, so
    /// backpressure is explicit load-shedding rather than unbounded buffering.
    pub const SERVE_QUEUE_BOUNDED: &str = "serve.queue_bounded";
    /// A snapshot round-trip (serialize → parse → restore) reproduces the
    /// exact pre-snapshot state: re-serializing the restored state yields
    /// byte-identical snapshot bytes.
    pub const SNAP_ROUNDTRIP_IDENTICAL: &str = "snap.roundtrip_identical";
    /// Snapshots with a bad magic, future version, corrupted section or
    /// truncated body are refused with a typed error and never partially
    /// applied.
    pub const SNAP_VERSION_REFUSED: &str = "snap.version_refused";
    /// Resuming a checkpoint taken at any safe window boundary runs the
    /// rest of the simulation bit-identically: the resumed exports match
    /// the uninterrupted run byte for byte.
    pub const SNAP_RESUME_EQUIVALENT: &str = "snap.resume_equivalent";
    /// TelePlane window conservation: for every windowed counter, the
    /// counts attributed to closed windows (retained ring + evicted
    /// windows) plus the open window sum exactly to the lifetime
    /// counter — no event is double-counted or dropped by a roll.
    pub const TELEM_WINDOW_CONSERVED: &str = "telem.window_conserved";
    /// Test-only hook used by `fuzz_configs --inject-violation` to prove the
    /// catch → shrink → repro pipeline works end to end.
    pub const SABOTAGE: &str = "check.sabotage";

    /// The full catalog as `(name, description)` pairs, mirrored by the
    /// DESIGN.md §10 table.
    pub const CATALOG: &[(&str, &str)] = &[
        (SMMU_TLB_BOUNDED, "TLB occupancy <= configured capacity"),
        (
            SMMU_TLB_CONSISTENT,
            "TLB entries agree with stage-1/stage-2 walks",
        ),
        (SMMU_MRU_COHERENT, "MRU fast slot mirrors a live TLB entry"),
        (
            UNIMEM_SINGLE_HOME,
            "directory overrides in range, never identity",
        ),
        (
            UNIMEM_COUNTS_AGREE,
            "access-kind counts match cache counters",
        ),
        (
            NOC_ROUTE_MEMO_FRESH,
            "memoized routes equal fresh computations",
        ),
        (
            NOC_CONSERVATION,
            "transfers conserved across hop/queue accounting",
        ),
        (
            NOC_LINK_BOOKKEEPING,
            "busy-time and free-at track same link set",
        ),
        (SCHED_NO_DUPLICATE_TASKS, "no task queued or running twice"),
        (SCHED_TASK_CONSERVATION, "completed + lost == submitted"),
        (
            FABRIC_REGION_EXCLUSIVE,
            "placements disjoint and inside fabric",
        ),
        (
            FABRIC_DEMAND_SATISFIED,
            "placed regions still cover their demand",
        ),
        (
            FABRIC_RESIDENCY_AGREES,
            "daemon loaded map matches floorplan",
        ),
        (
            FABRIC_GOLDEN_BITSTREAM,
            "resident modules have library bitstreams",
        ),
        (SEU_COUNTS_AGREE, "scrubber counters mutually consistent"),
        (SYSTEM_TIME_MONOTONE, "simulated time never decreases"),
        (SYSTEM_ENERGY_MONOTONE, "accumulated energy never decreases"),
        (
            SHARD_WINDOW_MONOTONE,
            "safe-window end and cluster clocks monotone",
        ),
        (
            SHARD_MAILBOX_CONSERVED,
            "cross-shard messages delivered exactly once",
        ),
        (
            SERVE_REQUEST_CONSERVED,
            "admitted == queued + in-flight + completed + failed",
        ),
        (
            SERVE_QUEUE_BOUNDED,
            "tenant queues never exceed the configured cap",
        ),
        (
            SNAP_ROUNDTRIP_IDENTICAL,
            "restore(snapshot(s)) re-serializes byte-identical",
        ),
        (
            SNAP_VERSION_REFUSED,
            "bad magic/version/checksum refused, never partial",
        ),
        (
            SNAP_RESUME_EQUIVALENT,
            "resumed exports match the uninterrupted run",
        ),
        (
            TELEM_WINDOW_CONSERVED,
            "windowed counts sum to lifetime counters",
        ),
        (SABOTAGE, "test-only deliberate violation hook"),
    ];
}

/// One recorded invariant violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Name from [`invariant`].
    pub invariant: &'static str,
    /// Human-readable detail (which entry, expected vs got).
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invariant `{}` violated: {}",
            self.invariant, self.detail
        )
    }
}

/// Registry of declarative invariant checks with a cadence gate.
///
/// Layers take `&mut CheckPlane` in their `check_invariants` hooks; callers
/// decide cadence via [`CheckPlane::due`]. Violations are collected (up to a
/// cap) rather than panicking so a fuzz sweep can report and shrink them.
#[derive(Debug, Clone)]
pub struct CheckPlane {
    enabled: bool,
    strict: bool,
    every: u64,
    calls: u64,
    checks_run: u64,
    violation_count: u64,
    violations: Vec<Violation>,
    watermarks: BTreeMap<&'static str, f64>,
}

impl CheckPlane {
    /// A disabled plane: every method is a cheap no-op.
    pub fn disabled() -> Self {
        CheckPlane {
            enabled: false,
            strict: false,
            every: 0,
            calls: 0,
            checks_run: 0,
            violation_count: 0,
            violations: Vec::new(),
            watermarks: BTreeMap::new(),
        }
    }

    /// An enabled plane whose [`due`](Self::due) gate fires every `every`-th
    /// call (`every == 0` is treated as 1: fire always).
    pub fn enabled(every: u64) -> Self {
        CheckPlane {
            enabled: true,
            every: every.max(1),
            ..CheckPlane::disabled()
        }
    }

    /// Build from the `ECOSCALE_CHECK` environment variable: unset, empty or
    /// `0` yields a disabled plane; `N` yields an enabled **strict** plane
    /// with cadence `N` (unparsable values fall back to cadence 1). Strict
    /// planes panic on the first violation, which is what turns an
    /// `ECOSCALE_CHECK=1` CI pass into a hard gate.
    pub fn from_env() -> Self {
        match std::env::var(CHECK_ENV) {
            Ok(v) if !v.is_empty() && v != "0" => {
                CheckPlane::enabled(v.parse::<u64>().unwrap_or(1)).strict()
            }
            _ => CheckPlane::disabled(),
        }
    }

    /// Switch this plane to strict mode: panic on the first violation
    /// instead of collecting it.
    pub fn strict(mut self) -> Self {
        self.strict = true;
        self
    }

    /// Whether checks are armed. Layer hooks early-out on `false` so a
    /// disabled plane costs one branch.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Cadence gate: returns `true` when a full check pass should run now.
    /// Always `false` (and does not even count calls) when disabled.
    #[inline]
    pub fn due(&mut self) -> bool {
        if !self.enabled {
            return false;
        }
        let fire = self.calls.is_multiple_of(self.every);
        self.calls += 1;
        fire
    }

    /// Assert `cond`; on failure record a violation with `detail()`'s output.
    /// The detail closure is only evaluated on failure.
    #[inline]
    pub fn check(&mut self, invariant: &'static str, cond: bool, detail: impl FnOnce() -> String) {
        if !self.enabled {
            return;
        }
        self.checks_run += 1;
        if !cond {
            self.violation_count += 1;
            if self.strict {
                panic!(
                    "{}",
                    Violation {
                        invariant,
                        detail: detail()
                    }
                );
            }
            if self.violations.len() < MAX_RETAINED {
                self.violations.push(Violation {
                    invariant,
                    detail: detail(),
                });
            }
        }
    }

    /// Assert `value` never decreases across successive calls for the same
    /// invariant name (per-plane high-watermark).
    pub fn check_monotone(&mut self, invariant: &'static str, value: f64) {
        if !self.enabled {
            return;
        }
        let prev = self.watermarks.get(invariant).copied();
        self.check(invariant, prev.is_none_or(|p| value >= p), || {
            format!(
                "value {value} dropped below watermark {}",
                prev.unwrap_or(f64::NAN)
            )
        });
        let slot = self.watermarks.entry(invariant).or_insert(value);
        if value > *slot {
            *slot = value;
        }
    }

    /// Folds another plane's tallies into this one (checks run, violation
    /// count, retained violations up to the cap). Watermarks are *not*
    /// merged — they are per-plane local state. Used by `fuzz_configs` to
    /// aggregate the per-phase planes of one configuration run.
    pub fn absorb(&mut self, other: &CheckPlane) {
        if !self.enabled {
            return;
        }
        self.checks_run += other.checks_run;
        self.violation_count += other.violation_count;
        for v in &other.violations {
            if self.violations.len() >= MAX_RETAINED {
                break;
            }
            self.violations.push(v.clone());
        }
    }

    /// `true` when no violation has been recorded.
    pub fn ok(&self) -> bool {
        self.violation_count == 0
    }

    /// Retained violations (capped; see [`violation_count`](Self::violation_count)).
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// First recorded violation, if any.
    pub fn first(&self) -> Option<&Violation> {
        self.violations.first()
    }

    /// Total number of individual checks evaluated.
    pub fn checks_run(&self) -> u64 {
        self.checks_run
    }

    /// Total violations seen (including any past the retention cap).
    pub fn violation_count(&self) -> u64 {
        self.violation_count
    }
}

impl Default for CheckPlane {
    fn default() -> Self {
        CheckPlane::disabled()
    }
}

/// Resolves a serialized invariant name back to its `&'static str` from
/// [`invariant::CATALOG`] so restored [`CheckPlane`] state keeps the
/// zero-allocation keys the live plane uses.
fn catalog_name(name: &str) -> Result<&'static str, crate::snap::RestoreError> {
    invariant::CATALOG
        .iter()
        .map(|(n, _)| *n)
        .find(|n| *n == name)
        .ok_or_else(|| crate::snap::malformed(format!("unknown invariant `{name}`")))
}

impl crate::snap::Snapshot for CheckPlane {
    fn snapshot(&self, w: &mut crate::snap::SnapWriter) {
        w.put_bool(self.enabled);
        w.put_bool(self.strict);
        w.put_u64(self.every);
        w.put_u64(self.calls);
        w.put_u64(self.checks_run);
        w.put_u64(self.violation_count);
        w.put_usize(self.violations.len());
        for v in &self.violations {
            w.put_str(v.invariant);
            w.put_str(&v.detail);
        }
        w.put_usize(self.watermarks.len());
        for (name, value) in &self.watermarks {
            w.put_str(name);
            w.put_f64(*value);
        }
    }
}

impl crate::snap::Restore for CheckPlane {
    fn restore(
        r: &mut crate::snap::SnapReader<'_>,
    ) -> Result<CheckPlane, crate::snap::RestoreError> {
        let enabled = r.get_bool()?;
        let strict = r.get_bool()?;
        let every = r.get_u64()?;
        let calls = r.get_u64()?;
        let checks_run = r.get_u64()?;
        let violation_count = r.get_u64()?;
        let nv = r.get_usize()?;
        if nv > MAX_RETAINED {
            return Err(crate::snap::malformed(format!(
                "{nv} retained violations exceeds cap {MAX_RETAINED}"
            )));
        }
        let mut violations = Vec::with_capacity(nv);
        for _ in 0..nv {
            let invariant = catalog_name(&r.get_str()?)?;
            let detail = r.get_str()?.to_owned();
            violations.push(Violation { invariant, detail });
        }
        let nw = r.get_usize()?;
        let mut watermarks = BTreeMap::new();
        for _ in 0..nw {
            let name = catalog_name(&r.get_str()?)?;
            let value = r.get_f64()?;
            if watermarks.insert(name, value).is_some() {
                return Err(crate::snap::malformed(format!(
                    "duplicate watermark `{name}`"
                )));
            }
        }
        Ok(CheckPlane {
            enabled,
            strict,
            every,
            calls,
            checks_run,
            violation_count,
            violations,
            watermarks,
        })
    }
}

/// Delta-debugging reducer for failing operation streams.
///
/// Given `ops` for which `still_fails(ops)` is `true`, repeatedly removes
/// chunks (halving the chunk size down to 1) keeping any reduction that still
/// fails, until a fixed point. The result is 1-minimal with respect to single
/// element removal. `still_fails` must be deterministic — re-run the exact
/// reproduction (same seed) for each candidate.
pub fn shrink<T: Clone>(ops: &[T], mut still_fails: impl FnMut(&[T]) -> bool) -> Vec<T> {
    let mut cur: Vec<T> = ops.to_vec();
    debug_assert!(still_fails(&cur), "shrink() needs a failing input");
    let mut chunk = (cur.len() / 2).max(1);
    loop {
        let mut reduced = false;
        let mut start = 0;
        while start < cur.len() && cur.len() > 1 {
            let end = (start + chunk).min(cur.len());
            let mut candidate = Vec::with_capacity(cur.len() - (end - start));
            candidate.extend_from_slice(&cur[..start]);
            candidate.extend_from_slice(&cur[end..]);
            if !candidate.is_empty() && still_fails(&candidate) {
                cur = candidate;
                reduced = true;
                // Retry the same offset: the next chunk slid into place.
            } else {
                start = end;
            }
        }
        if !reduced {
            if chunk == 1 {
                break;
            }
            chunk = (chunk / 2).max(1);
        }
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_plane_is_inert() {
        let mut cp = CheckPlane::disabled();
        assert!(!cp.is_enabled());
        for _ in 0..10 {
            assert!(!cp.due());
        }
        cp.check(invariant::SABOTAGE, false, || {
            unreachable!("detail must not run")
        });
        cp.check_monotone(invariant::SYSTEM_TIME_MONOTONE, -1.0);
        assert!(cp.ok());
        assert_eq!(cp.checks_run(), 0);
        assert!(cp.violations().is_empty());
    }

    #[test]
    fn cadence_fires_every_nth() {
        let mut cp = CheckPlane::enabled(3);
        let fired: Vec<bool> = (0..9).map(|_| cp.due()).collect();
        assert_eq!(
            fired,
            [true, false, false, true, false, false, true, false, false]
        );
        assert!(CheckPlane::enabled(0).due());
    }

    #[test]
    fn violations_are_recorded_and_counted() {
        let mut cp = CheckPlane::enabled(1);
        cp.check(invariant::SMMU_TLB_BOUNDED, true, || unreachable!());
        cp.check(invariant::SMMU_TLB_BOUNDED, false, || "3 > 2".to_string());
        assert!(!cp.ok());
        assert_eq!(cp.violation_count(), 1);
        assert_eq!(cp.checks_run(), 2);
        let v = cp.first().unwrap();
        assert_eq!(v.invariant, invariant::SMMU_TLB_BOUNDED);
        assert_eq!(
            v.to_string(),
            "invariant `smmu.tlb_bounded` violated: 3 > 2"
        );
    }

    #[test]
    fn retention_caps_but_count_does_not() {
        let mut cp = CheckPlane::enabled(1);
        for i in 0..(MAX_RETAINED + 10) {
            cp.check(invariant::SABOTAGE, false, || format!("v{i}"));
        }
        assert_eq!(cp.violations().len(), MAX_RETAINED);
        assert_eq!(cp.violation_count(), (MAX_RETAINED + 10) as u64);
    }

    #[test]
    fn monotone_watermark_flags_regressions() {
        let mut cp = CheckPlane::enabled(1);
        cp.check_monotone(invariant::SYSTEM_TIME_MONOTONE, 1.0);
        cp.check_monotone(invariant::SYSTEM_TIME_MONOTONE, 2.0);
        cp.check_monotone(invariant::SYSTEM_TIME_MONOTONE, 2.0);
        assert!(cp.ok());
        cp.check_monotone(invariant::SYSTEM_TIME_MONOTONE, 1.5);
        assert!(!cp.ok());
        // Independent watermark per invariant name.
        cp.check_monotone(invariant::SYSTEM_ENERGY_MONOTONE, 0.0);
        assert_eq!(cp.violation_count(), 1);
    }

    #[test]
    fn catalog_covers_every_constant_once() {
        let names: Vec<&str> = invariant::CATALOG.iter().map(|(n, _)| *n).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "duplicate catalog entries");
        for (name, desc) in invariant::CATALOG {
            assert!(name.contains('.'), "catalog name `{name}` not layer-scoped");
            assert!(!desc.is_empty());
        }
    }

    #[test]
    fn shrink_reduces_to_minimal_failing_subset() {
        // Failure: stream contains both a 3 and a 7.
        let ops: Vec<u32> = (0..100).collect();
        let min = shrink(&ops, |s| s.contains(&3) && s.contains(&7));
        assert_eq!(min, vec![3, 7]);

        // Failure: any stream with >= 5 elements.
        let min = shrink(&ops, |s| s.len() >= 5);
        assert_eq!(min.len(), 5);

        // Single-element failing stream is already minimal.
        let min = shrink(&[42u32], |s| !s.is_empty());
        assert_eq!(min, vec![42]);
    }

    #[test]
    #[should_panic(expected = "invariant `check.sabotage` violated: boom")]
    fn strict_plane_panics_on_first_violation() {
        let mut cp = CheckPlane::enabled(1).strict();
        cp.check(invariant::SABOTAGE, true, || unreachable!());
        cp.check(invariant::SABOTAGE, false, || "boom".to_string());
    }

    #[test]
    fn snapshot_round_trips_and_rejects_unknown_invariants() {
        use crate::snap::{Restore as _, SnapReader, SnapWriter, Snapshot as _};
        let mut cp = CheckPlane::enabled(3);
        cp.due();
        cp.due();
        cp.check(invariant::SMMU_TLB_BOUNDED, true, || unreachable!());
        cp.check(invariant::SABOTAGE, false, || "planted".to_string());
        cp.check_monotone(invariant::SYSTEM_TIME_MONOTONE, 7.5);
        let mut w = SnapWriter::new();
        cp.snapshot(&mut w);
        let bytes = w.into_bytes();
        let back = CheckPlane::restore(&mut SnapReader::new(&bytes)).expect("restore");
        assert_eq!(back.is_enabled(), cp.is_enabled());
        assert_eq!(back.calls, cp.calls);
        assert_eq!(back.checks_run(), cp.checks_run());
        assert_eq!(back.violation_count(), cp.violation_count());
        assert_eq!(back.violations(), cp.violations());
        assert_eq!(back.watermarks, cp.watermarks);
        // Restored keys must be the catalog's &'static strs, so a further
        // check_monotone continues the same watermark.
        let mut back = back;
        back.check_monotone(invariant::SYSTEM_TIME_MONOTONE, 7.0);
        assert_eq!(back.violation_count(), cp.violation_count() + 1);

        // An invariant name outside the catalog is malformed, not invented.
        let mut w = SnapWriter::new();
        w.put_bool(true);
        w.put_bool(false);
        w.put_u64(1);
        w.put_u64(0);
        w.put_u64(0);
        w.put_u64(1);
        w.put_usize(1);
        w.put_str("made.up_invariant");
        w.put_str("detail");
        w.put_usize(0);
        let bytes = w.into_bytes();
        let err = CheckPlane::restore(&mut SnapReader::new(&bytes)).unwrap_err();
        assert!(err.to_string().contains("made.up_invariant"), "{err}");
    }

    #[test]
    fn from_env_honours_check_var() {
        // Serialise env mutation within this test only.
        let prev = std::env::var(CHECK_ENV).ok();
        std::env::set_var(CHECK_ENV, "0");
        assert!(!CheckPlane::from_env().is_enabled());
        std::env::set_var(CHECK_ENV, "4");
        let cp = CheckPlane::from_env();
        assert!(cp.is_enabled());
        assert_eq!(cp.every, 4);
        assert!(cp.strict, "env-armed planes are hard gates");
        std::env::remove_var(CHECK_ENV);
        assert!(!CheckPlane::from_env().is_enabled());
        if let Some(p) = prev {
            std::env::set_var(CHECK_ENV, p);
        }
    }
}
