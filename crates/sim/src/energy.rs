//! Energy and power accounting.
//!
//! ECOSCALE's central argument is energetic: exascale is gated by power,
//! so every mechanism in the reproduction charges its energy cost to an
//! [`EnergyMeter`]. [`Energy`] is a newtype over joules; [`Power`] over
//! watts. Both are `f64`-backed — the experiments compare relative
//! magnitudes, and all arithmetic is performed in a deterministic order.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub};

use crate::time::Duration;

/// An amount of energy, in joules.
///
/// # Example
///
/// ```
/// use ecoscale_sim::Energy;
///
/// let dram_bit = Energy::from_pj(20.0);
/// let cacheline = dram_bit * (64.0 * 8.0);
/// assert!((cacheline.as_nj() - 10.24).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Energy(f64);

/// A rate of energy use, in watts.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Power(f64);

impl Energy {
    /// Zero energy.
    pub const ZERO: Energy = Energy(0.0);

    /// Creates an energy from joules.
    ///
    /// # Panics
    ///
    /// Panics if `j` is negative or not finite.
    #[inline]
    pub fn from_joules(j: f64) -> Energy {
        assert!(
            j.is_finite() && j >= 0.0,
            "energy must be finite and non-negative"
        );
        Energy(j)
    }

    /// Creates an energy from millijoules.
    #[inline]
    pub fn from_mj(mj: f64) -> Energy {
        Energy::from_joules(mj * 1e-3)
    }

    /// Creates an energy from microjoules.
    #[inline]
    pub fn from_uj(uj: f64) -> Energy {
        Energy::from_joules(uj * 1e-6)
    }

    /// Creates an energy from nanojoules.
    #[inline]
    pub fn from_nj(nj: f64) -> Energy {
        Energy::from_joules(nj * 1e-9)
    }

    /// Creates an energy from picojoules.
    #[inline]
    pub fn from_pj(pj: f64) -> Energy {
        Energy::from_joules(pj * 1e-12)
    }

    /// Returns the energy in joules.
    #[inline]
    pub fn as_joules(self) -> f64 {
        self.0
    }

    /// Returns the energy in millijoules.
    #[inline]
    pub fn as_mj(self) -> f64 {
        self.0 * 1e3
    }

    /// Returns the energy in microjoules.
    #[inline]
    pub fn as_uj(self) -> f64 {
        self.0 * 1e6
    }

    /// Returns the energy in nanojoules.
    #[inline]
    pub fn as_nj(self) -> f64 {
        self.0 * 1e9
    }

    /// Returns the energy in picojoules.
    #[inline]
    pub fn as_pj(self) -> f64 {
        self.0 * 1e12
    }

    /// Average power over `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d` is zero.
    #[inline]
    pub fn over(self, d: Duration) -> Power {
        assert!(!d.is_zero(), "cannot average energy over a zero duration");
        Power(self.0 / d.as_secs_f64())
    }
}

impl Power {
    /// Zero power.
    pub const ZERO: Power = Power(0.0);

    /// Creates a power from watts.
    ///
    /// # Panics
    ///
    /// Panics if `w` is negative or not finite.
    #[inline]
    pub fn from_watts(w: f64) -> Power {
        assert!(
            w.is_finite() && w >= 0.0,
            "power must be finite and non-negative"
        );
        Power(w)
    }

    /// Creates a power from milliwatts.
    #[inline]
    pub fn from_mw(mw: f64) -> Power {
        Power::from_watts(mw * 1e-3)
    }

    /// Creates a power from kilowatts.
    #[inline]
    pub fn from_kw(kw: f64) -> Power {
        Power::from_watts(kw * 1e3)
    }

    /// Creates a power from megawatts.
    #[inline]
    pub fn from_megawatts(mw: f64) -> Power {
        Power::from_watts(mw * 1e6)
    }

    /// Returns the power in watts.
    #[inline]
    pub fn as_watts(self) -> f64 {
        self.0
    }

    /// Returns the power in megawatts.
    #[inline]
    pub fn as_megawatts(self) -> f64 {
        self.0 * 1e-6
    }

    /// Energy spent sustaining this power for `d`.
    #[inline]
    pub fn for_duration(self, d: Duration) -> Energy {
        Energy(self.0 * d.as_secs_f64())
    }
}

impl Add for Energy {
    type Output = Energy;
    #[inline]
    fn add(self, rhs: Energy) -> Energy {
        Energy(self.0 + rhs.0)
    }
}

impl AddAssign for Energy {
    #[inline]
    fn add_assign(&mut self, rhs: Energy) {
        self.0 += rhs.0;
    }
}

impl Sub for Energy {
    type Output = Energy;
    #[inline]
    fn sub(self, rhs: Energy) -> Energy {
        Energy((self.0 - rhs.0).max(0.0))
    }
}

impl Mul<f64> for Energy {
    type Output = Energy;
    #[inline]
    fn mul(self, rhs: f64) -> Energy {
        Energy(self.0 * rhs)
    }
}

impl Mul<Energy> for f64 {
    type Output = Energy;
    #[inline]
    fn mul(self, rhs: Energy) -> Energy {
        Energy(self * rhs.0)
    }
}

impl Div<f64> for Energy {
    type Output = Energy;
    #[inline]
    fn div(self, rhs: f64) -> Energy {
        Energy(self.0 / rhs)
    }
}

impl Div<Energy> for Energy {
    type Output = f64;
    #[inline]
    fn div(self, rhs: Energy) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for Energy {
    fn sum<I: Iterator<Item = Energy>>(iter: I) -> Energy {
        iter.fold(Energy::ZERO, Add::add)
    }
}

impl Add for Power {
    type Output = Power;
    #[inline]
    fn add(self, rhs: Power) -> Power {
        Power(self.0 + rhs.0)
    }
}

impl AddAssign for Power {
    #[inline]
    fn add_assign(&mut self, rhs: Power) {
        self.0 += rhs.0;
    }
}

impl Mul<f64> for Power {
    type Output = Power;
    #[inline]
    fn mul(self, rhs: f64) -> Power {
        Power(self.0 * rhs)
    }
}

impl Sum for Power {
    fn sum<I: Iterator<Item = Power>>(iter: I) -> Power {
        iter.fold(Power::ZERO, Add::add)
    }
}

impl fmt::Display for Energy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let j = self.0;
        if j == 0.0 {
            write!(f, "0J")
        } else if j >= 1.0 {
            write!(f, "{j:.3}J")
        } else if j >= 1e-3 {
            write!(f, "{:.3}mJ", j * 1e3)
        } else if j >= 1e-6 {
            write!(f, "{:.3}uJ", j * 1e6)
        } else if j >= 1e-9 {
            write!(f, "{:.3}nJ", j * 1e9)
        } else {
            write!(f, "{:.3}pJ", j * 1e12)
        }
    }
}

impl fmt::Display for Power {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let w = self.0;
        if w == 0.0 {
            write!(f, "0W")
        } else if w >= 1e6 {
            write!(f, "{:.3}MW", w * 1e-6)
        } else if w >= 1e3 {
            write!(f, "{:.3}kW", w * 1e-3)
        } else if w >= 1.0 {
            write!(f, "{w:.3}W")
        } else {
            write!(f, "{:.3}mW", w * 1e3)
        }
    }
}

/// An accumulating energy meter with named categories.
///
/// Components charge costs under a category label (`"dram"`, `"link"`,
/// `"cpu"`, ...); experiments read per-category breakdowns to report where
/// the joules went.
///
/// # Example
///
/// ```
/// use ecoscale_sim::{Energy, EnergyMeter};
///
/// let mut m = EnergyMeter::new();
/// m.charge("dram", Energy::from_nj(10.0));
/// m.charge("link", Energy::from_nj(4.0));
/// m.charge("dram", Energy::from_nj(6.0));
/// assert!((m.total().as_nj() - 20.0).abs() < 1e-9);
/// assert!((m.category("dram").as_nj() - 16.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Default)]
pub struct EnergyMeter {
    total: Energy,
    categories: std::collections::BTreeMap<&'static str, Energy>,
}

impl EnergyMeter {
    /// Creates an empty meter.
    pub fn new() -> EnergyMeter {
        EnergyMeter::default()
    }

    /// Charges `e` under `category`.
    pub fn charge(&mut self, category: &'static str, e: Energy) {
        self.total += e;
        *self.categories.entry(category).or_insert(Energy::ZERO) += e;
    }

    /// Total energy charged so far.
    pub fn total(&self) -> Energy {
        self.total
    }

    /// Energy charged under `category` ([`Energy::ZERO`] if never charged).
    pub fn category(&self, category: &str) -> Energy {
        self.categories
            .get(category)
            .copied()
            .unwrap_or(Energy::ZERO)
    }

    /// Iterates over `(category, energy)` pairs in category-name order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, Energy)> + '_ {
        self.categories.iter().map(|(k, v)| (*k, *v))
    }

    /// Merges another meter into this one.
    pub fn merge(&mut self, other: &EnergyMeter) {
        for (k, v) in other.iter() {
            self.charge(k, v);
        }
    }

    /// Resets the meter to zero.
    pub fn reset(&mut self) {
        self.total = Energy::ZERO;
        self.categories.clear();
    }
}

impl crate::snap::Snapshot for Energy {
    fn snapshot(&self, w: &mut crate::snap::SnapWriter) {
        w.put_f64(self.0);
    }
}

impl crate::snap::Restore for Energy {
    fn restore(r: &mut crate::snap::SnapReader<'_>) -> Result<Self, crate::snap::RestoreError> {
        Ok(Energy(r.get_f64()?))
    }
}

/// Interns a category name recovered from a snapshot so it can live in
/// the meter's `&'static str`-keyed map. Names are deduplicated, so
/// repeated restores of the same categories allocate once per process.
fn intern_category(s: String) -> &'static str {
    use std::collections::BTreeSet;
    use std::sync::{Mutex, OnceLock};
    static INTERNED: OnceLock<Mutex<BTreeSet<&'static str>>> = OnceLock::new();
    let mut set = INTERNED
        .get_or_init(|| Mutex::new(BTreeSet::new()))
        .lock()
        .expect("category intern table poisoned");
    if let Some(&existing) = set.get(s.as_str()) {
        return existing;
    }
    let leaked: &'static str = Box::leak(s.into_boxed_str());
    set.insert(leaked);
    leaked
}

impl crate::snap::Snapshot for EnergyMeter {
    fn snapshot(&self, w: &mut crate::snap::SnapWriter) {
        self.total.snapshot(w);
        w.put_usize(self.categories.len());
        for (k, v) in &self.categories {
            w.put_str(k);
            v.snapshot(w);
        }
    }
}

impl crate::snap::Restore for EnergyMeter {
    fn restore(r: &mut crate::snap::SnapReader<'_>) -> Result<Self, crate::snap::RestoreError> {
        let total = Energy::restore(r)?;
        let n = r.get_usize()?;
        if n > r.remaining() {
            return Err(crate::snap::malformed(format!(
                "meter claims {n} categories but only {} bytes remain",
                r.remaining()
            )));
        }
        let mut categories = std::collections::BTreeMap::new();
        let mut prev: Option<String> = None;
        for i in 0..n {
            let name = r.get_str()?;
            if prev.as_deref().is_some_and(|p| p >= name.as_str()) {
                return Err(crate::snap::malformed(format!(
                    "meter categories unsorted or duplicated at index {i}"
                )));
            }
            prev = Some(name.clone());
            let e = Energy::restore(r)?;
            categories.insert(intern_category(name), e);
        }
        Ok(EnergyMeter { total, categories })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;

    #[test]
    fn unit_conversions_roundtrip() {
        let e = Energy::from_pj(1234.0);
        assert!((e.as_pj() - 1234.0).abs() < 1e-6);
        assert!((e.as_nj() - 1.234).abs() < 1e-9);
        assert!((Energy::from_mj(2.0).as_joules() - 2e-3).abs() < 1e-15);
        assert!((Energy::from_uj(2.0).as_joules() - 2e-6).abs() < 1e-15);
    }

    #[test]
    fn power_energy_duality() {
        let p = Power::from_watts(10.0);
        let e = p.for_duration(Duration::from_ms(100));
        assert!((e.as_joules() - 1.0).abs() < 1e-12);
        let back = e.over(Duration::from_ms(100));
        assert!((back.as_watts() - 10.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "zero duration")]
    fn power_over_zero_duration_panics() {
        let _ = Energy::from_joules(1.0).over(Duration::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = Energy::from_nj(3.0);
        let b = Energy::from_nj(1.0);
        assert!(((a + b).as_nj() - 4.0).abs() < 1e-9);
        assert!(((a - b).as_nj() - 2.0).abs() < 1e-9);
        // subtraction clamps at zero rather than going negative
        assert_eq!((b - a).as_joules(), 0.0);
        assert!(((a * 2.0).as_nj() - 6.0).abs() < 1e-9);
        assert!(((a / 3.0).as_nj() - 1.0).abs() < 1e-9);
        assert!((a / b - 3.0).abs() < 1e-9);
        let total: Energy = vec![a, b, b].into_iter().sum();
        assert!((total.as_nj() - 5.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_energy_rejected() {
        let _ = Energy::from_joules(-1.0);
    }

    #[test]
    fn display_units() {
        assert_eq!(Energy::ZERO.to_string(), "0J");
        assert_eq!(Energy::from_pj(5.0).to_string(), "5.000pJ");
        assert_eq!(Energy::from_nj(5.0).to_string(), "5.000nJ");
        assert_eq!(Energy::from_joules(1.5).to_string(), "1.500J");
        assert_eq!(Power::from_megawatts(1000.0).to_string(), "1000.000MW");
        assert_eq!(Power::from_watts(0.5).to_string(), "500.000mW");
    }

    #[test]
    fn meter_categories_and_merge() {
        let mut m = EnergyMeter::new();
        m.charge("a", Energy::from_nj(1.0));
        m.charge("b", Energy::from_nj(2.0));
        let mut n = EnergyMeter::new();
        n.charge("b", Energy::from_nj(3.0));
        m.merge(&n);
        assert!((m.total().as_nj() - 6.0).abs() < 1e-9);
        assert!((m.category("b").as_nj() - 5.0).abs() < 1e-9);
        assert_eq!(m.category("missing"), Energy::ZERO);
        let cats: Vec<_> = m.iter().map(|(k, _)| k).collect();
        assert_eq!(cats, vec!["a", "b"]);
        m.reset();
        assert_eq!(m.total(), Energy::ZERO);
    }

    #[test]
    fn exascale_extrapolation_sanity() {
        // The paper's intro claim: ~1 GW to sustain an exaflop by scaling
        // Tianhe-2 (33.86 PFlops @ 17.8 MW => ~526 MW/EFlop sustained,
        // ~1 GW with cooling/overheads).
        let tianhe_flops = 33.86e15;
        let tianhe_power = Power::from_megawatts(17.8);
        let per_exaflop = tianhe_power.as_watts() * (1e18 / tianhe_flops);
        assert!(per_exaflop > 4e8 && per_exaflop < 7e8);
    }
}
