//! Virtual time with picosecond resolution.
//!
//! Two newtypes keep points in time and spans of time from being confused
//! (C-NEWTYPE): [`Time`] is an absolute instant on the simulation clock and
//! [`Duration`] is a span. Arithmetic is defined only where it is
//! meaningful: `Time + Duration -> Time`, `Time - Time -> Duration`,
//! `Duration * u64 -> Duration`, and so on.
//!
//! Picoseconds in a `u64` cover roughly 213 days of simulated time, far
//! beyond any experiment in this repository, while still resolving
//! sub-nanosecond interconnect hops at multi-GHz clocks.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

/// An absolute instant on the simulation clock, in picoseconds since the
/// start of the simulation.
///
/// # Example
///
/// ```
/// use ecoscale_sim::{Duration, Time};
///
/// let t = Time::from_ns(4) + Duration::from_ps(500);
/// assert_eq!(t.as_ps(), 4_500);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(u64);

/// A span of virtual time, in picoseconds.
///
/// # Example
///
/// ```
/// use ecoscale_sim::Duration;
///
/// let per_hop = Duration::from_ns(35);
/// assert_eq!((per_hop * 3).as_ns_f64(), 105.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(u64);

macro_rules! time_ctors {
    ($ty:ident) => {
        impl $ty {
            /// The zero value.
            pub const ZERO: Self = Self(0);
            /// The largest representable value.
            pub const MAX: Self = Self(u64::MAX);

            /// Creates a value from picoseconds.
            #[inline]
            pub const fn from_ps(ps: u64) -> Self {
                Self(ps)
            }

            /// Creates a value from nanoseconds.
            #[inline]
            pub const fn from_ns(ns: u64) -> Self {
                Self(ns * 1_000)
            }

            /// Creates a value from microseconds.
            #[inline]
            pub const fn from_us(us: u64) -> Self {
                Self(us * 1_000_000)
            }

            /// Creates a value from milliseconds.
            #[inline]
            pub const fn from_ms(ms: u64) -> Self {
                Self(ms * 1_000_000_000)
            }

            /// Creates a value from seconds.
            #[inline]
            pub const fn from_secs(s: u64) -> Self {
                Self(s * 1_000_000_000_000)
            }

            /// Creates a value from a floating-point nanosecond count,
            /// rounding to the nearest picosecond.
            ///
            /// # Panics
            ///
            /// Panics if `ns` is negative or not finite.
            #[inline]
            pub fn from_ns_f64(ns: f64) -> Self {
                assert!(
                    ns.is_finite() && ns >= 0.0,
                    "time must be finite and non-negative"
                );
                Self((ns * 1_000.0).round() as u64)
            }

            /// Returns the value in picoseconds.
            #[inline]
            pub const fn as_ps(self) -> u64 {
                self.0
            }

            /// Returns the value in whole nanoseconds (truncating).
            #[inline]
            pub const fn as_ns(self) -> u64 {
                self.0 / 1_000
            }

            /// Returns the value in nanoseconds as a float.
            #[inline]
            pub fn as_ns_f64(self) -> f64 {
                self.0 as f64 / 1_000.0
            }

            /// Returns the value in microseconds as a float.
            #[inline]
            pub fn as_us_f64(self) -> f64 {
                self.0 as f64 / 1_000_000.0
            }

            /// Returns the value in milliseconds as a float.
            #[inline]
            pub fn as_ms_f64(self) -> f64 {
                self.0 as f64 / 1_000_000_000.0
            }

            /// Returns the value in seconds as a float.
            #[inline]
            pub fn as_secs_f64(self) -> f64 {
                self.0 as f64 / 1_000_000_000_000.0
            }

            /// Returns `true` if this is the zero value.
            #[inline]
            pub const fn is_zero(self) -> bool {
                self.0 == 0
            }

            /// Saturating addition of a picosecond count.
            #[inline]
            pub const fn saturating_add_ps(self, ps: u64) -> Self {
                Self(self.0.saturating_add(ps))
            }
        }
    };
}

time_ctors!(Time);
time_ctors!(Duration);

impl Time {
    /// Returns the span from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    #[inline]
    pub fn since(self, earlier: Time) -> Duration {
        assert!(
            earlier.0 <= self.0,
            "`earlier` ({earlier}) is after `self` ({self})"
        );
        Duration(self.0 - earlier.0)
    }

    /// Returns the span from `earlier` to `self`, or [`Duration::ZERO`] if
    /// `earlier` is later.
    #[inline]
    pub fn saturating_since(self, earlier: Time) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }
}

impl Duration {
    /// Computes a duration for transferring `bytes` over a link of
    /// `bytes_per_sec` bandwidth.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_sec` is zero.
    #[inline]
    pub fn from_bytes_at_bandwidth(bytes: u64, bytes_per_sec: u64) -> Self {
        assert!(bytes_per_sec > 0, "bandwidth must be positive");
        // ps = bytes * 1e12 / (bytes/s); use u128 to avoid overflow.
        let ps = (bytes as u128 * 1_000_000_000_000u128) / bytes_per_sec as u128;
        Duration(ps.min(u64::MAX as u128) as u64)
    }

    /// Computes a duration for `cycles` cycles at `hz` clock frequency.
    ///
    /// # Panics
    ///
    /// Panics if `hz` is zero.
    #[inline]
    pub fn from_cycles(cycles: u64, hz: u64) -> Self {
        assert!(hz > 0, "clock frequency must be positive");
        let ps = (cycles as u128 * 1_000_000_000_000u128) / hz as u128;
        Duration(ps.min(u64::MAX as u128) as u64)
    }

    /// Multiplies by a float scale factor, rounding to picoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is negative or not finite.
    #[inline]
    pub fn mul_f64(self, scale: f64) -> Self {
        assert!(
            scale.is_finite() && scale >= 0.0,
            "scale must be finite and non-negative"
        );
        Duration((self.0 as f64 * scale).round() as u64)
    }

    /// Checked subtraction; returns `None` on underflow.
    #[inline]
    pub fn checked_sub(self, rhs: Duration) -> Option<Duration> {
        self.0.checked_sub(rhs.0).map(Duration)
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<Duration> for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Duration) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<Duration> for Time {
    type Output = Time;
    #[inline]
    fn sub(self, rhs: Duration) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl Sub<Time> for Time {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: Time) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl Add for Duration {
    type Output = Duration;
    #[inline]
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub for Duration {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl SubAssign for Duration {
    #[inline]
    fn sub_assign(&mut self, rhs: Duration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Duration {
    type Output = Duration;
    #[inline]
    fn mul(self, rhs: u64) -> Duration {
        Duration(self.0 * rhs)
    }
}

impl Mul<Duration> for u64 {
    type Output = Duration;
    #[inline]
    fn mul(self, rhs: Duration) -> Duration {
        Duration(self * rhs.0)
    }
}

impl Div<u64> for Duration {
    type Output = Duration;
    #[inline]
    fn div(self, rhs: u64) -> Duration {
        Duration(self.0 / rhs)
    }
}

impl Div<Duration> for Duration {
    type Output = f64;
    #[inline]
    fn div(self, rhs: Duration) -> f64 {
        self.0 as f64 / rhs.0 as f64
    }
}

impl Rem<Duration> for Duration {
    type Output = Duration;
    #[inline]
    fn rem(self, rhs: Duration) -> Duration {
        Duration(self.0 % rhs.0)
    }
}

impl Sum for Duration {
    fn sum<I: Iterator<Item = Duration>>(iter: I) -> Duration {
        iter.fold(Duration::ZERO, Add::add)
    }
}

fn fmt_ps(ps: u64, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    if ps == 0 {
        return write!(f, "0s");
    }
    let (val, unit) = if ps >= 1_000_000_000_000 {
        (ps as f64 / 1e12, "s")
    } else if ps >= 1_000_000_000 {
        (ps as f64 / 1e9, "ms")
    } else if ps >= 1_000_000 {
        (ps as f64 / 1e6, "us")
    } else if ps >= 1_000 {
        (ps as f64 / 1e3, "ns")
    } else {
        (ps as f64, "ps")
    };
    write!(f, "{val:.3}{unit}")
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_ps(self.0, f)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_ps(self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree_across_units() {
        assert_eq!(Time::from_ns(1), Time::from_ps(1_000));
        assert_eq!(Time::from_us(1), Time::from_ns(1_000));
        assert_eq!(Time::from_ms(1), Time::from_us(1_000));
        assert_eq!(Time::from_secs(1), Time::from_ms(1_000));
        assert_eq!(Duration::from_secs(2).as_ps(), 2_000_000_000_000);
    }

    #[test]
    fn time_duration_arithmetic() {
        let t0 = Time::from_ns(100);
        let d = Duration::from_ns(40);
        assert_eq!(t0 + d, Time::from_ns(140));
        assert_eq!((t0 + d) - t0, d);
        assert_eq!((t0 + d) - d, t0);
        let mut t = t0;
        t += d;
        assert_eq!(t, Time::from_ns(140));
    }

    #[test]
    fn since_and_saturating_since() {
        let a = Time::from_ns(10);
        let b = Time::from_ns(25);
        assert_eq!(b.since(a), Duration::from_ns(15));
        assert_eq!(a.saturating_since(b), Duration::ZERO);
    }

    #[test]
    #[should_panic(expected = "is after")]
    fn since_panics_on_inverted_order() {
        let _ = Time::from_ns(1).since(Time::from_ns(2));
    }

    #[test]
    fn bandwidth_duration() {
        // 1 KiB at 1 GiB/s = ~0.954 us
        let d = Duration::from_bytes_at_bandwidth(1024, 1 << 30);
        assert_eq!(d.as_ps(), 953_674);
        // 400 MB/s ICAP: 1 MB takes 2.5 ms
        let d = Duration::from_bytes_at_bandwidth(1_000_000, 400_000_000);
        assert_eq!(d.as_ms_f64(), 2.5);
    }

    #[test]
    fn cycles_duration() {
        // 10 cycles at 1 GHz = 10 ns
        assert_eq!(
            Duration::from_cycles(10, 1_000_000_000),
            Duration::from_ns(10)
        );
        // 3 cycles at 2 GHz = 1.5 ns
        assert_eq!(Duration::from_cycles(3, 2_000_000_000).as_ps(), 1_500);
    }

    #[test]
    fn duration_scalar_ops() {
        let d = Duration::from_ns(10);
        assert_eq!(d * 3, Duration::from_ns(30));
        assert_eq!(3 * d, Duration::from_ns(30));
        assert_eq!(d / 2, Duration::from_ns(5));
        assert_eq!(Duration::from_ns(30) / d, 3.0);
        assert_eq!(d.mul_f64(2.5), Duration::from_ns(25));
        assert_eq!(
            Duration::from_ns(7) % Duration::from_ns(3),
            Duration::from_ns(1)
        );
    }

    #[test]
    fn duration_sum_and_checked() {
        let total: Duration = (1..=4).map(Duration::from_ns).sum();
        assert_eq!(total, Duration::from_ns(10));
        assert_eq!(Duration::from_ns(5).checked_sub(Duration::from_ns(7)), None);
        assert_eq!(
            Duration::from_ns(7).saturating_sub(Duration::from_ns(9)),
            Duration::ZERO
        );
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(Time::ZERO.to_string(), "0s");
        assert_eq!(Time::from_ps(500).to_string(), "500.000ps");
        assert_eq!(Duration::from_ns(1500).to_string(), "1.500us");
        assert_eq!(Duration::from_ms(12).to_string(), "12.000ms");
        assert_eq!(Duration::from_secs(3).to_string(), "3.000s");
    }

    #[test]
    fn from_ns_f64_rounds() {
        assert_eq!(Duration::from_ns_f64(0.0004).as_ps(), 0);
        assert_eq!(Duration::from_ns_f64(0.0006).as_ps(), 1);
        assert_eq!(Duration::from_ns_f64(2.5).as_ps(), 2_500);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn from_ns_f64_rejects_negative() {
        let _ = Duration::from_ns_f64(-1.0);
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(Time::from_ns(1) < Time::from_ns(2));
        assert!(Duration::from_us(1) > Duration::from_ns(999));
    }
}
