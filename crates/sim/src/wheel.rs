//! Hierarchical timing wheel with a reusable entry arena.
//!
//! [`TimingWheel`] is the sharded engine's per-cluster event queue: a
//! hashed hierarchical wheel (11 levels × 64 slots covering the full
//! 64-bit picosecond clock) whose push and pop are `O(1)` amortized, with
//! cascades touching only `O(levels + entries moved)` work. Entries live
//! in an index-linked arena with an intrusive freelist, so steady-state
//! operation performs **zero allocations**: every freed slot is reused by
//! the next push.
//!
//! # Ordering contract
//!
//! Events are delivered in strict `(time, key)` order. The caller supplies
//! the `key`; the sharded engine packs `(source cluster, per-cluster
//! sequence number)` into it so delivery order is a pure function of the
//! event set and never of the shard layout. [`EventQueue`] semantics fall
//! out of using a monotonically increasing sequence number as the key.
//!
//! # Example
//!
//! ```
//! use ecoscale_sim::{Time, TimingWheel};
//!
//! let mut w = TimingWheel::new();
//! w.schedule(Time::from_ns(5), 1, "b");
//! w.schedule(Time::from_ns(5), 0, "a");
//! w.schedule(Time::from_ns(1), 2, "first");
//! let order: Vec<_> = std::iter::from_fn(|| w.pop()).map(|(_, _, e)| e).collect();
//! assert_eq!(order, ["first", "a", "b"]);
//! ```
//!
//! [`EventQueue`]: crate::event::EventQueue

use crate::snap::{malformed, RestoreError, SnapReader, SnapWriter};
use crate::time::{Duration, Time};

/// Bits per wheel level (64 slots each).
const SLOT_BITS: usize = 6;
/// Slots per level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Levels needed to cover a 64-bit picosecond clock (6 × 11 = 66 ≥ 64).
const LEVELS: usize = 11;
/// Null arena index (freelist / list terminator).
const NIL: u32 = u32::MAX;

#[derive(Debug)]
struct Node<E> {
    time: u64,
    key: u64,
    next: u32,
    event: Option<E>,
}

/// A hierarchical timing wheel delivering events in `(time, key)` order.
///
/// See the [module docs](self) for the ordering contract and design.
#[derive(Debug)]
pub struct TimingWheel<E> {
    /// Entry arena; freed slots are chained through `free` and reused.
    nodes: Vec<Node<E>>,
    /// Head of the freelist (`NIL` when every slot is live).
    free: u32,
    /// Per-level slot occupancy bitmaps.
    occ: [u64; LEVELS],
    /// Per-level, per-slot list heads into the arena.
    slots: [[u32; SLOTS]; LEVELS],
    /// Current time lower bound: timestamp of the last popped event.
    cur: u64,
    /// Same-instant batch at time `cur`, sorted by key *descending* so the
    /// minimum key pops from the back in `O(1)`.
    ready: Vec<(u64, u32)>,
    len: usize,
    scheduled_total: u64,
}

impl<E> Default for TimingWheel<E> {
    fn default() -> Self {
        TimingWheel::new()
    }
}

impl<E> TimingWheel<E> {
    /// Creates an empty wheel with the clock at [`Time::ZERO`].
    pub fn new() -> TimingWheel<E> {
        TimingWheel {
            nodes: Vec::new(),
            free: NIL,
            occ: [0; LEVELS],
            slots: [[NIL; SLOTS]; LEVELS],
            cur: 0,
            ready: Vec::new(),
            len: 0,
            scheduled_total: 0,
        }
    }

    /// Creates an empty wheel with arena room for `capacity` entries.
    pub fn with_capacity(capacity: usize) -> TimingWheel<E> {
        let mut w = TimingWheel::new();
        w.nodes.reserve(capacity);
        w
    }

    /// The current simulation time: the timestamp of the most recently
    /// popped event (or [`Time::ZERO`] before the first pop).
    pub fn now(&self) -> Time {
        Time::from_ps(self.cur)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total number of events ever scheduled on this wheel.
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Number of arena slots ever allocated. In steady state (pushes
    /// balanced by pops) this stays flat: freed slots are reused, so no
    /// per-event allocation happens on the hot path.
    pub fn arena_len(&self) -> usize {
        self.nodes.len()
    }

    /// Schedules `event` at absolute time `at` with tie-break `key`.
    ///
    /// Among events with equal timestamps, smaller keys pop first. Keys
    /// should be unique per `(time, key)` pair for a total order.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before [`now`](Self::now) — the past is immutable.
    pub fn schedule(&mut self, at: Time, key: u64, event: E) {
        let t = at.as_ps();
        assert!(
            t >= self.cur,
            "cannot schedule an event at {at}, which is before now ({})",
            self.now()
        );
        self.scheduled_total += 1;
        self.len += 1;
        let idx = self.alloc(t, key, event);
        if t == self.cur && !self.ready.is_empty() {
            // The current instant is being delivered: join the batch at
            // its key-sorted position.
            let pos = self.ready.partition_point(|&(k, _)| k > key);
            self.ready.insert(pos, (key, idx));
            return;
        }
        self.insert_node(idx);
    }

    /// Schedules `event` at `now() + delay` with tie-break `key`.
    pub fn schedule_in(&mut self, delay: Duration, key: u64, event: E) {
        self.schedule(self.now() + delay, key, event);
    }

    /// The timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<Time> {
        if !self.ready.is_empty() {
            return Some(Time::from_ps(self.cur));
        }
        if self.len == 0 {
            return None;
        }
        // Level 0 slots each hold exactly one timestamp, reconstructable
        // from `cur`'s upper bits; higher levels need a list walk (rare —
        // only when the level-0 window is drained).
        if self.occ[0] != 0 {
            let s = self.occ[0].trailing_zeros() as u64;
            return Some(Time::from_ps((self.cur & !(SLOTS as u64 - 1)) | s));
        }
        for lvl in 1..LEVELS {
            if self.occ[lvl] != 0 {
                let s = self.occ[lvl].trailing_zeros() as usize;
                let mut min = u64::MAX;
                let mut i = self.slots[lvl][s];
                while i != NIL {
                    let n = &self.nodes[i as usize];
                    min = min.min(n.time);
                    i = n.next;
                }
                return Some(Time::from_ps(min));
            }
        }
        None
    }

    /// Removes and returns the earliest event as `(time, key, event)`,
    /// advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(Time, u64, E)> {
        if self.ready.is_empty() && !self.fill_ready() {
            return None;
        }
        let (key, idx) = self.ready.pop().expect("fill_ready produced a batch");
        self.len -= 1;
        let event = self.release(idx);
        Some((Time::from_ps(self.cur), key, event))
    }

    /// Pops the earliest event only if it is at or before `horizon`.
    pub fn pop_if_at_or_before(&mut self, horizon: Time) -> Option<(Time, u64, E)> {
        if self.peek_time()? > horizon {
            return None;
        }
        self.pop()
    }

    /// Discards all pending events without advancing the clock. The arena
    /// keeps its capacity.
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.free = NIL;
        self.occ = [0; LEVELS];
        self.slots = [[NIL; SLOTS]; LEVELS];
        self.ready.clear();
        self.len = 0;
    }

    fn alloc(&mut self, time: u64, key: u64, event: E) -> u32 {
        if self.free != NIL {
            let idx = self.free;
            let n = &mut self.nodes[idx as usize];
            self.free = n.next;
            n.time = time;
            n.key = key;
            n.next = NIL;
            n.event = Some(event);
            idx
        } else {
            let idx = self.nodes.len() as u32;
            assert!(idx != NIL, "timing wheel arena exhausted");
            self.nodes.push(Node {
                time,
                key,
                next: NIL,
                event: Some(event),
            });
            idx
        }
    }

    fn release(&mut self, idx: u32) -> E {
        let n = &mut self.nodes[idx as usize];
        let ev = n.event.take().expect("released node holds an event");
        n.next = self.free;
        self.free = idx;
        ev
    }

    /// Level at which a node with timestamp `t` lives relative to `cur`:
    /// the highest 6-bit group where `t` and `cur` differ (0 if equal).
    fn level_of(&self, t: u64) -> usize {
        let diff = t ^ self.cur;
        if diff == 0 {
            0
        } else {
            (63 - diff.leading_zeros() as usize) / SLOT_BITS
        }
    }

    fn insert_node(&mut self, idx: u32) {
        let t = self.nodes[idx as usize].time;
        let lvl = self.level_of(t);
        let slot = ((t >> (SLOT_BITS * lvl)) & (SLOTS as u64 - 1)) as usize;
        self.nodes[idx as usize].next = self.slots[lvl][slot];
        self.slots[lvl][slot] = idx;
        self.occ[lvl] |= 1 << slot;
    }

    /// Takes the whole list of `(lvl, slot)` and clears its occupancy bit.
    fn take_slot(&mut self, lvl: usize, slot: usize) -> u32 {
        let head = self.slots[lvl][slot];
        self.slots[lvl][slot] = NIL;
        self.occ[lvl] &= !(1 << slot);
        head
    }

    /// Advances the wheel to the next pending timestamp and drains that
    /// instant's entries into `ready` (key-sorted). Returns `false` if the
    /// wheel is empty.
    fn fill_ready(&mut self) -> bool {
        if self.len == 0 {
            return false;
        }
        loop {
            if self.occ[0] != 0 {
                // Every entry in a level-0 slot shares one exact timestamp.
                let slot = self.occ[0].trailing_zeros() as usize;
                let mut i = self.take_slot(0, slot);
                debug_assert!(i != NIL);
                self.cur = self.nodes[i as usize].time;
                while i != NIL {
                    let n = &self.nodes[i as usize];
                    let (key, next) = (n.key, n.next);
                    let pos = self.ready.partition_point(|&(k, _)| k > key);
                    self.ready.insert(pos, (key, i));
                    i = next;
                }
                return true;
            }
            // Level-0 window exhausted: cascade the lowest occupied slot of
            // the lowest occupied level. Entries at level `l` agree with
            // `cur` above group `l`, so lower levels always hold earlier
            // timestamps and this scan order is time order.
            let Some(lvl) = (1..LEVELS).find(|&l| self.occ[l] != 0) else {
                unreachable!("len > 0 but no occupied slot");
            };
            let slot = self.occ[lvl].trailing_zeros() as usize;
            // Jump the clock to the base of the slot's range; everything
            // still pending is at or after it.
            let shift = SLOT_BITS * (lvl + 1);
            let base = if shift >= 64 {
                0
            } else {
                (self.cur >> shift) << shift
            };
            self.cur = base | ((slot as u64) << (SLOT_BITS * lvl));
            let mut i = self.take_slot(lvl, slot);
            while i != NIL {
                let next = self.nodes[i as usize].next;
                self.insert_node(i); // relative to the new `cur`: lands lower
                i = next;
            }
        }
    }
}

impl<E: crate::snap::Snapshot> crate::snap::Snapshot for TimingWheel<E> {
    /// Serializes the wheel in canonical order: clock, the live
    /// same-instant `ready` batch exactly as stored (key-descending),
    /// then every other pending node sorted by `(time, key)`. Arena
    /// indices, freelist shape and slot-list order are layout, not state,
    /// so snapshot → restore → snapshot is byte-identical regardless of
    /// the churn history that produced the wheel.
    fn snapshot(&self, w: &mut SnapWriter) {
        w.put_u64(self.cur);
        w.put_u64(self.scheduled_total);
        w.put_usize(self.ready.len());
        let mut in_ready = vec![false; self.nodes.len()];
        for &(key, idx) in &self.ready {
            in_ready[idx as usize] = true;
            w.put_u64(key);
            self.nodes[idx as usize]
                .event
                .as_ref()
                .expect("ready node holds an event")
                .snapshot(w);
        }
        let mut rest: Vec<u32> = (0..self.nodes.len() as u32)
            .filter(|&i| self.nodes[i as usize].event.is_some() && !in_ready[i as usize])
            .collect();
        rest.sort_unstable_by_key(|&i| {
            let n = &self.nodes[i as usize];
            (n.time, n.key)
        });
        w.put_usize(rest.len());
        for i in rest {
            let time = self.nodes[i as usize].time;
            let key = self.nodes[i as usize].key;
            w.put_u64(time);
            w.put_u64(key);
            self.nodes[i as usize]
                .event
                .as_ref()
                .expect("live node holds an event")
                .snapshot(w);
        }
    }
}

impl<E: crate::snap::Restore> crate::snap::Restore for TimingWheel<E> {
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, RestoreError> {
        let mut w = TimingWheel::new();
        w.cur = r.get_u64()?;
        w.scheduled_total = r.get_u64()?;
        let nready = r.get_usize()?;
        if nready > r.remaining() {
            return Err(malformed(format!(
                "wheel claims {nready} ready entries but only {} bytes remain",
                r.remaining()
            )));
        }
        let mut prev_key: Option<u64> = None;
        for i in 0..nready {
            let key = r.get_u64()?;
            if prev_key.is_some_and(|p| p <= key) {
                return Err(malformed(format!(
                    "ready batch not key-descending at index {i}"
                )));
            }
            prev_key = Some(key);
            let event = E::restore(r)?;
            let idx = w.alloc(w.cur, key, event);
            w.ready.push((key, idx));
            w.len += 1;
        }
        let n = r.get_usize()?;
        if n > r.remaining() {
            return Err(malformed(format!(
                "wheel claims {n} pending nodes but only {} bytes remain",
                r.remaining()
            )));
        }
        let mut prev: Option<(u64, u64)> = None;
        for i in 0..n {
            let time = r.get_u64()?;
            let key = r.get_u64()?;
            if time < w.cur {
                return Err(malformed(format!(
                    "wheel node {i} at {time}ps is before the clock {}ps",
                    w.cur
                )));
            }
            if prev.is_some_and(|p| p >= (time, key)) {
                return Err(malformed(format!(
                    "wheel nodes out of canonical (time, key) order at index {i}"
                )));
            }
            prev = Some((time, key));
            let event = E::restore(r)?;
            let idx = w.alloc(time, key, event);
            w.insert_node(idx);
            w.len += 1;
        }
        Ok(w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    #[test]
    fn pops_in_time_then_key_order() {
        let mut w = TimingWheel::new();
        w.schedule(Time::from_ns(30), 0, 3);
        w.schedule(Time::from_ns(10), 1, 1);
        w.schedule(Time::from_ns(10), 0, 0);
        w.schedule(Time::from_ns(20), 5, 2);
        let out: Vec<_> = std::iter::from_fn(|| w.pop()).map(|(_, _, e)| e).collect();
        assert_eq!(out, vec![0, 1, 2, 3]);
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut w = TimingWheel::new();
        assert_eq!(w.now(), Time::ZERO);
        w.schedule(Time::from_ns(5), 0, ());
        w.schedule(Time::from_ns(9), 1, ());
        w.pop();
        assert_eq!(w.now(), Time::from_ns(5));
        w.pop();
        assert_eq!(w.now(), Time::from_ns(9));
        assert!(w.pop().is_none());
        assert_eq!(w.now(), Time::from_ns(9));
    }

    #[test]
    #[should_panic(expected = "before now")]
    fn scheduling_in_the_past_panics() {
        let mut w = TimingWheel::new();
        w.schedule(Time::from_ns(10), 0, ());
        w.pop();
        w.schedule(Time::from_ns(9), 1, ());
    }

    #[test]
    fn same_instant_schedule_during_delivery_respects_keys() {
        let mut w = TimingWheel::new();
        w.schedule(Time::from_ns(10), 2, "c");
        w.schedule(Time::from_ns(10), 0, "a");
        let (t, k, e) = w.pop().unwrap();
        assert_eq!((t, k, e), (Time::from_ns(10), 0, "a"));
        // now == 10 and the batch is live: a key between the remaining ones
        // must slot into order
        w.schedule(Time::from_ns(10), 1, "b");
        w.schedule(Time::from_ns(10), 3, "d");
        let rest: Vec<_> = std::iter::from_fn(|| w.pop()).map(|(_, _, e)| e).collect();
        assert_eq!(rest, ["b", "c", "d"]);
    }

    #[test]
    fn peek_matches_pop_across_windows() {
        let mut w = TimingWheel::new();
        // Spread far across wheel levels: same slot window, next window,
        // and several levels up.
        for (i, ps) in [3u64, 63, 64, 65, 4_095, 4_096, 1 << 20, (1 << 40) + 7]
            .iter()
            .enumerate()
        {
            w.schedule(Time::from_ps(*ps), i as u64, *ps);
        }
        let mut prev = 0u64;
        while let Some(peek) = w.peek_time() {
            let (t, _, e) = w.pop().unwrap();
            assert_eq!(peek, t);
            assert_eq!(t.as_ps(), e);
            assert!(e >= prev);
            prev = e;
        }
        assert!(w.is_empty());
    }

    #[test]
    fn pop_if_at_or_before_respects_horizon() {
        let mut w = TimingWheel::new();
        w.schedule(Time::from_ns(10), 0, "a");
        w.schedule(Time::from_ns(20), 1, "b");
        assert_eq!(w.pop_if_at_or_before(Time::from_ns(5)), None);
        assert_eq!(
            w.pop_if_at_or_before(Time::from_ns(10)),
            Some((Time::from_ns(10), 0, "a"))
        );
        assert_eq!(w.pop_if_at_or_before(Time::from_ns(19)), None);
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn arena_reuses_slots_zero_steady_state_growth() {
        let mut w = TimingWheel::new();
        // Warm up: at most 32 pending entries at any point.
        for i in 0..32u64 {
            w.schedule(Time::from_ps(i + 1), i, i);
        }
        let warm = w.arena_len();
        assert_eq!(warm, 32);
        // Churn: every push is preceded by a pop, so the freelist always
        // has a slot to hand out. The arena must not grow at all.
        let mut t = 33u64;
        for i in 0..10_000u64 {
            w.pop().unwrap();
            w.schedule(Time::from_ps(t), 32 + i, i);
            t += 17;
        }
        assert_eq!(w.arena_len(), warm, "steady-state churn must not allocate");
        assert_eq!(w.len(), 32);
    }

    #[test]
    fn clear_keeps_capacity_and_resets_contents() {
        let mut w = TimingWheel::new();
        for i in 0..100u64 {
            w.schedule(Time::from_ps(i * 7), i, i);
        }
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.peek_time(), None);
        assert_eq!(w.scheduled_total(), 100);
        w.schedule(Time::from_ns(1), 0, 7);
        assert_eq!(w.pop().map(|(_, _, e)| e), Some(7));
    }

    #[test]
    fn bookkeeping() {
        let mut w: TimingWheel<()> = TimingWheel::with_capacity(16);
        assert!(w.is_empty());
        w.schedule(Time::from_ns(4), 0, ());
        w.schedule(Time::from_ns(2), 1, ());
        assert_eq!(w.len(), 2);
        assert_eq!(w.peek_time(), Some(Time::from_ns(2)));
        assert_eq!(w.scheduled_total(), 2);
    }

    use crate::snap::{Restore, RestoreError, SnapReader, SnapWriter, Snapshot};

    fn snap_bytes(w: &TimingWheel<u64>) -> Vec<u8> {
        let mut sw = SnapWriter::new();
        w.snapshot(&mut sw);
        sw.into_bytes()
    }

    fn unsnap(bytes: &[u8]) -> Result<TimingWheel<u64>, RestoreError> {
        let mut r = SnapReader::new(bytes);
        TimingWheel::restore(&mut r)
    }

    /// A wheel mid-delivery: churned arena, entries across several
    /// levels, and a live (partially popped) same-instant ready batch.
    fn churned() -> TimingWheel<u64> {
        let mut w = TimingWheel::new();
        for i in 0..24u64 {
            w.schedule(Time::from_ps(i * 97 + 1), i, i);
        }
        for _ in 0..8 {
            w.pop();
        }
        let now = w.now();
        // three entries at the current instant, pop one so the ready
        // batch is live with two left
        w.schedule(now, 100, 100);
        w.schedule(now, 101, 101);
        w.schedule(now, 102, 102);
        w.pop();
        // far-future entries spanning wheel levels
        w.schedule(Time::from_ps(now.as_ps() + (1 << 20)), 200, 200);
        w.schedule(Time::from_ps(now.as_ps() + (1 << 40)), 201, 201);
        w
    }

    #[test]
    fn snapshot_restore_round_trips_and_reserializes_identically() {
        let mut w = churned();
        let bytes = snap_bytes(&w);
        let mut restored = unsnap(&bytes).expect("restore");
        assert_eq!(snap_bytes(&restored), bytes, "re-snapshot not identical");
        assert_eq!(restored.now(), w.now());
        assert_eq!(restored.len(), w.len());
        assert_eq!(restored.scheduled_total(), w.scheduled_total());
        // identical drains, including after fresh scheduling on both
        w.schedule_in(Duration::from_ns(3), 999, 999);
        restored.schedule_in(Duration::from_ns(3), 999, 999);
        let a: Vec<_> = std::iter::from_fn(|| w.pop()).collect();
        let b: Vec<_> = std::iter::from_fn(|| restored.pop()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn restore_rejects_malformed_streams() {
        let bytes = snap_bytes(&churned());
        for cut in 0..bytes.len() {
            assert!(unsnap(&bytes[..cut]).is_err(), "cut at {cut} accepted");
        }
        // a node timestamped before the clock is refused
        let mut sw = SnapWriter::new();
        sw.put_u64(1000); // cur
        sw.put_u64(1); // scheduled_total
        sw.put_usize(0); // ready
        sw.put_usize(1); // nodes
        sw.put_u64(999); // before cur
        sw.put_u64(0);
        sw.put_u64(7);
        assert!(matches!(
            unsnap(&sw.into_bytes()),
            Err(RestoreError::Malformed { .. })
        ));
    }

    /// Randomized lockstep against a sorted reference: interleaved pushes
    /// and pops over a wide time range must agree exactly.
    #[test]
    fn matches_btreemap_reference() {
        use std::collections::BTreeMap;
        for case in 0..32u64 {
            let mut rng = SimRng::seed_from(0x77EE1 ^ case);
            let mut w = TimingWheel::new();
            let mut reference: BTreeMap<(u64, u64), u64> = BTreeMap::new();
            let mut key = 0u64;
            for step in 0..2_000u64 {
                if rng.gen_bool(0.6) || reference.is_empty() {
                    let horizon = w.now().as_ps();
                    let exp = 1 << rng.gen_range_u64(0, 45);
                    let t = horizon + rng.gen_range_u64(0, exp);
                    w.schedule(Time::from_ps(t), key, step);
                    reference.insert((t, key), step);
                    key += 1;
                } else {
                    let got = w.pop();
                    let want = reference.pop_first();
                    match (got, want) {
                        (Some((t, k, e)), Some(((rt, rk), re))) => {
                            assert_eq!((t.as_ps(), k, e), (rt, rk, re), "case {case} step {step}");
                        }
                        (None, None) => {}
                        (g, r) => panic!("case {case} step {step}: {g:?} vs {r:?}"),
                    }
                }
            }
            // drain
            while let Some((t, k, e)) = w.pop() {
                let ((rt, rk), re) = reference.pop_first().expect("reference non-empty");
                assert_eq!((t.as_ps(), k, e), (rt, rk, re), "case {case} drain");
            }
            assert!(reference.is_empty(), "case {case}");
        }
    }
}
