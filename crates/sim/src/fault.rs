//! FaultPlane: seeded, deterministic fault-campaign primitives.
//!
//! Exascale machines built from thousands of Workers see component
//! faults as the steady state, not the exception. This module is the
//! substrate every layer's injection hook builds on:
//!
//! * [`CampaignSpec`] — a declarative fault campaign (per-component
//!   rates, durations and probabilities) with a compact textual form
//!   (`exp_all --faults <spec>`) that round-trips through
//!   [`CampaignSpec::parse`] / `Display`,
//! * [`FaultClock`] — a Poisson arrival process on simulated [`Time`],
//!   driven by the vendored [`SimRng`] so campaigns are pure functions
//!   of their seed,
//! * [`ProbFault`] — a per-operation Bernoulli injector (translation
//!   faults, bit errors, packet corruption) that draws **nothing** when
//!   its probability is zero, keeping disabled campaigns byte-identical
//!   to runs without the FaultPlane compiled in at all.
//!
//! Layer hooks live next to the component they fault: NoC link
//! degradation in `ecoscale-noc`, SMMU/DRAM faults in `ecoscale-mem`,
//! SEU upsets and scrubbing in `ecoscale-fpga`, worker stalls/crashes in
//! the runtime scheduler. Recovery policy lives in
//! `ecoscale_runtime::resilience`.

use core::fmt;

use crate::rng::SimRng;
use crate::time::{Duration, Time};

/// Mixes a component salt into a campaign seed so every injector gets an
/// independent stream and adding one component never perturbs another's.
fn mix(seed: u64, salt: u64) -> u64 {
    // splitmix-style finalizer over seed ^ golden-ratio-spread salt
    let mut z = seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A declarative fault campaign: which components fault, how often, and
/// for how long. All rates default to "off", so `CampaignSpec::off()`
/// (or any spec with every rate zero) injects nothing and costs nothing.
///
/// # Textual form
///
/// Comma-separated `key=value` pairs; durations take `ns`/`us`/`ms`/`s`
/// suffixes, probabilities are plain floats:
///
/// ```
/// use ecoscale_sim::fault::CampaignSpec;
///
/// let spec = CampaignSpec::parse("seed=7,crash=5ms,stall=2ms,stall_for=300us,smmu=0.002")
///     .unwrap();
/// assert_eq!(spec.seed, 7);
/// assert!(!spec.is_off());
/// let round_trip = CampaignSpec::parse(&spec.to_string()).unwrap();
/// assert_eq!(spec, round_trip);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// Root seed; every injector forks an independent stream from it.
    pub seed: u64,
    /// Mean time between worker crashes (zero = off).
    pub worker_crash_mtbf: Duration,
    /// Mean time between worker stalls (zero = off).
    pub worker_stall_mtbf: Duration,
    /// How long a stalled worker stays unavailable.
    pub worker_stall_for: Duration,
    /// Mean time between link degradation events (zero = off).
    pub link_degrade_mtbf: Duration,
    /// How long a degraded link stays slow.
    pub link_degrade_for: Duration,
    /// Serialization slowdown factor while a link is degraded.
    pub link_slowdown: f64,
    /// Per-message payload corruption probability.
    pub packet_corrupt_p: f64,
    /// Per-translation transient SMMU fault probability.
    pub smmu_fault_p: f64,
    /// Per-bit DRAM error probability (feeds the ECC model).
    pub dram_bit_error_p: f64,
    /// Mean time between SEU upsets in configured fabric modules
    /// (zero = off).
    pub seu_mtbf: Duration,
    /// Configuration-memory scrub period (zero = never scrub).
    pub scrub_period: Duration,
}

impl CampaignSpec {
    /// The campaign that injects nothing.
    pub fn off() -> CampaignSpec {
        CampaignSpec {
            seed: 42,
            worker_crash_mtbf: Duration::ZERO,
            worker_stall_mtbf: Duration::ZERO,
            worker_stall_for: Duration::from_us(500),
            link_degrade_mtbf: Duration::ZERO,
            link_degrade_for: Duration::from_us(200),
            link_slowdown: 4.0,
            packet_corrupt_p: 0.0,
            smmu_fault_p: 0.0,
            dram_bit_error_p: 0.0,
            seu_mtbf: Duration::ZERO,
            scrub_period: Duration::ZERO,
        }
    }

    /// Returns `true` if no component can ever fault under this spec.
    pub fn is_off(&self) -> bool {
        self.worker_crash_mtbf.is_zero()
            && self.worker_stall_mtbf.is_zero()
            && self.link_degrade_mtbf.is_zero()
            && self.packet_corrupt_p == 0.0
            && self.smmu_fault_p == 0.0
            && self.dram_bit_error_p == 0.0
            && self.seu_mtbf.is_zero()
    }

    /// Scales every fault *rate* by `k` (MTBFs divide, probabilities
    /// multiply); durations of effects and the scrub period stay put.
    /// `k = 0` turns the campaign off. Used for fault-rate sweep axes.
    pub fn scaled(&self, k: f64) -> CampaignSpec {
        assert!(k.is_finite() && k >= 0.0, "scale factor must be >= 0");
        let scale_mtbf = |d: Duration| {
            if d.is_zero() || k == 0.0 {
                Duration::ZERO
            } else {
                d.mul_f64(1.0 / k)
            }
        };
        let scale_p = |p: f64| (p * k).min(1.0);
        CampaignSpec {
            seed: self.seed,
            worker_crash_mtbf: scale_mtbf(self.worker_crash_mtbf),
            worker_stall_mtbf: scale_mtbf(self.worker_stall_mtbf),
            worker_stall_for: self.worker_stall_for,
            link_degrade_mtbf: scale_mtbf(self.link_degrade_mtbf),
            link_degrade_for: self.link_degrade_for,
            link_slowdown: self.link_slowdown,
            packet_corrupt_p: scale_p(self.packet_corrupt_p),
            smmu_fault_p: scale_p(self.smmu_fault_p),
            dram_bit_error_p: scale_p(self.dram_bit_error_p),
            seu_mtbf: scale_mtbf(self.seu_mtbf),
            scrub_period: self.scrub_period,
        }
    }

    /// Derives the independent RNG for one injector. `salt` names the
    /// component (use the `SALT_*` constants) so streams never collide.
    pub fn rng(&self, salt: u64) -> SimRng {
        SimRng::seed_from(mix(self.seed, salt))
    }

    /// Parses the compact `key=value[,key=value...]` form.
    ///
    /// # Errors
    ///
    /// [`SpecParseError`] names the offending pair.
    pub fn parse(s: &str) -> Result<CampaignSpec, SpecParseError> {
        let mut spec = CampaignSpec::off();
        for pair in s.split(',') {
            let pair = pair.trim();
            if pair.is_empty() {
                continue;
            }
            let (key, value) = pair.split_once('=').ok_or_else(|| SpecParseError {
                pair: pair.to_owned(),
                reason: "expected key=value".to_owned(),
            })?;
            let bad = |reason: &str| SpecParseError {
                pair: pair.to_owned(),
                reason: reason.to_owned(),
            };
            match key.trim() {
                "seed" => {
                    spec.seed = value.trim().parse().map_err(|_| bad("seed wants a u64"))?;
                }
                "crash" => {
                    spec.worker_crash_mtbf =
                        parse_duration(value).ok_or_else(|| bad("duration like 5ms"))?
                }
                "stall" => {
                    spec.worker_stall_mtbf =
                        parse_duration(value).ok_or_else(|| bad("duration like 2ms"))?
                }
                "stall_for" => {
                    spec.worker_stall_for =
                        parse_duration(value).ok_or_else(|| bad("duration like 300us"))?
                }
                "link" => {
                    spec.link_degrade_mtbf =
                        parse_duration(value).ok_or_else(|| bad("duration like 400us"))?
                }
                "link_for" => {
                    spec.link_degrade_for =
                        parse_duration(value).ok_or_else(|| bad("duration like 150us"))?
                }
                "link_slowdown" => {
                    spec.link_slowdown = parse_prob_or_factor(value, 1.0, f64::MAX)
                        .ok_or_else(|| bad("factor >= 1"))?;
                }
                "corrupt" => {
                    spec.packet_corrupt_p = parse_prob_or_factor(value, 0.0, 1.0)
                        .ok_or_else(|| bad("probability in [0,1]"))?;
                }
                "smmu" => {
                    spec.smmu_fault_p = parse_prob_or_factor(value, 0.0, 1.0)
                        .ok_or_else(|| bad("probability in [0,1]"))?;
                }
                "dram" => {
                    spec.dram_bit_error_p = parse_prob_or_factor(value, 0.0, 1.0)
                        .ok_or_else(|| bad("probability in [0,1]"))?;
                }
                "seu" => {
                    spec.seu_mtbf =
                        parse_duration(value).ok_or_else(|| bad("duration like 500us"))?
                }
                "scrub" => {
                    spec.scrub_period =
                        parse_duration(value).ok_or_else(|| bad("duration like 200us"))?
                }
                other => {
                    return Err(SpecParseError {
                        pair: pair.to_owned(),
                        reason: format!(
                            "unknown key `{other}` (want seed, crash, stall, stall_for, link, \
                             link_for, link_slowdown, corrupt, smmu, dram, seu, scrub)"
                        ),
                    });
                }
            }
        }
        Ok(spec)
    }
}

impl Default for CampaignSpec {
    fn default() -> Self {
        CampaignSpec::off()
    }
}

impl fmt::Display for CampaignSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seed={}", self.seed)?;
        let d = |f: &mut fmt::Formatter<'_>, key: &str, v: Duration| {
            if v.is_zero() {
                Ok(())
            } else {
                write!(f, ",{key}={}", fmt_duration(v))
            }
        };
        d(f, "crash", self.worker_crash_mtbf)?;
        if !self.worker_stall_mtbf.is_zero() {
            d(f, "stall", self.worker_stall_mtbf)?;
            d(f, "stall_for", self.worker_stall_for)?;
        }
        if !self.link_degrade_mtbf.is_zero() {
            d(f, "link", self.link_degrade_mtbf)?;
            d(f, "link_for", self.link_degrade_for)?;
            write!(f, ",link_slowdown={}", self.link_slowdown)?;
        }
        if self.packet_corrupt_p > 0.0 {
            write!(f, ",corrupt={}", self.packet_corrupt_p)?;
        }
        if self.smmu_fault_p > 0.0 {
            write!(f, ",smmu={}", self.smmu_fault_p)?;
        }
        if self.dram_bit_error_p > 0.0 {
            write!(f, ",dram={}", self.dram_bit_error_p)?;
        }
        d(f, "seu", self.seu_mtbf)?;
        d(f, "scrub", self.scrub_period)?;
        Ok(())
    }
}

/// Component salts for [`CampaignSpec::rng`]. One per injection site so
/// independent layers never share a stream.
pub mod salt {
    /// Worker crash arrival process.
    pub const WORKER_CRASH: u64 = 1;
    /// Worker stall arrival process.
    pub const WORKER_STALL: u64 = 2;
    /// Victim selection for worker faults.
    pub const WORKER_PICK: u64 = 3;
    /// Link degradation arrival process.
    pub const LINK_DEGRADE: u64 = 4;
    /// Link victim selection.
    pub const LINK_PICK: u64 = 5;
    /// Packet corruption Bernoulli stream.
    pub const PACKET_CORRUPT: u64 = 6;
    /// SMMU transient fault Bernoulli stream.
    pub const SMMU_FAULT: u64 = 7;
    /// DRAM bit error stream.
    pub const DRAM_ECC: u64 = 8;
    /// SEU upset arrival process.
    pub const SEU: u64 = 9;
    /// SEU victim selection.
    pub const SEU_PICK: u64 = 10;
}

/// A malformed campaign spec string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecParseError {
    /// The offending `key=value` pair.
    pub pair: String,
    /// What was expected.
    pub reason: String,
}

impl fmt::Display for SpecParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad fault spec pair `{}`: {}", self.pair, self.reason)
    }
}

impl std::error::Error for SpecParseError {}

/// Parses a duration with an `ns`/`us`/`ms`/`s` suffix (`"300us"`,
/// `"1.5ms"`). Shared by every `key=value` spec grammar in the workspace
/// ([`CampaignSpec`], the ServePlane's `ServeSpec`).
pub fn parse_duration(s: &str) -> Option<Duration> {
    let s = s.trim();
    let (num, unit) = s.split_at(s.find(|c: char| c.is_ascii_alphabetic())?);
    let v: f64 = num.parse().ok()?;
    if !v.is_finite() || v < 0.0 {
        return None;
    }
    let ns = match unit {
        "ns" => v,
        "us" => v * 1e3,
        "ms" => v * 1e6,
        "s" => v * 1e9,
        _ => return None,
    };
    Some(Duration::from_ns_f64(ns))
}

fn parse_prob_or_factor(s: &str, lo: f64, hi: f64) -> Option<f64> {
    let v: f64 = s.trim().parse().ok()?;
    (v.is_finite() && v >= lo && v <= hi).then_some(v)
}

/// Renders a duration in the largest unit that keeps it integral, so
/// `Display` output re-parses to the same value. The inverse of
/// [`parse_duration`], shared by every spec grammar.
pub fn fmt_duration(d: Duration) -> String {
    if !d.as_ps().is_multiple_of(1_000) {
        return format!("{}ns", d.as_ns_f64());
    }
    let ns = d.as_ns();
    if ns.is_multiple_of(1_000_000_000) {
        format!("{}s", ns / 1_000_000_000)
    } else if ns.is_multiple_of(1_000_000) {
        format!("{}ms", ns / 1_000_000)
    } else if ns.is_multiple_of(1_000) {
        format!("{}us", ns / 1_000)
    } else {
        format!("{ns}ns")
    }
}

/// A Poisson fault-arrival process on simulated time.
///
/// Draws exponential inter-arrival gaps with mean `mtbf` from its own
/// [`SimRng`]; a zero `mtbf` disables the clock entirely (no draws).
///
/// # Example
///
/// ```
/// use ecoscale_sim::fault::{CampaignSpec, FaultClock, salt};
/// use ecoscale_sim::{Duration, Time};
///
/// let spec = CampaignSpec::parse("seed=1").unwrap();
/// let mut clock = FaultClock::new(Duration::from_us(100), spec.rng(salt::SEU));
/// let mut faults = 0;
/// while clock.pop_due(Time::from_ms(1)).is_some() {
///     faults += 1;
/// }
/// // mean gap 100us over 1ms => ~10 arrivals
/// assert!(faults > 2 && faults < 40, "{faults}");
/// ```
#[derive(Debug, Clone)]
pub struct FaultClock {
    rng: SimRng,
    mtbf: Duration,
    next: Option<Time>,
}

impl FaultClock {
    /// A clock firing with mean gap `mtbf`, starting at [`Time::ZERO`].
    /// Zero `mtbf` yields a clock that never fires.
    pub fn new(mtbf: Duration, rng: SimRng) -> FaultClock {
        let mut c = FaultClock {
            rng,
            mtbf,
            next: None,
        };
        if !mtbf.is_zero() {
            c.next = Some(c.draw_from(Time::ZERO));
        }
        c
    }

    /// A clock that never fires and never draws.
    pub fn disabled() -> FaultClock {
        FaultClock {
            rng: SimRng::seed_from(0),
            mtbf: Duration::ZERO,
            next: None,
        }
    }

    /// Whether this clock can ever fire.
    pub fn is_enabled(&self) -> bool {
        self.next.is_some()
    }

    /// The next arrival, if any.
    pub fn peek(&self) -> Option<Time> {
        self.next
    }

    fn draw_from(&mut self, t: Time) -> Time {
        let gap = self.rng.gen_exp(self.mtbf.as_ns_f64()).max(1.0);
        t + Duration::from_ns_f64(gap)
    }

    /// If the next arrival is at or before `now`, consumes it (drawing
    /// the following one) and returns its time; otherwise `None`.
    /// Call in a loop to drain every arrival up to `now`.
    pub fn pop_due(&mut self, now: Time) -> Option<Time> {
        let at = self.next?;
        if at > now {
            return None;
        }
        self.next = Some(self.draw_from(at));
        Some(at)
    }
}

impl crate::snap::Snapshot for FaultClock {
    fn snapshot(&self, w: &mut crate::snap::SnapWriter) {
        self.rng.snapshot(w);
        w.put_duration(self.mtbf);
        w.put_opt_time(self.next);
    }
}

impl crate::snap::Restore for FaultClock {
    fn restore(r: &mut crate::snap::SnapReader<'_>) -> Result<Self, crate::snap::RestoreError> {
        Ok(FaultClock {
            rng: crate::snap::Restore::restore(r)?,
            mtbf: r.get_duration()?,
            next: r.get_opt_time()?,
        })
    }
}

impl crate::snap::Snapshot for ProbFault {
    fn snapshot(&self, w: &mut crate::snap::SnapWriter) {
        self.rng.snapshot(w);
        w.put_f64(self.p);
    }
}

impl crate::snap::Restore for ProbFault {
    fn restore(r: &mut crate::snap::SnapReader<'_>) -> Result<Self, crate::snap::RestoreError> {
        let rng = crate::snap::Restore::restore(r)?;
        let p = r.get_f64()?;
        if !(0.0..=1.0).contains(&p) {
            return Err(crate::snap::malformed(format!(
                "fault probability {p} out of [0, 1]"
            )));
        }
        Ok(ProbFault { rng, p })
    }
}

/// A per-operation Bernoulli fault injector.
///
/// With probability zero it draws nothing, so a disabled injector leaves
/// every other stream in the simulation untouched.
#[derive(Debug, Clone)]
pub struct ProbFault {
    rng: SimRng,
    p: f64,
}

impl ProbFault {
    /// An injector striking each operation with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn new(p: f64, rng: SimRng) -> ProbFault {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of [0, 1]");
        ProbFault { rng, p }
    }

    /// An injector that never strikes and never draws.
    pub fn disabled() -> ProbFault {
        ProbFault {
            rng: SimRng::seed_from(0),
            p: 0.0,
        }
    }

    /// Whether this injector can ever strike.
    pub fn is_enabled(&self) -> bool {
        self.p > 0.0
    }

    /// One Bernoulli draw (no draw when disabled).
    pub fn strikes(&mut self) -> bool {
        self.p > 0.0 && self.rng.gen_bool(self.p)
    }

    /// Whether at least one of `trials` independent draws strikes,
    /// folded into a single draw with `1 - (1-p)^trials`. Used for
    /// per-bit error rates over multi-byte accesses.
    pub fn strikes_any(&mut self, trials: u64) -> bool {
        if self.p <= 0.0 || trials == 0 {
            return false;
        }
        let p_any = 1.0 - (1.0 - self.p).powf(trials as f64);
        self.rng.gen_bool(p_any.clamp(0.0, 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_spec_is_off_and_round_trips() {
        let spec = CampaignSpec::off();
        assert!(spec.is_off());
        let again = CampaignSpec::parse(&spec.to_string()).unwrap();
        assert_eq!(spec, again);
    }

    #[test]
    fn parse_full_spec_round_trips() {
        let text = "seed=9,crash=5ms,stall=2ms,stall_for=300us,link=400us,link_for=150us,\
                    link_slowdown=4,corrupt=0.01,smmu=0.002,dram=0.0000001,seu=500us,scrub=200us";
        let spec = CampaignSpec::parse(text).unwrap();
        assert!(!spec.is_off());
        assert_eq!(spec.worker_crash_mtbf, Duration::from_ms(5));
        assert_eq!(spec.worker_stall_for, Duration::from_us(300));
        assert_eq!(spec.smmu_fault_p, 0.002);
        let again = CampaignSpec::parse(&spec.to_string()).unwrap();
        assert_eq!(spec, again);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(CampaignSpec::parse("bogus=1").is_err());
        assert!(CampaignSpec::parse("crash").is_err());
        assert!(CampaignSpec::parse("crash=fast").is_err());
        assert!(CampaignSpec::parse("corrupt=1.5").is_err());
        assert!(CampaignSpec::parse("seed=-3").is_err());
        let err = CampaignSpec::parse("smmu=nope").unwrap_err();
        assert!(err.to_string().contains("smmu=nope"));
    }

    #[test]
    fn parse_ignores_whitespace_and_empty_pairs() {
        let spec = CampaignSpec::parse(" seed=3 , crash=1ms ,, ").unwrap();
        assert_eq!(spec.seed, 3);
        assert_eq!(spec.worker_crash_mtbf, Duration::from_ms(1));
    }

    #[test]
    fn scaled_moves_rates_not_durations() {
        let spec =
            CampaignSpec::parse("seed=1,crash=4ms,stall=2ms,stall_for=100us,smmu=0.01").unwrap();
        let hot = spec.scaled(2.0);
        assert_eq!(hot.worker_crash_mtbf, Duration::from_ms(2));
        assert_eq!(hot.smmu_fault_p, 0.02);
        assert_eq!(hot.worker_stall_for, Duration::from_us(100));
        let off = spec.scaled(0.0);
        assert!(off.is_off());
    }

    #[test]
    fn rng_streams_differ_per_salt_but_are_stable() {
        let spec = CampaignSpec::parse("seed=5").unwrap();
        let a = spec.rng(salt::SEU).next_u64();
        let b = spec.rng(salt::SMMU_FAULT).next_u64();
        let a2 = spec.rng(salt::SEU).next_u64();
        assert_ne!(a, b);
        assert_eq!(a, a2);
    }

    #[test]
    fn fault_clock_is_deterministic_and_ordered() {
        let spec = CampaignSpec::parse("seed=11").unwrap();
        let mut a = FaultClock::new(Duration::from_us(50), spec.rng(salt::SEU));
        let mut b = FaultClock::new(Duration::from_us(50), spec.rng(salt::SEU));
        let horizon = Time::from_ms(1);
        let mut last = Time::ZERO;
        let mut n = 0;
        while let Some(t) = a.pop_due(horizon) {
            assert_eq!(Some(t), b.pop_due(horizon));
            assert!(t >= last);
            last = t;
            n += 1;
        }
        assert!(n > 5, "expected several arrivals, got {n}");
        assert!(a.peek().unwrap() > horizon);
    }

    #[test]
    fn disabled_clock_never_fires() {
        let mut c = FaultClock::disabled();
        assert!(!c.is_enabled());
        assert_eq!(c.pop_due(Time::from_ms(100)), None);
        let zero = FaultClock::new(Duration::ZERO, SimRng::seed_from(1));
        assert!(!zero.is_enabled());
    }

    #[test]
    fn prob_fault_frequency_and_disabled() {
        let spec = CampaignSpec::parse("seed=13").unwrap();
        let mut p = ProbFault::new(0.25, spec.rng(salt::SMMU_FAULT));
        let hits = (0..10_000).filter(|_| p.strikes()).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.03, "{hits}");
        let mut off = ProbFault::disabled();
        assert!(!(0..1000).any(|_| off.strikes()));
        assert!(!off.strikes_any(1 << 40));
    }

    #[test]
    fn strikes_any_amplifies_with_trials() {
        let spec = CampaignSpec::parse("seed=17").unwrap();
        let mut p = ProbFault::new(1e-6, spec.rng(salt::DRAM_ECC));
        let few = (0..2000).filter(|_| p.strikes_any(8)).count();
        let mut p = ProbFault::new(1e-6, spec.rng(salt::DRAM_ECC));
        let many = (0..2000).filter(|_| p.strikes_any(1_000_000)).count();
        assert!(many > few, "many={many} few={few}");
    }
}
