//! A deterministic scoped-thread work pool.
//!
//! The experiment harness runs many independent sweep points (one seeded
//! simulation each). [`parallel_map_indexed`] fans them out over scoped
//! threads and returns the results **in input order**, so any computation
//! whose closures are independent produces byte-identical output whether
//! it runs on one thread or many.
//!
//! The thread count comes from the `ECOSCALE_THREADS` environment
//! variable (default: all available cores). `ECOSCALE_THREADS=1` forces
//! fully sequential in-place execution — useful as the determinism
//! baseline and in constrained CI.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Environment variable controlling the pool width.
pub const THREADS_ENV: &str = "ECOSCALE_THREADS";

/// The pool width: `ECOSCALE_THREADS` if set to a positive integer, else
/// the number of available cores (at least 1).
///
/// Read on every call so tests can toggle the variable between runs.
pub fn thread_count() -> usize {
    if let Ok(v) = std::env::var(THREADS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Applies `f` to every item, in parallel, returning results in input
/// order. `f` receives the item's index alongside the item.
///
/// Output is independent of the thread count: each closure runs exactly
/// once on its own item, and results are slotted back by index. With one
/// item or a pool width of 1 everything runs inline on the caller's
/// thread.
///
/// # Example
///
/// ```
/// use ecoscale_sim::pool::parallel_map_indexed;
///
/// let squares = parallel_map_indexed(vec![1u64, 2, 3, 4], |i, x| (i, x * x));
/// assert_eq!(squares, vec![(0, 1), (1, 4), (2, 9), (3, 16)]);
/// ```
///
/// # Panics
///
/// Panics if `f` panics on any item (the panic is propagated when the
/// scope joins).
pub fn parallel_map_indexed<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    let workers = thread_count().min(n);
    if workers <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }
    // Items are parked in take-once slots; workers self-schedule via an
    // atomic cursor and publish results into per-index cells, so the
    // output order is the input order regardless of completion order.
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i]
                    .lock()
                    .expect("item slot poisoned")
                    .take()
                    .expect("each item is taken exactly once");
                let out = f(i, item);
                *results[i].lock().expect("result slot poisoned") = Some(out);
            });
        }
    });
    results
        .into_iter()
        .map(|cell| {
            cell.into_inner()
                .expect("result slot poisoned")
                .expect("every slot is filled")
        })
        .collect()
}

/// A reusable sense-reversing spin barrier for round-based parallel loops.
///
/// The sharded DES engine crosses a barrier several times per safe window
/// — tens of thousands of times per run — so the mutex/condvar cost of
/// [`std::sync::Barrier`] would dominate. This barrier spins (yielding
/// periodically so oversubscribed CI boxes still make progress) and is
/// reusable: generations advance automatically.
///
/// # Example
///
/// ```
/// use std::sync::atomic::{AtomicU64, Ordering};
/// use ecoscale_sim::pool::RoundBarrier;
///
/// let barrier = RoundBarrier::new(4);
/// let sum = AtomicU64::new(0);
/// std::thread::scope(|s| {
///     let (sum, barrier) = (&sum, &barrier);
///     for i in 0..4u64 {
///         s.spawn(move || {
///             sum.fetch_add(i + 1, Ordering::Relaxed);
///             barrier.wait();
///             // all four increments are visible after the barrier
///             assert_eq!(sum.load(Ordering::Relaxed), 10);
///         });
///     }
/// });
/// ```
#[derive(Debug)]
pub struct RoundBarrier {
    parties: usize,
    arrived: AtomicUsize,
    generation: AtomicUsize,
}

impl RoundBarrier {
    /// Creates a barrier for `parties` threads.
    ///
    /// # Panics
    ///
    /// Panics if `parties` is zero.
    pub fn new(parties: usize) -> RoundBarrier {
        assert!(parties > 0, "barrier needs at least one party");
        RoundBarrier {
            parties,
            arrived: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
        }
    }

    /// Blocks until all parties have called `wait` for this generation.
    /// Returns `true` on exactly one thread per crossing (the last
    /// arriver), mirroring `std::sync::Barrier`'s leader flag.
    pub fn wait(&self) -> bool {
        let gen = self.generation.load(Ordering::Acquire);
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.parties {
            self.arrived.store(0, Ordering::Release);
            self.generation
                .store(gen.wrapping_add(1), Ordering::Release);
            return true;
        }
        let mut spins = 0u32;
        while self.generation.load(Ordering::Acquire) == gen {
            spins += 1;
            if spins & 0x3FF == 0 {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
        false
    }
}

/// [`parallel_map_indexed`] without the index.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    parallel_map_indexed(items, |_, item| f(item))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let out = parallel_map_indexed((0..100u64).collect(), |i, x| {
            assert_eq!(i as u64, x);
            x * 3
        });
        assert_eq!(out, (0..100u64).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn works_on_empty_and_single_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(empty, |x: u32| x).is_empty());
        assert_eq!(parallel_map(vec![7], |x: u32| x + 1), vec![8]);
    }

    #[test]
    fn matches_sequential_reference() {
        let work = |i: usize, x: u64| {
            // a little arithmetic so threads interleave
            let mut acc = x;
            for k in 0..50 {
                acc = acc
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(k + i as u64);
            }
            acc
        };
        let items: Vec<u64> = (0..257).collect();
        let seq: Vec<u64> = items.iter().enumerate().map(|(i, &x)| work(i, x)).collect();
        let par = parallel_map_indexed(items, work);
        assert_eq!(par, seq);
    }

    #[test]
    fn thread_count_is_at_least_one() {
        assert!(thread_count() >= 1);
    }

    #[test]
    fn round_barrier_synchronizes_many_rounds() {
        const PARTIES: usize = 4;
        const ROUNDS: usize = 500;
        let barrier = RoundBarrier::new(PARTIES);
        let counter = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..PARTIES {
                s.spawn(|| {
                    for round in 0..ROUNDS {
                        counter.fetch_add(1, Ordering::Relaxed);
                        barrier.wait();
                        // every party has contributed to this round
                        assert!(counter.load(Ordering::Relaxed) >= (round + 1) * PARTIES);
                        barrier.wait();
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), PARTIES * ROUNDS);
    }

    #[test]
    fn round_barrier_elects_one_leader_per_crossing() {
        let barrier = RoundBarrier::new(3);
        let leaders = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..3 {
                s.spawn(|| {
                    for _ in 0..100 {
                        if barrier.wait() {
                            leaders.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(leaders.load(Ordering::Relaxed), 100);
    }

    #[test]
    #[should_panic(expected = "at least one party")]
    fn round_barrier_rejects_zero_parties() {
        let _ = RoundBarrier::new(0);
    }
}
