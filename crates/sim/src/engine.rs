//! The simulation driver loop.
//!
//! A domain model implements [`EventHandler`] for its event type; the
//! [`Simulation`] owns the event queue and repeatedly delivers the earliest
//! event to the handler until the queue drains, a time horizon passes, or
//! an event budget is exhausted.
//!
//! This is the single-queue engine. Models that partition into clusters
//! with a bounded minimum communication latency can instead run on the
//! conservative-parallel [`crate::shard::ShardedEngine`], which shares
//! this module's [`StopReason`] vocabulary and produces byte-identical
//! results at any shard count.

use crate::event::EventQueue;
use crate::time::Time;

/// A component that consumes events of type `E` and may schedule more.
///
/// # Example
///
/// ```
/// use ecoscale_sim::{Duration, EventHandler, EventQueue, Simulation, Time};
///
/// struct Counter { fired: u32 }
///
/// impl EventHandler<u32> for Counter {
///     fn handle(&mut self, _now: Time, ev: u32, q: &mut EventQueue<u32>) {
///         self.fired += 1;
///         if ev < 3 {
///             q.schedule_in(Duration::from_ns(10), ev + 1);
///         }
///     }
/// }
///
/// let mut sim = Simulation::new(Counter { fired: 0 });
/// sim.queue_mut().schedule(Time::ZERO, 0);
/// sim.run();
/// assert_eq!(sim.handler().fired, 4);
/// ```
pub trait EventHandler<E> {
    /// Handles one event delivered at time `now`. New events may be
    /// scheduled on `queue`.
    fn handle(&mut self, now: Time, event: E, queue: &mut EventQueue<E>);
}

/// Why a [`Simulation::run_until`] call returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The event queue drained.
    QueueEmpty,
    /// The next pending event lies beyond the requested horizon.
    HorizonReached,
    /// The event budget was exhausted (livelock guard).
    BudgetExhausted,
}

/// A discrete-event simulation: an [`EventQueue`] plus the handler that
/// consumes it.
#[derive(Debug)]
pub struct Simulation<H, E> {
    handler: H,
    queue: EventQueue<E>,
    events_processed: u64,
}

impl<H, E> Simulation<H, E>
where
    H: EventHandler<E>,
{
    /// Creates a simulation around `handler` with an empty queue.
    pub fn new(handler: H) -> Simulation<H, E> {
        Simulation {
            handler,
            queue: EventQueue::new(),
            events_processed: 0,
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> Time {
        self.queue.now()
    }

    /// Shared access to the handler (model state).
    pub fn handler(&self) -> &H {
        &self.handler
    }

    /// Mutable access to the handler (model state).
    pub fn handler_mut(&mut self) -> &mut H {
        &mut self.handler
    }

    /// Mutable access to the queue, e.g. to seed initial events.
    pub fn queue_mut(&mut self) -> &mut EventQueue<E> {
        &mut self.queue
    }

    /// Shared access to the queue.
    pub fn queue(&self) -> &EventQueue<E> {
        &self.queue
    }

    /// Number of events delivered so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Consumes the simulation, returning the handler.
    pub fn into_handler(self) -> H {
        self.handler
    }

    /// Runs until the queue drains. Returns the final simulation time.
    pub fn run(&mut self) -> Time {
        self.run_until(Time::MAX, u64::MAX);
        self.now()
    }

    /// Runs until the queue drains, the next event would be after
    /// `horizon`, or `max_events` have been delivered.
    ///
    /// Events *at* the horizon are still delivered; an event strictly
    /// after it stays queued.
    pub fn run_until(&mut self, horizon: Time, max_events: u64) -> StopReason {
        let mut delivered = 0u64;
        loop {
            if delivered >= max_events {
                return StopReason::BudgetExhausted;
            }
            match self.queue.pop_if_at_or_before(horizon) {
                None if self.queue.is_empty() => return StopReason::QueueEmpty,
                None => return StopReason::HorizonReached,
                Some((t, ev)) => {
                    self.handler.handle(t, ev, &mut self.queue);
                    self.events_processed += 1;
                    delivered += 1;
                }
            }
        }
    }

    /// Delivers exactly one event if one is pending.
    pub fn step(&mut self) -> bool {
        if let Some((t, ev)) = self.queue.pop() {
            self.handler.handle(t, ev, &mut self.queue);
            self.events_processed += 1;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;

    /// A handler that re-arms itself every 10 ns and counts deliveries.
    struct Ticker {
        ticks: u64,
        limit: u64,
    }

    impl EventHandler<()> for Ticker {
        fn handle(&mut self, _now: Time, _ev: (), q: &mut EventQueue<()>) {
            self.ticks += 1;
            if self.ticks < self.limit {
                q.schedule_in(Duration::from_ns(10), ());
            }
        }
    }

    fn ticker(limit: u64) -> Simulation<Ticker, ()> {
        let mut sim = Simulation::new(Ticker { ticks: 0, limit });
        sim.queue_mut().schedule(Time::ZERO, ());
        sim
    }

    #[test]
    fn runs_to_queue_empty() {
        let mut sim = ticker(5);
        let end = sim.run();
        assert_eq!(sim.handler().ticks, 5);
        assert_eq!(end, Time::from_ns(40));
        assert_eq!(sim.events_processed(), 5);
    }

    #[test]
    fn horizon_is_inclusive() {
        let mut sim = ticker(u64::MAX);
        let reason = sim.run_until(Time::from_ns(30), u64::MAX);
        assert_eq!(reason, StopReason::HorizonReached);
        // events at 0, 10, 20, 30 delivered; 40 pending
        assert_eq!(sim.handler().ticks, 4);
        assert_eq!(sim.queue().peek_time(), Some(Time::from_ns(40)));
    }

    #[test]
    fn budget_guard_stops_livelock() {
        let mut sim = ticker(u64::MAX);
        let reason = sim.run_until(Time::MAX, 1000);
        assert_eq!(reason, StopReason::BudgetExhausted);
        assert_eq!(sim.handler().ticks, 1000);
    }

    #[test]
    fn step_delivers_one_event() {
        let mut sim = ticker(3);
        assert!(sim.step());
        assert_eq!(sim.handler().ticks, 1);
        assert!(sim.step());
        assert!(sim.step());
        assert!(!sim.step());
        assert_eq!(sim.into_handler().ticks, 3);
    }

    #[test]
    fn run_until_on_empty_queue() {
        let mut sim = Simulation::new(Ticker { ticks: 0, limit: 0 });
        assert_eq!(sim.run_until(Time::MAX, 10), StopReason::QueueEmpty);
    }
}
