//! A deterministic registry of named instruments.
//!
//! [`MetricsRegistry`] maps metric names to one of the three stats
//! primitives from [`crate::stats`]: [`Counter`] (monotonic event
//! counts), [`OnlineStats`] (mean/min/max/stddev of a continuous
//! quantity) and [`Histogram`] (log-binned distributions with
//! percentiles). Domain structs keep raw instruments in their own
//! fields for the hot path and *export* into a registry at snapshot
//! time, so registry lookups never appear in inner loops.
//!
//! The registry is backed by a `BTreeMap`, so iteration, the rendered
//! [`Table`] and the JSON export are all deterministically ordered.
//! [`MetricsRegistry::merge`] folds another registry in (counters add,
//! stats and histograms merge), which lets per-thread registries from
//! [`crate::pool`] combine in input order into output that is
//! byte-identical regardless of `ECOSCALE_THREADS`.

use std::collections::BTreeMap;

use crate::json;
use crate::report::{fnum, Table};
use crate::stats::{Counter, Histogram, OnlineStats};

/// One named instrument held by a [`MetricsRegistry`].
#[derive(Debug, Clone, PartialEq)]
pub enum Instrument {
    /// A monotonic event count.
    Counter(Counter),
    /// Welford summary of a continuous quantity.
    Stats(OnlineStats),
    /// Log-binned distribution.
    Histogram(Histogram),
}

impl Instrument {
    fn kind(&self) -> &'static str {
        match self {
            Instrument::Counter(_) => "counter",
            Instrument::Stats(_) => "stats",
            Instrument::Histogram(_) => "histogram",
        }
    }
}

/// Named instruments with deterministic iteration, merge, and export.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    slots: BTreeMap<String, Instrument>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    fn counter_mut(&mut self, name: &str) -> &mut Counter {
        let slot = self
            .slots
            .entry(name.to_owned())
            .or_insert_with(|| Instrument::Counter(Counter::new()));
        match slot {
            Instrument::Counter(c) => c,
            other => panic!("metric `{name}` is a {}, not a counter", other.kind()),
        }
    }

    fn stats_mut(&mut self, name: &str) -> &mut OnlineStats {
        let slot = self
            .slots
            .entry(name.to_owned())
            .or_insert_with(|| Instrument::Stats(OnlineStats::new()));
        match slot {
            Instrument::Stats(s) => s,
            other => panic!("metric `{name}` is a {}, not stats", other.kind()),
        }
    }

    fn hist_mut(&mut self, name: &str) -> &mut Histogram {
        let slot = self
            .slots
            .entry(name.to_owned())
            .or_insert_with(|| Instrument::Histogram(Histogram::new()));
        match slot {
            Instrument::Histogram(h) => h,
            other => panic!("metric `{name}` is a {}, not a histogram", other.kind()),
        }
    }

    /// Increments the counter `name` by one.
    pub fn incr(&mut self, name: &str) {
        self.counter_mut(name).incr();
    }

    /// Adds `n` to the counter `name`.
    pub fn add(&mut self, name: &str, n: u64) {
        self.counter_mut(name).add(n);
    }

    /// Records `x` into the [`OnlineStats`] instrument `name`.
    pub fn observe(&mut self, name: &str, x: f64) {
        self.stats_mut(name).record(x);
    }

    /// Records `v` into the [`Histogram`] instrument `name`.
    pub fn record(&mut self, name: &str, v: u64) {
        self.hist_mut(name).record(v);
    }

    /// Merges a pre-accumulated [`OnlineStats`] into instrument `name`.
    pub fn merge_stats(&mut self, name: &str, s: &OnlineStats) {
        self.stats_mut(name).merge(s);
    }

    /// Merges a pre-accumulated [`Histogram`] into instrument `name`.
    pub fn merge_hist(&mut self, name: &str, h: &Histogram) {
        self.hist_mut(name).merge(h);
    }

    /// Folds `other` into `self`: counters add, stats and histograms
    /// merge. Panics if a shared name holds different instrument kinds.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, inst) in &other.slots {
            match inst {
                Instrument::Counter(c) => self.add(name, c.get()),
                Instrument::Stats(s) => self.merge_stats(name, s),
                Instrument::Histogram(h) => self.merge_hist(name, h),
            }
        }
    }

    /// Looks up an instrument by name.
    pub fn get(&self, name: &str) -> Option<&Instrument> {
        self.slots.get(name)
    }

    /// The value of the counter `name`, if present and a counter.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.slots.get(name) {
            Some(Instrument::Counter(c)) => Some(c.get()),
            _ => None,
        }
    }

    /// Iterates instruments in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Instrument)> {
        self.slots.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of registered instruments.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when no instruments are registered.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Renders every instrument as one row of a [`Table`].
    pub fn to_table(&self, title: &str) -> Table {
        let mut t = Table::new(
            title,
            &["metric", "kind", "count", "mean", "p50", "p95", "max"],
        );
        for (name, inst) in &self.slots {
            match inst {
                Instrument::Counter(c) => t.row_owned(vec![
                    name.clone(),
                    "counter".into(),
                    fnum(c.get() as f64),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                ]),
                Instrument::Stats(s) => t.row_owned(vec![
                    name.clone(),
                    "stats".into(),
                    s.count().to_string(),
                    fnum(s.mean()),
                    "-".into(),
                    "-".into(),
                    fnum(s.max()),
                ]),
                Instrument::Histogram(h) => t.row_owned(vec![
                    name.clone(),
                    "histogram".into(),
                    h.count().to_string(),
                    fnum(h.mean()),
                    fnum(h.percentile(50.0) as f64),
                    fnum(h.percentile(95.0) as f64),
                    fnum(h.max() as f64),
                ]),
            }
        }
        t
    }

    /// Renders the registry as a JSON object keyed by metric name.
    /// Deterministic: names are in `BTreeMap` order and numbers are
    /// formatted with the shortest round-trip form.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(32 + self.slots.len() * 64);
        out.push('{');
        let mut first = true;
        for (name, inst) in &self.slots {
            if !first {
                out.push(',');
            }
            first = false;
            json::escape(&mut out, name);
            out.push_str(":{\"kind\":\"");
            out.push_str(inst.kind());
            out.push('"');
            match inst {
                Instrument::Counter(c) => {
                    out.push_str(",\"value\":");
                    out.push_str(&c.get().to_string());
                }
                Instrument::Stats(s) => {
                    out.push_str(",\"count\":");
                    out.push_str(&s.count().to_string());
                    for (key, v) in [
                        ("mean", s.mean()),
                        ("std_dev", s.std_dev()),
                        ("min", s.min()),
                        ("max", s.max()),
                    ] {
                        out.push_str(",\"");
                        out.push_str(key);
                        out.push_str("\":");
                        json::fmt_f64(&mut out, v);
                    }
                }
                Instrument::Histogram(h) => {
                    out.push_str(",\"count\":");
                    out.push_str(&h.count().to_string());
                    out.push_str(",\"mean\":");
                    json::fmt_f64(&mut out, h.mean());
                    for (key, v) in [
                        ("p50", h.percentile(50.0)),
                        ("p95", h.percentile(95.0)),
                        ("p99", h.percentile(99.0)),
                        ("max", h.max()),
                    ] {
                        out.push_str(",\"");
                        out.push_str(key);
                        out.push_str("\":");
                        out.push_str(&v.to_string());
                    }
                }
            }
            out.push('}');
        }
        out.push('}');
        out
    }
}

impl crate::snap::Snapshot for Instrument {
    fn snapshot(&self, w: &mut crate::snap::SnapWriter) {
        match self {
            Instrument::Counter(c) => {
                w.put_u8(0);
                c.snapshot(w);
            }
            Instrument::Stats(s) => {
                w.put_u8(1);
                s.snapshot(w);
            }
            Instrument::Histogram(h) => {
                w.put_u8(2);
                h.snapshot(w);
            }
        }
    }
}

impl crate::snap::Restore for Instrument {
    fn restore(
        r: &mut crate::snap::SnapReader<'_>,
    ) -> Result<Instrument, crate::snap::RestoreError> {
        Ok(match r.get_u8()? {
            0 => Instrument::Counter(Counter::restore(r)?),
            1 => Instrument::Stats(OnlineStats::restore(r)?),
            2 => Instrument::Histogram(Histogram::restore(r)?),
            tag => return Err(crate::snap::malformed(format!("instrument tag {tag}"))),
        })
    }
}

impl crate::snap::Snapshot for MetricsRegistry {
    fn snapshot(&self, w: &mut crate::snap::SnapWriter) {
        w.put_usize(self.slots.len());
        for (name, inst) in &self.slots {
            w.put_str(name);
            inst.snapshot(w);
        }
    }
}

impl crate::snap::Restore for MetricsRegistry {
    fn restore(
        r: &mut crate::snap::SnapReader<'_>,
    ) -> Result<MetricsRegistry, crate::snap::RestoreError> {
        let n = r.get_usize()?;
        let mut slots = BTreeMap::new();
        for _ in 0..n {
            let name = r.get_str()?.to_owned();
            let inst = Instrument::restore(r)?;
            if slots.insert(name.clone(), inst).is_some() {
                return Err(crate::snap::malformed(format!("duplicate metric `{name}`")));
            }
        }
        Ok(MetricsRegistry { slots })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_reads_back() {
        let mut m = MetricsRegistry::new();
        m.incr("a.hits");
        m.add("a.hits", 4);
        m.observe("a.lat", 2.0);
        m.observe("a.lat", 4.0);
        m.record("a.hops", 3);
        assert_eq!(m.counter("a.hits"), Some(5));
        match m.get("a.lat") {
            Some(Instrument::Stats(s)) => assert_eq!(s.mean(), 3.0),
            other => panic!("unexpected: {other:?}"),
        }
        assert_eq!(m.len(), 3);
    }

    #[test]
    #[should_panic(expected = "not a histogram")]
    fn kind_mismatch_panics() {
        let mut m = MetricsRegistry::new();
        m.incr("x");
        m.record("x", 1);
    }

    #[test]
    fn merge_matches_sequential_recording() {
        let mut a = MetricsRegistry::new();
        let mut b = MetricsRegistry::new();
        let mut seq = MetricsRegistry::new();
        for v in 0..10u64 {
            let target = if v % 2 == 0 { &mut a } else { &mut b };
            target.incr("n");
            target.observe("v", v as f64);
            target.record("h", v);
            seq.incr("n");
            seq.observe("v", v as f64);
            seq.record("h", v);
        }
        a.merge(&b);
        assert_eq!(a.counter("n"), seq.counter("n"));
        assert_eq!(a.to_json(), seq.to_json());
        assert_eq!(a.to_table("m").to_string(), seq.to_table("m").to_string());
    }

    #[test]
    fn json_is_well_formed_and_ordered() {
        let mut m = MetricsRegistry::new();
        m.add("z.count", 7);
        m.observe("a.stat", 1.5);
        m.record("m.hist", 8);
        let text = m.to_json();
        let doc = crate::json::parse(&text).expect("metrics JSON must parse");
        match &doc {
            crate::json::Value::Obj(pairs) => {
                let names: Vec<&str> = pairs.iter().map(|(k, _)| k.as_str()).collect();
                assert_eq!(names, vec!["a.stat", "m.hist", "z.count"]);
            }
            other => panic!("expected object, got {other:?}"),
        }
        assert_eq!(
            doc.get("z.count").unwrap().get("value").unwrap().as_f64(),
            Some(7.0)
        );
        assert_eq!(
            doc.get("a.stat").unwrap().get("mean").unwrap().as_f64(),
            Some(1.5)
        );
    }

    #[test]
    fn snapshot_round_trips_every_instrument_kind() {
        use crate::snap::{Restore as _, SnapReader, SnapWriter, Snapshot as _};
        let mut m = MetricsRegistry::new();
        m.add("z.count", 7);
        m.observe("a.stat", 1.5);
        m.observe("a.stat", -3.0);
        m.record("m.hist", 8);
        m.record("m.hist", 900);
        m.observe("empty.stat", 1.0);
        let mut w = SnapWriter::new();
        m.snapshot(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let back = MetricsRegistry::restore(&mut r).expect("restore");
        assert!(r.is_exhausted());
        assert_eq!(back, m);
        assert_eq!(back.to_json(), m.to_json());
    }
}
